package nocdr

import (
	"fmt"
	"strings"

	"github.com/nocdr/nocdr/internal/nocerr"
)

// Typed sentinel errors. Every error returned by the public API wraps one
// of these (or carries the "nocdr: " prefix directly), so callers can
// branch with errors.Is instead of string matching:
//
//	_, err := s.RemoveDeadlocks(ctx, top, tab)
//	switch {
//	case errors.Is(err, nocdr.ErrVCLimit):   // budget too small
//	case errors.Is(err, nocdr.ErrCanceled):  // ctx fired; also matches context.Canceled
//	case errors.Is(err, nocdr.ErrCyclicCDG): // removal could not finish
//	}
var (
	// ErrCyclicCDG reports that a channel dependency graph is (still)
	// cyclic where an acyclic one was required.
	ErrCyclicCDG = nocerr.ErrCyclicCDG
	// ErrVCLimit reports that removal would exceed WithVCLimit's budget.
	ErrVCLimit = nocerr.ErrVCLimit
	// ErrCanceled reports cooperative cancellation; errors wrapping it
	// also wrap the context's own error, so errors.Is(err,
	// context.Canceled) and errors.Is(err, context.DeadlineExceeded)
	// keep working.
	ErrCanceled = nocerr.ErrCanceled
	// ErrInvalidInput reports malformed or inconsistent inputs.
	ErrInvalidInput = nocerr.ErrInvalidInput
	// ErrNotFound reports a lookup miss (unknown benchmark, unknown job).
	ErrNotFound = nocerr.ErrNotFound
	// ErrWorker reports a sharded-sweep worker failure the dispatcher
	// could not absorb (see WithWorkers): a shard exhausted its retry
	// budget, or every worker died with cells still unassigned.
	ErrWorker = nocerr.ErrWorker
)

// wrapErr gives every error leaving the public API the uniform "nocdr: "
// prefix exactly once, preserving the wrapped chain for errors.Is/As.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if strings.HasPrefix(err.Error(), "nocdr: ") {
		return err
	}
	return fmt.Errorf("nocdr: %w", err)
}
