// Torus demonstrates the paper's "any topology, any routing function"
// claim on the textbook hard case: dimension-ordered routing on a 2D
// torus deadlocks through its wrap-around links (the dateline problem,
// classically fixed by hand with dateline virtual channels). The generic
// removal algorithm discovers the same fix automatically: a handful of
// extra VCs exactly where dependency cycles cross the wrap links.
//
// Run with: go run ./examples/torus
package main

import (
	"context"
	"fmt"
	"log"

	nocdr "github.com/nocdr/nocdr"
)

func main() {
	ctx := context.Background()
	// The progress feed streams each dateline break as it happens — the
	// observability hook `nocdr serve` exposes over SSE.
	s := nocdr.NewSession(nocdr.WithProgress(func(e nocdr.Event) {
		if e.Kind == nocdr.EventCycleBroken {
			fmt.Printf("  [event] break %d: %s cycle of %d channels, cost %d\n",
				e.Iteration, e.Break.Direction, len(e.Break.Cycle), e.Break.Cost)
		}
	}))

	const size = 4
	grid, err := nocdr.Torus(size, size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %dx%d torus, %d switches, %d links\n",
		size, size, grid.Topology.NumSwitches(), grid.Topology.NumLinks())

	// Stride permutation traffic: every core sends to the core two rows
	// up (stride 2·size), so each column becomes a ring of flows chasing
	// one another across the Y dateline — the canonical torus deadlock.
	tg, err := nocdr.UniformTraffic(size*size, 2*size, 100)
	if err != nil {
		log.Fatal(err)
	}
	// Long packets: with shallow buffers each worm spans many channels,
	// so the wrap-link dependency cycle locks up quickly at saturation.
	for _, f := range tg.Flows() {
		if err := tg.SetPacketFlits(f.ID, 16); err != nil {
			log.Fatal(err)
		}
	}
	routes, err := nocdr.DORRoutes(grid, tg)
	if err != nil {
		log.Fatal(err)
	}
	if err := routes.Validate(grid.Topology, tg); err != nil {
		log.Fatal(err)
	}

	g, err := s.BuildCDG(grid.Topology, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDG before removal: %v\n", g)
	if cycle := g.SmallestCycle(); cycle != nil {
		fmt.Print("smallest cycle:")
		for _, c := range cycle {
			fmt.Printf(" %s", grid.Topology.ChannelName(c))
		}
		fmt.Println()
	}

	fmt.Println("\nremoval progress:")
	res, err := s.RemoveDeadlocks(ctx, grid.Topology, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremoval: %d cycle(s) broken, %d VC(s) added on %d links — the\n",
		res.Iterations, res.AddedVCs, grid.Topology.NumLinks())
	fmt.Println("automatic equivalent of hand-placed dateline virtual channels")
	for i, b := range res.Breaks {
		fmt.Printf("  break %d: %s, cost %d, new:", i+1, b.Direction, b.Cost)
		for _, c := range b.NewChannels {
			fmt.Printf(" %s", res.Topology.ChannelName(c))
		}
		fmt.Println()
	}

	// Prove it dynamically at saturation with tight buffers.
	cfg := nocdr.SimConfig{MaxCycles: 30000, LoadFactor: 1.0, BufferDepth: 2, Seed: 3}
	before, err := s.Simulate(ctx, grid.Topology, tg, routes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := s.Simulate(ctx, res.Topology, tg, res.Routes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation before: deadlocked=%v (cycle %d), delivered %d packets\n",
		before.Deadlocked, before.DeadlockCycle, before.DeliveredPackets)
	fmt.Printf("simulation after:  deadlocked=%v, delivered %d packets, avg latency %.1f\n",
		after.Deadlocked, after.DeliveredPackets, after.AvgLatency())
}
