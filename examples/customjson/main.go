// Customjson shows the file-based workflow for user-provided designs:
// it writes a topology and traffic description as JSON (as a user's own
// toolchain would), loads them back, computes routes, removes deadlocks,
// and exports the repaired design plus Graphviz renderings — the same
// pipeline the nocdr CLI drives.
//
// Run with: go run ./examples/customjson
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	nocdr "github.com/nocdr/nocdr"
)

func main() {
	ctx := context.Background()
	s := nocdr.NewSession()
	dir, err := os.MkdirTemp("", "nocdr-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A user-authored design: two clusters joined by a bidirectional
	// bridge plus a one-way express ring across four switches.
	top := nocdr.NewTopology("custom")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch(fmt.Sprintf("SW%d", i+1))
		top.AttachCore(i*2, sw)
		top.AttachCore(i*2+1, sw)
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(nocdr.SwitchID(i), nocdr.SwitchID((i+1)%4)) // express ring
	}
	top.AddBidi(0, 1) // local bidirectional bridge between SW1 and SW2

	g := nocdr.NewTraffic("custom-traffic")
	for i := 0; i < 8; i++ {
		g.AddCore("")
	}
	// Cross traffic that exercises the ring in full circles: the
	// two-hop flows chase each other around the one-way ring.
	g.MustAddFlow(0, 5, 200) // SW1 → SW3
	g.MustAddFlow(2, 7, 150) // SW2 → SW4
	g.MustAddFlow(4, 1, 150) // SW3 → SW1
	g.MustAddFlow(6, 3, 200) // SW4 → SW2
	g.MustAddFlow(3, 0, 80)  // SW2 → SW1 over the bridge
	g.MustAddFlow(7, 0, 50)  // SW4 → SW1

	topoPath := filepath.Join(dir, "topology.json")
	trafficPath := filepath.Join(dir, "traffic.json")
	if err := nocdr.SaveJSON(topoPath, top); err != nil {
		log.Fatal(err)
	}
	if err := nocdr.SaveJSON(trafficPath, g); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", topoPath)
	fmt.Println("wrote", trafficPath)

	// Load back (the files are the interface) and route.
	top2, err := nocdr.LoadTopology(topoPath)
	if err != nil {
		log.Fatal(err)
	}
	g2, err := nocdr.LoadTraffic(trafficPath)
	if err != nil {
		log.Fatal(err)
	}
	routes, err := s.ComputeRoutes(top2, g2)
	if err != nil {
		log.Fatal(err)
	}
	if err := routes.Validate(top2, g2); err != nil {
		log.Fatal(err)
	}

	free, err := s.DeadlockFree(top2, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nloaded design deadlock-free:", free)
	if !free {
		cdgGraph, err := s.BuildCDG(top2, routes)
		if err != nil {
			log.Fatal(err)
		}
		cycle := cdgGraph.SmallestCycle()
		fmt.Print("smallest CDG cycle:")
		for _, c := range cycle {
			fmt.Printf(" %s", top2.ChannelName(c))
		}
		fmt.Println()
	}

	res, err := s.RemoveDeadlocks(ctx, top2, routes)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removal: %d cycle(s) broken, %d VC(s) added\n", res.Iterations, res.AddedVCs)

	// Export the repaired design for downstream tools.
	fixedTopo := filepath.Join(dir, "topology-fixed.json")
	fixedRoutes := filepath.Join(dir, "routes-fixed.json")
	if err := nocdr.SaveJSON(fixedTopo, res.Topology); err != nil {
		log.Fatal(err)
	}
	if err := nocdr.SaveJSON(fixedRoutes, res.Routes); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", fixedTopo)
	fmt.Println("wrote", fixedRoutes)

	fmt.Println("\nrepaired topology (DOT):")
	if err := res.Topology.WriteDOT(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
