// Quickstart walks through the paper's running example (Figures 1–4 and
// Table 1): a four-switch ring whose four flows create a cyclic channel
// dependency graph, the cost table the algorithm builds to pick the
// cheapest dependency to break, and the repaired deadlock-free design.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	nocdr "github.com/nocdr/nocdr"
)

func main() {
	// The Session is the pipeline front door: it carries policy and the
	// progress feed, and every long-running call takes a context.
	ctx := context.Background()
	s := nocdr.NewSession()

	// Figure 1: switches SW1..SW4 in a ring, one core each, links L1..L4.
	top := nocdr.NewTopology("figure1")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		if err := top.AttachCore(i, sw); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(nocdr.SwitchID(i), nocdr.SwitchID((i+1)%4))
	}

	// The paper's four flows with their fixed routes:
	// F1={L1,L2,L3}, F2={L3,L4}, F3={L4,L1}, F4={L1,L2}.
	g := nocdr.NewTraffic("figure1-flows")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	routes := nocdr.NewRouteTable(4)
	ch := func(ids ...int) []nocdr.Channel {
		out := make([]nocdr.Channel, len(ids))
		for i, id := range ids {
			out[i] = nocdr.Chan(nocdr.LinkID(id), 0)
		}
		return out
	}
	routes.Set(0, ch(0, 1, 2))
	routes.Set(1, ch(2, 3))
	routes.Set(2, ch(3, 0))
	routes.Set(3, ch(0, 1))
	if err := routes.Validate(top, g); err != nil {
		log.Fatal(err)
	}

	// Figure 2: the CDG has the cycle L1→L2→L3→L4→L1.
	cdgGraph, err := s.BuildCDG(top, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 2: channel dependency graph ==")
	fmt.Println(cdgGraph)
	for _, d := range cdgGraph.Dependencies() {
		fmt.Printf("  %s -> %s  (flows", top.ChannelName(d.From), top.ChannelName(d.To))
		for _, f := range d.Flows {
			fmt.Printf(" F%d", f+1)
		}
		fmt.Println(")")
	}
	cycle := cdgGraph.SmallestCycle()
	fmt.Print("smallest cycle:")
	for _, c := range cycle {
		fmt.Printf(" %s", top.ChannelName(c))
	}
	fmt.Println()

	// Table 1: the forward cost table over that cycle.
	fmt.Println("\n== Table 1: forward cost table ==")
	ct, err := s.CostTable(nocdr.Forward, cycle, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("     ")
	for e := range cycle {
		fmt.Printf("D%d  ", e+1)
	}
	fmt.Println()
	for r, flowID := range ct.FlowIDs {
		fmt.Printf("F%d   ", flowID+1)
		for _, c := range ct.PerFlow[r] {
			fmt.Printf("%-4d", c)
		}
		fmt.Println()
	}
	fmt.Print("MAX  ")
	for _, m := range ct.Max {
		fmt.Printf("%-4d", m)
	}
	fmt.Printf("\n=> cheapest break: edge D%d at cost %d\n", ct.BestEdge+1, ct.BestCost)

	// Figures 3–4: run the removal algorithm.
	res, err := s.RemoveDeadlocks(ctx, top, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figures 3-4: after deadlock removal ==")
	fmt.Printf("cycles broken: %d, VCs added: %d (|L'|-|L|)\n", res.Iterations, res.AddedVCs)
	for _, b := range res.Breaks {
		fmt.Printf("  broke %s at D%d (cost %d); new channels:",
			b.Direction, b.EdgePos+1, b.Cost)
		for _, c := range b.NewChannels {
			fmt.Printf(" %s", res.Topology.ChannelName(c))
		}
		fmt.Printf("; rerouted flows:")
		for _, f := range b.Reroutes {
			fmt.Printf(" F%d", f+1)
		}
		fmt.Println()
	}
	fmt.Println("modified routes:")
	for _, r := range res.Routes.Routes() {
		fmt.Printf("  F%d: %s\n", r.FlowID+1, r.String(res.Topology))
	}
	free, err := s.DeadlockFree(res.Topology, res.Routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deadlock-free:", free)

	// Bonus: the modified topology as Graphviz DOT on stderr-friendly
	// output (pipe to `dot -Tpng` to render Figure 4).
	fmt.Println("\n== Modified topology (DOT) ==")
	if err := res.Topology.WriteDOT(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
