// Mediasoc reproduces the paper's D26_media case study in miniature
// (Figure 8): it synthesizes application-specific topologies for the
// 26-core multimedia/wireless SoC at several switch counts, then compares
// the VCs the deadlock-removal algorithm adds against the resource-
// ordering baseline, and prices the result with the ORION-style power and
// area models.
//
// Run with: go run ./examples/mediasoc
package main

import (
	"context"
	"fmt"
	"log"

	nocdr "github.com/nocdr/nocdr"
)

func main() {
	ctx := context.Background()
	s := nocdr.NewSession()
	g, err := nocdr.Benchmark("D26_media")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d cores, %d flows, %.0f MB/s total\n\n",
		g.Name, g.NumCores(), g.NumFlows(), g.TotalBandwidth())

	params := nocdr.DefaultPowerParams()
	fmt.Println("switches | links | removal VCs | ordering VCs | removal mW | ordering mW")
	fmt.Println("---------+-------+-------------+--------------+------------+------------")
	for _, switches := range []int{5, 10, 14, 20, 25} {
		design, err := s.Synthesize(ctx, g, nocdr.SynthOptions{SwitchCount: switches})
		if err != nil {
			log.Fatal(err)
		}
		rm, err := s.RemoveDeadlocks(ctx, design.Topology, design.Routes)
		if err != nil {
			log.Fatal(err)
		}
		if err := rm.Verify(); err != nil {
			log.Fatalf("verification failed at %d switches: %v", switches, err)
		}
		ro, err := s.ApplyResourceOrdering(design.Topology, design.Routes, nocdr.HopIndex)
		if err != nil {
			log.Fatal(err)
		}
		rmPower, err := nocdr.EstimatePower(params, rm.Topology, g, rm.Routes)
		if err != nil {
			log.Fatal(err)
		}
		roPower, err := nocdr.EstimatePower(params, ro.UniformTopology(), g, ro.Routes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d | %5d | %11d | %12d | %10.1f | %10.1f\n",
			switches, design.Topology.NumLinks(), rm.AddedVCs, ro.AddedVCs,
			rmPower.TotalMW, roPower.TotalMW)
	}

	fmt.Println("\nThe paper's observation holds: the removal algorithm needs no extra")
	fmt.Println("VCs on most D26_media designs — the synthesized topologies are already")
	fmt.Println("deadlock-free — while resource ordering pays for classes on every route.")
}
