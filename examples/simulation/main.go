// Simulation demonstrates that the deadlocks the algorithm removes are
// real: it saturates the paper's four-switch ring example in the
// flit-level wormhole simulator, watches it deadlock, then repairs the
// design with the removal algorithm and shows the same workload running
// indefinitely and draining completely.
//
// Run with: go run ./examples/simulation
package main

import (
	"context"
	"fmt"
	"log"

	nocdr "github.com/nocdr/nocdr"
)

func buildRing() (*nocdr.Topology, *nocdr.TrafficGraph, *nocdr.RouteTable) {
	top := nocdr.NewTopology("figure1")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		top.AttachCore(i, sw)
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(nocdr.SwitchID(i), nocdr.SwitchID((i+1)%4))
	}
	g := nocdr.NewTraffic("ring")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	routes := nocdr.NewRouteTable(4)
	ch := func(ids ...int) []nocdr.Channel {
		out := make([]nocdr.Channel, len(ids))
		for i, id := range ids {
			out[i] = nocdr.Chan(nocdr.LinkID(id), 0)
		}
		return out
	}
	routes.Set(0, ch(0, 1, 2))
	routes.Set(1, ch(2, 3))
	routes.Set(2, ch(3, 0))
	routes.Set(3, ch(0, 1))
	return top, g, routes
}

func report(title string, st *nocdr.SimStats) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("  cycles: %d\n", st.Cycles)
	fmt.Printf("  delivered: %d packets (%d flits), avg latency %.1f cycles\n",
		st.DeliveredPackets, st.DeliveredFlits, st.AvgLatency())
	switch {
	case st.Deadlocked:
		fmt.Printf("  DEADLOCK at cycle %d — packets %v locked in a cyclic wait\n",
			st.DeadlockCycle, st.DeadlockPackets)
	case st.Drained:
		fmt.Println("  workload drained completely — no deadlock")
	default:
		fmt.Println("  ran to horizon — no deadlock")
	}
	fmt.Println()
}

func main() {
	ctx := context.Background()
	s := nocdr.NewSession()
	top, g, routes := buildRing()

	// Phase 1: the unmodified design at saturation. Its CDG is cyclic
	// (L1→L2→L3→L4→L1), so wormhole packets can — and quickly do — form
	// a cyclic wait.
	free, err := s.DeadlockFree(top, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original design deadlock-free per CDG analysis: %v\n\n", free)
	st, err := s.Simulate(ctx, top, g, routes, nocdr.SimConfig{
		MaxCycles:  50000,
		LoadFactor: 1.0,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("original design, saturation load", st)

	// Phase 2: repair with the paper's algorithm (adds L1', reroutes the
	// flows creating the broken dependency) and rerun the same workload.
	res, err := s.RemoveDeadlocks(ctx, top, routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removal: %d cycle(s) broken, %d VC(s) added\n\n", res.Iterations, res.AddedVCs)
	st, err = s.Simulate(ctx, res.Topology, g, res.Routes, nocdr.SimConfig{
		MaxCycles:  50000,
		LoadFactor: 1.0,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("repaired design, saturation load", st)

	// Phase 3: a finite workload must drain to the last flit.
	st, err = s.Simulate(ctx, res.Topology, g, res.Routes, nocdr.SimConfig{
		MaxCycles:      200000,
		PacketsPerFlow: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("repaired design, finite workload (100 packets/flow)", st)

	// Phase 4: the runtime alternative — keep the deadlock-prone design
	// and let DISHA-style recovery fish packets out of every deadlock.
	// It works, but throughput collapses compared to the repaired design.
	st, err = s.Simulate(ctx, top, g, routes, nocdr.SimConfig{
		MaxCycles:  50000,
		LoadFactor: 1.0,
		Seed:       7,
		Recovery:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== original design + DISHA-style recovery, saturation load ==\n")
	fmt.Printf("  recoveries: %d (token grants), %d packets via recovery lane\n",
		st.Recoveries, st.RecoveredPackets)
	fmt.Printf("  delivered: %d packets total — compare with the repaired design above\n",
		st.DeliveredPackets)
}
