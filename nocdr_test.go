package nocdr_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	nocdr "github.com/nocdr/nocdr"
)

// buildRing constructs the paper's running example (Figure 1) through the
// public API only.
func buildRing() (*nocdr.Topology, *nocdr.TrafficGraph, *nocdr.RouteTable) {
	top := nocdr.NewTopology("figure1")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		top.AttachCore(i, sw)
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(nocdr.SwitchID(i), nocdr.SwitchID((i+1)%4))
	}
	g := nocdr.NewTraffic("ring")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	tab := nocdr.NewRouteTable(4)
	ch := func(ids ...int) []nocdr.Channel {
		out := make([]nocdr.Channel, len(ids))
		for i, id := range ids {
			out[i] = nocdr.Chan(nocdr.LinkID(id), 0)
		}
		return out
	}
	tab.Set(0, ch(0, 1, 2))
	tab.Set(1, ch(2, 3))
	tab.Set(2, ch(3, 0))
	tab.Set(3, ch(0, 1))
	return top, g, tab
}

func ExampleRemoveDeadlocks() {
	top, _, tab := buildRing()
	free, _ := nocdr.NewSession().DeadlockFree(top, tab)
	fmt.Println("deadlock-free before:", free)
	res, _ := nocdr.NewSession().RemoveDeadlocks(context.Background(), top, tab)
	fmt.Println("added VCs:", res.AddedVCs)
	fmt.Println("breaks:", res.Iterations)
	free, _ = nocdr.NewSession().DeadlockFree(res.Topology, res.Routes)
	fmt.Println("deadlock-free after:", free)
	// Output:
	// deadlock-free before: false
	// added VCs: 1
	// breaks: 1
	// deadlock-free after: true
}

func ExampleForwardCostTable() {
	top, _, tab := buildRing()
	g, _ := nocdr.NewSession().BuildCDG(top, tab)
	cycle := g.SmallestCycle()
	ct, _ := nocdr.NewSession().CostTable(nocdr.Forward, cycle, tab)
	// Reprint the paper's Table 1.
	header := "    "
	for e := range cycle {
		header += fmt.Sprintf(" D%d", e+1)
	}
	fmt.Println(header)
	for r, flowID := range ct.FlowIDs {
		row := fmt.Sprintf("F%d  ", flowID+1)
		for _, c := range ct.PerFlow[r] {
			row += fmt.Sprintf("  %d", c)
		}
		fmt.Println(row)
	}
	row := "MAX "
	for _, m := range ct.Max {
		row += fmt.Sprintf("  %d", m)
	}
	fmt.Println(row)
	// Output:
	//      D1 D2 D3 D4
	// F1    1  2  0  0
	// F2    0  0  1  0
	// F3    0  0  0  1
	// F4    1  0  0  0
	// MAX   1  2  1  1
}

func TestEndToEndBenchmarkFlow(t *testing.T) {
	for _, name := range nocdr.BenchmarkNames() {
		g, err := nocdr.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		design, err := nocdr.NewSession().Synthesize(context.Background(), g, nocdr.SynthOptions{SwitchCount: 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), design.Topology, design.Routes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		free, err := nocdr.NewSession().DeadlockFree(res.Topology, res.Routes)
		if err != nil {
			t.Fatal(err)
		}
		if !free {
			t.Errorf("%s: removal left a cyclic CDG", name)
		}
		ro, err := nocdr.NewSession().ApplyResourceOrdering(design.Topology, design.Routes, nocdr.HopIndex)
		if err != nil {
			t.Fatal(err)
		}
		if res.AddedVCs > ro.AddedVCs && ro.AddedVCs > 0 {
			t.Errorf("%s: removal (%d VCs) worse than ordering (%d VCs)",
				name, res.AddedVCs, ro.AddedVCs)
		}
		p := nocdr.DefaultPowerParams()
		if _, err := nocdr.EstimatePower(p, res.Topology, g, res.Routes); err != nil {
			t.Errorf("%s: power: %v", name, err)
		}
		if a := nocdr.EstimateArea(p, res.Topology); a.TotalUM2 <= 0 {
			t.Errorf("%s: non-positive area", name)
		}
	}
}

func TestComputeRoutesFacade(t *testing.T) {
	g, err := nocdr.Benchmark("D26_media")
	if err != nil {
		t.Fatal(err)
	}
	design, err := nocdr.NewSession().Synthesize(context.Background(), g, nocdr.SynthOptions{SwitchCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := nocdr.NewSession().ComputeRoutes(design.Topology, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(design.Topology, g); err != nil {
		t.Error(err)
	}
}

func TestSimulateFacade(t *testing.T) {
	top, g, tab := buildRing()
	st, err := nocdr.NewSession().Simulate(context.Background(), top, g, tab, nocdr.SimConfig{
		MaxCycles:  20000,
		LoadFactor: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Error("saturated cyclic ring did not deadlock")
	}
	res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	st, err = nocdr.NewSession().Simulate(context.Background(), res.Topology, g, res.Routes, nocdr.SimConfig{
		MaxCycles:  20000,
		LoadFactor: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Error("deadlock after removal")
	}
}

func TestJSONFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	top, g, tab := buildRing()

	tp := filepath.Join(dir, "topology.json")
	gp := filepath.Join(dir, "traffic.json")
	rp := filepath.Join(dir, "routes.json")
	if err := nocdr.SaveJSON(tp, top); err != nil {
		t.Fatal(err)
	}
	if err := nocdr.SaveJSON(gp, g); err != nil {
		t.Fatal(err)
	}
	if err := nocdr.SaveJSON(rp, tab); err != nil {
		t.Fatal(err)
	}

	top2, err := nocdr.LoadTopology(tp)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := nocdr.LoadTraffic(gp)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := nocdr.LoadRoutes(rp)
	if err != nil {
		t.Fatal(err)
	}
	if top2.NumSwitches() != 4 || g2.NumFlows() != 4 {
		t.Error("file round trip changed shapes")
	}
	if err := tab2.Validate(top2, g2); err != nil {
		t.Error(err)
	}
	// The loaded design must behave identically.
	res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), top2, tab2)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedVCs != 1 {
		t.Errorf("loaded design removal added %d VCs, want 1", res.AddedVCs)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := nocdr.LoadTopology("/nonexistent/x.json"); err == nil {
		t.Error("missing topology file accepted")
	}
	if _, err := nocdr.LoadTraffic("/nonexistent/x.json"); err == nil {
		t.Error("missing traffic file accepted")
	}
	if _, err := nocdr.LoadRoutes("/nonexistent/x.json"); err == nil {
		t.Error("missing routes file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := nocdr.LoadTopology(bad); err == nil {
		t.Error("bad topology JSON accepted")
	}
}

func TestBackwardCostTableFacade(t *testing.T) {
	top, _, tab := buildRing()
	g, err := nocdr.NewSession().BuildCDG(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := nocdr.NewSession().CostTable(nocdr.Backward, g.SmallestCycle(), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Direction != nocdr.Backward {
		t.Error("direction not backward")
	}
	if ct.BestCost != 1 {
		t.Errorf("backward best cost = %d, want 1", ct.BestCost)
	}
}
