package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/reconfig"
)

// writeTestDesign runs `nocexp design` into a temp file and returns the
// path.
func writeTestDesign(t *testing.T, args ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.json")
	full := append([]string{"-out", path}, args...)
	if err := runDesign(context.Background(), full, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDesignWritesVerifiableBundle(t *testing.T) {
	path := writeTestDesign(t, "-preset", "mesh:4x4", "-routing", "odd-even", "-traffic", "all-to-all")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := reconfig.ReadDesign(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("written design invalid: %v", err)
	}
	if d.Grid.Cols != 4 || d.Grid.Rows != 4 || d.Grid.Wrap {
		t.Fatalf("grid %+v, want 4x4 mesh", d.Grid)
	}
}

func TestDesignRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-preset", "ring:4x4"},
		{"-preset", "mesh:4"},
		{"-preset", "mesh:1x4"},
		{"-routing", "zig-zag"},
		{"-traffic", "lumpy"},
		{"-preset", "mesh:4x4", "extra-arg"},
	} {
		if err := runDesign(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestReconfigureSeededFaults is the CLI acceptance path the smoke CI
// drives: seeded faults applied one event at a time, the in-tool
// verification gate green, the differential baseline reported, and both
// artifacts written and re-parseable.
func TestReconfigureSeededFaults(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:4x4", "-routing", "odd-even", "-traffic", "all-to-all")
	dir := t.TempDir()
	evolved := filepath.Join(dir, "evolved.json")
	deltas := filepath.Join(dir, "deltas.json")
	var out bytes.Buffer
	err := runReconfigure(context.Background(), []string{
		"-design", design, "-fault-count", "2", "-fault-seed", "1",
		"-differential", "-quiet", "-skip-sim", "-out", evolved, "-delta", deltas,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vcs_added=", "differential:", "2 events committed", "design valid (acyclic)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	f, err := os.Open(evolved)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := reconfig.ReadDesign(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("evolved design invalid: %v", err)
	}
	if got := len(d.Topology.FaultedLinks()); got != 2 {
		t.Fatalf("evolved design has %d faults, want 2", got)
	}
	data, err := os.ReadFile(deltas)
	if err != nil {
		t.Fatal(err)
	}
	var ds []json.RawMessage
	if err := json.Unmarshal(data, &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("delta report has %d entries, want 2", len(ds))
	}
	for _, raw := range ds {
		if _, err := reconfig.ReadDelta(bytes.NewReader(raw)); err != nil {
			t.Fatalf("delta entry does not re-parse: %v", err)
		}
	}
}

// TestReconfigureStormTerminates drives the storm mode to its clean stop
// and checks the evolved design re-verifies.
func TestReconfigureStormTerminates(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:4x4", "-routing", "west-first", "-traffic", "all-to-all")
	var out bytes.Buffer
	err := runReconfigure(context.Background(), []string{
		"-design", design, "-storm", "-quiet", "-skip-sim",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "design valid (acyclic)") {
		t.Fatalf("storm output missing the verification verdict:\n%s", out.String())
	}
}

func TestReconfigureExplicitFaultAndDowntime(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:4x4", "-routing", "odd-even", "-traffic", "all-to-all")
	// Pick the fault the seed-0 selector would: deterministic and safe.
	var probe bytes.Buffer
	if err := runReconfigure(context.Background(), []string{
		"-design", design, "-fault-count", "1", "-fault-seed", "0", "-quiet", "-skip-sim",
	}, &probe, io.Discard); err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(probe.String())
	if len(fields) < 2 || fields[0] != "fault" {
		t.Fatalf("cannot recover fault ID from %q", probe.String())
	}
	id := strings.TrimSuffix(fields[1], ":")
	var out bytes.Buffer
	err := runReconfigure(context.Background(), []string{
		"-design", design, "-fault", id, "-quiet", "-sim-cycles", "20000",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "downtime") {
		t.Fatalf("downtime estimate missing from output:\n%s", out.String())
	}
}

func TestReconfigureRejectsBadFlags(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:4x4", "-routing", "odd-even")
	for _, args := range [][]string{
		{},                  // no -design
		{"-design", design}, // no fault mode
		{"-design", design, "-fault", "1", "-storm"}, // two modes
		{"-design", design, "-fault", "nope"},        // unparseable
		{"-design", design, "-fault", "99999"},       // out of range: job fails
		{"-design", filepath.Join(t.TempDir(), "missing.json"), "-fault", "1"},
	} {
		if err := runReconfigure(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
