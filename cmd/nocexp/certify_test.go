package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/certify"
)

// cyclicDesign is a minimal pre-removal bundle whose CDG is a 3-ring:
// three single-VC links chained by one route that revisits its start.
const cyclicDesign = `{
  "topology": {"links": [{"id": 0, "vcs": 1}, {"id": 1, "vcs": 1}, {"id": 2, "vcs": 1}]},
  "routes": {"routes": [{"flow": 0, "channels": [
    {"link": 0, "vc": 0}, {"link": 1, "vc": 0}, {"link": 2, "vc": 0}, {"link": 0, "vc": 0}
  ]}]}
}`

func TestCertifyWritesValidCertificate(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:4x4", "-routing", "odd-even", "-traffic", "all-to-all")
	certPath := filepath.Join(t.TempDir(), "cert.json")
	var errOut bytes.Buffer
	err := runCertify(context.Background(), []string{"-design", design, "-out", certPath}, io.Discard, &errOut)
	if err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	data, err := os.ReadFile(certPath)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := certify.ReadCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Acyclic || len(cert.TopoOrder) == 0 {
		t.Fatalf("post design certificate %+v", cert)
	}
	designData, err := os.ReadFile(design)
	if err != nil {
		t.Fatal(err)
	}
	if err := certify.Validate(cert, designData); err != nil {
		t.Fatalf("written certificate does not validate: %v", err)
	}
	if !strings.Contains(errOut.String(), "acyclic") {
		t.Fatalf("summary missing verdict:\n%s", errOut.String())
	}
}

func TestCertifyStdoutDefault(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:3x3")
	var out bytes.Buffer
	if err := runCertify(context.Background(), []string{"-design", design}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var cert certify.Certificate
	if err := json.Unmarshal(out.Bytes(), &cert); err != nil {
		t.Fatalf("stdout is not a certificate: %v", err)
	}
	if cert.Salt != certify.Salt {
		t.Fatalf("salt %q", cert.Salt)
	}
}

// TestCertifyPreCounterexample drives the -pre path: a cyclic bundle must
// certify with a smallest-cycle witness and exit zero under -pre, and the
// same bundle without -pre must fail the in-tool gate.
func TestCertifyPreCounterexample(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pre.json")
	if err := os.WriteFile(path, []byte(cyclicDesign), 0o644); err != nil {
		t.Fatal(err)
	}
	certPath := filepath.Join(t.TempDir(), "cert.json")
	if err := runCertify(context.Background(), []string{"-design", path, "-pre", "-out", certPath}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(certPath)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := certify.ReadCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Acyclic || len(cert.Cycle) != 3 {
		t.Fatalf("want a 3-cycle counterexample, got %+v", cert)
	}

	err = runCertify(context.Background(), []string{"-design", path}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "CYCLIC") {
		t.Fatalf("cyclic design passed without -pre: %v", err)
	}
}

func TestCertifyModeGate(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:3x3")
	err := runCertify(context.Background(), []string{"-design", design, "-pre"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-pre expects a cyclic design") {
		t.Fatalf("acyclic design passed under -pre: %v", err)
	}
}

func TestCertifyRejectsBadInvocations(t *testing.T) {
	design := writeTestDesign(t, "-preset", "mesh:3x3")
	for _, args := range [][]string{
		{},
		{"-design", filepath.Join(t.TempDir(), "missing.json")},
		{"-design", design, "stray-arg"},
	} {
		if err := runCertify(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
