package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/serve"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// runSweep implements the `nocexp sweep` subcommand: parse the grid and
// engine flags, fan the jobs out, print the table, optionally write the
// deterministic JSON report.
//
// ctx carries the interrupt wiring (signal.NotifyContext in main): on
// Ctrl-C the worker pool drains, in-flight cells return through their
// cancellation checks, and the table and JSON report are still written —
// valid but partial, marked "canceled": true — before runSweep returns a
// non-nil error.
func runSweep(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchmarks := fs.String("benchmarks", "all",
		"comma-separated benchmark specs: paper names, rand:<cores>x<fanout>, or \"all\" for the six paper benchmarks")
	switches := fs.String("switches", "", "comma-separated switch counts (default "+intsCSV(runner.DefaultSwitchCounts)+")")
	policies := fs.String("policies", "smallest", "comma-separated cycle-selection policies: smallest, first")
	seeds := fs.String("seeds", "0", "comma-separated seeds for rand benchmark specs")
	loads := fs.String("loads", "",
		"comma-separated measurement load factors in (0,1]: with -simulate, additionally measure each cell's post-removal design at every load (one lockstep batch per design) and report per-design latency/throughput curves with a saturation estimate")
	routing := fs.String("routing", "",
		"comma-separated routing functions for mesh:/torus: preset cells: "+strings.Join(route.TurnModelNames(), ", ")+" (default dor; synthesized benchmarks always use shortest paths)")
	faults := fs.Int("faults", 0,
		"mask this many seeded link faults per preset cell (network stays connected; routes regenerate around them — pair with an adaptive -routing, DOR cannot route around faults)")
	maxPaths := fs.Int("paths", 0, "max candidate paths per flow for adaptive routings (0 = library default)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "in-process worker count (1 = serial); with -shard-local it is divided among the spawned workers; with -workers each remote worker's own -sweep-parallel governs instead")
	workers := fs.String("workers", "",
		"comma-separated base URLs of running `nocdr serve` workers: shard the grid across them over HTTP and merge a report byte-identical to a local run")
	shardLocal := fs.Int("shard-local", 0,
		"spawn this many in-process serve workers on loopback and shard the sweep across them (single-machine parallelism through the same distributed path)")
	coordinator := fs.String("coordinator", "",
		"base URL of a `nocdr serve` coordinator: shard the grid across its live worker registry, tracking joins and departures mid-sweep")
	token := fs.String("token", os.Getenv(fabric.TokenEnv),
		"fleet bearer token presented to the coordinator and its workers (env "+fabric.TokenEnv+")")
	tlsCA := fs.String("tls-ca", "",
		"PEM CA bundle pinning the fleet's TLS certificates (required for https coordinators with self-signed fleet certs)")
	tlsCert := fs.String("tls-cert", "", "PEM client certificate presented to mTLS fleets (with -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	cacheDir := fs.String("cache-dir", "",
		"content-addressed result-cache directory: cells whose semantic inputs hash to a stored entry are answered from it, and fresh results are stored for the next run")
	noCache := fs.Bool("no-cache", false,
		"recompute every cell even on a cache hit (fresh results still refresh the cache)")
	jsonOut := fs.String("json", "", "write the deterministic JSON report to this file")
	fullRebuild := fs.Bool("full-rebuild", false, "use the full-rebuild Remove path instead of the incremental one")
	simulate := fs.Bool("simulate", false,
		"run flit-level wormhole simulations per cell: a pre-removal negative control (must deadlock when the CDG is cyclic) and a post-removal measurement (must never deadlock); a post-removal deadlock fails the sweep")
	certifyCells := fs.Bool("certify", false,
		"re-check every cell's pre- and post-removal design through the independent checker (internal/certify, no shared code with the engine); any three-leg disagreement fails the sweep")
	simCycles := fs.Int64("sim-cycles", 0, "simulation horizon per run (default 20000)")
	simLoad := fs.Float64("sim-load", 0, "simulation injection load factor in (0,1] (default 1.0 = saturation)")
	simAdaptive := fs.String("sim-adaptive", "",
		"per-hop output selection for adaptive cells: first-free (default), least-congested")
	quiet := fs.Bool("quiet", false, "suppress per-job progress on stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *workers != "" && *shardLocal > 0 {
		return fmt.Errorf("-workers and -shard-local are mutually exclusive")
	}
	if *coordinator != "" && (*workers != "" || *shardLocal > 0) {
		return fmt.Errorf("-coordinator is mutually exclusive with -workers and -shard-local")
	}
	if *shardLocal < 0 {
		return fmt.Errorf("-shard-local: worker count %d out of range", *shardLocal)
	}

	// An axis flag that filters out every value must fail loudly: falling
	// back to the axis default behind the user's back would sweep a grid
	// they explicitly emptied. emptyOK marks axes whose flag default is
	// "" — there an empty value means "use the library default", while a
	// value of only separators still empties the grid.
	axis := func(name, val string, emptyOK bool) ([]string, error) {
		vals := splitCSV(val)
		if len(vals) == 0 && !(emptyOK && val == "") {
			return nil, fmt.Errorf("empty grid: -%s %q selects no values", name, val)
		}
		return vals, nil
	}
	grid := runner.Grid{
		Faults:   *faults,
		MaxPaths: *maxPaths,
	}
	var err error
	if grid.Policies, err = axis("policies", *policies, false); err != nil {
		return err
	}
	if grid.Routings, err = axis("routing", *routing, true); err != nil {
		return err
	}
	if *benchmarks == "" || *benchmarks == "all" {
		grid.Benchmarks = traffic.BenchmarkNames()
	} else if grid.Benchmarks, err = axis("benchmarks", *benchmarks, false); err != nil {
		return err
	}
	if _, err = axis("switches", *switches, true); err != nil {
		return err
	}
	if grid.SwitchCounts, err = parseInts(*switches); err != nil {
		return fmt.Errorf("-switches: %w", err)
	}
	if _, err = axis("seeds", *seeds, false); err != nil {
		return err
	}
	if grid.Seeds, err = parseInt64s(*seeds); err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	if grid.Loads, err = parseFloats(*loads); err != nil {
		return fmt.Errorf("-loads: %w", err)
	}
	if len(grid.Loads) > 0 && !*simulate {
		return fmt.Errorf("-loads requires -simulate (the load sweep measures the simulated designs)")
	}
	if len(grid.Jobs()) == 0 {
		// Backstop for any other way the cross product collapses: never
		// write a vacuous report and exit 0.
		return fmt.Errorf("empty grid: the axes select no cells to run")
	}
	adaptiveSel, err := wormhole.ParseAdaptiveSelection(*simAdaptive)
	if err != nil {
		return fmt.Errorf("-sim-adaptive: %w", err)
	}

	opts := runner.Options{
		Parallel:    *parallel,
		FullRebuild: *fullRebuild,
		Simulate:    *simulate,
		Sim:         runner.SimParams{Cycles: *simCycles, Load: *simLoad, Adaptive: adaptiveSel},
		Certify:     *certifyCells,
		NoCache:     *noCache,
	}
	if !*quiet {
		opts.Progress = stderr
	}
	var cache *fabric.Cache
	if *cacheDir != "" {
		cache = fabric.NewCache(fabric.CacheOptions{Dir: *cacheDir})
		opts.CellCache = cache
	}
	// One TLS client serves the coordinator and every worker it names:
	// fleet members share a CA, so a single pinned transport covers both.
	var fleetClient *http.Client
	if *tlsCA != "" || *tlsCert != "" {
		tcfg, terr := fabric.ClientTLS(*tlsCA, *tlsCert, *tlsKey)
		if terr != nil {
			return terr
		}
		// No overall timeout: the dispatcher holds SSE streams open for
		// the life of a shard.
		fleetClient = fabric.HTTPClient(tcfg, 0)
	}
	var rep *runner.Report
	switch {
	case *coordinator != "":
		src, werr := fabric.WatchWorkers(ctx, *coordinator, *token, 0, fleetClient)
		if werr != nil {
			return werr
		}
		defer src.Close()
		rep, err = (&runner.Sharded{Source: src, AuthToken: *token, Client: fleetClient}).RunContext(ctx, grid, opts)
	case *workers != "" || *shardLocal > 0:
		urls := splitCSV(*workers)
		if *shardLocal > 0 {
			// Split the machine's budget across the spawned workers
			// instead of oversubscribing it shard-local-fold.
			per := max(1, *parallel / *shardLocal)
			var shutdown func()
			urls, shutdown, err = serve.LocalCluster(*shardLocal, serve.Options{Workers: 2, SweepParallel: per})
			if err != nil {
				return err
			}
			defer shutdown()
		}
		rep, err = (&runner.Sharded{Workers: urls, AuthToken: *token, Client: fleetClient}).RunContext(ctx, grid, opts)
	default:
		rep, err = runner.RunContext(ctx, grid, opts)
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stderr, "cache: %d hits, %d misses (%.0f%% hit rate)\n",
			st.Hits, st.Misses, 100*st.HitRate())
	}
	if err != nil {
		return err
	}
	if err := runner.WriteTable(stdout, rep); err != nil {
		return err
	}
	if *simulate {
		if err := writeSimSummary(stdout, rep); err != nil {
			return err
		}
	}
	if *certifyCells {
		if err := writeCertSummary(stdout, rep); err != nil {
			return err
		}
	}
	if len(rep.Curves) > 0 {
		if err := writeCurveSummary(stdout, rep); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			return fmt.Errorf("%d of %d jobs failed (first: %s@%d: %s)",
				countErrors(rep), len(rep.Results), r.Benchmark, r.SwitchCount, r.Error)
		}
	}
	if *simulate {
		// The verification gate lives in the tool itself: any post-removal
		// deadlock — and a sweep that simulated nothing at all — exits
		// non-zero, so CI needs no external report inspection.
		simulated := 0
		for _, r := range rep.Results {
			if r.Sim == nil {
				continue
			}
			simulated++
			if r.Sim.PostDeadlock {
				cell := fmt.Sprintf("%s@%d/%s/seed%d", r.Benchmark, r.SwitchCount, r.Policy, r.Seed)
				if r.Routing != "" {
					cell += "/" + r.Routing
				}
				if r.Faults > 0 {
					cell += fmt.Sprintf("/f%d", r.Faults)
				}
				return fmt.Errorf("verification FAILED: %s deadlocked after removal", cell)
			}
		}
		if simulated == 0 && !rep.Canceled {
			return fmt.Errorf("verification FAILED: -simulate was set but no cell ran a simulation")
		}
	}
	if *certifyCells {
		// Same shape as the simulate gate: any cell whose independent
		// re-check disagrees with the engine (or, with -simulate, with the
		// empirical leg) exits non-zero, as does a sweep that certified
		// nothing.
		certified := 0
		for _, r := range rep.Results {
			if r.Certify == nil {
				continue
			}
			certified++
			if !r.Certify.Agree {
				cell := fmt.Sprintf("%s@%d/%s/seed%d", r.Benchmark, r.SwitchCount, r.Policy, r.Seed)
				if r.Routing != "" {
					cell += "/" + r.Routing
				}
				if r.Faults > 0 {
					cell += fmt.Sprintf("/f%d", r.Faults)
				}
				return fmt.Errorf("verification FAILED: %s: certified re-check disagrees: %s", cell, r.Certify.Mismatch)
			}
		}
		if certified == 0 && !rep.Canceled {
			return fmt.Errorf("verification FAILED: -certify was set but no cell was certified")
		}
	}
	if rep.Canceled {
		done := 0
		for _, r := range rep.Results {
			if !r.Canceled {
				done++
			}
		}
		return fmt.Errorf("interrupted: %d of %d jobs completed (partial report%s marked canceled)",
			done, len(rep.Results), jsonNote(*jsonOut))
	}
	return nil
}

// jsonNote names the written report file in the cancellation message.
func jsonNote(path string) string {
	if path == "" {
		return ""
	}
	return " " + path
}

// writeSimSummary prints the verification verdict of a simulated sweep:
// how many cells ran their negative control, how many of those deadlocked
// (demonstrating the hazard), and whether any post-removal design
// deadlocked (which must never happen).
func writeSimSummary(w io.Writer, rep *runner.Report) error {
	var simulated, preRan, preDeadlocked, postDeadlocked int
	for _, r := range rep.Results {
		if r.Sim == nil {
			continue
		}
		simulated++
		if r.Sim.PreRan {
			preRan++
		}
		if r.Sim.PreDeadlock {
			preDeadlocked++
		}
		if r.Sim.PostDeadlock {
			postDeadlocked++
		}
	}
	_, err := fmt.Fprintf(w, "\nverification: %d cells simulated; negative control: %d cyclic pre-removal designs, %d deadlocked; post-removal deadlocks: %d\n",
		simulated, preRan, preDeadlocked, postDeadlocked)
	return err
}

// writeCertSummary prints the certified-checker verdict of a sweep: how
// many cells were re-checked from first principles, the pre-removal
// verdict split, and how many cells disagreed with the engine (which
// must be zero).
func writeCertSummary(w io.Writer, rep *runner.Report) error {
	var certified, preCyclic, disagree int
	for _, r := range rep.Results {
		if r.Certify == nil {
			continue
		}
		certified++
		if !r.Certify.PreAcyclic {
			preCyclic++
		}
		if !r.Certify.Agree {
			disagree++
		}
	}
	_, err := fmt.Fprintf(w, "\ncertified: %d cells re-checked independently; %d cyclic pre-removal designs witnessed; disagreements: %d\n",
		certified, preCyclic, disagree)
	return err
}

// writeCurveSummary prints one line per design curve: the swept loads
// with mean latency and throughput at each, and the estimated saturation
// point.
func writeCurveSummary(w io.Writer, rep *runner.Report) error {
	if _, err := fmt.Fprintf(w, "\nload sweep (%d designs):\n", len(rep.Curves)); err != nil {
		return err
	}
	for _, c := range rep.Curves {
		id := fmt.Sprintf("%s@%d/%s", c.Benchmark, c.SwitchCount, c.Policy)
		if c.Routing != "" {
			id += "/" + c.Routing
		}
		if c.Faults > 0 {
			id += fmt.Sprintf("/f%d", c.Faults)
		}
		sat := "none in axis"
		if c.SaturationLoad > 0 {
			sat = fmt.Sprintf("%g", c.SaturationLoad)
		}
		if _, err := fmt.Fprintf(w, "  %s saturation=%s\n", id, sat); err != nil {
			return err
		}
		for _, p := range c.Points {
			if _, err := fmt.Fprintf(w, "    load %.3g: latency %.1f (p99 %d) throughput %.3f seeds %d deadlocks %d\n",
				p.Load, p.AvgLatency, p.P99, p.Throughput, p.Seeds, p.Deadlocks); err != nil {
				return err
			}
		}
	}
	return nil
}

func countErrors(rep *runner.Report) int {
	n := 0
	for _, r := range rep.Results {
		if r.Error != "" {
			n++
		}
	}
	return n
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func intsCSV(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
