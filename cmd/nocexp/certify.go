package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/nocdr/nocdr/internal/certify"
)

// runCertify implements `nocexp certify`: the independent-checker leg as
// a standalone tool. It reads a design bundle (the `nocexp design` /
// sweep-cell artifact), re-derives the CDG from first principles through
// internal/certify — which shares no code with the removal engine — and
// writes the certificate JSON. The verification gate lives in the tool:
// a verdict contradicting the claimed mode, or a witness that fails its
// own independent validation, exits non-zero.
func runCertify(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	designPath := fs.String("design", "", "design bundle to certify (required; the `nocexp design` artifact)")
	pre := fs.Bool("pre", false,
		"certify a pre-removal design: expect a cyclic CDG and emit the smallest dependency cycle as the counterexample witness (default expects acyclic and emits a topological order)")
	out := fs.String("out", "", "write the certificate JSON here (\"-\" or empty for stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *designPath == "" {
		return fmt.Errorf("-design is required")
	}
	mode := "post"
	if *pre {
		mode = "pre"
	}

	design, err := os.ReadFile(*designPath)
	if err != nil {
		return err
	}
	cert, err := certify.Check(design, mode)
	if err != nil {
		return err
	}
	// The checker validates its own witness before anyone trusts it: the
	// emitted certificate must survive an independent re-check against
	// the design bytes, or the tool exits non-zero without writing it.
	if err := certify.Validate(cert, design); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}

	data, err := json.MarshalIndent(cert, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}

	verdict := "acyclic"
	if !cert.Acyclic {
		verdict = fmt.Sprintf("cyclic (smallest cycle: %d channels)", len(cert.Cycle))
	}
	fmt.Fprintf(stderr, "certify: %s is %s — %d channels, %d dependencies, sha256 %s…\n",
		*designPath, verdict, cert.Channels, cert.Dependencies, cert.DesignSHA256[:12])

	// The mode is the caller's claim; the tool enforces it. A post-removal
	// design that certifies cyclic is the exact failure this checker
	// exists to catch, and a pre design certifying acyclic means the
	// caller is testing the wrong artifact.
	if *pre && cert.Acyclic {
		return fmt.Errorf("verification FAILED: -pre expects a cyclic design, but it certifies acyclic")
	}
	if !*pre && !cert.Acyclic {
		return fmt.Errorf("verification FAILED: design certifies CYCLIC after removal (cycle witness has %d channels)", len(cert.Cycle))
	}
	return nil
}
