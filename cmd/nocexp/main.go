// Command nocexp regenerates the paper's evaluation (Section 5): Figure 8
// (D26_media VC sweep), Figure 9 (D36_8 VC sweep), Figure 10 (normalized
// power at 14 switches), the scalar claims, and a simulation validation
// pass that the paper itself could not run. With -csvdir it also writes
// machine-readable CSVs for plotting.
//
// Usage:
//
//	nocexp              # everything
//	nocexp -fig 8       # one figure
//	nocexp -summary     # only the scalar claims
//	nocexp -demo        # only the simulation validation
//	nocexp -csvdir out/ # also write CSV files
//
// The sweep subcommand runs arbitrary experiment grids through the
// concurrent runner (see internal/bench/runner):
//
//	nocexp sweep                              # all six benchmarks, default axes
//	nocexp sweep -parallel 8 -json out.json   # fan out, write JSON report
//	nocexp sweep -benchmarks rand:64x6 -seeds 1,2,3 -switches 16,24,32
//	nocexp sweep -simulate                    # + flit-level verification per cell
//	nocexp sweep -simulate -benchmarks torus:8x8:transpose,mesh:4x4:bitrev
//
// The design and reconfigure subcommands are the online-reconfiguration
// pipeline: design writes a removed design bundle, reconfigure evolves it
// through live link-fault events and reports each event's delta:
//
//	nocexp design -preset mesh:8x8 -routing odd-even -out design.json
//	nocexp reconfigure -design design.json -fault 17          # one event
//	nocexp reconfigure -design design.json -fault-count 2 -fault-seed 1 -differential
//	nocexp reconfigure -design design.json -storm -out evolved.json -delta deltas.json
//
// The certify subcommand is the independent checker: it re-reads an
// emitted design bundle, rebuilds the channel-dependency graph from
// first principles (sharing no code with the removal engine), and writes
// a machine-checkable certificate — a topological order as the
// acyclicity witness, or the smallest dependency cycle as the
// counterexample witness with -pre:
//
//	nocexp certify -design design.json -out cert.json
//	nocexp certify -design pre.json -pre     # expect a cyclic pre-removal design
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"github.com/nocdr/nocdr/internal/bench"
	"github.com/nocdr/nocdr/internal/traffic"
)

func main() {
	if len(os.Args) > 1 {
		var sub func(context.Context, []string, io.Writer, io.Writer) error
		switch os.Args[1] {
		case "sweep":
			sub = runSweep
		case "design":
			sub = runDesign
		case "reconfigure":
			sub = runReconfigure
		case "certify":
			sub = runCertify
		}
		if sub != nil {
			// Ctrl-C / SIGTERM cancel the subcommand cooperatively: sweep
			// workers drain (the partial JSON report is still written,
			// marked "canceled": true), reconfigure rolls the in-flight
			// event back. A second signal kills the process the default
			// way (NotifyContext unregisters after the first).
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			err := sub(ctx, os.Args[2:], os.Stdout, os.Stderr)
			stop()
			if err != nil {
				fmt.Fprintf(os.Stderr, "nocexp %s: %v\n", os.Args[1], err)
				os.Exit(1)
			}
			return
		}
	}
	fig := flag.Int("fig", 0, "regenerate only figure 8, 9, or 10")
	summaryOnly := flag.Bool("summary", false, "print only the Section 5 scalar claims")
	demoOnly := flag.Bool("demo", false, "run only the simulation validation")
	extOnly := flag.Bool("ext", false, "run only the extension studies (recovery, turn prohibition)")
	csvDir := flag.String("csvdir", "", "also write CSV files into this directory")
	demoCycles := flag.Int64("demo-cycles", 30000, "simulation horizon for -demo")
	flag.Parse()

	if err := run(*fig, *summaryOnly, *demoOnly, *extOnly, *csvDir, *demoCycles); err != nil {
		fmt.Fprintln(os.Stderr, "nocexp:", err)
		os.Exit(1)
	}
}

func run(fig int, summaryOnly, demoOnly, extOnly bool, csvDir string, demoCycles int64) error {
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	all := fig == 0 && !summaryOnly && !demoOnly && !extOnly

	var fig8, fig9 []bench.SweepPoint
	var fig10 []bench.PowerRow
	var err error

	if all || fig == 8 || summaryOnly {
		if fig8, err = bench.Figure8(); err != nil {
			return err
		}
	}
	if all || fig == 9 || summaryOnly {
		if fig9, err = bench.Figure9(); err != nil {
			return err
		}
	}
	if all || fig == 10 || summaryOnly {
		if fig10, err = bench.Figure10(); err != nil {
			return err
		}
	}

	out := os.Stdout
	if (all || fig == 8) && !summaryOnly && !demoOnly {
		if err := bench.WriteSweepTable(out,
			"Figure 8: VCs added vs switch count — D26_media (removal vs resource ordering)", fig8); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "figure8.csv", fig8); err != nil {
			return err
		}
	}
	if (all || fig == 9) && !summaryOnly && !demoOnly {
		if err := bench.WriteSweepTable(out,
			"Figure 9: VCs added vs switch count — D36_8 (removal vs resource ordering)", fig9); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "figure9.csv", fig9); err != nil {
			return err
		}
	}
	if (all || fig == 10) && !summaryOnly && !demoOnly {
		if err := bench.WritePowerTable(out,
			"Figure 10: power and area at 14 switches (removal vs resource ordering)", fig10); err != nil {
			return err
		}
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "figure10.csv"))
			if err != nil {
				return err
			}
			if err := bench.WritePowerCSV(f, fig10); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if all || summaryOnly {
		// The summary draws on full sweeps across every benchmark, like
		// the paper's "average of 88%" over all its experiments.
		var sweeps [][]bench.SweepPoint
		sweeps = append(sweeps, fig8, fig9)
		for _, g := range traffic.AllBenchmarks() {
			if g.Name == "D26_media" || g.Name == "D36_8" {
				continue // already covered by the figure sweeps
			}
			sweep, err := bench.VCSweep(g, []int{8, 14, 20})
			if err != nil {
				return err
			}
			sweeps = append(sweeps, sweep)
		}
		if err := bench.WriteSummary(out, bench.Summarize(fig10, sweeps...)); err != nil {
			return err
		}
	}

	if all || demoOnly {
		var demos []bench.DeadlockDemo
		ring, err := bench.RunRingDemo(demoCycles)
		if err != nil {
			return err
		}
		demos = append(demos, *ring)
		for _, g := range traffic.AllBenchmarks() {
			demo, err := bench.RunDeadlockDemo(g, 10, demoCycles)
			if err != nil {
				return err
			}
			demos = append(demos, *demo)
		}
		if err := bench.WriteDemoTable(out, demos); err != nil {
			return err
		}
	}

	if all || extOnly {
		rows, err := bench.CompareMethods(bench.Fig10SwitchCount)
		if err != nil {
			return err
		}
		if err := bench.WriteMethodsTable(out, rows); err != nil {
			return err
		}
		top, g, tab, err := bench.RingWorkload()
		if err != nil {
			return err
		}
		rec, err := bench.CompareRecovery("fig1_ring", top, g, tab, demoCycles)
		if err != nil {
			return err
		}
		if err := bench.WriteRecoveryTable(out, []bench.RecoveryRow{*rec}); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(dir, name string, points []bench.SweepPoint) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := bench.WriteSweepCSV(f, points); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
