package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepSerialParallelJSONIdentical is the CLI-level acceptance check:
// the JSON report from `nocexp sweep -parallel N` must be byte-identical
// to the serial run over the same grid.
func TestSweepSerialParallelJSONIdentical(t *testing.T) {
	dir := t.TempDir()
	serialPath := filepath.Join(dir, "serial.json")
	parallelPath := filepath.Join(dir, "parallel.json")
	base := []string{"-switches", "5,8,11,14", "-quiet"}
	if err := runSweep(context.Background(), append(base, "-parallel", "1", "-json", serialPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(context.Background(), append(base, "-parallel", "8", "-json", parallelPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("serial and parallel sweep JSON reports differ")
	}
	if !strings.Contains(string(serial), "\"benchmark\": \"D36_8\"") {
		t.Error("report missing benchmark rows")
	}
}

func TestSweepTableOutput(t *testing.T) {
	var out bytes.Buffer
	err := runSweep(context.Background(), []string{"-benchmarks", "D36_8", "-switches", "10", "-policies", "smallest,first", "-quiet"},
		&out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmark", "D36_8", "smallest", "first", "2 jobs, 0 errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSweepRandSpecAndFullRebuild(t *testing.T) {
	var out bytes.Buffer
	err := runSweep(context.Background(), []string{"-benchmarks", "rand:16x4", "-switches", "6,8", "-seeds", "1,2",
		"-full-rebuild", "-quiet"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 jobs, 0 errors") {
		t.Errorf("expected 4 clean jobs:\n%s", out.String())
	}
}

func TestSweepSimulate(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "sim.json")
	var out bytes.Buffer
	err := runSweep(context.Background(), []string{"-simulate", "-benchmarks", "D26_media,torus:4x4:uniform",
		"-switches", "8", "-seeds", "0,1", "-quiet", "-json", jsonPath}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim", "verification:", "post-removal deadlocks: 0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("simulated sweep output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"post_deadlock\": false") {
		t.Error("JSON report missing sim results")
	}
	if strings.Contains(string(data), "\"post_deadlock\": true") {
		t.Error("JSON report contains a post-removal deadlock")
	}
	// The torus negative control must demonstrate the hazard.
	if !strings.Contains(string(data), "\"pre_deadlock\": true") {
		t.Error("no negative-control deadlock in JSON report")
	}
}

func TestSweepWithoutSimulateHasNoSimBlock(t *testing.T) {
	var out bytes.Buffer
	err := runSweep(context.Background(), []string{"-benchmarks", "D26_media", "-switches", "8", "-quiet"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "verification:") {
		t.Error("verification summary printed without -simulate")
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	if err := runSweep(context.Background(), []string{"-benchmarks", "no_such"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSweep(context.Background(), []string{"-switches", "five"}, io.Discard, io.Discard); err == nil {
		t.Error("non-numeric switch count accepted")
	}
	if err := runSweep(context.Background(), []string{"extra"}, io.Discard, io.Discard); err == nil {
		t.Error("positional argument accepted")
	}
}

// TestSweepCanceledPartialReport pins the interrupt contract: a canceled
// sweep still writes a valid JSON report, marked canceled, with every
// unfinished cell marked canceled too, and runSweep reports the
// interruption as an error.
func TestSweepCanceledPartialReport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "partial.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any job is scheduled: everything partial
	err := runSweep(ctx, []string{"-benchmarks", "D26_media", "-switches", "8,11", "-quiet",
		"-json", jsonPath}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("expected interruption error, got %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("canceled sweep wrote no JSON report: %v", err)
	}
	var rep struct {
		Canceled bool `json:"canceled"`
		Results  []struct {
			Benchmark string `json:"benchmark"`
			Canceled  bool   `json:"canceled"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if !rep.Canceled {
		t.Fatal("partial report not marked canceled")
	}
	if len(rep.Results) != 2 {
		t.Fatalf("partial report has %d result slots, want 2", len(rep.Results))
	}
	for i, r := range rep.Results {
		if !r.Canceled {
			t.Fatalf("result %d not marked canceled", i)
		}
		if r.Benchmark != "D26_media" {
			t.Fatalf("result %d lost its job identity: %q", i, r.Benchmark)
		}
	}
}

// TestSweepShardLocalMatchesSerial is the CLI-level conformance check of
// the sharded backend: `-shard-local 2` routes the grid through two
// in-process serve workers over real HTTP and must write a JSON report
// byte-identical to the serial run.
func TestSweepShardLocalMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	serialPath := filepath.Join(dir, "serial.json")
	shardedPath := filepath.Join(dir, "sharded.json")
	base := []string{"-benchmarks", "mesh:4,torus:4x4:transpose", "-routing", "west-first,odd-even",
		"-faults", "1", "-quiet"}
	if err := runSweep(context.Background(), append(base, "-parallel", "1", "-json", serialPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(context.Background(), append(base, "-shard-local", "2", "-json", shardedPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := os.ReadFile(shardedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, sharded) {
		t.Fatal("serial and shard-local sweep JSON reports differ")
	}
}

// TestSweepEmptyGridFails pins the empty-grid fix: axes that filter out
// every cell must exit non-zero with a clear error and write no report,
// never a vacuous report with exit 0.
func TestSweepEmptyGridFails(t *testing.T) {
	dir := t.TempDir()
	for i, args := range [][]string{
		{"-benchmarks", ","},
		{"-switches", ", ,"},
		{"-seeds", ","},
		{"-policies", ""},
		{"-routing", ","},
	} {
		jsonPath := filepath.Join(dir, fmt.Sprintf("empty-%d.json", i))
		err := runSweep(context.Background(), append(args, "-quiet", "-json", jsonPath), io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "empty grid") {
			t.Errorf("%v: expected an empty-grid error, got %v", args, err)
		}
		if _, statErr := os.Stat(jsonPath); statErr == nil {
			t.Errorf("%v: empty grid still wrote a report", args)
		}
	}
}

// TestSweepShardFlagsExclusive rejects -workers together with
// -shard-local.
func TestSweepShardFlagsExclusive(t *testing.T) {
	err := runSweep(context.Background(), []string{"-workers", "http://localhost:1", "-shard-local", "2"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("expected a mutual-exclusion error, got %v", err)
	}
	if err := runSweep(context.Background(), []string{"-shard-local", "-1"}, io.Discard, io.Discard); err == nil {
		t.Error("negative -shard-local accepted")
	}
}

// TestSweepLoadsCurves pins the -loads flag end to end: the JSON report
// carries per-cell load_sweep points and per-design curves, the stdout
// summary prints the curve block, and serial vs parallel runs stay
// byte-identical with the loads axis in play.
func TestSweepLoadsCurves(t *testing.T) {
	dir := t.TempDir()
	serialPath := filepath.Join(dir, "serial.json")
	parallelPath := filepath.Join(dir, "parallel.json")
	base := []string{"-benchmarks", "torus:4:transpose", "-seeds", "1,2",
		"-simulate", "-sim-cycles", "2000", "-sim-load", "0.8", "-loads", "0.2,0.6", "-quiet"}
	var out bytes.Buffer
	if err := runSweep(context.Background(), append(base, "-parallel", "1", "-json", serialPath), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"load sweep (1 designs):", "torus:4:transpose@16", "load 0.2:", "load 0.6:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("curve summary missing %q:\n%s", want, out.String())
		}
	}
	if err := runSweep(context.Background(), append(base, "-parallel", "4", "-json", parallelPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("serial and parallel load-sweep JSON reports differ")
	}
	var rep struct {
		Results []struct {
			Sim *struct {
				LoadSweep []struct {
					Load float64 `json:"load"`
				} `json:"load_sweep"`
			} `json:"sim"`
		} `json:"results"`
		Curves []struct {
			Points         []json.RawMessage `json:"points"`
			SaturationLoad float64           `json:"saturation_load"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for i, r := range rep.Results {
		if r.Sim == nil || len(r.Sim.LoadSweep) != 2 {
			t.Fatalf("cell %d missing load_sweep points", i)
		}
	}
	if len(rep.Curves) != 1 || len(rep.Curves[0].Points) != 2 {
		t.Fatalf("unexpected curves in report: %s", serial)
	}

	// -loads without -simulate must fail fast.
	if err := runSweep(context.Background(), []string{"-benchmarks", "torus:4:transpose", "-loads", "0.5", "-quiet"},
		io.Discard, io.Discard); err == nil {
		t.Error("-loads without -simulate accepted")
	}
	// Out-of-range loads must be rejected by grid validation.
	if err := runSweep(context.Background(), []string{"-benchmarks", "torus:4:transpose", "-simulate", "-loads", "1.5", "-quiet"},
		io.Discard, io.Discard); err == nil {
		t.Error("out-of-range -loads accepted")
	}
}
