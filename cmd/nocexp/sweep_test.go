package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepSerialParallelJSONIdentical is the CLI-level acceptance check:
// the JSON report from `nocexp sweep -parallel N` must be byte-identical
// to the serial run over the same grid.
func TestSweepSerialParallelJSONIdentical(t *testing.T) {
	dir := t.TempDir()
	serialPath := filepath.Join(dir, "serial.json")
	parallelPath := filepath.Join(dir, "parallel.json")
	base := []string{"-switches", "5,8,11,14", "-quiet"}
	if err := runSweep(append(base, "-parallel", "1", "-json", serialPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(append(base, "-parallel", "8", "-json", parallelPath), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("serial and parallel sweep JSON reports differ")
	}
	if !strings.Contains(string(serial), "\"benchmark\": \"D36_8\"") {
		t.Error("report missing benchmark rows")
	}
}

func TestSweepTableOutput(t *testing.T) {
	var out bytes.Buffer
	err := runSweep([]string{"-benchmarks", "D36_8", "-switches", "10", "-policies", "smallest,first", "-quiet"},
		&out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmark", "D36_8", "smallest", "first", "2 jobs, 0 errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSweepRandSpecAndFullRebuild(t *testing.T) {
	var out bytes.Buffer
	err := runSweep([]string{"-benchmarks", "rand:16x4", "-switches", "6,8", "-seeds", "1,2",
		"-full-rebuild", "-quiet"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 jobs, 0 errors") {
		t.Errorf("expected 4 clean jobs:\n%s", out.String())
	}
}

func TestSweepSimulate(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "sim.json")
	var out bytes.Buffer
	err := runSweep([]string{"-simulate", "-benchmarks", "D26_media,torus:4x4:uniform",
		"-switches", "8", "-seeds", "0,1", "-quiet", "-json", jsonPath}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim", "verification:", "post-removal deadlocks: 0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("simulated sweep output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"post_deadlock\": false") {
		t.Error("JSON report missing sim results")
	}
	if strings.Contains(string(data), "\"post_deadlock\": true") {
		t.Error("JSON report contains a post-removal deadlock")
	}
	// The torus negative control must demonstrate the hazard.
	if !strings.Contains(string(data), "\"pre_deadlock\": true") {
		t.Error("no negative-control deadlock in JSON report")
	}
}

func TestSweepWithoutSimulateHasNoSimBlock(t *testing.T) {
	var out bytes.Buffer
	err := runSweep([]string{"-benchmarks", "D26_media", "-switches", "8", "-quiet"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "verification:") {
		t.Error("verification summary printed without -simulate")
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	if err := runSweep([]string{"-benchmarks", "no_such"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSweep([]string{"-switches", "five"}, io.Discard, io.Discard); err == nil {
		t.Error("non-numeric switch count accepted")
	}
	if err := runSweep([]string{"extra"}, io.Discard, io.Discard); err == nil {
		t.Error("positional argument accepted")
	}
}
