package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	nocdr "github.com/nocdr/nocdr"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/reconfig"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
)

// runDesign implements `nocexp design`: build a removed design bundle on
// a regular grid and write it to -out, the artifact `nocexp reconfigure`
// and /v1/reconfigure evolve.
func runDesign(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("design", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("preset", "mesh:8x8", "grid preset: mesh:<cols>x<rows> or torus:<cols>x<rows>")
	routing := fs.String("routing", "odd-even",
		"turn-model routing function: "+strings.Join(route.TurnModelNames(), ", "))
	pattern := fs.String("traffic", "stride",
		"traffic pattern: stride (core i → i+n/2), transpose, all-to-all")
	maxPaths := fs.Int("max-paths", 0, "max candidate paths per flow (0 = library default)")
	vcLimit := fs.Int("vc-limit", 0, "abort removal past this many added VCs (0 = unlimited)")
	out := fs.String("out", "design.json", "write the design bundle here (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	wrap, cols, rows, err := parsePreset(*preset)
	if err != nil {
		return err
	}
	tr, err := presetTraffic(*pattern, cols*rows)
	if err != nil {
		return err
	}
	sess := nocdr.NewSession(nocdr.WithMaxPaths(*maxPaths), nocdr.WithVCLimit(*vcLimit))
	d, err := sess.NewReconfigDesign(ctx, cols, rows, wrap, *routing, tr)
	if err != nil {
		return err
	}
	if err := writeDesign(*out, d, stdout); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "design: %s %s %s, %d flows, %d extra VCs → %s\n",
		*preset, *routing, *pattern, tr.NumFlows(), d.Topology.ExtraVCs(), outName(*out))
	return nil
}

// runReconfigure implements `nocexp reconfigure`: apply link-fault events
// to a design bundle online and report each event's delta. The
// verification gate lives in the tool: any committed design that fails
// Verify, any non-acyclic delta, and any deadlocked downtime simulation
// exits non-zero — CI needs no external report inspection.
func runReconfigure(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reconfigure", flag.ContinueOnError)
	fs.SetOutput(stderr)
	designPath := fs.String("design", "", "design bundle to evolve (required; the `nocexp design` artifact)")
	faultList := fs.String("fault", "", "comma-separated link IDs to retire, in order")
	faultCount := fs.Int("fault-count", 0, "retire this many seeded connectivity-safe links instead of -fault")
	faultSeed := fs.Int64("fault-seed", 0, "seed for -fault-count and -storm selection")
	storm := fs.Bool("storm", false, "keep retiring seeded safe links until none remains (or -storm-max)")
	stormMax := fs.Int("storm-max", 64, "upper bound on -storm events")
	out := fs.String("out", "", "write the evolved design bundle here")
	deltaOut := fs.String("delta", "", "write the JSON array of per-event deltas here")
	differential := fs.Bool("differential", false,
		"also run a from-scratch removal on the final faulted topology; with a single fault event, gate the replay's added VCs against it")
	skipSim := fs.Bool("skip-sim", false, "skip the per-event downtime simulation")
	simCycles := fs.Int64("sim-cycles", 0, "downtime simulation horizon per event (0 = library default)")
	quiet := fs.Bool("quiet", false, "suppress per-event progress on stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *designPath == "" {
		return fmt.Errorf("-design is required")
	}
	modes := 0
	for _, set := range []bool{*faultList != "", *faultCount > 0, *storm} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -fault, -fault-count, -storm must be given")
	}

	f, err := os.Open(*designPath)
	if err != nil {
		return err
	}
	d, err := reconfig.ReadDesign(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("input design invalid: %w", err)
	}

	opts := []nocdr.Option{nocdr.WithMaxPaths(d.MaxPaths)}
	if !*quiet {
		opts = append(opts, nocdr.WithProgress(func(e nocdr.Event) {
			switch e.Kind {
			case nocdr.EventReconfigStage:
				fmt.Fprintf(stderr, "fault %d: %s\n", e.Fault, e.Stage)
			case nocdr.EventCycleBroken:
				fmt.Fprintf(stderr, "  break %d: %s cost %d cycle %d\n",
					e.Iteration, e.Break.Direction, e.Break.Cost, len(e.Break.Cycle))
			}
		}))
	}
	sess := nocdr.NewSession(opts...)
	ropts := nocdr.ReconfigOptions{SkipSim: *skipSim, SimCycles: *simCycles}

	// The three fault-selection modes share one loop: pop the next fault,
	// apply it as its own event, track the live fault set for the seeded
	// selectors. A storm stops cleanly when no connectivity-safe link is
	// left.
	live, err := liveGrid(d)
	if err != nil {
		return err
	}
	next, err := faultSource(live, *faultList, *faultCount, *faultSeed, *storm, *stormMax)
	if err != nil {
		return err
	}
	var deltas []*nocdr.ReconfigDelta
	for {
		fault, ok := next(len(deltas))
		if !ok {
			break
		}
		res, err := sess.Reconfigure(ctx, d, []nocdr.LinkID{fault}, ropts)
		if err != nil {
			return fmt.Errorf("fault %d: %w", fault, err)
		}
		d = res.Design
		delta := res.Deltas[0]
		deltas = append(deltas, delta)
		if err := live.Topology.Fault(fault); err != nil {
			return err
		}
		if !delta.Acyclic {
			return fmt.Errorf("verification FAILED: fault %d committed a cyclic design", fault)
		}
		if delta.Downtime.Simulated && delta.Downtime.Deadlocked {
			return fmt.Errorf("verification FAILED: fault %d downtime simulation deadlocked", fault)
		}
		fmt.Fprintf(stdout, "fault %d: moved %d flows, vcs_added=%d, %d links retired, %d breaks%s\n",
			delta.Fault, len(delta.FlowsMoved), delta.VCsAdded, len(delta.LinksRetired),
			len(delta.Breaks), downtimeNote(delta.Downtime))
	}
	if len(deltas) == 0 {
		return fmt.Errorf("no fault event ran")
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("verification FAILED: evolved design invalid: %w", err)
	}
	total := 0
	for _, delta := range deltas {
		total += delta.VCsAdded
	}

	if *differential {
		cold, err := reconfig.ColdRemove(ctx, d, core.Options{})
		if err != nil {
			return fmt.Errorf("differential FAILED: from-scratch removal of the faulted topology: %w", err)
		}
		fmt.Fprintf(stdout, "differential: warm added %d VCs over %d events; from-scratch removal adds %d\n",
			total, len(deltas), cold.AddedVCs)
		// The pinned property is per-event: one replay never costs more
		// than a whole redo of that event's topology. Only a single-event
		// run compares against the same topology the cold baseline saw.
		if len(deltas) == 1 && total > cold.AddedVCs {
			return fmt.Errorf("differential FAILED: replay added %d VCs, from-scratch removal only needs %d",
				total, cold.AddedVCs)
		}
	}

	if *out != "" {
		if err := writeDesign(*out, d, stdout); err != nil {
			return err
		}
	}
	if *deltaOut != "" {
		data, err := json.MarshalIndent(deltas, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*deltaOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "reconfigure: %d events committed, vcs_added=%d, design valid (acyclic)\n",
		len(deltas), total)
	return nil
}

// faultSource builds the per-mode fault iterator: it is called with the
// number of events applied so far and returns the next link to retire.
func faultSource(live *regular.Grid, faultList string, faultCount int, faultSeed int64, storm bool, stormMax int) (func(applied int) (nocdr.LinkID, bool), error) {
	switch {
	case faultList != "":
		ids, err := parseInts(faultList)
		if err != nil {
			return nil, fmt.Errorf("-fault: %w", err)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("-fault: no link IDs given")
		}
		return func(applied int) (nocdr.LinkID, bool) {
			if applied >= len(ids) {
				return 0, false
			}
			return nocdr.LinkID(ids[applied]), true
		}, nil
	case faultCount > 0:
		faults, err := regular.SelectFaults(live, faultCount, faultSeed)
		if err != nil {
			return nil, fmt.Errorf("-fault-count: %w", err)
		}
		return func(applied int) (nocdr.LinkID, bool) {
			if applied >= len(faults) {
				return 0, false
			}
			return faults[applied], true
		}, nil
	default: // storm
		if stormMax <= 0 {
			return nil, fmt.Errorf("-storm-max: %d out of range", stormMax)
		}
		return func(applied int) (nocdr.LinkID, bool) {
			if applied >= stormMax {
				return 0, false
			}
			faults, err := regular.SelectFaults(live, 1, faultSeed+int64(applied))
			if err != nil {
				return 0, false // no connectivity-safe link left: clean stop
			}
			return faults[0], true
		}, nil
	}
}

// liveGrid rebuilds the design's grid with its current fault set so the
// seeded fault selectors see the same connectivity the design does.
func liveGrid(d *reconfig.Design) (*regular.Grid, error) {
	var g *regular.Grid
	var err error
	if d.Grid.Wrap {
		g, err = regular.Torus(d.Grid.Cols, d.Grid.Rows)
	} else {
		g, err = regular.Mesh(d.Grid.Cols, d.Grid.Rows)
	}
	if err != nil {
		return nil, err
	}
	if faults := d.Topology.FaultedLinks(); len(faults) > 0 {
		if err := g.Topology.Fault(faults...); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// parsePreset parses mesh:<cols>x<rows> / torus:<cols>x<rows>.
func parsePreset(s string) (wrap bool, cols, rows int, err error) {
	kind, dims, ok := strings.Cut(s, ":")
	if ok {
		switch kind {
		case "mesh":
		case "torus":
			wrap = true
		default:
			ok = false
		}
	}
	if ok {
		var c, r string
		if c, r, ok = strings.Cut(dims, "x"); ok {
			if _, err := fmt.Sscanf(c+" "+r, "%d %d", &cols, &rows); err != nil || cols < 2 || rows < 2 {
				ok = false
			}
		}
	}
	if !ok {
		return false, 0, 0, fmt.Errorf("-preset %q: want mesh:<cols>x<rows> or torus:<cols>x<rows> with cols,rows >= 2", s)
	}
	return wrap, cols, rows, nil
}

// presetTraffic builds the named synthetic pattern over n cores at
// bandwidth 100.
func presetTraffic(pattern string, n int) (*nocdr.TrafficGraph, error) {
	g := nocdr.NewTraffic(fmt.Sprintf("%s_%d", pattern, n))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	add := func(s, d int) {
		if s != d {
			g.MustAddFlow(nocdr.CoreID(s), nocdr.CoreID(d), 100)
		}
	}
	switch pattern {
	case "stride":
		for i := 0; i < n; i++ {
			add(i, (i+n/2)%n)
		}
	case "transpose":
		bits := 0
		for 1<<bits < n {
			bits++
		}
		if 1<<bits != n || bits%2 != 0 {
			return nil, fmt.Errorf("-traffic transpose needs a power-of-4 core count, got %d", n)
		}
		half := bits / 2
		for i := 0; i < n; i++ {
			add(i, (i>>half)|((i&(1<<half-1))<<half))
		}
	case "all-to-all":
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				add(s, d)
			}
		}
	default:
		return nil, fmt.Errorf("-traffic %q: want stride, transpose, or all-to-all", pattern)
	}
	return g, nil
}

// writeDesign writes the bundle to path, or stdout for "-".
func writeDesign(path string, d *reconfig.Design, stdout io.Writer) error {
	if path == "-" {
		return d.Write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func outName(path string) string {
	if path == "-" {
		return "stdout"
	}
	return path
}

// downtimeNote renders the delta's downtime estimate for the event line.
func downtimeNote(dt nocdr.ReconfigDowntime) string {
	if !dt.Simulated {
		return ""
	}
	verdict := "drained"
	if !dt.Drained {
		verdict = "horizon"
	}
	if dt.Deadlocked {
		verdict = "DEADLOCKED"
	}
	return fmt.Sprintf(", downtime %d cycles (%s)", dt.Cycles, verdict)
}
