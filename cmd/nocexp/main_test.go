package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFigure8WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(8, false, false, false, dir, 1000); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "switch_count,") {
		t.Errorf("figure8.csv header wrong: %q", string(data[:40]))
	}
	if lines := strings.Count(string(data), "\n"); lines < 5 {
		t.Errorf("figure8.csv has only %d lines", lines)
	}
}

func TestRunFigure10WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(10, false, false, false, dir, 1000); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "D26_media") {
		t.Error("figure10.csv missing benchmark rows")
	}
}

func TestRunSummaryOnly(t *testing.T) {
	if err := run(0, true, false, false, "", 1000); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoOnlyShortHorizon(t *testing.T) {
	if err := run(0, false, true, false, "", 2000); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtOnly(t *testing.T) {
	if err := run(0, false, false, true, "", 3000); err != nil {
		t.Fatal(err)
	}
}
