// Command nocdr is the command-line front end of the deadlock-removal
// library: it checks routed NoC designs for deadlock potential, removes
// deadlocks by adding minimal virtual channels (DATE 2010 algorithm),
// applies the resource-ordering baseline, synthesizes application-
// specific topologies, and simulates wormhole traffic.
//
// Usage:
//
//	nocdr check    -topology t.json -routes r.json [-traffic g.json]
//	nocdr remove   -topology t.json -routes r.json [-out-topology t2.json] [-out-routes r2.json]
//	nocdr ordering -topology t.json -routes r.json [-scheme hop|bfs|id]
//	nocdr synth    -traffic g.json -switches N [-neighbors K] [-out-topology t.json] [-out-routes r.json]
//	nocdr sim      -topology t.json -traffic g.json -routes r.json [-cycles N] [-load F] [-packets P]
//	nocdr dot      -topology t.json [-cdg -routes r.json]
//	nocdr bench    -name D26_media -out g.json
//	nocdr serve    [-addr host:port] [-workers N] [-sweep-parallel N] [-join URL] [-token T] [-cache-dir DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	nocdr "github.com/nocdr/nocdr"
)

// sess is the CLI's pipeline session; commands needing policy overrides
// derive their own.
var sess = nocdr.NewSession()

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Long-running commands (remove, synth, sim) stop cooperatively on
	// Ctrl-C / SIGTERM through this context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "check":
		err = runCheck(os.Args[2:])
	case "remove":
		err = runRemove(ctx, os.Args[2:])
	case "ordering":
		err = runOrdering(os.Args[2:])
	case "synth":
		err = runSynth(ctx, os.Args[2:])
	case "sim":
		err = runSim(ctx, os.Args[2:])
	case "dot":
		err = runDot(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nocdr: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocdr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `nocdr — deadlock removal for wormhole NoCs (DATE 2010)

commands:
  check     report whether a routed design is deadlock-free (CDG acyclicity)
  remove    remove deadlocks by adding minimal VCs and rerouting
  ordering  apply the resource-ordering baseline
  synth     synthesize an application-specific topology for a traffic file
  sim       simulate wormhole traffic on a routed design
  dot       render a topology (or its CDG) as Graphviz DOT
  bench     write one of the built-in SoC benchmarks as a traffic JSON file
  serve     run the HTTP/JSON job service (/v1/remove, /v1/sweep, /v1/simulate)

run "nocdr <command> -h" for the flags of each command.`)
}

// loadDesign reads the topology and routes that every analysis command
// needs; traffic is optional and only used for validation when given.
func loadDesign(topoPath, routesPath, trafficPath string) (*nocdr.Topology, *nocdr.RouteTable, *nocdr.TrafficGraph, error) {
	if topoPath == "" || routesPath == "" {
		return nil, nil, nil, fmt.Errorf("-topology and -routes are required")
	}
	top, err := nocdr.LoadTopology(topoPath)
	if err != nil {
		return nil, nil, nil, err
	}
	tab, err := nocdr.LoadRoutes(routesPath)
	if err != nil {
		return nil, nil, nil, err
	}
	var g *nocdr.TrafficGraph
	if trafficPath != "" {
		if g, err = nocdr.LoadTraffic(trafficPath); err != nil {
			return nil, nil, nil, err
		}
		if err := tab.Validate(top, g); err != nil {
			return nil, nil, nil, fmt.Errorf("routes inconsistent with topology/traffic: %w", err)
		}
	}
	return top, tab, g, nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	topoPath := fs.String("topology", "", "topology JSON file")
	routesPath := fs.String("routes", "", "routes JSON file")
	trafficPath := fs.String("traffic", "", "traffic JSON file (optional, enables route validation)")
	fs.Parse(args)
	top, tab, _, err := loadDesign(*topoPath, *routesPath, *trafficPath)
	if err != nil {
		return err
	}
	g, err := sess.BuildCDG(top, tab)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %d switches, %d links, %d channels\n",
		top.NumSwitches(), top.NumLinks(), top.TotalVCs())
	fmt.Printf("CDG: %d vertices, %d dependencies\n", g.NumChannels(), g.NumDependencies())
	if g.Acyclic() {
		fmt.Println("deadlock-free: YES (CDG is acyclic)")
		return nil
	}
	cycle := g.SmallestCycle()
	fmt.Println("deadlock-free: NO")
	fmt.Print("smallest cycle:")
	for _, ch := range cycle {
		fmt.Printf(" %s", top.ChannelName(ch))
	}
	fmt.Println()
	return nil
}

func runRemove(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	topoPath := fs.String("topology", "", "topology JSON file")
	routesPath := fs.String("routes", "", "routes JSON file")
	trafficPath := fs.String("traffic", "", "traffic JSON file (optional)")
	outTopo := fs.String("out-topology", "", "write modified topology JSON here")
	outRoutes := fs.String("out-routes", "", "write modified routes JSON here")
	verbose := fs.Bool("v", false, "log every cycle break")
	vcLimit := fs.Int("vc-limit", 0, "fail (ErrVCLimit) if removal would add more than this many VCs; 0 = unlimited")
	fs.Parse(args)
	top, tab, g, err := loadDesign(*topoPath, *routesPath, *trafficPath)
	if err != nil {
		return err
	}
	res, err := nocdr.NewSession(nocdr.WithVCLimit(*vcLimit)).RemoveDeadlocks(ctx, top, tab)
	if err != nil {
		return err
	}
	if err := res.Verify(); err != nil {
		return fmt.Errorf("internal verification failed: %w", err)
	}
	if g != nil {
		if err := res.Routes.Validate(res.Topology, g); err != nil {
			return fmt.Errorf("modified routes invalid: %w", err)
		}
	}
	if res.InitialAcyclic {
		fmt.Println("input design is already deadlock-free; nothing to do")
	} else {
		fmt.Printf("removed %d cycle(s), added %d VC(s)\n", res.Iterations, res.AddedVCs)
		if *verbose {
			for i, b := range res.Breaks {
				fmt.Printf("  break %d: %s at edge %d, cost %d, flows %v, new channels:",
					i+1, b.Direction, b.EdgePos, b.Cost, b.Reroutes)
				for _, ch := range b.NewChannels {
					fmt.Printf(" %s", res.Topology.ChannelName(ch))
				}
				fmt.Println()
			}
		}
	}
	if *outTopo != "" {
		if err := nocdr.SaveJSON(*outTopo, res.Topology); err != nil {
			return err
		}
	}
	if *outRoutes != "" {
		if err := nocdr.SaveJSON(*outRoutes, res.Routes); err != nil {
			return err
		}
	}
	return nil
}

func runOrdering(args []string) error {
	fs := flag.NewFlagSet("ordering", flag.ExitOnError)
	topoPath := fs.String("topology", "", "topology JSON file")
	routesPath := fs.String("routes", "", "routes JSON file")
	trafficPath := fs.String("traffic", "", "traffic JSON file (optional)")
	schemeName := fs.String("scheme", "hop", "class scheme: hop, bfs, or id")
	outTopo := fs.String("out-topology", "", "write modified topology JSON here")
	outRoutes := fs.String("out-routes", "", "write modified routes JSON here")
	fs.Parse(args)
	top, tab, _, err := loadDesign(*topoPath, *routesPath, *trafficPath)
	if err != nil {
		return err
	}
	var scheme nocdr.OrderingScheme
	switch *schemeName {
	case "hop":
		scheme = nocdr.HopIndex
	case "bfs":
		scheme = nocdr.GreedyBFS
	case "id":
		scheme = nocdr.GreedyByID
	default:
		return fmt.Errorf("unknown scheme %q (hop, bfs, id)", *schemeName)
	}
	res, err := sess.ApplyResourceOrdering(top, tab, scheme)
	if err != nil {
		return err
	}
	fmt.Printf("resource ordering (%s): %d layers, %d classes, added %d VC(s)\n",
		scheme, res.Layers, res.Classes, res.AddedVCs)
	if *outTopo != "" {
		if err := nocdr.SaveJSON(*outTopo, res.Topology); err != nil {
			return err
		}
	}
	if *outRoutes != "" {
		if err := nocdr.SaveJSON(*outRoutes, res.Routes); err != nil {
			return err
		}
	}
	return nil
}

func runSynth(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	trafficPath := fs.String("traffic", "", "traffic JSON file")
	switches := fs.Int("switches", 0, "number of switches")
	neighbors := fs.Int("neighbors", 0, "max neighbor switches per switch (default 4)")
	outTopo := fs.String("out-topology", "", "write topology JSON here")
	outRoutes := fs.String("out-routes", "", "write routes JSON here")
	fs.Parse(args)
	if *trafficPath == "" {
		return fmt.Errorf("-traffic is required")
	}
	g, err := nocdr.LoadTraffic(*trafficPath)
	if err != nil {
		return err
	}
	design, err := sess.Synthesize(ctx, g, nocdr.SynthOptions{
		SwitchCount:  *switches,
		MaxNeighbors: *neighbors,
	})
	if err != nil {
		return err
	}
	free, err := sess.DeadlockFree(design.Topology, design.Routes)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %q: %d switches, %d links, max route %d hops, deadlock-free: %v\n",
		design.Topology.Name, design.Topology.NumSwitches(), design.Topology.NumLinks(),
		design.Routes.MaxLen(), free)
	if *outTopo != "" {
		if err := nocdr.SaveJSON(*outTopo, design.Topology); err != nil {
			return err
		}
	}
	if *outRoutes != "" {
		if err := nocdr.SaveJSON(*outRoutes, design.Routes); err != nil {
			return err
		}
	}
	return nil
}

func runSim(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	topoPath := fs.String("topology", "", "topology JSON file")
	routesPath := fs.String("routes", "", "routes JSON file")
	trafficPath := fs.String("traffic", "", "traffic JSON file")
	cycles := fs.Int64("cycles", 100000, "simulation horizon in cycles")
	load := fs.Float64("load", 0.5, "injection load factor in (0,1]")
	packets := fs.Int("packets", 0, "drain mode: packets per flow (0 = open-loop)")
	seed := fs.Int64("seed", 1, "injection RNG seed")
	fs.Parse(args)
	if *trafficPath == "" {
		return fmt.Errorf("-traffic is required for simulation")
	}
	top, tab, g, err := loadDesign(*topoPath, *routesPath, *trafficPath)
	if err != nil {
		return err
	}
	st, err := sess.Simulate(ctx, top, g, tab, nocdr.SimConfig{
		MaxCycles:      *cycles,
		LoadFactor:     *load,
		PacketsPerFlow: *packets,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cycles: %d\n", st.Cycles)
	fmt.Printf("packets: %d injected, %d delivered, %d local\n",
		st.InjectedPackets, st.DeliveredPackets, st.LocalPackets)
	fmt.Printf("flits: %d injected, %d delivered (%.3f flits/cycle)\n",
		st.InjectedFlits, st.DeliveredFlits, st.ThroughputFlitsPerCycle())
	fmt.Printf("latency: avg %.1f, max %d cycles\n", st.AvgLatency(), st.LatencyMax)
	if st.Deadlocked {
		fmt.Printf("DEADLOCK at cycle %d involving packets %v\n", st.DeadlockCycle, st.DeadlockPackets)
	} else if st.Drained {
		fmt.Println("workload drained completely; no deadlock")
	} else {
		fmt.Println("no deadlock within horizon")
	}
	return nil
}

func runDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	topoPath := fs.String("topology", "", "topology JSON file")
	routesPath := fs.String("routes", "", "routes JSON file (required with -cdg)")
	asCDG := fs.Bool("cdg", false, "render the channel dependency graph instead of the topology")
	fs.Parse(args)
	if *topoPath == "" {
		return fmt.Errorf("-topology is required")
	}
	top, err := nocdr.LoadTopology(*topoPath)
	if err != nil {
		return err
	}
	if !*asCDG {
		return top.WriteDOT(os.Stdout)
	}
	if *routesPath == "" {
		return fmt.Errorf("-cdg requires -routes")
	}
	tab, err := nocdr.LoadRoutes(*routesPath)
	if err != nil {
		return err
	}
	g, err := sess.BuildCDG(top, tab)
	if err != nil {
		return err
	}
	return g.WriteDOT(os.Stdout)
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	name := fs.String("name", "", "benchmark name (see list below)")
	out := fs.String("out", "", "write traffic JSON here (default stdout)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("-name is required; available: %v", nocdr.BenchmarkNames())
	}
	g, err := nocdr.Benchmark(*name)
	if err != nil {
		return err
	}
	if *out == "" {
		return g.Write(os.Stdout)
	}
	return nocdr.SaveJSON(*out, g)
}
