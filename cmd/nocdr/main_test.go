package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	nocdr "github.com/nocdr/nocdr"
)

// writeRing writes the paper's Figure 1 design (topology, traffic,
// routes) as JSON files and returns their paths.
func writeRing(t *testing.T) (topoPath, trafficPath, routesPath string) {
	t.Helper()
	dir := t.TempDir()
	top := nocdr.NewTopology("ring")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		if err := top.AttachCore(i, sw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(nocdr.SwitchID(i), nocdr.SwitchID((i+1)%4))
	}
	g := nocdr.NewTraffic("ringflows")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	tab := nocdr.NewRouteTable(4)
	ch := func(ids ...int) []nocdr.Channel {
		out := make([]nocdr.Channel, len(ids))
		for i, id := range ids {
			out[i] = nocdr.Chan(nocdr.LinkID(id), 0)
		}
		return out
	}
	tab.Set(0, ch(0, 1, 2))
	tab.Set(1, ch(2, 3))
	tab.Set(2, ch(3, 0))
	tab.Set(3, ch(0, 1))

	topoPath = filepath.Join(dir, "topology.json")
	trafficPath = filepath.Join(dir, "traffic.json")
	routesPath = filepath.Join(dir, "routes.json")
	if err := nocdr.SaveJSON(topoPath, top); err != nil {
		t.Fatal(err)
	}
	if err := nocdr.SaveJSON(trafficPath, g); err != nil {
		t.Fatal(err)
	}
	if err := nocdr.SaveJSON(routesPath, tab); err != nil {
		t.Fatal(err)
	}
	return topoPath, trafficPath, routesPath
}

func TestRunCheck(t *testing.T) {
	topo, tr, routes := writeRing(t)
	if err := runCheck([]string{"-topology", topo, "-routes", routes, "-traffic", tr}); err != nil {
		t.Errorf("check failed: %v", err)
	}
	if err := runCheck([]string{"-routes", routes}); err == nil {
		t.Error("check without -topology accepted")
	}
	if err := runCheck([]string{"-topology", "/nope.json", "-routes", routes}); err == nil {
		t.Error("check with missing file accepted")
	}
}

func TestRunRemoveWritesOutputs(t *testing.T) {
	topo, tr, routes := writeRing(t)
	dir := t.TempDir()
	outTopo := filepath.Join(dir, "fixed-topo.json")
	outRoutes := filepath.Join(dir, "fixed-routes.json")
	err := runRemove(context.Background(), []string{
		"-topology", topo, "-routes", routes, "-traffic", tr,
		"-out-topology", outTopo, "-out-routes", outRoutes, "-v",
	})
	if err != nil {
		t.Fatalf("remove failed: %v", err)
	}
	fixedTop, err := nocdr.LoadTopology(outTopo)
	if err != nil {
		t.Fatal(err)
	}
	fixedTab, err := nocdr.LoadRoutes(outRoutes)
	if err != nil {
		t.Fatal(err)
	}
	free, err := nocdr.NewSession().DeadlockFree(fixedTop, fixedTab)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Error("written design is not deadlock-free")
	}
	if fixedTop.ExtraVCs() != 1 {
		t.Errorf("written topology has %d extra VCs, want 1", fixedTop.ExtraVCs())
	}
}

func TestRunOrdering(t *testing.T) {
	topo, _, routes := writeRing(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "ro-topo.json")
	for _, scheme := range []string{"hop", "bfs", "id"} {
		err := runOrdering([]string{
			"-topology", topo, "-routes", routes, "-scheme", scheme, "-out-topology", out,
		})
		if err != nil {
			t.Errorf("ordering scheme %s failed: %v", scheme, err)
		}
		if _, err := os.Stat(out); err != nil {
			t.Errorf("scheme %s wrote no topology: %v", scheme, err)
		}
	}
	if err := runOrdering([]string{"-topology", topo, "-routes", routes, "-scheme", "xyz"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunSynthAndSim(t *testing.T) {
	_, tr, _ := writeRing(t)
	dir := t.TempDir()
	outTopo := filepath.Join(dir, "synth-topo.json")
	outRoutes := filepath.Join(dir, "synth-routes.json")
	err := runSynth(context.Background(), []string{
		"-traffic", tr, "-switches", "3",
		"-out-topology", outTopo, "-out-routes", outRoutes,
	})
	if err != nil {
		t.Fatalf("synth failed: %v", err)
	}
	err = runSim(context.Background(), []string{
		"-topology", outTopo, "-routes", outRoutes, "-traffic", tr,
		"-cycles", "5000", "-packets", "10",
	})
	if err != nil {
		t.Fatalf("sim failed: %v", err)
	}
	if err := runSynth(context.Background(), []string{"-switches", "3"}); err == nil {
		t.Error("synth without traffic accepted")
	}
	if err := runSim(context.Background(), []string{"-topology", outTopo, "-routes", outRoutes}); err == nil {
		t.Error("sim without traffic accepted")
	}
}

func TestRunDot(t *testing.T) {
	topo, _, routes := writeRing(t)
	if err := runDot([]string{"-topology", topo}); err != nil {
		t.Errorf("dot failed: %v", err)
	}
	if err := runDot([]string{"-topology", topo, "-cdg", "-routes", routes}); err != nil {
		t.Errorf("dot -cdg failed: %v", err)
	}
	if err := runDot([]string{"-topology", topo, "-cdg"}); err == nil {
		t.Error("dot -cdg without routes accepted")
	}
	if err := runDot([]string{}); err == nil {
		t.Error("dot without topology accepted")
	}
}

func TestRunBench(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d26.json")
	if err := runBench([]string{"-name", "D26_media", "-out", out}); err != nil {
		t.Fatalf("bench failed: %v", err)
	}
	g, err := nocdr.LoadTraffic(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCores() != 26 {
		t.Errorf("exported benchmark has %d cores", g.NumCores())
	}
	if err := runBench([]string{"-name", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runBench([]string{}); err == nil {
		t.Error("bench without name accepted")
	}
}

func TestRoutesInconsistentWithTraffic(t *testing.T) {
	topo, _, routes := writeRing(t)
	// Traffic with an extra flow that has no route: validation must fail.
	dir := t.TempDir()
	g := nocdr.NewTraffic("bad")
	for i := 0; i < 5; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 1, 1)
	g.MustAddFlow(1, 2, 1)
	g.MustAddFlow(2, 3, 1)
	g.MustAddFlow(3, 4, 1)
	g.MustAddFlow(4, 0, 1)
	badTraffic := filepath.Join(dir, "bad.json")
	if err := nocdr.SaveJSON(badTraffic, g); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-topology", topo, "-routes", routes, "-traffic", badTraffic}); err == nil {
		t.Error("inconsistent traffic accepted")
	}
}
