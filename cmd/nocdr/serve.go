package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/serve"
)

// runServe implements `nocdr serve`: the HTTP/JSON job service over the
// removal/sweep/simulation pipeline (see internal/serve for the API).
// With -join it registers itself as a worker of a coordinator fleet and
// heartbeats until shutdown. SIGINT/SIGTERM shut it down gracefully:
// in-flight jobs get their contexts canceled, the pool drains, then the
// listener closes.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "job pool size (0 = max(8, NumCPU))")
	sweepParallel := fs.Int("sweep-parallel", 0, "per-sweep runner worker count (0 = NumCPU)")
	join := fs.String("join", "", "coordinator base URL to join as a worker: register on startup, then heartbeat")
	advertise := fs.String("advertise", "", "base URL this instance advertises to the coordinator (default http://<addr>)")
	token := fs.String("token", os.Getenv(fabric.TokenEnv),
		"shared fleet bearer token: required on every mutating endpoint and presented when joining (env "+fabric.TokenEnv+")")
	cacheDir := fs.String("cache-dir", "", "directory for the on-disk result-cache tier (empty = in-memory only)")
	cacheEntries := fs.Int("cache-entries", 0, "in-memory result-cache entry bound (0 = default)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	role := "coordinator"
	if *join != "" {
		role = "worker"
	}
	srv := serve.New(serve.Options{
		Workers:       *workers,
		SweepParallel: *sweepParallel,
		Cache:         fabric.NewCache(fabric.CacheOptions{MaxEntries: *cacheEntries, Dir: *cacheDir}),
		AuthToken:     *token,
		Role:          role,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nocdr serve: listening on %s (%s)\n", *addr, role)

	if *join != "" {
		self := *advertise
		if self == "" {
			self = advertiseURL(*addr)
		}
		err := fabric.Join(ctx, *join, self, fabric.JoinOptions{
			Token: *token,
			OnState: func(msg string) {
				fmt.Fprintf(os.Stderr, "nocdr serve: fleet %s\n", msg)
			},
		})
		if err != nil {
			httpSrv.Close()
			srv.Close()
			return err
		}
	}

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "nocdr serve: shutting down")
	// Cancel job contexts first: SSE handlers block until their job is
	// terminal, and Shutdown waits for those handlers — canceling after
	// Shutdown would always ride out the full timeout.
	srv.Cancel()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// advertiseURL derives the URL a joining worker advertises from its
// listen address: wildcard hosts become loopback, since a coordinator
// cannot dial 0.0.0.0 back. Cross-machine fleets pass -advertise.
func advertiseURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
