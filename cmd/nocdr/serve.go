package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/serve"
)

// runServe implements `nocdr serve`: the HTTP/JSON job service over the
// removal/sweep/simulation pipeline (see internal/serve for the API).
// With -join it registers itself as a worker of a coordinator fleet,
// heartbeats until shutdown, and links its result cache to the
// coordinator's: local misses pull from it, fresh results push back.
// With -tls-cert/-tls-key the listener speaks TLS (-tls-ca additionally
// demands client certificates, and pins the coordinator's certificate on
// outbound fleet calls). SIGINT/SIGTERM shut it down gracefully:
// in-flight jobs get their contexts canceled, the pool drains, then the
// listener closes.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "job pool size (0 = max(8, NumCPU))")
	sweepParallel := fs.Int("sweep-parallel", 0, "per-sweep runner worker count (0 = NumCPU)")
	join := fs.String("join", "", "coordinator base URL to join as a worker: register on startup, then heartbeat")
	advertise := fs.String("advertise", "", "base URL this instance advertises to the coordinator (default http(s)://<addr>)")
	token := fs.String("token", os.Getenv(fabric.TokenEnv),
		"shared fleet bearer token: required on every mutating endpoint and presented when joining (env "+fabric.TokenEnv+")")
	cacheDir := fs.String("cache-dir", "", "directory for the on-disk result-cache tier (empty = in-memory only)")
	cacheEntries := fs.Int("cache-entries", 0, "in-memory result-cache entry bound (0 = default)")
	tlsCert := fs.String("tls-cert", "", "PEM certificate for the listener (with -tls-key; empty = plain HTTP)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle: require client certificates signed by it (mTLS) and pin outbound fleet calls to it")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	useTLS := *tlsCert != "" || *tlsKey != ""
	var fleetClient *http.Client
	if useTLS || *tlsCA != "" {
		ccfg, err := fabric.ClientTLS(*tlsCA, *tlsCert, *tlsKey)
		if err != nil {
			return fmt.Errorf("nocdr serve: %w", err)
		}
		// Membership and cache-propagation calls are small; fail fast.
		fleetClient = fabric.HTTPClient(ccfg, 10*time.Second)
	}

	role := "coordinator"
	cacheOpts := fabric.CacheOptions{MaxEntries: *cacheEntries, Dir: *cacheDir}
	if *join != "" {
		role = "worker"
		// Link the worker's cache to the coordinator's: misses pull
		// through, fresh results push back for the next dispatch.
		cacheOpts.Upstream = &fabric.Upstream{URL: *join, Token: *token, Client: fleetClient}
	}
	cache := fabric.NewCache(cacheOpts)
	defer cache.Close()

	srv := serve.New(serve.Options{
		Workers:       *workers,
		SweepParallel: *sweepParallel,
		Cache:         cache,
		AuthToken:     *token,
		Role:          role,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	scheme := "http"
	if useTLS {
		scfg, err := fabric.ServerTLS(*tlsCert, *tlsKey, *tlsCA)
		if err != nil {
			srv.Close()
			return fmt.Errorf("nocdr serve: %w", err)
		}
		httpSrv.TLSConfig = scfg
		scheme = "https"
	}

	errc := make(chan error, 1)
	go func() {
		if useTLS {
			errc <- httpSrv.ListenAndServeTLS("", "") // certs live in TLSConfig
			return
		}
		errc <- httpSrv.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "nocdr serve: listening on %s (%s, %s)\n", *addr, role, scheme)

	if *join != "" {
		self := *advertise
		if self == "" {
			self = advertiseURL(*addr, scheme)
		}
		err := fabric.Join(ctx, *join, self, fabric.JoinOptions{
			Token:  *token,
			Client: fleetClient,
			OnState: func(msg string) {
				fmt.Fprintf(os.Stderr, "nocdr serve: fleet %s\n", msg)
			},
		})
		if err != nil {
			httpSrv.Close()
			srv.Close()
			return err
		}
	}

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "nocdr serve: shutting down")
	// Cancel job contexts first: SSE handlers block until their job is
	// terminal, and Shutdown waits for those handlers — canceling after
	// Shutdown would always ride out the full timeout.
	srv.Cancel()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// advertiseURL derives the URL a joining worker advertises from its
// listen address: wildcard hosts become loopback, since a coordinator
// cannot dial 0.0.0.0 back. Cross-machine fleets pass -advertise.
func advertiseURL(addr, scheme string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return scheme + "://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return scheme + "://" + net.JoinHostPort(host, port)
}
