package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nocdr/nocdr/internal/serve"
)

// runServe implements `nocdr serve`: the HTTP/JSON job service over the
// removal/sweep/simulation pipeline (see internal/serve for the API).
// SIGINT/SIGTERM shut it down gracefully: in-flight jobs get their
// contexts canceled, the pool drains, then the listener closes.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "job pool size (0 = max(8, NumCPU))")
	sweepParallel := fs.Int("sweep-parallel", 0, "per-sweep runner worker count (0 = NumCPU)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(serve.Options{Workers: *workers, SweepParallel: *sweepParallel})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nocdr serve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "nocdr serve: shutting down")
	// Cancel job contexts first: SSE handlers block until their job is
	// terminal, and Shutdown waits for those handlers — canceling after
	// Shutdown would always ride out the full timeout.
	srv.Cancel()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
