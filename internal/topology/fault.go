package topology

import (
	"fmt"
	"sort"
)

// Link-fault masking. A faulted link stays in the topology — its ID, its
// endpoints and its provisioned VCs are unchanged, so channel indices and
// serialized files remain stable — but it is administratively down:
// routing generators must not place new routes over it and the removal
// algorithm refuses to provision additional VCs on it. Masking rather
// than deleting is what lets "fault, regenerate routes, re-remove" run as
// a pure re-routing step, the dynamic-reconfiguration setting the paper's
// removal method is pitched for.

// Fault marks the given links as failed. Faulting an already-faulted link
// is a no-op; unknown link IDs are an error (and no links are faulted).
func (t *Topology) Fault(ids ...LinkID) error {
	for _, id := range ids {
		if !t.ValidLink(id) {
			return fmt.Errorf("topology %q: fault on unknown link %d", t.Name, id)
		}
	}
	if t.faulted == nil {
		t.faulted = make(map[LinkID]bool, len(ids))
	}
	for _, id := range ids {
		t.faulted[id] = true
	}
	return nil
}

// Faulted reports whether link id is masked as failed. Unknown IDs report
// false.
func (t *Topology) Faulted(id LinkID) bool { return t.faulted[id] }

// FaultedChannel reports whether channel c sits on a faulted link.
func (t *Topology) FaultedChannel(c Channel) bool { return t.faulted[c.Link] }

// NumFaulted returns the number of faulted links.
func (t *Topology) NumFaulted() int { return len(t.faulted) }

// FaultedLinks returns the faulted link IDs in ascending order.
func (t *Topology) FaultedLinks() []LinkID {
	out := make([]LinkID, 0, len(t.faulted))
	for id := range t.faulted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
