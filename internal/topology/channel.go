package topology

import (
	"fmt"
	"strings"
)

// Channel identifies one virtual channel on one physical link — the
// resource unit of Definition 3 and the vertex type of the channel
// dependency graph (Definition 4).
type Channel struct {
	Link LinkID
	VC   int
}

// Chan is shorthand for constructing a Channel.
func Chan(link LinkID, vc int) Channel { return Channel{Link: link, VC: vc} }

// Valid reports whether c names a provisioned channel of t.
func (t *Topology) ValidChannel(c Channel) bool {
	return t.ValidLink(c.Link) && c.VC >= 0 && c.VC < t.links[c.Link].VCs
}

// Channels enumerates every provisioned channel in (link, VC) order.
func (t *Topology) Channels() []Channel {
	out := make([]Channel, 0, t.TotalVCs())
	for _, l := range t.links {
		for vc := 0; vc < l.VCs; vc++ {
			out = append(out, Channel{Link: l.ID, VC: vc})
		}
	}
	return out
}

// ChannelName renders a channel in the paper's notation: the base VC of
// link Lk prints as "Lk", the first duplicate as "Lk'", the second as
// "Lk”", and higher VC indices as "Lk'n".
func (t *Topology) ChannelName(c Channel) string {
	base := fmt.Sprintf("L%d", c.Link+1)
	switch {
	case c.VC <= 0:
		return base
	case c.VC <= 2:
		return base + strings.Repeat("'", c.VC)
	default:
		return fmt.Sprintf("%s'%d", base, c.VC)
	}
}

// ChannelEndpoints returns the switches a channel connects.
func (t *Topology) ChannelEndpoints(c Channel) (from, to SwitchID) {
	l := t.Link(c.Link)
	return l.From, l.To
}
