// Package topology models the paper's Topology Graph TG(S,L): a directed
// graph whose vertices are switches and whose edges are unidirectional
// physical links (Definition 1). Each physical link carries one or more
// virtual channels; a (link, VC) pair is a Channel, the unit of resource
// the deadlock-removal algorithm reasons about (Definition 3–4).
//
// The package is deliberately free of routing and traffic concerns; those
// live in internal/route and internal/traffic.
package topology

import (
	"fmt"
	"sort"
)

// SwitchID identifies a switch (a vertex of TG).
type SwitchID int

// LinkID identifies a unidirectional physical link (an edge of TG).
type LinkID int

// Switch is a vertex of the topology graph.
type Switch struct {
	ID   SwitchID
	Name string
}

// Link is a unidirectional physical link between two switches. VCs is the
// number of virtual channels provisioned on the link; every link starts
// with one and the deadlock-removal algorithm may add more.
type Link struct {
	ID   LinkID
	From SwitchID
	To   SwitchID
	VCs  int
}

// Topology is a mutable topology graph. The zero value is empty and ready
// to use; prefer New for capacity hints.
type Topology struct {
	Name string

	switches []Switch
	links    []Link
	out      map[SwitchID][]LinkID
	in       map[SwitchID][]LinkID
	byPair   map[[2]SwitchID]LinkID

	// coreAttach maps an application core ID (from the communication
	// graph) to the switch its network interface connects to.
	coreAttach map[int]SwitchID

	// faulted masks administratively-down links (see fault.go). A nil map
	// means no faults; lookups on nil are fine, so it is allocated lazily.
	faulted map[LinkID]bool
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{
		Name:       name,
		out:        make(map[SwitchID][]LinkID),
		in:         make(map[SwitchID][]LinkID),
		byPair:     make(map[[2]SwitchID]LinkID),
		coreAttach: make(map[int]SwitchID),
	}
}

func (t *Topology) init() {
	if t.out == nil {
		t.out = make(map[SwitchID][]LinkID)
		t.in = make(map[SwitchID][]LinkID)
		t.byPair = make(map[[2]SwitchID]LinkID)
		t.coreAttach = make(map[int]SwitchID)
	}
}

// AddSwitch appends a new switch and returns its ID. An empty name is
// replaced by "SW<id+1>" to match the paper's figures.
func (t *Topology) AddSwitch(name string) SwitchID {
	t.init()
	id := SwitchID(len(t.switches))
	if name == "" {
		name = fmt.Sprintf("SW%d", id+1)
	}
	t.switches = append(t.switches, Switch{ID: id, Name: name})
	return id
}

// AddLink inserts a unidirectional physical link from→to with one VC and
// returns its ID. It returns an error for unknown endpoints, self-links,
// or a duplicate (from, to) pair — parallel physical links are expressed
// as extra VCs, matching the paper's cost model.
func (t *Topology) AddLink(from, to SwitchID) (LinkID, error) {
	t.init()
	if !t.ValidSwitch(from) || !t.ValidSwitch(to) {
		return 0, fmt.Errorf("topology: link %d→%d references unknown switch", from, to)
	}
	if from == to {
		return 0, fmt.Errorf("topology: self-link on switch %d", from)
	}
	key := [2]SwitchID{from, to}
	if _, dup := t.byPair[key]; dup {
		return 0, fmt.Errorf("topology: duplicate link %d→%d (add a VC instead)", from, to)
	}
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, From: from, To: to, VCs: 1})
	t.out[from] = append(t.out[from], id)
	t.in[to] = append(t.in[to], id)
	t.byPair[key] = id
	return id, nil
}

// MustAddLink is AddLink for programmatic construction where the inputs
// are known valid; it panics on error.
func (t *Topology) MustAddLink(from, to SwitchID) LinkID {
	id, err := t.AddLink(from, to)
	if err != nil {
		panic(err)
	}
	return id
}

// AddBidi adds a pair of opposing links between a and b and returns their
// IDs (a→b first).
func (t *Topology) AddBidi(a, b SwitchID) (LinkID, LinkID, error) {
	ab, err := t.AddLink(a, b)
	if err != nil {
		return 0, 0, err
	}
	ba, err := t.AddLink(b, a)
	if err != nil {
		return 0, 0, err
	}
	return ab, ba, nil
}

// AddVC provisions one more virtual channel on the given link and returns
// the index of the new VC. Faulted links cannot grow — a failed link has
// no working wires to multiplex another VC onto.
func (t *Topology) AddVC(id LinkID) (int, error) {
	if !t.ValidLink(id) {
		return 0, fmt.Errorf("topology: AddVC on unknown link %d", id)
	}
	if t.faulted[id] {
		return 0, fmt.Errorf("topology: AddVC on faulted link %d", id)
	}
	t.links[id].VCs++
	return t.links[id].VCs - 1, nil
}

// ValidSwitch reports whether id names an existing switch.
func (t *Topology) ValidSwitch(id SwitchID) bool {
	return id >= 0 && int(id) < len(t.switches)
}

// ValidLink reports whether id names an existing link.
func (t *Topology) ValidLink(id LinkID) bool {
	return id >= 0 && int(id) < len(t.links)
}

// Switch returns the switch with the given ID; it panics on a bad ID.
func (t *Topology) Switch(id SwitchID) Switch {
	if !t.ValidSwitch(id) {
		panic(fmt.Sprintf("topology: unknown switch %d", id))
	}
	return t.switches[id]
}

// Link returns the link with the given ID; it panics on a bad ID.
func (t *Topology) Link(id LinkID) Link {
	if !t.ValidLink(id) {
		panic(fmt.Sprintf("topology: unknown link %d", id))
	}
	return t.links[id]
}

// NumSwitches reports the number of switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumLinks reports the number of physical links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Switches returns a copy of the switch list.
func (t *Topology) Switches() []Switch {
	out := make([]Switch, len(t.switches))
	copy(out, t.switches)
	return out
}

// Links returns a copy of the link list.
func (t *Topology) Links() []Link {
	out := make([]Link, len(t.links))
	copy(out, t.links)
	return out
}

// OutLinks returns the IDs of links leaving sw, in insertion order.
func (t *Topology) OutLinks(sw SwitchID) []LinkID {
	return append([]LinkID(nil), t.out[sw]...)
}

// InLinks returns the IDs of links entering sw, in insertion order.
func (t *Topology) InLinks(sw SwitchID) []LinkID {
	return append([]LinkID(nil), t.in[sw]...)
}

// FindLink returns the link from→to, if present.
func (t *Topology) FindLink(from, to SwitchID) (LinkID, bool) {
	id, ok := t.byPair[[2]SwitchID{from, to}]
	return id, ok
}

// AttachCore records that application core `core` is connected (through
// its network interface) to switch sw. Re-attaching moves the core.
func (t *Topology) AttachCore(core int, sw SwitchID) error {
	t.init()
	if !t.ValidSwitch(sw) {
		return fmt.Errorf("topology: attach core %d to unknown switch %d", core, sw)
	}
	t.coreAttach[core] = sw
	return nil
}

// SwitchOf returns the switch a core is attached to.
func (t *Topology) SwitchOf(core int) (SwitchID, bool) {
	sw, ok := t.coreAttach[core]
	return sw, ok
}

// Cores returns the attached core IDs in ascending order.
func (t *Topology) Cores() []int {
	out := make([]int, 0, len(t.coreAttach))
	for c := range t.coreAttach {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// CoresAt returns the core IDs attached to switch sw in ascending order.
func (t *Topology) CoresAt(sw SwitchID) []int {
	var out []int
	for c, s := range t.coreAttach {
		if s == sw {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// TotalVCs returns the total number of channels (sum of VCs over links).
func (t *Topology) TotalVCs() int {
	n := 0
	for _, l := range t.links {
		n += l.VCs
	}
	return n
}

// ExtraVCs returns the number of channels beyond the baseline of one per
// physical link — the |L'|−|L| quantity the paper minimizes.
func (t *Topology) ExtraVCs() int { return t.TotalVCs() - len(t.links) }

// MaxVCs returns the largest VC count on any link (1 for an empty
// topology's sake it returns 0 when there are no links).
func (t *Topology) MaxVCs() int {
	m := 0
	for _, l := range t.links {
		if l.VCs > m {
			m = l.VCs
		}
	}
	return m
}

// Degree returns the number of in plus out physical links at sw. Core
// attachments are not counted.
func (t *Topology) Degree(sw SwitchID) int {
	return len(t.out[sw]) + len(t.in[sw])
}

// Clone returns a deep copy of the topology.
func (t *Topology) Clone() *Topology {
	c := New(t.Name)
	c.switches = append([]Switch(nil), t.switches...)
	c.links = append([]Link(nil), t.links...)
	for sw, ids := range t.out {
		c.out[sw] = append([]LinkID(nil), ids...)
	}
	for sw, ids := range t.in {
		c.in[sw] = append([]LinkID(nil), ids...)
	}
	for k, v := range t.byPair {
		c.byPair[k] = v
	}
	for k, v := range t.coreAttach {
		c.coreAttach[k] = v
	}
	if len(t.faulted) > 0 {
		c.faulted = make(map[LinkID]bool, len(t.faulted))
		for k, v := range t.faulted {
			c.faulted[k] = v
		}
	}
	return c
}

// Validate checks structural invariants: link endpoints exist, no
// duplicate (from,to) pairs, VCs >= 1, core attachments reference valid
// switches, and the adjacency indexes agree with the link list.
func (t *Topology) Validate() error {
	seen := make(map[[2]SwitchID]bool, len(t.links))
	for _, l := range t.links {
		if !t.ValidSwitch(l.From) || !t.ValidSwitch(l.To) {
			return fmt.Errorf("topology %q: link %d has unknown endpoint", t.Name, l.ID)
		}
		if l.From == l.To {
			return fmt.Errorf("topology %q: link %d is a self-link", t.Name, l.ID)
		}
		if l.VCs < 1 {
			return fmt.Errorf("topology %q: link %d has %d VCs", t.Name, l.ID, l.VCs)
		}
		key := [2]SwitchID{l.From, l.To}
		if seen[key] {
			return fmt.Errorf("topology %q: duplicate link %d→%d", t.Name, l.From, l.To)
		}
		seen[key] = true
	}
	for core, sw := range t.coreAttach {
		if !t.ValidSwitch(sw) {
			return fmt.Errorf("topology %q: core %d attached to unknown switch %d", t.Name, core, sw)
		}
	}
	nOut, nIn := 0, 0
	for _, ids := range t.out {
		nOut += len(ids)
	}
	for _, ids := range t.in {
		nIn += len(ids)
	}
	if nOut != len(t.links) || nIn != len(t.links) {
		return fmt.Errorf("topology %q: adjacency index out of sync (%d out, %d in, %d links)",
			t.Name, nOut, nIn, len(t.links))
	}
	return nil
}
