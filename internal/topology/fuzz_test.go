package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary bytes never panic the topology parser
// and that anything it accepts is valid and round-trips losslessly.
func FuzzRead(f *testing.F) {
	tp := New("seed")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	tp.MustAddLink(a, b)
	tp.AddVC(0)
	tp.AttachCore(0, a)
	var buf bytes.Buffer
	if err := tp.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","switches":[],"links":[]}`)
	f.Add(`{"name":"x","switches":[{"id":0,"name":"a"}],"links":[{"id":0,"from":0,"to":0,"vcs":1}]}`)
	f.Add(`not json at all`)
	f.Add(`{"switches":[{"id":9}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := Read(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted topology fails Validate: %v\ninput: %q", err, src)
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		if again.NumSwitches() != got.NumSwitches() || again.NumLinks() != got.NumLinks() ||
			again.TotalVCs() != got.TotalVCs() {
			t.Fatal("round trip not stable")
		}
	})
}
