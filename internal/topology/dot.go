package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the topology in Graphviz DOT format. Links with more
// than one VC are labelled "xN"; core attachments appear as small boxes.
// The output is deterministic.
func (t *Topology) WriteDOT(w io.Writer) error {
	var b strings.Builder
	name := t.Name
	if name == "" {
		name = "topology"
	}
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	for _, s := range t.switches {
		fmt.Fprintf(&b, "  s%d [label=%q];\n", s.ID, s.Name)
	}
	for _, l := range t.links {
		if l.VCs > 1 {
			fmt.Fprintf(&b, "  s%d -> s%d [label=\"L%d x%d\"];\n", l.From, l.To, l.ID+1, l.VCs)
		} else {
			fmt.Fprintf(&b, "  s%d -> s%d [label=\"L%d\"];\n", l.From, l.To, l.ID+1)
		}
	}
	for _, c := range t.Cores() {
		sw := t.coreAttach[c]
		fmt.Fprintf(&b, "  c%d [shape=box, label=\"core%d\"];\n", c, c)
		fmt.Fprintf(&b, "  c%d -> s%d [dir=both, style=dashed];\n", c, sw)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
