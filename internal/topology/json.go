package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/nocdr/nocdr/internal/nocerr"
)

// jsonTopology is the on-disk schema, kept separate from the in-memory
// representation so the indexes never leak into files.
type jsonTopology struct {
	Name     string     `json:"name"`
	Switches []jsonSw   `json:"switches"`
	Links    []jsonLink `json:"links"`
	Cores    []jsonCore `json:"cores,omitempty"`
	// Faults lists masked (failed) link IDs, ascending. Absent when the
	// topology is fault-free, so pre-fault files round-trip unchanged.
	Faults []int `json:"faults,omitempty"`
}

type jsonSw struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

type jsonLink struct {
	ID   int `json:"id"`
	From int `json:"from"`
	To   int `json:"to"`
	VCs  int `json:"vcs"`
}

type jsonCore struct {
	Core   int `json:"core"`
	Switch int `json:"switch"`
}

// MarshalJSON encodes the topology in a stable, human-editable schema.
func (t *Topology) MarshalJSON() ([]byte, error) {
	jt := jsonTopology{Name: t.Name}
	for _, s := range t.switches {
		jt.Switches = append(jt.Switches, jsonSw{ID: int(s.ID), Name: s.Name})
	}
	for _, l := range t.links {
		jt.Links = append(jt.Links, jsonLink{ID: int(l.ID), From: int(l.From), To: int(l.To), VCs: l.VCs})
	}
	cores := t.Cores()
	for _, c := range cores {
		sw := t.coreAttach[c]
		jt.Cores = append(jt.Cores, jsonCore{Core: c, Switch: int(sw)})
	}
	for _, id := range t.FaultedLinks() {
		jt.Faults = append(jt.Faults, int(id))
	}
	return json.MarshalIndent(jt, "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON. Switch and
// link IDs must be dense and in order (0..n-1); this keeps files
// unambiguous and round-trips exact.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var jt jsonTopology
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("topology: %w: %w", nocerr.ErrInvalidInput, err)
	}
	nt := New(jt.Name)
	sort.Slice(jt.Switches, func(i, j int) bool { return jt.Switches[i].ID < jt.Switches[j].ID })
	for i, s := range jt.Switches {
		if s.ID != i {
			return fmt.Errorf("topology: switch IDs must be dense, got %d at position %d: %w", s.ID, i, nocerr.ErrInvalidInput)
		}
		nt.AddSwitch(s.Name)
	}
	sort.Slice(jt.Links, func(i, j int) bool { return jt.Links[i].ID < jt.Links[j].ID })
	for i, l := range jt.Links {
		if l.ID != i {
			return fmt.Errorf("topology: link IDs must be dense, got %d at position %d: %w", l.ID, i, nocerr.ErrInvalidInput)
		}
		id, err := nt.AddLink(SwitchID(l.From), SwitchID(l.To))
		if err != nil {
			return err
		}
		if l.VCs < 1 {
			return fmt.Errorf("topology: link %d has %d VCs: %w", l.ID, l.VCs, nocerr.ErrInvalidInput)
		}
		for nt.links[id].VCs < l.VCs {
			if _, err := nt.AddVC(id); err != nil {
				return err
			}
		}
	}
	for _, c := range jt.Cores {
		if err := nt.AttachCore(c.Core, SwitchID(c.Switch)); err != nil {
			return err
		}
	}
	for _, id := range jt.Faults {
		if err := nt.Fault(LinkID(id)); err != nil {
			return fmt.Errorf("topology: %w: %w", nocerr.ErrInvalidInput, err)
		}
	}
	*t = *nt
	return nil
}

// Write serializes the topology as JSON to w.
func (t *Topology) Write(w io.Writer) error {
	data, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Read parses a topology from JSON.
func Read(r io.Reader) (*Topology, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	t := New("")
	if err := t.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
