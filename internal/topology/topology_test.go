package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperRing builds the 4-switch ring of Figure 1: SW1→SW2→SW3→SW4→SW1
// with links L1..L4 (IDs 0..3).
func paperRing(t *testing.T) *Topology {
	t.Helper()
	tp := New("figure1")
	for i := 0; i < 4; i++ {
		tp.AddSwitch("")
	}
	for i := 0; i < 4; i++ {
		if _, err := tp.AddLink(SwitchID(i), SwitchID((i+1)%4)); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	return tp
}

func TestAddSwitchNames(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("mem")
	if tp.Switch(a).Name != "SW1" {
		t.Errorf("default name = %q, want SW1", tp.Switch(a).Name)
	}
	if tp.Switch(b).Name != "mem" {
		t.Errorf("explicit name = %q", tp.Switch(b).Name)
	}
}

func TestAddLinkValidation(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if _, err := tp.AddLink(a, a); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := tp.AddLink(a, 99); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := tp.AddLink(a, b); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	if _, err := tp.AddLink(a, b); err == nil {
		t.Error("duplicate link accepted")
	}
	// Opposite direction is a distinct link.
	if _, err := tp.AddLink(b, a); err != nil {
		t.Errorf("reverse link rejected: %v", err)
	}
}

func TestAddBidi(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	ab, ba, err := tp.AddBidi(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Link(ab).From != a || tp.Link(ba).From != b {
		t.Error("AddBidi link directions wrong")
	}
}

func TestAddVC(t *testing.T) {
	tp := paperRing(t)
	vc, err := tp.AddVC(0)
	if err != nil {
		t.Fatal(err)
	}
	if vc != 1 {
		t.Errorf("new VC index = %d, want 1", vc)
	}
	if tp.Link(0).VCs != 2 {
		t.Errorf("link 0 VCs = %d, want 2", tp.Link(0).VCs)
	}
	if tp.ExtraVCs() != 1 {
		t.Errorf("ExtraVCs = %d, want 1", tp.ExtraVCs())
	}
	if tp.TotalVCs() != 5 {
		t.Errorf("TotalVCs = %d, want 5", tp.TotalVCs())
	}
	if _, err := tp.AddVC(99); err == nil {
		t.Error("AddVC on unknown link accepted")
	}
}

func TestAdjacency(t *testing.T) {
	tp := paperRing(t)
	if got := tp.OutLinks(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("OutLinks(0) = %v", got)
	}
	if got := tp.InLinks(0); len(got) != 1 || got[0] != 3 {
		t.Errorf("InLinks(0) = %v", got)
	}
	if tp.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2", tp.Degree(0))
	}
	if id, ok := tp.FindLink(1, 2); !ok || id != 1 {
		t.Errorf("FindLink(1,2) = %v,%v", id, ok)
	}
	if _, ok := tp.FindLink(2, 1); ok {
		t.Error("FindLink found nonexistent reverse link")
	}
}

func TestCoreAttachment(t *testing.T) {
	tp := paperRing(t)
	if err := tp.AttachCore(7, 2); err != nil {
		t.Fatal(err)
	}
	if err := tp.AttachCore(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AttachCore(9, 99); err == nil {
		t.Error("attach to unknown switch accepted")
	}
	if sw, ok := tp.SwitchOf(7); !ok || sw != 2 {
		t.Errorf("SwitchOf(7) = %v,%v", sw, ok)
	}
	if got := tp.Cores(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("Cores() = %v", got)
	}
	if got := tp.CoresAt(2); len(got) != 1 || got[0] != 7 {
		t.Errorf("CoresAt(2) = %v", got)
	}
}

func TestChannels(t *testing.T) {
	tp := paperRing(t)
	tp.AddVC(1)
	chs := tp.Channels()
	if len(chs) != 5 {
		t.Fatalf("Channels() returned %d, want 5", len(chs))
	}
	if !tp.ValidChannel(Chan(1, 1)) {
		t.Error("Chan(1,1) should be valid after AddVC")
	}
	if tp.ValidChannel(Chan(0, 1)) {
		t.Error("Chan(0,1) should be invalid")
	}
	if tp.ValidChannel(Chan(9, 0)) {
		t.Error("channel on unknown link valid")
	}
}

func TestChannelName(t *testing.T) {
	tp := paperRing(t)
	cases := []struct {
		c    Channel
		want string
	}{
		{Chan(0, 0), "L1"},
		{Chan(0, 1), "L1'"},
		{Chan(0, 2), "L1''"},
		{Chan(0, 3), "L1'3"},
		{Chan(3, 0), "L4"},
	}
	for _, tc := range cases {
		if got := tp.ChannelName(tc.c); got != tc.want {
			t.Errorf("ChannelName(%v) = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestChannelEndpoints(t *testing.T) {
	tp := paperRing(t)
	from, to := tp.ChannelEndpoints(Chan(2, 0))
	if from != 2 || to != 3 {
		t.Errorf("ChannelEndpoints(L3) = %d→%d, want 2→3", from, to)
	}
}

func TestValidate(t *testing.T) {
	tp := paperRing(t)
	if err := tp.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	tp.links[0].VCs = 0
	if err := tp.Validate(); err == nil {
		t.Error("zero-VC link accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tp := paperRing(t)
	tp.AttachCore(1, 1)
	c := tp.Clone()
	c.AddVC(0)
	c.AddSwitch("")
	c.AttachCore(2, 0)
	if tp.Link(0).VCs != 1 {
		t.Error("clone AddVC affected original")
	}
	if tp.NumSwitches() != 4 {
		t.Error("clone AddSwitch affected original")
	}
	if _, ok := tp.SwitchOf(2); ok {
		t.Error("clone AttachCore affected original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tp := paperRing(t)
	tp.AddVC(2)
	tp.AttachCore(0, 0)
	tp.AttachCore(5, 3)
	var buf bytes.Buffer
	if err := tp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tp.Name || got.NumSwitches() != 4 || got.NumLinks() != 4 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Link(2).VCs != 2 {
		t.Errorf("VCs lost in round trip: %d", got.Link(2).VCs)
	}
	if sw, ok := got.SwitchOf(5); !ok || sw != 3 {
		t.Error("core attachment lost in round trip")
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","switches":[{"id":1,"name":"a"}],"links":[]}`,                                                     // non-dense switch ID
		`{"name":"x","switches":[{"id":0,"name":"a"},{"id":1,"name":"b"}],"links":[{"id":0,"from":0,"to":1,"vcs":0}]}`, // zero VCs
		`{"name":"x","switches":[{"id":0,"name":"a"}],"links":[{"id":0,"from":0,"to":0,"vcs":1}]}`,                     // self link
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	tp := paperRing(t)
	tp.AddVC(0)
	tp.AttachCore(0, 0)
	var buf bytes.Buffer
	if err := tp.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "s0 -> s1", "L1 x2", "core0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// Property: a random construction sequence always yields a topology that
// passes Validate and whose JSON round-trips to an identical structure.
func TestRandomTopologyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := New("prop")
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			tp.AddSwitch("")
		}
		for i := 0; i < 3*n; i++ {
			a := SwitchID(rng.Intn(n))
			b := SwitchID(rng.Intn(n))
			if a != b {
				tp.AddLink(a, b) // duplicates rejected, fine
			}
		}
		for i := 0; i < n; i++ {
			if tp.NumLinks() > 0 {
				tp.AddVC(LinkID(rng.Intn(tp.NumLinks())))
			}
			tp.AttachCore(i, SwitchID(rng.Intn(n)))
		}
		if tp.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if tp.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumSwitches() != tp.NumSwitches() || got.NumLinks() != tp.NumLinks() ||
			got.TotalVCs() != tp.TotalVCs() || len(got.Cores()) != len(tp.Cores()) {
			return false
		}
		for _, l := range tp.Links() {
			g := got.Link(l.ID)
			if g.From != l.From || g.To != l.To || g.VCs != l.VCs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
