package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/nocdr/nocdr/internal/nocerr"
)

// The paper evaluates on six SoC benchmarks from Murali et al. (ASPDAC'09)
// that were never released publicly. The constructors below are synthetic
// reconstructions that match every parameter the paper states (core
// counts, fan-out, application domain) and the structural character the
// names imply (pipelines and hubs for the media SoCs, uniform k-out-degree
// for the D36 family, shared-target bottleneck for D35_bot, dual pipelines
// for the TV picture-in-picture design). All are deterministic: the random
// family uses fixed seeds.

// BenchmarkNames lists the paper's benchmarks in the order of Figure 10.
func BenchmarkNames() []string {
	return []string{"D26_media", "D36_4", "D36_6", "D36_8", "D35_bot", "D38_tvo"}
}

// ByName returns the named benchmark graph. Valid names are those in
// BenchmarkNames.
func ByName(name string) (*Graph, error) {
	switch name {
	case "D26_media":
		return D26Media(), nil
	case "D36_4":
		return D36(4), nil
	case "D36_6":
		return D36(6), nil
	case "D36_8":
		return D36(8), nil
	case "D35_bot":
		return D35Bot(), nil
	case "D38_tvo":
		return D38TVO(), nil
	}
	return nil, fmt.Errorf("traffic: unknown benchmark %q (valid: %v): %w", name, BenchmarkNames(), nocerr.ErrNotFound)
}

// AllBenchmarks returns every benchmark graph in BenchmarkNames order.
func AllBenchmarks() []*Graph {
	names := BenchmarkNames()
	out := make([]*Graph, len(names))
	for i, n := range names {
		g, err := ByName(n)
		if err != nil {
			panic(err) // unreachable: names come from BenchmarkNames
		}
		out[i] = g
	}
	return out
}

// D26Media reconstructs the 26-core multimedia + wireless SoC
// (D26_media): a camera/video pipeline, a DSP filter chain, an audio path,
// a wireless modem path, four memories acting as traffic hubs, and
// low-rate peripherals hanging off the CPU.
func D26Media() *Graph {
	g := NewGraph("D26_media")
	names := []string{
		"cpu", "dsp1", "dsp2", "dsp3", "dsp4", // 0-4
		"venc", "vdec", "aenc", "adec", // 5-8
		"mem1", "mem2", "mem3", "mem4", // 9-12
		"dma", "wmac", "wbb", "wrf", // 13-16
		"disp", "cam", "usb", "spi", // 17-20
		"uart", "gpio", "rast", "scaler", "jpeg", // 21-25
	}
	for _, n := range names {
		g.AddCore(n)
	}
	id := func(name string) CoreID {
		for i, n := range names {
			if n == name {
				return CoreID(i)
			}
		}
		panic("unknown core " + name)
	}
	type fl struct {
		src, dst string
		bw       float64
	}
	flows := []fl{
		// Camera capture and encode path.
		{"cam", "jpeg", 320}, {"jpeg", "mem1", 240}, {"mem1", "venc", 240},
		{"venc", "mem2", 160}, {"mem2", "dma", 160}, {"dma", "usb", 80},
		// Video decode and display path.
		{"mem1", "vdec", 280}, {"vdec", "scaler", 280}, {"scaler", "rast", 200},
		{"rast", "disp", 400}, {"vdec", "mem2", 120},
		// DSP filter chain over mem3.
		{"mem3", "dsp1", 180}, {"dsp1", "dsp2", 180}, {"dsp2", "dsp3", 180},
		{"dsp3", "dsp4", 180}, {"dsp4", "mem3", 180},
		// Audio path.
		{"mem3", "adec", 48}, {"adec", "spi", 48}, {"aenc", "mem3", 48},
		{"spi", "aenc", 48},
		// Wireless modem path through mem4.
		{"wrf", "wbb", 260}, {"wbb", "wmac", 220}, {"wmac", "mem4", 220},
		{"mem4", "wmac", 220}, {"wmac", "wbb", 220}, {"wbb", "wrf", 260},
		{"mem4", "dma", 100}, {"dma", "mem1", 100},
		// CPU control plane: program memories and peripherals.
		{"cpu", "mem1", 120}, {"mem1", "cpu", 120}, {"cpu", "mem2", 100},
		{"mem2", "cpu", 100}, {"cpu", "mem4", 60}, {"mem4", "cpu", 60},
		{"cpu", "uart", 8}, {"uart", "cpu", 8}, {"cpu", "gpio", 4},
		{"gpio", "cpu", 4}, {"cpu", "usb", 40}, {"usb", "cpu", 40},
		{"cpu", "wmac", 32}, {"cpu", "vdec", 24}, {"cpu", "venc", 24},
		{"cpu", "dsp1", 16}, {"cpu", "disp", 12}, {"cpu", "spi", 6},
		// DMA bulk moves between memories.
		{"dma", "mem2", 140}, {"mem2", "mem3", 0}, // placeholder replaced below
	}
	// mem2→mem3 via dma is expressed as two flows instead:
	flows[len(flows)-1] = fl{"mem3", "dma", 90}
	flows = append(flows, fl{"dma", "mem4", 90})
	for _, f := range flows {
		g.MustAddFlow(id(f.src), id(f.dst), f.bw)
	}
	// Long video packets, short control packets.
	for _, f := range g.Flows() {
		switch {
		case f.Bandwidth >= 200:
			g.SetPacketFlits(f.ID, 12)
		case f.Bandwidth >= 80:
			g.SetPacketFlits(f.ID, 8)
		default:
			g.SetPacketFlits(f.ID, 4)
		}
	}
	return g
}

// D36 reconstructs the 36-core D36_k family: every core sends one flow to
// k distinct other cores ("Each processing core sends data to eight other
// cores" for k = 8). Peers and bandwidths are drawn from a fixed seed per
// k, so D36(8) is identical across runs.
func D36(k int) *Graph {
	if k < 1 || k > 35 {
		panic(fmt.Sprintf("traffic: D36 fan-out %d out of range", k))
	}
	g := NewGraph(fmt.Sprintf("D36_%d", k))
	const n = 36
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	rng := rand.New(rand.NewSource(int64(3600 + k)))
	for src := 0; src < n; src++ {
		perm := rng.Perm(n)
		picked := 0
		var dsts []int
		for _, d := range perm {
			if d == src {
				continue
			}
			dsts = append(dsts, d)
			picked++
			if picked == k {
				break
			}
		}
		sort.Ints(dsts) // stable flow ordering independent of perm order
		for _, d := range dsts {
			bw := float64(16 * (1 + rng.Intn(8))) // 16..128 MB/s
			fid := g.MustAddFlow(CoreID(src), CoreID(d), bw)
			g.SetPacketFlits(fid, 4+2*rng.Intn(4))
		}
	}
	return g
}

// D35Bot reconstructs the 35-core bottleneck benchmark (D35_bot): 30
// masters sharing 5 slave memories, with request and response traffic
// concentrating on the slaves — the hub-heavy pattern the name implies.
func D35Bot() *Graph {
	g := NewGraph("D35_bot")
	const nMasters, nSlaves = 30, 5
	for i := 0; i < nMasters; i++ {
		g.AddCore(fmt.Sprintf("m%d", i))
	}
	for i := 0; i < nSlaves; i++ {
		g.AddCore(fmt.Sprintf("mem%d", i))
	}
	slave := func(i int) CoreID { return CoreID(nMasters + i) }
	for i := 0; i < nMasters; i++ {
		primary := i % nSlaves
		secondary := (i + 1) % nSlaves
		m := CoreID(i)
		g.MustAddFlow(m, slave(primary), 64)   // write requests
		g.MustAddFlow(slave(primary), m, 128)  // read responses
		g.MustAddFlow(m, slave(secondary), 24) // spill traffic
	}
	for _, f := range g.Flows() {
		if f.Bandwidth >= 128 {
			g.SetPacketFlits(f.ID, 8)
		}
	}
	return g
}

// D38TVO reconstructs the 38-core TV picture-in-picture benchmark
// (D38_tvo): two parallel video pipelines that converge on a shared
// blender/display, plus shared memories and a control processor.
func D38TVO() *Graph {
	g := NewGraph("D38_tvo")
	// Pipeline A: 15 stages, pipeline B: 15 stages, shared: 8 cores.
	const stages = 15
	var pa, pb []CoreID
	for i := 0; i < stages; i++ {
		pa = append(pa, g.AddCore(fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < stages; i++ {
		pb = append(pb, g.AddCore(fmt.Sprintf("b%d", i)))
	}
	memA := g.AddCore("memA")
	memB := g.AddCore("memB")
	memS := g.AddCore("memS")
	ctrl := g.AddCore("ctrl")
	blend := g.AddCore("blend")
	disp := g.AddCore("disp")
	osd := g.AddCore("osd")
	tuner := g.AddCore("tuner")
	pipe := func(p []CoreID, mem CoreID, bw float64) {
		for i := 0; i+1 < len(p); i++ {
			g.MustAddFlow(p[i], p[i+1], bw)
		}
		// Middle stages spill frames to the pipeline's memory.
		g.MustAddFlow(p[len(p)/3], mem, bw/2)
		g.MustAddFlow(mem, p[len(p)/3+1], bw/2)
		g.MustAddFlow(p[2*len(p)/3], mem, bw/2)
		g.MustAddFlow(mem, p[2*len(p)/3+1], bw/2)
	}
	pipe(pa, memA, 200) // main picture
	pipe(pb, memB, 120) // inset picture
	g.MustAddFlow(tuner, pa[0], 200)
	g.MustAddFlow(tuner, pb[0], 120)
	g.MustAddFlow(pa[stages-1], blend, 200)
	g.MustAddFlow(pb[stages-1], blend, 120)
	g.MustAddFlow(osd, blend, 40)
	g.MustAddFlow(blend, memS, 160)
	g.MustAddFlow(memS, disp, 320)
	g.MustAddFlow(ctrl, memS, 32)
	g.MustAddFlow(memS, ctrl, 32)
	for _, c := range []CoreID{pa[0], pb[0], blend, disp, osd, tuner} {
		g.MustAddFlow(ctrl, c, 8)
	}
	for _, f := range g.Flows() {
		if f.Bandwidth >= 160 {
			g.SetPacketFlits(f.ID, 10)
		} else if f.Bandwidth >= 80 {
			g.SetPacketFlits(f.ID, 6)
		}
	}
	return g
}

// RandomKOut generates an n-core graph where every core sends to k
// distinct peers, like the D36 family but with caller-controlled size and
// seed. It is used by property tests and scaling studies.
func RandomKOut(name string, n, k int, seed int64) *Graph {
	if n < 2 || k < 1 || k >= n {
		panic(fmt.Sprintf("traffic: RandomKOut(%d, %d) out of range", n, k))
	}
	g := NewGraph(name)
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	rng := rand.New(rand.NewSource(seed))
	for src := 0; src < n; src++ {
		perm := rng.Perm(n)
		var dsts []int
		for _, d := range perm {
			if d != src {
				dsts = append(dsts, d)
				if len(dsts) == k {
					break
				}
			}
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			g.MustAddFlow(CoreID(src), CoreID(d), float64(8*(1+rng.Intn(16))))
		}
	}
	return g
}
