package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary bytes never panic the traffic parser and
// that anything it accepts validates and round-trips.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := D26Media().Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","cores":[],"flows":[]}`)
	f.Add(`{"name":"x","cores":[{"id":0,"name":"a"}],"flows":[{"id":0,"src":0,"dst":0,"bandwidth":1}]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", err, src)
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		if again.NumCores() != got.NumCores() || again.NumFlows() != got.NumFlows() {
			t.Fatal("round trip not stable")
		}
	})
}
