package traffic

import "testing"

func TestTranspose(t *testing.T) {
	g, err := Transpose(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumCores() != 16 {
		t.Fatalf("cores = %d, want 16", g.NumCores())
	}
	// 16 cores, 4 diagonal fixed points silent → 12 flows.
	if g.NumFlows() != 12 {
		t.Fatalf("flows = %d, want 12", g.NumFlows())
	}
	// (r,c) → (c,r): core 1 = (0,1) sends to core 4 = (1,0).
	found := false
	for _, f := range g.Flows() {
		if f.Src == 1 && f.Dst == 4 {
			found = true
		}
		r, c := int(f.Src)/4, int(f.Src)%4
		if int(f.Dst) != c*4+r {
			t.Errorf("flow %d→%d is not a transpose pair", f.Src, f.Dst)
		}
	}
	if !found {
		t.Error("missing transpose flow 1→4")
	}

	for _, bad := range []int{0, 3, 5, 12} {
		if _, err := Transpose(bad); err == nil {
			t.Errorf("Transpose(%d) accepted", bad)
		}
	}
}

func TestBitReversal(t *testing.T) {
	g, err := BitReversal(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 cores, fixed points 0b000, 0b010, 0b101, 0b111 silent → 4 flows.
	if g.NumFlows() != 4 {
		t.Fatalf("flows = %d, want 4", g.NumFlows())
	}
	// 0b001 → 0b100.
	ok := false
	for _, f := range g.Flows() {
		if f.Src == 1 && f.Dst == 4 {
			ok = true
		}
	}
	if !ok {
		t.Error("missing bit-reversal flow 1→4")
	}
	for _, bad := range []int{0, 2, 6, 12} {
		if _, err := BitReversal(bad); err == nil {
			t.Errorf("BitReversal(%d) accepted", bad)
		}
	}
}

func TestHotspot(t *testing.T) {
	g, err := Hotspot(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 14 non-hotspot cores, request + reply each.
	if g.NumFlows() != 28 {
		t.Fatalf("flows = %d, want 28", g.NumFlows())
	}
	// Hotspots absorb far more bandwidth than they emit per flow.
	var toHot, fromHot float64
	for _, f := range g.Flows() {
		if f.Dst < 2 {
			toHot += f.Bandwidth
		}
		if f.Src < 2 {
			fromHot += f.Bandwidth
		}
	}
	if toHot <= fromHot {
		t.Errorf("hotspot inbound %v should exceed outbound %v", toHot, fromHot)
	}
	for _, bad := range [][2]int{{2, 1}, {8, 0}, {8, 8}} {
		if _, err := Hotspot(bad[0], bad[1]); err == nil {
			t.Errorf("Hotspot(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

func TestPatternsAreDeterministic(t *testing.T) {
	a, _ := Transpose(16)
	b, _ := Transpose(16)
	if a.NumFlows() != b.NumFlows() {
		t.Fatal("transpose not deterministic")
	}
	for i, f := range a.Flows() {
		if b.Flows()[i] != f {
			t.Fatalf("transpose flow %d differs", i)
		}
	}
}
