// Package traffic models the paper's communication graph G(V,E)
// (Definition 2): vertices are application cores and directed edges are
// communication flows between them. It also ships deterministic
// reconstructions of the SoC benchmarks used in the paper's evaluation
// (D26_media, D36_4, D36_6, D36_8, D35_bot, D38_tvo); see benchmarks.go.
package traffic

import (
	"fmt"
	"sort"
)

// CoreID identifies an application core (a vertex of G).
type CoreID int

// Core is a processing element, memory, or peripheral attached to the NoC.
type Core struct {
	ID   CoreID
	Name string
}

// Flow is a directed communication between two cores. Bandwidth is in
// MB/s and is used by topology synthesis (clustering weight) and by the
// simulator (injection rate). PacketFlits is the packet length used when
// the flow is simulated.
type Flow struct {
	ID          int
	Src, Dst    CoreID
	Bandwidth   float64
	PacketFlits int
}

// Graph is a communication graph: cores plus flows. The zero value is an
// empty graph; prefer NewGraph.
type Graph struct {
	Name  string
	cores []Core
	flows []Flow
}

// NewGraph returns an empty communication graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddCore appends a core and returns its ID. An empty name becomes
// "core<id>".
func (g *Graph) AddCore(name string) CoreID {
	id := CoreID(len(g.cores))
	if name == "" {
		name = fmt.Sprintf("core%d", id)
	}
	g.cores = append(g.cores, Core{ID: id, Name: name})
	return id
}

// AddFlow appends a flow src→dst and returns its ID. Self-flows and
// unknown cores are rejected. A non-positive bandwidth defaults to 1 MB/s
// and a non-positive packet length to 4 flits, so hand-built graphs stay
// simulable.
func (g *Graph) AddFlow(src, dst CoreID, bandwidth float64) (int, error) {
	if !g.ValidCore(src) || !g.ValidCore(dst) {
		return 0, fmt.Errorf("traffic: flow %d→%d references unknown core", src, dst)
	}
	if src == dst {
		return 0, fmt.Errorf("traffic: self-flow on core %d", src)
	}
	if bandwidth <= 0 {
		bandwidth = 1
	}
	id := len(g.flows)
	g.flows = append(g.flows, Flow{ID: id, Src: src, Dst: dst, Bandwidth: bandwidth, PacketFlits: 4})
	return id, nil
}

// MustAddFlow is AddFlow that panics on error, for benchmark builders.
func (g *Graph) MustAddFlow(src, dst CoreID, bandwidth float64) int {
	id, err := g.AddFlow(src, dst, bandwidth)
	if err != nil {
		panic(err)
	}
	return id
}

// SetPacketFlits overrides the packet length of flow id.
func (g *Graph) SetPacketFlits(id, flits int) error {
	if id < 0 || id >= len(g.flows) {
		return fmt.Errorf("traffic: unknown flow %d", id)
	}
	if flits < 1 {
		return fmt.Errorf("traffic: flow %d packet length %d", id, flits)
	}
	g.flows[id].PacketFlits = flits
	return nil
}

// ValidCore reports whether id names an existing core.
func (g *Graph) ValidCore(id CoreID) bool {
	return id >= 0 && int(id) < len(g.cores)
}

// NumCores reports the number of cores.
func (g *Graph) NumCores() int { return len(g.cores) }

// NumFlows reports the number of flows.
func (g *Graph) NumFlows() int { return len(g.flows) }

// Core returns the core with the given ID; it panics on a bad ID.
func (g *Graph) Core(id CoreID) Core {
	if !g.ValidCore(id) {
		panic(fmt.Sprintf("traffic: unknown core %d", id))
	}
	return g.cores[id]
}

// Flow returns the flow with the given ID; it panics on a bad ID.
func (g *Graph) Flow(id int) Flow {
	if id < 0 || id >= len(g.flows) {
		panic(fmt.Sprintf("traffic: unknown flow %d", id))
	}
	return g.flows[id]
}

// Cores returns a copy of the core list.
func (g *Graph) Cores() []Core {
	return append([]Core(nil), g.cores...)
}

// Flows returns a copy of the flow list in ID order.
func (g *Graph) Flows() []Flow {
	return append([]Flow(nil), g.flows...)
}

// TotalBandwidth sums the bandwidth of all flows.
func (g *Graph) TotalBandwidth() float64 {
	total := 0.0
	for _, f := range g.flows {
		total += f.Bandwidth
	}
	return total
}

// BandwidthBetween returns the summed flow bandwidth from core a to b.
func (g *Graph) BandwidthBetween(a, b CoreID) float64 {
	total := 0.0
	for _, f := range g.flows {
		if f.Src == a && f.Dst == b {
			total += f.Bandwidth
		}
	}
	return total
}

// OutDegree returns the number of distinct destinations core id sends to.
func (g *Graph) OutDegree(id CoreID) int {
	seen := map[CoreID]bool{}
	for _, f := range g.flows {
		if f.Src == id {
			seen[f.Dst] = true
		}
	}
	return len(seen)
}

// Validate checks structural invariants: endpoints exist, no self-flows,
// positive bandwidths and packet lengths, dense flow IDs.
func (g *Graph) Validate() error {
	for i, f := range g.flows {
		if f.ID != i {
			return fmt.Errorf("traffic %q: flow IDs not dense at %d", g.Name, i)
		}
		if !g.ValidCore(f.Src) || !g.ValidCore(f.Dst) {
			return fmt.Errorf("traffic %q: flow %d has unknown endpoint", g.Name, f.ID)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("traffic %q: flow %d is a self-flow", g.Name, f.ID)
		}
		if f.Bandwidth <= 0 {
			return fmt.Errorf("traffic %q: flow %d bandwidth %f", g.Name, f.ID, f.Bandwidth)
		}
		if f.PacketFlits < 1 {
			return fmt.Errorf("traffic %q: flow %d packet length %d", g.Name, f.ID, f.PacketFlits)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	return &Graph{
		Name:  g.Name,
		cores: append([]Core(nil), g.cores...),
		flows: append([]Flow(nil), g.flows...),
	}
}

// CommMatrix returns the core-to-core bandwidth matrix, useful to the
// partitioner in internal/synth.
func (g *Graph) CommMatrix() [][]float64 {
	n := len(g.cores)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, f := range g.flows {
		m[f.Src][f.Dst] += f.Bandwidth
	}
	return m
}

// FlowsSortedByBandwidth returns flow IDs sorted by descending bandwidth,
// ties broken by ascending ID; synthesis routes heavy flows first.
func (g *Graph) FlowsSortedByBandwidth() []int {
	ids := make([]int, len(g.flows))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := g.flows[ids[a]], g.flows[ids[b]]
		if fa.Bandwidth != fb.Bandwidth {
			return fa.Bandwidth > fb.Bandwidth
		}
		return fa.ID < fb.ID
	})
	return ids
}
