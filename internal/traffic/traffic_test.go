package traffic

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddCoreAndFlow(t *testing.T) {
	g := NewGraph("t")
	a := g.AddCore("cpu")
	b := g.AddCore("")
	if g.Core(a).Name != "cpu" || g.Core(b).Name != "core1" {
		t.Errorf("core names: %q %q", g.Core(a).Name, g.Core(b).Name)
	}
	id, err := g.AddFlow(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	f := g.Flow(id)
	if f.Src != a || f.Dst != b || f.Bandwidth != 100 || f.PacketFlits != 4 {
		t.Errorf("flow = %+v", f)
	}
}

func TestAddFlowValidation(t *testing.T) {
	g := NewGraph("t")
	a := g.AddCore("")
	b := g.AddCore("")
	if _, err := g.AddFlow(a, a, 1); err == nil {
		t.Error("self-flow accepted")
	}
	if _, err := g.AddFlow(a, 99, 1); err == nil {
		t.Error("unknown destination accepted")
	}
	id, err := g.AddFlow(a, b, -5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Flow(id).Bandwidth != 1 {
		t.Errorf("non-positive bandwidth not defaulted: %f", g.Flow(id).Bandwidth)
	}
}

func TestSetPacketFlits(t *testing.T) {
	g := NewGraph("t")
	a := g.AddCore("")
	b := g.AddCore("")
	id := g.MustAddFlow(a, b, 10)
	if err := g.SetPacketFlits(id, 16); err != nil {
		t.Fatal(err)
	}
	if g.Flow(id).PacketFlits != 16 {
		t.Error("SetPacketFlits did not stick")
	}
	if err := g.SetPacketFlits(id, 0); err == nil {
		t.Error("zero packet length accepted")
	}
	if err := g.SetPacketFlits(99, 4); err == nil {
		t.Error("unknown flow accepted")
	}
}

func TestAggregates(t *testing.T) {
	g := NewGraph("t")
	a := g.AddCore("")
	b := g.AddCore("")
	c := g.AddCore("")
	g.MustAddFlow(a, b, 10)
	g.MustAddFlow(a, c, 20)
	g.MustAddFlow(a, b, 5)
	if got := g.TotalBandwidth(); got != 35 {
		t.Errorf("TotalBandwidth = %f", got)
	}
	if got := g.BandwidthBetween(a, b); got != 15 {
		t.Errorf("BandwidthBetween = %f", got)
	}
	if got := g.OutDegree(a); got != 2 {
		t.Errorf("OutDegree = %d", got)
	}
	m := g.CommMatrix()
	if m[a][b] != 15 || m[a][c] != 20 || m[b][a] != 0 {
		t.Errorf("CommMatrix = %v", m)
	}
}

func TestFlowsSortedByBandwidth(t *testing.T) {
	g := NewGraph("t")
	a := g.AddCore("")
	b := g.AddCore("")
	c := g.AddCore("")
	g.MustAddFlow(a, b, 10)
	g.MustAddFlow(b, c, 30)
	g.MustAddFlow(c, a, 30)
	order := g.FlowsSortedByBandwidth()
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := D26Media()
	c := g.Clone()
	c.AddCore("extra")
	c.MustAddFlow(0, 1, 999)
	if g.NumCores() != 26 || g.NumFlows() == c.NumFlows() {
		t.Error("clone mutation affected original")
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 6 {
		t.Fatalf("expected 6 benchmarks, got %d", len(names))
	}
	for _, name := range names {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name != name {
			t.Errorf("benchmark %q reports name %q", name, g.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("benchmark %q invalid: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if got := len(AllBenchmarks()); got != 6 {
		t.Errorf("AllBenchmarks returned %d", got)
	}
}

func TestD26MediaShape(t *testing.T) {
	g := D26Media()
	if g.NumCores() != 26 {
		t.Errorf("D26_media has %d cores, want 26", g.NumCores())
	}
	if g.NumFlows() < 40 {
		t.Errorf("D26_media has only %d flows", g.NumFlows())
	}
	// The paper calls it "multimedia and wireless": check both subsystems
	// generate traffic.
	var wireless, video bool
	for _, f := range g.Flows() {
		src, dst := g.Core(f.Src).Name, g.Core(f.Dst).Name
		if strings.HasPrefix(src, "w") && strings.HasPrefix(dst, "w") {
			wireless = true
		}
		if src == "vdec" || dst == "vdec" {
			video = true
		}
	}
	if !wireless || !video {
		t.Errorf("subsystem traffic missing: wireless=%v video=%v", wireless, video)
	}
}

func TestD36FanOut(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		g := D36(k)
		if g.NumCores() != 36 {
			t.Errorf("D36_%d has %d cores", k, g.NumCores())
		}
		if g.NumFlows() != 36*k {
			t.Errorf("D36_%d has %d flows, want %d", k, g.NumFlows(), 36*k)
		}
		for c := 0; c < 36; c++ {
			if d := g.OutDegree(CoreID(c)); d != k {
				t.Errorf("D36_%d core %d out-degree %d, want %d", k, c, d, k)
			}
		}
	}
}

func TestD36Deterministic(t *testing.T) {
	a, b := D36(8), D36(8)
	fa, fb := a.Flows(), b.Flows()
	if len(fa) != len(fb) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

func TestD36PanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("D36(0) did not panic")
		}
	}()
	D36(0)
}

func TestD35BotIsBottleneck(t *testing.T) {
	g := D35Bot()
	if g.NumCores() != 35 {
		t.Errorf("D35_bot has %d cores", g.NumCores())
	}
	// The five memories must receive traffic from many distinct masters.
	inDeg := map[CoreID]int{}
	for _, f := range g.Flows() {
		inDeg[f.Dst]++
	}
	hubs := 0
	for _, n := range inDeg {
		if n >= 10 {
			hubs++
		}
	}
	if hubs != 5 {
		t.Errorf("found %d hub cores, want 5", hubs)
	}
}

func TestD38TVOShape(t *testing.T) {
	g := D38TVO()
	if g.NumCores() != 38 {
		t.Errorf("D38_tvo has %d cores, want 38", g.NumCores())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both pipelines must reach the blender.
	blendIn := 0
	for _, f := range g.Flows() {
		if g.Core(f.Dst).Name == "blend" {
			blendIn++
		}
	}
	if blendIn < 3 {
		t.Errorf("blend in-degree %d, want >= 3", blendIn)
	}
}

func TestRandomKOut(t *testing.T) {
	g := RandomKOut("r", 12, 3, 42)
	if g.NumFlows() != 36 {
		t.Errorf("RandomKOut flows = %d", g.NumFlows())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	h := RandomKOut("r", 12, 3, 42)
	if h.NumFlows() != g.NumFlows() {
		t.Error("RandomKOut not deterministic")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := D26Media()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || got.NumCores() != g.NumCores() || got.NumFlows() != g.NumFlows() {
		t.Error("round trip changed shape")
	}
	for i, f := range g.Flows() {
		if got.Flow(i) != f {
			t.Fatalf("flow %d changed: %+v vs %+v", i, got.Flow(i), f)
		}
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","cores":[{"id":1,"name":"a"}],"flows":[]}`,
		`{"name":"x","cores":[{"id":0,"name":"a"},{"id":1,"name":"b"}],"flows":[{"id":0,"src":0,"dst":0,"bandwidth":1}]}`,
		`{"name":"x","cores":[{"id":0,"name":"a"}],"flows":[{"id":0,"src":0,"dst":5,"bandwidth":1}]}`,
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

// Property: RandomKOut always produces a valid graph with exact out-degree
// k and n*k flows, for any seed.
func TestRandomKOutProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomKOut("p", 10, 3, seed)
		if g.Validate() != nil || g.NumFlows() != 30 {
			return false
		}
		for c := 0; c < 10; c++ {
			if g.OutDegree(CoreID(c)) != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every shipped benchmark validates and has no isolated cores
// (each core sends or receives at least one flow).
func TestBenchmarksNoIsolatedCores(t *testing.T) {
	for _, g := range AllBenchmarks() {
		used := make(map[CoreID]bool)
		for _, f := range g.Flows() {
			used[f.Src] = true
			used[f.Dst] = true
		}
		for _, c := range g.Cores() {
			if !used[c.ID] {
				t.Errorf("%s: core %d (%s) is isolated", g.Name, c.ID, c.Name)
			}
		}
	}
}
