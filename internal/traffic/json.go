package traffic

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/nocdr/nocdr/internal/nocerr"
)

type jsonGraph struct {
	Name  string     `json:"name"`
	Cores []jsonCore `json:"cores"`
	Flows []jsonFlow `json:"flows"`
}

type jsonCore struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

type jsonFlow struct {
	ID          int     `json:"id"`
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Bandwidth   float64 `json:"bandwidth"`
	PacketFlits int     `json:"packet_flits,omitempty"`
}

// MarshalJSON encodes the communication graph in a stable schema.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, c := range g.cores {
		jg.Cores = append(jg.Cores, jsonCore{ID: int(c.ID), Name: c.Name})
	}
	for _, f := range g.flows {
		jg.Flows = append(jg.Flows, jsonFlow{
			ID: f.ID, Src: int(f.Src), Dst: int(f.Dst),
			Bandwidth: f.Bandwidth, PacketFlits: f.PacketFlits,
		})
	}
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON. IDs must be
// dense and ordered.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("traffic: %w: %w", nocerr.ErrInvalidInput, err)
	}
	ng := NewGraph(jg.Name)
	for i, c := range jg.Cores {
		if c.ID != i {
			return fmt.Errorf("traffic: core IDs must be dense, got %d at position %d: %w", c.ID, i, nocerr.ErrInvalidInput)
		}
		ng.AddCore(c.Name)
	}
	for i, f := range jg.Flows {
		if f.ID != i {
			return fmt.Errorf("traffic: flow IDs must be dense, got %d at position %d: %w", f.ID, i, nocerr.ErrInvalidInput)
		}
		id, err := ng.AddFlow(CoreID(f.Src), CoreID(f.Dst), f.Bandwidth)
		if err != nil {
			return err
		}
		if f.PacketFlits > 0 {
			if err := ng.SetPacketFlits(id, f.PacketFlits); err != nil {
				return err
			}
		}
	}
	*g = *ng
	return nil
}

// Write serializes the graph as JSON to w.
func (g *Graph) Write(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Read parses a communication graph from JSON and validates it.
func Read(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	g := NewGraph("")
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
