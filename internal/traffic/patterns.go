package traffic

import (
	"fmt"
	"math/bits"
)

// Synthetic adversarial traffic patterns. The paper evaluates on six SoC
// benchmarks whose communication graphs are application-shaped; these
// generators supply the opposite end of the workload spectrum — the
// classic permutation and hotspot patterns the interconnect literature
// uses to stress routing functions. All are deterministic (no RNG), so a
// sweep cell is reproducible from its spec alone.

// Transpose builds the matrix-transpose permutation on n = k×k cores:
// core (r, c) of the k×k grid sends one flow to core (c, r). Diagonal
// cores (r == c) are their own targets and stay silent. On meshes with
// dimension-ordered routing this pattern concentrates turns along the
// diagonal; it is the canonical adversary for XY routing.
func Transpose(n int) (*Graph, error) {
	k := isqrt(n)
	if k*k != n || n < 4 {
		return nil, fmt.Errorf("traffic: transpose needs a square core count >= 4, got %d", n)
	}
	g := NewGraph(fmt.Sprintf("transpose_%d", n))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if r == c {
				continue
			}
			g.MustAddFlow(CoreID(r*k+c), CoreID(c*k+r), 100)
		}
	}
	return g, nil
}

// BitReversal builds the bit-reversal permutation on n cores (n a power
// of two): core i sends one flow to the core whose index is i's bit
// pattern reversed within log2(n) bits. Fixed points stay silent. Bit
// reversal maximizes average hop distance under dimension-ordered
// routing and is the standard worst-case permutation for FFT-style
// traffic.
func BitReversal(n int) (*Graph, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bit-reversal needs a power-of-two core count >= 4, got %d", n)
	}
	w := bits.Len(uint(n)) - 1
	g := NewGraph(fmt.Sprintf("bitrev_%d", n))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - w))
		if i == j {
			continue
		}
		g.MustAddFlow(CoreID(i), CoreID(j), 100)
	}
	return g, nil
}

// Hotspot builds an n-core graph where cores 0..h-1 are memory-style
// hotspots: every other core sends a heavy request flow to its hotspot
// (i mod h) and receives a lighter reply flow back. The shared targets
// concentrate load the way D35_bot's bottleneck does, but with a
// caller-controlled core count and hotspot fan-in.
func Hotspot(n, h int) (*Graph, error) {
	if n < 3 || h < 1 || h >= n {
		return nil, fmt.Errorf("traffic: hotspot needs 1 <= hotspots < cores and cores >= 3, got %d cores, %d hotspots", n, h)
	}
	g := NewGraph(fmt.Sprintf("hotspot_%dx%d", n, h))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for i := h; i < n; i++ {
		hot := CoreID(i % h)
		g.MustAddFlow(CoreID(i), hot, 128)
		g.MustAddFlow(hot, CoreID(i), 32)
	}
	return g, nil
}

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	if n < 2 {
		return 0
	}
	r := int(bits.Len(uint(n))+1) / 2
	x := 1 << r
	for {
		y := (x + n/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}
