// Package ordering implements the paper's comparison baseline: resource
// ordering (Dally & Towles, the paper's reference [10]). Every channel is
// assigned a totally ordered resource class and a flow may only acquire
// channels with strictly increasing classes along its route. Given fixed
// routes on an arbitrary topology this is always achievable by layering
// virtual channels; the number of layers a link must offer is the VC
// overhead that the paper's Figures 8–9 plot as the dotted line.
//
// The paper describes the textbook realization: "the number of classes
// needed for a flow depends on the length of the route", i.e. a packet
// climbs one class per hop (HopIndex below, the default). Two greedy
// variants that climb only when a static link rank fails to increase are
// provided for the ablation study; they need fewer VCs but are still far
// costlier than deadlock removal.
package ordering

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// Scheme selects how resource classes are assigned along a route.
type Scheme int

const (
	// HopIndex gives hop i of every route class layer i — the paper's
	// description of the baseline ("the number of classes needed for a
	// flow depends on the length of the route"). Default.
	HopIndex Scheme = iota
	// GreedyBFS keeps a flow in its current layer while a BFS-derived
	// link rank climbs, stepping up a layer only on a rank descent.
	GreedyBFS
	// GreedyByID is GreedyBFS with the naive creation-order link rank.
	GreedyByID
)

// String names the scheme for reports.
func (s Scheme) String() string {
	switch s {
	case HopIndex:
		return "hop-index"
	case GreedyBFS:
		return "greedy-bfs"
	case GreedyByID:
		return "greedy-id"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Result reports the outcome of applying resource ordering. Topology and
// Routes are modified deep copies; inputs are untouched.
type Result struct {
	Topology *topology.Topology
	Routes   *route.Table
	// AddedVCs is the number of channels added so each link offers every
	// layer demanded by the flows crossing it — the Figures 8–9 metric.
	AddedVCs int
	// Layers is the number of VC layers used (max over links).
	Layers int
	// Classes is the number of distinct resource classes, layers × links.
	Classes int
}

// Apply makes the routed network deadlock-free with resource ordering:
// it computes a class assignment under the chosen scheme, moves every
// route onto the VC layers the assignment demands, and provisions those
// VCs. The physical path of every flow is preserved; only VC indices
// change.
func Apply(top *topology.Topology, tab *route.Table, scheme Scheme) (*Result, error) {
	res := &Result{
		Topology: top.Clone(),
		Routes:   tab.Clone(),
	}
	var rank map[topology.LinkID]int
	switch scheme {
	case HopIndex:
		// No rank needed: the layer is the hop position.
	case GreedyBFS, GreedyByID:
		var err error
		rank, err = linkRanks(res.Topology, scheme)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("ordering: unknown scheme %v", scheme)
	}

	maxLayer := make(map[topology.LinkID]int, res.Topology.NumLinks())
	for _, r := range res.Routes.Routes() {
		if len(r.Channels) == 0 {
			continue
		}
		channels := append([]topology.Channel(nil), r.Channels...)
		layer := 0
		prevRank := -1
		for i, ch := range channels {
			switch scheme {
			case HopIndex:
				layer = i
			default:
				lr, ok := rank[ch.Link]
				if !ok {
					return nil, fmt.Errorf("ordering: flow %d uses unranked link %d", r.FlowID, ch.Link)
				}
				if lr <= prevRank {
					layer++
				}
				prevRank = lr
			}
			channels[i] = topology.Chan(ch.Link, layer)
			if layer > maxLayer[ch.Link] {
				maxLayer[ch.Link] = layer
			}
		}
		res.Routes.Set(r.FlowID, channels)
		if layer+1 > res.Layers {
			res.Layers = layer + 1
		}
	}

	// Provision the layers each link must offer.
	for link, top := range maxLayer {
		for res.Topology.Link(link).VCs <= top {
			if _, err := res.Topology.AddVC(link); err != nil {
				return nil, err
			}
			res.AddedVCs++
		}
	}
	res.Classes = res.Layers * res.Topology.NumLinks()
	return res, nil
}

// UniformTopology returns the hardware a resource-ordered design is
// built from in practice: since the router microarchitecture implements
// the class scheme, every link port provides all Layers VC layers, not
// just the layers the routed flows happen to touch. The paper's area and
// power comparisons (Figure 10 and the 66% claim) reflect this uniform
// provisioning; its VC counts (Figures 8–9) count only the layers
// actually demanded per link, which is what AddedVCs reports.
func (r *Result) UniformTopology() *topology.Topology {
	t := r.Topology.Clone()
	if r.Layers <= 1 {
		return t
	}
	for _, l := range t.Links() {
		for t.Link(l.ID).VCs < r.Layers {
			if _, err := t.AddVC(l.ID); err != nil {
				// Clone of a valid topology: AddVC can only fail on a bad
				// link ID, which cannot happen while iterating Links.
				panic(err)
			}
		}
	}
	return t
}

// linkRanks returns a total order over physical links for the greedy
// schemes.
func linkRanks(top *topology.Topology, scheme Scheme) (map[topology.LinkID]int, error) {
	ranks := make(map[topology.LinkID]int, top.NumLinks())
	switch scheme {
	case GreedyByID:
		for _, l := range top.Links() {
			ranks[l.ID] = int(l.ID)
		}
	case GreedyBFS:
		// Rank links in BFS discovery order over switches starting from
		// switch 0 (joining unreached components as they appear). Links
		// leaving earlier-discovered switches get lower ranks, so routes
		// that fan outward climb monotonically.
		if top.NumSwitches() == 0 {
			return ranks, nil
		}
		seen := make([]bool, top.NumSwitches())
		var order []int
		for start := 0; start < top.NumSwitches(); start++ {
			if seen[start] {
				continue
			}
			seen[start] = true
			queue := []int{start}
			for qi := 0; qi < len(queue); qi++ {
				sw := queue[qi]
				order = append(order, sw)
				for _, lid := range top.OutLinks(topology.SwitchID(sw)) {
					to := int(top.Link(lid).To)
					if !seen[to] {
						seen[to] = true
						queue = append(queue, to)
					}
				}
			}
		}
		next := 0
		for _, sw := range order {
			for _, lid := range top.OutLinks(topology.SwitchID(sw)) {
				ranks[lid] = next
				next++
			}
		}
	default:
		return nil, fmt.Errorf("ordering: scheme %v has no link ranks", scheme)
	}
	if len(ranks) != top.NumLinks() {
		return nil, fmt.Errorf("ordering: ranked %d of %d links", len(ranks), top.NumLinks())
	}
	return ranks, nil
}
