package ordering

import (
	"testing"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

func TestUniformTopologyProvisionsAllLinks(t *testing.T) {
	top, tab := paperExample()
	res, err := Apply(top, tab, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers < 2 {
		t.Fatalf("ring needs >= 2 layers, got %d", res.Layers)
	}
	hw := res.UniformTopology()
	for _, l := range hw.Links() {
		if l.VCs != res.Layers {
			t.Errorf("link %d has %d VCs, want uniform %d", l.ID, l.VCs, res.Layers)
		}
	}
	// The routed design's topology must be untouched (demand-only VCs).
	demand := 0
	for _, l := range res.Topology.Links() {
		if l.VCs < res.Layers {
			demand++
		}
	}
	if demand == 0 {
		t.Error("routed topology already uniform; UniformTopology test is vacuous")
	}
	// Routes must remain provisioned on the uniform hardware.
	for _, r := range res.Routes.Routes() {
		for _, ch := range r.Channels {
			if !hw.ValidChannel(ch) {
				t.Fatalf("flow %d channel %v not provisioned on uniform hardware", r.FlowID, ch)
			}
		}
	}
}

func TestUniformTopologySingleLayerIsClone(t *testing.T) {
	// One-hop-only routes need a single layer; the uniform hardware then
	// equals the routed topology.
	top, _ := paperExample()
	tab := route.NewTable(2)
	tab.Set(0, []topology.Channel{topology.Chan(0, 0)})
	tab.Set(1, []topology.Channel{topology.Chan(2, 0)})
	res, err := Apply(top, tab, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers != 1 {
		t.Fatalf("layers = %d, want 1", res.Layers)
	}
	hw := res.UniformTopology()
	if hw.TotalVCs() != res.Topology.TotalVCs() {
		t.Error("single-layer uniform hardware grew")
	}
}
