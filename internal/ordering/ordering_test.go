package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

var allSchemes = []Scheme{HopIndex, GreedyBFS, GreedyByID}

// paperExample builds the Figure 1 ring with the paper's four flows.
func paperExample() (*topology.Topology, *route.Table) {
	top := topology.New("figure1")
	for i := 0; i < 4; i++ {
		top.AddSwitch("")
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%4))
	}
	ch := func(ids ...int) []topology.Channel {
		out := make([]topology.Channel, len(ids))
		for i, id := range ids {
			out[i] = topology.Chan(topology.LinkID(id), 0)
		}
		return out
	}
	tab := route.NewTable(4)
	tab.Set(0, ch(0, 1, 2))
	tab.Set(1, ch(2, 3))
	tab.Set(2, ch(3, 0))
	tab.Set(3, ch(0, 1))
	return top, tab
}

func TestApplyMakesPaperExampleAcyclic(t *testing.T) {
	for _, scheme := range allSchemes {
		top, tab := paperExample()
		res, err := Apply(top, tab, scheme)
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		g, err := cdg.Build(res.Topology, res.Routes)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Acyclic() {
			t.Errorf("scheme %v: resource ordering left a cyclic CDG", scheme)
		}
		if res.AddedVCs < 1 {
			t.Errorf("scheme %v: ring needs at least one extra VC, got %d", scheme, res.AddedVCs)
		}
	}
}

func TestHopIndexClassesMatchRouteLength(t *testing.T) {
	// The defining property of the paper's baseline: a flow of length n
	// uses layers 0..n-1, so the longest route sets the layer count.
	top, tab := paperExample()
	res, err := Apply(top, tab, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers != tab.MaxLen() {
		t.Errorf("Layers = %d, want max route length %d", res.Layers, tab.MaxLen())
	}
	for _, r := range res.Routes.Routes() {
		for i, ch := range r.Channels {
			if ch.VC != i {
				t.Fatalf("flow %d hop %d on VC %d, want %d", r.FlowID, i, ch.VC, i)
			}
		}
	}
	// Ring: L1 carries hops 0 (F1, F4) and 1 (F3) → 1 extra VC;
	// L2 carries hop 1 → 1 extra; L3 carries hops 0 and 2 → 2 extra;
	// L4 carries hops 0 and 1 → 1 extra. Total 5.
	if res.AddedVCs != 5 {
		t.Errorf("AddedVCs = %d, want 5", res.AddedVCs)
	}
}

func TestApplyDoesNotMutateInputs(t *testing.T) {
	for _, scheme := range allSchemes {
		top, tab := paperExample()
		if _, err := Apply(top, tab, scheme); err != nil {
			t.Fatal(err)
		}
		if top.ExtraVCs() != 0 {
			t.Errorf("scheme %v: input topology mutated", scheme)
		}
		for _, r := range tab.Routes() {
			for _, ch := range r.Channels {
				if ch.VC != 0 {
					t.Fatalf("scheme %v: input routes mutated", scheme)
				}
			}
		}
	}
}

func TestGreedyClassesStrictlyIncrease(t *testing.T) {
	// The greedy schemes must produce a strictly increasing (layer, rank)
	// sequence along every route.
	for _, scheme := range []Scheme{GreedyBFS, GreedyByID} {
		top, tab := paperExample()
		res, err := Apply(top, tab, scheme)
		if err != nil {
			t.Fatal(err)
		}
		rank, err := linkRanks(res.Topology, scheme)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Routes.Routes() {
			prevLayer, prevRank := -1, -1
			for _, ch := range r.Channels {
				layer, lr := ch.VC, rank[ch.Link]
				if layer < prevLayer || (layer == prevLayer && lr <= prevRank) {
					t.Fatalf("scheme %v flow %d: class (%d,%d) after (%d,%d) not increasing",
						scheme, r.FlowID, layer, lr, prevLayer, prevRank)
				}
				prevLayer, prevRank = layer, lr
			}
		}
	}
}

func TestPhysicalPathsPreserved(t *testing.T) {
	for _, scheme := range allSchemes {
		top, tab := paperExample()
		res, err := Apply(top, tab, scheme)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tab.Routes() {
			got := res.Routes.Route(r.FlowID)
			if got.Len() != r.Len() {
				t.Fatalf("scheme %v flow %d length changed", scheme, r.FlowID)
			}
			for i := range r.Channels {
				if got.Channels[i].Link != r.Channels[i].Link {
					t.Fatalf("scheme %v flow %d hop %d physical link changed", scheme, r.FlowID, i)
				}
			}
		}
	}
}

func TestLayerCountMatchesProvisioning(t *testing.T) {
	for _, scheme := range allSchemes {
		top, tab := paperExample()
		res, err := Apply(top, tab, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if res.Topology.MaxVCs() != res.Layers {
			t.Errorf("scheme %v: MaxVCs = %d but Layers = %d", scheme, res.Topology.MaxVCs(), res.Layers)
		}
		if res.Classes != res.Layers*res.Topology.NumLinks() {
			t.Errorf("scheme %v: Classes = %d, want %d", scheme, res.Classes, res.Layers*res.Topology.NumLinks())
		}
		for _, r := range res.Routes.Routes() {
			for _, ch := range r.Channels {
				if !res.Topology.ValidChannel(ch) {
					t.Fatalf("scheme %v: flow %d uses unprovisioned channel %v", scheme, r.FlowID, ch)
				}
			}
		}
	}
}

func TestOverheadGrowsWithRouteLength(t *testing.T) {
	// One flow around most of a ring: the hop-index overhead must grow
	// with the route length — the effect behind Figures 8–9.
	makeRing := func(n, routeLen int) (*topology.Topology, *route.Table) {
		top := topology.New("ring")
		for i := 0; i < n; i++ {
			top.AddSwitch("")
		}
		for i := 0; i < n; i++ {
			top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%n))
		}
		tab := route.NewTable(1)
		chs := make([]topology.Channel, routeLen)
		for i := 0; i < routeLen; i++ {
			chs[i] = topology.Chan(topology.LinkID(i), 0)
		}
		tab.Set(0, chs)
		return top, tab
	}
	top1, tab1 := makeRing(12, 4)
	top2, tab2 := makeRing(12, 10)
	short, err := Apply(top1, tab1, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Apply(top2, tab2, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	if long.AddedVCs <= short.AddedVCs {
		t.Errorf("long route added %d VCs, short %d: overhead should grow",
			long.AddedVCs, short.AddedVCs)
	}
	// 4-hop route: hops on VC 0..3 over distinct links → 0+1+2+3 = 6.
	if short.AddedVCs != 6 {
		t.Errorf("short ring AddedVCs = %d, want 6", short.AddedVCs)
	}
}

func TestGreedyCheaperThanHopIndex(t *testing.T) {
	// The greedy ablations exist because they dominate the hop-index
	// baseline; pin that relationship on the ring.
	topA, tabA := paperExample()
	hop, err := Apply(topA, tabA, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	topB, tabB := paperExample()
	bfs, err := Apply(topB, tabB, GreedyBFS)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.AddedVCs > hop.AddedVCs {
		t.Errorf("greedy (%d VCs) worse than hop-index (%d VCs)", bfs.AddedVCs, hop.AddedVCs)
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	top, tab := paperExample()
	if _, err := Apply(top, tab, Scheme(99)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if HopIndex.String() != "hop-index" || GreedyBFS.String() != "greedy-bfs" ||
		GreedyByID.String() != "greedy-id" {
		t.Error("scheme names wrong")
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme has empty name")
	}
}

// Property: on random connected topologies with shortest-path routes,
// every scheme yields an acyclic CDG and valid routes.
func TestApplyAlwaysAcyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		top := topology.New("p")
		for i := 0; i < n; i++ {
			sw := top.AddSwitch("")
			top.AttachCore(i, sw)
		}
		for i := 0; i < n; i++ {
			top.AddBidi(topology.SwitchID(i), topology.SwitchID((i+1)%n))
		}
		for i := 0; i < n; i++ {
			a, b := topology.SwitchID(rng.Intn(n)), topology.SwitchID(rng.Intn(n))
			if a != b {
				top.AddLink(a, b)
			}
		}
		g := traffic.NewGraph("p")
		for i := 0; i < n; i++ {
			g.AddCore("")
		}
		for i := 0; i < 3*n; i++ {
			a, b := traffic.CoreID(rng.Intn(n)), traffic.CoreID(rng.Intn(n))
			if a != b {
				g.MustAddFlow(a, b, 1+float64(rng.Intn(50)))
			}
		}
		tab, err := route.ShortestPaths(top, g)
		if err != nil {
			return false
		}
		for _, scheme := range allSchemes {
			res, err := Apply(top, tab, scheme)
			if err != nil {
				return false
			}
			c, err := cdg.Build(res.Topology, res.Routes)
			if err != nil || !c.Acyclic() {
				return false
			}
			if res.Routes.Validate(res.Topology, g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
