package cdg

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// paperExample builds Figure 1's ring topology plus the four routes that
// produce the cyclic CDG of Figure 2.
func paperExample(t *testing.T) (*topology.Topology, *route.Table) {
	t.Helper()
	top := topology.New("figure1")
	for i := 0; i < 4; i++ {
		top.AddSwitch("")
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%4))
	}
	tab := route.NewTable(4)
	ch := func(ids ...int) []topology.Channel {
		out := make([]topology.Channel, len(ids))
		for i, id := range ids {
			out[i] = topology.Chan(topology.LinkID(id), 0)
		}
		return out
	}
	tab.Set(0, ch(0, 1, 2)) // F1 = {L1, L2, L3}
	tab.Set(1, ch(2, 3))    // F2 = {L3, L4}
	tab.Set(2, ch(3, 0))    // F3 = {L4, L1}
	tab.Set(3, ch(0, 1))    // F4 = {L1, L2}
	return top, tab
}

func TestBuildPaperCDG(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumChannels() != 4 {
		t.Errorf("NumChannels = %d, want 4", c.NumChannels())
	}
	// Figure 2's dependencies: L1→L2, L2→L3, L3→L4, L4→L1.
	wantDeps := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	if c.NumDependencies() != len(wantDeps) {
		t.Errorf("NumDependencies = %d, want %d", c.NumDependencies(), len(wantDeps))
	}
	for _, d := range wantDeps {
		from := topology.Chan(topology.LinkID(d[0]), 0)
		to := topology.Chan(topology.LinkID(d[1]), 0)
		if !c.HasDependency(from, to) {
			t.Errorf("missing dependency L%d→L%d", d[0]+1, d[1]+1)
		}
	}
	if c.Acyclic() {
		t.Error("paper CDG reported acyclic; Figure 2 has a cycle")
	}
}

func TestFlowsOnDependencies(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	l1 := topology.Chan(0, 0)
	l2 := topology.Chan(1, 0)
	// L1→L2 is created by F1 (flow 0) and F4 (flow 3).
	got := c.FlowsOn(l1, l2)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("FlowsOn(L1,L2) = %v, want [0 3]", got)
	}
	if c.FlowsOn(l2, l1) != nil {
		t.Error("FlowsOn on missing dependency returned flows")
	}
}

func TestSmallestCyclePaper(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	cyc := c.SmallestCycle()
	if len(cyc) != 4 {
		t.Fatalf("SmallestCycle length = %d, want 4", len(cyc))
	}
	// Must be the ring L1→L2→L3→L4 in order, starting at L1 (vertex 0).
	for i, ch := range cyc {
		if ch != topology.Chan(topology.LinkID(i), 0) {
			t.Errorf("cycle[%d] = %v, want L%d", i, ch, i+1)
		}
	}
}

func TestModifiedCDGAcyclic(t *testing.T) {
	// Figure 3: adding L1' and moving F3 onto it makes the CDG acyclic.
	top, tab := paperExample(t)
	vc, err := top.AddVC(0)
	if err != nil {
		t.Fatal(err)
	}
	tab.Set(2, []topology.Channel{topology.Chan(3, 0), topology.Chan(0, vc)})
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acyclic() {
		t.Error("modified CDG still cyclic; Figure 3 is acyclic")
	}
	if c.NumChannels() != 5 {
		t.Errorf("NumChannels = %d, want 5", c.NumChannels())
	}
	if c.SmallestCycle() != nil {
		t.Error("SmallestCycle non-nil on acyclic CDG")
	}
}

func TestBuildRejectsUnprovisionedChannel(t *testing.T) {
	top, tab := paperExample(t)
	tab.Set(0, []topology.Channel{topology.Chan(0, 3)}) // VC 3 never added
	if _, err := Build(top, tab); err == nil {
		t.Error("unprovisioned channel accepted")
	}
}

func TestEmptyRoutesNoDeps(t *testing.T) {
	top, _ := paperExample(t)
	tab := route.NewTable(2)
	tab.Set(0, nil)
	tab.Set(1, []topology.Channel{topology.Chan(0, 0)}) // single hop: no dep
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDependencies() != 0 {
		t.Errorf("NumDependencies = %d, want 0", c.NumDependencies())
	}
	if !c.Acyclic() {
		t.Error("dependency-free CDG not acyclic")
	}
}

func TestVertexMapping(t *testing.T) {
	top, tab := paperExample(t)
	top.AddVC(2)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.NumChannels(); id++ {
		ch := c.Channel(id)
		back, ok := c.VertexOf(ch)
		if !ok || back != id {
			t.Errorf("vertex mapping not bijective at %d (%v)", id, ch)
		}
	}
	if _, ok := c.VertexOf(topology.Chan(0, 9)); ok {
		t.Error("VertexOf accepted unknown channel")
	}
}

func TestDependenciesSortedAndComplete(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	deps := c.Dependencies()
	if len(deps) != 4 {
		t.Fatalf("Dependencies() = %d entries", len(deps))
	}
	// First dependency must be L1→L2 with flows [0 3].
	if deps[0].From != topology.Chan(0, 0) || deps[0].To != topology.Chan(1, 0) {
		t.Errorf("deps[0] = %v→%v", deps[0].From, deps[0].To)
	}
	if len(deps[0].Flows) != 2 {
		t.Errorf("deps[0].Flows = %v", deps[0].Flows)
	}
}

func TestCountCycles(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.CountCycles(0); n != 1 {
		t.Errorf("CountCycles = %d, want 1", n)
	}
}

func TestCyclicChannels(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	got := c.CyclicChannels()
	if len(got) != 4 {
		t.Errorf("CyclicChannels = %v, want all 4", got)
	}
}

func TestStringAndDOT(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.String(); !strings.Contains(s, "cyclic") || !strings.Contains(s, "4 channels") {
		t.Errorf("String = %q", s)
	}
	var buf bytes.Buffer
	if err := c.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph cdg", `label="L1"`, "F1,F4", "peripheries=2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	top, tab := paperExample(t)
	a, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.Dependencies(), b.Dependencies()
	if len(da) != len(db) {
		t.Fatal("nondeterministic dependency count")
	}
	for i := range da {
		if da[i].From != db[i].From || da[i].To != db[i].To {
			t.Fatalf("dependency %d differs", i)
		}
	}
}

func TestSmallestCycleThrough(t *testing.T) {
	top, tab := paperExample(t)
	c, err := Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	cyc := c.SmallestCycleThrough(topology.Chan(1, 0))
	if len(cyc) != 4 || cyc[0] != topology.Chan(1, 0) {
		t.Errorf("SmallestCycleThrough(L2) = %v, want 4-cycle starting at L2", cyc)
	}
	if got := c.SmallestCycleThrough(topology.Chan(0, 9)); got != nil {
		t.Error("unknown channel returned a cycle")
	}
	// After breaking the cycle (Figure 3: only F3 moves onto L1'), no
	// channel lies on a cycle any more.
	top2, tab2 := paperExample(t)
	vc, _ := top2.AddVC(0)
	tab2.Set(2, []topology.Channel{topology.Chan(3, 0), topology.Chan(0, vc)})
	c2, err := Build(top2, tab2)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Acyclic() {
		t.Fatal("Figure 3 configuration not acyclic")
	}
	if got := c2.SmallestCycleThrough(topology.Chan(1, 0)); got != nil {
		t.Errorf("acyclic CDG returned cycle %v", got)
	}
}
