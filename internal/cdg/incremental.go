package cdg

import (
	"fmt"
	"sort"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// Reroute describes one flow's route change during a cycle break: the
// channel sequence it left and the one it now takes. It is the unit of
// localized CDG maintenance — Incremental.ApplyReroute turns it into edge
// insertions/deletions without rescanning the route table.
type Reroute struct {
	FlowID int
	Old    []topology.Channel
	New    []topology.Channel
}

// Incremental is a mutable channel dependency graph maintained across
// cycle breaks. Where Build reconstructs the whole graph from the route
// table, Incremental applies each break as a handful of edge updates and
// restricts cycle re-search to the strongly connected components those
// updates touched; untouched components keep their cached shortest cycle.
//
// Determinism contract: every query depends only on the current edge set,
// never on the order edges were inserted. Vertices are scanned and
// adjacency iterated in canonical (link, VC) channel order, matching the
// vertex numbering Build assigns, so Incremental and a fresh Build over
// the same topology/routes return the same cycles (see the differential
// tests in the core package).
type Incremental struct {
	top   *topology.Topology
	chans []topology.Channel       // vertex id → channel, in id-assignment order
	id    map[topology.Channel]int // channel → vertex id
	order []int                    // all vertex ids sorted by canonical channel order

	succ      [][]int          // adjacency, each list sorted by canonical channel order
	pred      [][]int          // reverse adjacency, same ordering
	edgeFlows map[[2]int][]int // edge → flow IDs creating it, ascending
	nEdges    int

	touched map[int]bool // vertices with edge changes since the last refresh
	cache   map[int]*sccEntry
	valid   bool

	scratch scratch // reusable dense buffers for Tarjan and BFS
}

// scratch holds the dense work arrays the refresh hot path reuses across
// iterations. Visited-state is epoch-stamped so a new search costs O(1) to
// start instead of O(V) to clear.
type scratch struct {
	epoch  int
	stamp  []int // stamp[v] == epoch ⇒ dist/parent valid for this search
	dist   []int
	parent []int
	queue  []int

	compEpoch int
	compStamp []int // compStamp[v] == compEpoch ⇒ v in current component

	index   []int // Tarjan
	low     []int
	onStack []bool
}

func (s *scratch) ensure(n int) {
	if len(s.stamp) >= n {
		return
	}
	grown := make([]int, n)
	copy(grown, s.stamp)
	s.stamp = grown
	s.dist = append(s.dist, make([]int, n-len(s.dist))...)
	s.parent = append(s.parent, make([]int, n-len(s.parent))...)
	grownComp := make([]int, n)
	copy(grownComp, s.compStamp)
	s.compStamp = grownComp
	s.index = append(s.index, make([]int, n-len(s.index))...)
	s.low = append(s.low, make([]int, n-len(s.low))...)
	s.onStack = append(s.onStack, make([]bool, n-len(s.onStack))...)
}

// sccEntry caches the analysis of one non-trivial SCC: its member set and
// the shortest cycle inside it. An entry survives a break untouched by it.
type sccEntry struct {
	members []int // sorted by canonical channel order; members[0] is the key
	cycle   []int // shortest cycle, rotated to its minimum channel
	start   int   // first member (channel order) on a shortest cycle
}

// BuildIncremental constructs an Incremental CDG from a topology and route
// table, validating routes exactly like Build.
func BuildIncremental(top *topology.Topology, table *route.Table) (*Incremental, error) {
	channels := top.Channels()
	m := &Incremental{
		top:       top,
		chans:     channels,
		id:        make(map[topology.Channel]int, len(channels)),
		edgeFlows: make(map[[2]int][]int),
		touched:   make(map[int]bool),
		cache:     make(map[int]*sccEntry),
	}
	for i, ch := range channels {
		m.id[ch] = i
	}
	m.order = make([]int, len(channels))
	for i := range m.order {
		m.order[i] = i // top.Channels() is already in canonical order
	}
	m.succ = make([][]int, len(channels))
	m.pred = make([][]int, len(channels))
	for _, r := range table.Routes() {
		for i, ch := range r.Channels {
			if _, ok := m.id[ch]; !ok {
				return nil, fmt.Errorf("cdg: flow %d hop %d uses unprovisioned channel %v",
					r.FlowID, i, ch)
			}
		}
		for i := 0; i+1 < len(r.Channels); i++ {
			m.addFlowEdge(m.id[r.Channels[i]], m.id[r.Channels[i+1]], r.FlowID)
		}
	}
	return m, nil
}

// less orders vertex ids by their channel's canonical (link, VC) order.
func (m *Incremental) less(a, b int) bool {
	ca, cb := m.chans[a], m.chans[b]
	if ca.Link != cb.Link {
		return ca.Link < cb.Link
	}
	return ca.VC < cb.VC
}

// vertex returns the id of ch, creating a fresh vertex when the channel is
// new (a duplicate added by a break).
func (m *Incremental) vertex(ch topology.Channel) int {
	if v, ok := m.id[ch]; ok {
		return v
	}
	v := len(m.chans)
	m.chans = append(m.chans, ch)
	m.id[ch] = v
	m.succ = append(m.succ, nil)
	m.pred = append(m.pred, nil)
	pos := sort.Search(len(m.order), func(i int) bool { return m.less(v, m.order[i]) })
	m.order = append(m.order, 0)
	copy(m.order[pos+1:], m.order[pos:])
	m.order[pos] = v
	return v
}

// insertSorted inserts v into list keeping canonical channel order.
func (m *Incremental) insertSorted(list []int, v int) []int {
	pos := sort.Search(len(list), func(i int) bool { return m.less(v, list[i]) })
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = v
	return list
}

func removeValue(list []int, v int) []int {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// addFlowEdge records that flowID creates the dependency from→to, adding
// the edge if it did not exist.
func (m *Incremental) addFlowEdge(from, to, flowID int) {
	key := [2]int{from, to}
	flows, existed := m.edgeFlows[key]
	idx := sort.SearchInts(flows, flowID)
	if idx == len(flows) || flows[idx] != flowID {
		flows = append(flows, 0)
		copy(flows[idx+1:], flows[idx:])
		flows[idx] = flowID
	}
	m.edgeFlows[key] = flows
	if !existed {
		m.succ[from] = m.insertSorted(m.succ[from], to)
		m.pred[to] = m.insertSorted(m.pred[to], from)
		m.nEdges++
		m.touched[from] = true
		m.touched[to] = true
		m.valid = false
	}
}

// dropFlowEdge removes flowID from the dependency from→to, deleting the
// edge when no flow creates it anymore.
func (m *Incremental) dropFlowEdge(from, to, flowID int) error {
	key := [2]int{from, to}
	flows, ok := m.edgeFlows[key]
	if !ok {
		return fmt.Errorf("cdg: reroute removes missing dependency %v→%v", m.chans[from], m.chans[to])
	}
	idx := sort.SearchInts(flows, flowID)
	if idx == len(flows) || flows[idx] != flowID {
		return fmt.Errorf("cdg: flow %d does not create dependency %v→%v", flowID, m.chans[from], m.chans[to])
	}
	flows = append(flows[:idx], flows[idx+1:]...)
	if len(flows) > 0 {
		m.edgeFlows[key] = flows
		return nil
	}
	delete(m.edgeFlows, key)
	m.succ[from] = removeValue(m.succ[from], to)
	m.pred[to] = removeValue(m.pred[to], from)
	m.nEdges--
	m.touched[from] = true
	m.touched[to] = true
	m.valid = false
	return nil
}

// ApplyReroute applies one flow's route change as localized edge updates.
// Consecutive-channel pairs common to the old and new routes are left
// untouched, so only the duplicated chain and its boundary dependencies
// invalidate cached SCC analysis.
func (m *Incremental) ApplyReroute(r Reroute) error {
	for i, ch := range r.New {
		if !m.top.ValidChannel(ch) {
			return fmt.Errorf("cdg: reroute of flow %d hop %d uses unprovisioned channel %v", r.FlowID, i, ch)
		}
	}
	oldPairs := routePairs(r.Old)
	newPairs := routePairs(r.New)
	common := make(map[[2]topology.Channel]bool, len(oldPairs))
	inNew := make(map[[2]topology.Channel]bool, len(newPairs))
	for _, p := range newPairs {
		inNew[p] = true
	}
	for _, p := range oldPairs {
		if inNew[p] {
			common[p] = true
		}
	}
	for _, p := range oldPairs {
		if common[p] {
			continue
		}
		from, okF := m.id[p[0]]
		to, okT := m.id[p[1]]
		if !okF || !okT {
			return fmt.Errorf("cdg: reroute removes dependency %v→%v between unknown channels", p[0], p[1])
		}
		if err := m.dropFlowEdge(from, to, r.FlowID); err != nil {
			return err
		}
	}
	for _, p := range newPairs {
		if common[p] {
			continue
		}
		m.addFlowEdge(m.vertex(p[0]), m.vertex(p[1]), r.FlowID)
	}
	return nil
}

// routePairs lists the consecutive-channel pairs of a route. Routes never
// repeat a channel, so the pairs are distinct.
func routePairs(chs []topology.Channel) [][2]topology.Channel {
	if len(chs) < 2 {
		return nil
	}
	out := make([][2]topology.Channel, 0, len(chs)-1)
	for i := 0; i+1 < len(chs); i++ {
		out = append(out, [2]topology.Channel{chs[i], chs[i+1]})
	}
	return out
}

// CycleFlows returns the ascending union of the flows creating any
// dependency edge of cycle (consecutive channels, wrapping). Algorithm 2
// only ever needs these flows — a flow with no edge on the cycle
// contributes no cost row — so the break hot path uses this instead of
// scanning the whole route table per cycle.
func (m *Incremental) CycleFlows(cycle []topology.Channel) []int {
	n := len(cycle)
	if n == 0 {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	for i := 0; i < n; i++ {
		from, okF := m.id[cycle[i]]
		to, okT := m.id[cycle[(i+1)%n]]
		if !okF || !okT {
			continue
		}
		for _, f := range m.edgeFlows[[2]int{from, to}] {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Ints(out)
	return out
}

// NumChannels returns the number of CDG vertices.
func (m *Incremental) NumChannels() int { return len(m.chans) }

// NumDependencies returns the number of CDG edges.
func (m *Incremental) NumDependencies() int { return m.nEdges }

// Dependencies returns every edge with its creating flows, sorted by
// canonical (from, to) channel order — directly comparable with the
// immutable CDG's Dependencies for differential testing.
func (m *Incremental) Dependencies() []Dependency {
	keys := make([][2]int, 0, len(m.edgeFlows))
	for k := range m.edgeFlows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return m.less(keys[i][0], keys[j][0])
		}
		return m.less(keys[i][1], keys[j][1])
	})
	out := make([]Dependency, 0, len(keys))
	for _, k := range keys {
		out = append(out, Dependency{
			From:  m.chans[k[0]],
			To:    m.chans[k[1]],
			Flows: append([]int(nil), m.edgeFlows[k]...),
		})
	}
	return out
}

// refresh brings the SCC cache up to date: one Tarjan pass over the whole
// graph, then shortest-cycle recomputation only for components that gained
// or lost an edge since the last refresh. This is the incremental hot
// path: a break typically touches one small component, and every other
// component's cached cycle is reused.
func (m *Incremental) refresh() {
	if m.valid {
		return
	}
	comps := m.nontrivialSCCs()
	next := make(map[int]*sccEntry, len(comps))
	for _, comp := range comps {
		key := comp[0]
		if old, ok := m.cache[key]; ok && sameMembers(old.members, comp) && !m.anyTouched(comp) {
			next[key] = old
			continue
		}
		e := &sccEntry{members: comp}
		e.cycle, e.start = m.shortestCycleIn(comp)
		next[key] = e
	}
	m.cache = next
	m.touched = make(map[int]bool)
	m.valid = true
}

func (m *Incremental) anyTouched(comp []int) bool {
	for _, v := range comp {
		if m.touched[v] {
			return true
		}
	}
	return false
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nontrivialSCCs runs an iterative Tarjan pass and returns the components
// that can contain a cycle (size ≥ 2, or a single vertex with a
// self-loop), each sorted by canonical channel order.
func (m *Incremental) nontrivialSCCs() [][]int {
	n := len(m.chans)
	m.scratch.ensure(n)
	index := m.scratch.index[:n]
	low := m.scratch.low[:n]
	onStack := m.scratch.onStack[:n]
	for i := range index {
		index[i] = -1
		onStack[i] = false
	}
	var (
		comps   [][]int
		tStack  []int
		counter int
	)
	type frame struct {
		node int
		next int
	}
	var callStack []frame
	for _, start := range m.order {
		if index[start] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{node: start})
		index[start] = counter
		low[start] = counter
		counter++
		tStack = append(tStack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.node
			if f.next < len(m.succ[v]) {
				w := m.succ[v][f.next]
				f.next++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					tStack = append(tStack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].node
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := tStack[len(tStack)-1]
					tStack = tStack[:len(tStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 || m.hasEdge(comp[0], comp[0]) {
					sort.Slice(comp, func(i, j int) bool { return m.less(comp[i], comp[j]) })
					comps = append(comps, comp)
				}
			}
		}
	}
	return comps
}

func (m *Incremental) hasEdge(from, to int) bool {
	_, ok := m.edgeFlows[[2]int{from, to}]
	return ok
}

// shortestCycleIn finds the shortest cycle inside one SCC: members are
// scanned in canonical channel order, each probed with a BFS restricted to
// the component (a shortest cycle through a vertex never leaves its SCC).
// It mirrors graph.ShortestCycle's scan-and-prune semantics so the
// incremental and full-rebuild paths pick identical cycles.
func (m *Incremental) shortestCycleIn(comp []int) (cycle []int, start int) {
	sc := &m.scratch
	sc.ensure(len(m.chans))
	sc.compEpoch++
	for _, v := range comp {
		sc.compStamp[v] = sc.compEpoch
	}
	var best []int
	bestStart := -1
	for _, s := range comp {
		if m.hasEdge(s, s) {
			return []int{s}, s // nothing beats a self-loop
		}
		if len(best) == 2 {
			break // only a self-loop could beat a 2-cycle
		}
		if cyc := m.probe(s, len(best)); cyc != nil {
			best = cyc
			bestStart = s
		}
	}
	return m.rotateToMinChannel(best), bestStart
}

// probe runs one BFS for the shortest cycle through start, restricted to
// the component most recently stamped via scratch.compStamp. With bound
// > 0 only a cycle strictly shorter than bound is reported; bound <= 0 is
// unbounded. It is the single probe both selection policies share.
func (m *Incremental) probe(start, bound int) []int {
	sc := &m.scratch
	sc.epoch++
	sc.stamp[start] = sc.epoch
	sc.dist[start] = 0
	sc.parent[start] = -1
	queue := append(sc.queue[:0], start)
	defer func() { sc.queue = queue[:0] }()
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if bound > 0 && sc.dist[u]+1 >= bound {
			continue
		}
		for _, v := range m.succ[u] {
			if sc.compStamp[v] != sc.compEpoch {
				continue
			}
			if v == start {
				if bound > 0 && sc.dist[u]+1 >= bound {
					return nil
				}
				var rev []int
				for x := u; x != -1; x = sc.parent[x] {
					rev = append(rev, x)
				}
				out := make([]int, len(rev))
				for i, x := range rev {
					out[len(rev)-1-i] = x
				}
				return out
			}
			if sc.stamp[v] != sc.epoch {
				sc.stamp[v] = sc.epoch
				sc.dist[v] = sc.dist[u] + 1
				sc.parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// rotateToMinChannel rotates a cycle to start at its canonically smallest
// channel, preserving orientation.
func (m *Incremental) rotateToMinChannel(cycle []int) []int {
	if len(cycle) == 0 {
		return nil
	}
	minIdx := 0
	for i, v := range cycle {
		if m.less(v, cycle[minIdx]) {
			minIdx = i
		}
	}
	if minIdx == 0 {
		return cycle
	}
	out := make([]int, 0, len(cycle))
	out = append(out, cycle[minIdx:]...)
	out = append(out, cycle[:minIdx]...)
	return out
}

// Acyclic reports whether the CDG currently has no cycles.
func (m *Incremental) Acyclic() bool {
	m.refresh()
	return len(m.cache) == 0
}

// SmallestCycle returns the shortest cycle in the whole CDG as an ordered
// channel list, or nil when the graph is acyclic. Among equal-length
// cycles the winner is the one found from the canonically smallest start
// channel, matching the full-rebuild search.
func (m *Incremental) SmallestCycle() []topology.Channel {
	m.refresh()
	var best *sccEntry
	for _, e := range m.cache {
		if e.cycle == nil {
			continue // defensive: nontrivial SCCs always have a cycle
		}
		if best == nil || len(e.cycle) < len(best.cycle) ||
			(len(e.cycle) == len(best.cycle) && m.less(e.start, best.start)) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return m.toChannels(best.cycle)
}

// SmallestCycleThroughFirstCyclic mirrors the FirstFound selection policy:
// the shortest cycle through the canonically smallest channel that lies on
// any cycle, starting at that channel, or nil when acyclic.
func (m *Incremental) SmallestCycleThroughFirstCyclic() []topology.Channel {
	m.refresh()
	var entry *sccEntry
	for _, e := range m.cache {
		if entry == nil || m.less(e.members[0], entry.members[0]) {
			entry = e
		}
	}
	if entry == nil {
		return nil
	}
	return m.toChannels(m.cycleThrough(entry, entry.members[0]))
}

// cycleThrough runs the restricted BFS probe for the shortest cycle
// through one member of an SCC, returned starting at that vertex.
func (m *Incremental) cycleThrough(e *sccEntry, start int) []int {
	if m.hasEdge(start, start) {
		return []int{start}
	}
	sc := &m.scratch
	sc.ensure(len(m.chans))
	sc.compEpoch++
	for _, v := range e.members {
		sc.compStamp[v] = sc.compEpoch
	}
	return m.probe(start, 0)
}

func (m *Incremental) toChannels(ids []int) []topology.Channel {
	if ids == nil {
		return nil
	}
	out := make([]topology.Channel, len(ids))
	for i, v := range ids {
		out[i] = m.chans[v]
	}
	return out
}
