package cdg

import (
	"reflect"
	"testing"

	"github.com/nocdr/nocdr/internal/topology"
)

// fingerprint captures everything observable about the graph's state for
// byte-level before/after comparison.
func fingerprint(t *testing.T, m *Incremental) ([]Dependency, []topology.Channel, int, int) {
	t.Helper()
	return m.Dependencies(), m.SmallestCycle(), m.NumChannels(), m.NumDependencies()
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	top, tab := paperExample(t)
	m, err := BuildIncremental(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	wantDeps, wantCycle, wantChans, wantEdges := fingerprint(t, m)

	snap := m.Snapshot()

	// Mutate heavily: move flow 0 off the cycle onto a duplicated channel
	// chain (new vertices), then drop flow 1 entirely.
	if _, err := top.AddVC(1); err != nil {
		t.Fatal(err)
	}
	reroutes := []Reroute{
		{FlowID: 0,
			Old: []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0), topology.Chan(2, 0)},
			New: []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 1), topology.Chan(2, 0)}},
		{FlowID: 1,
			Old: []topology.Channel{topology.Chan(2, 0), topology.Chan(3, 0)},
			New: nil},
	}
	for _, r := range reroutes {
		if err := m.ApplyReroute(r); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumChannels() == wantChans && m.NumDependencies() == wantEdges {
		t.Fatal("mutations did not change the graph; test is vacuous")
	}
	// Force a refresh so the SCC cache diverges too.
	m.Acyclic()

	m.Restore(snap)
	gotDeps, gotCycle, gotChans, gotEdges := fingerprint(t, m)
	if !reflect.DeepEqual(gotDeps, wantDeps) {
		t.Errorf("Dependencies after restore = %v, want %v", gotDeps, wantDeps)
	}
	if !reflect.DeepEqual(gotCycle, wantCycle) {
		t.Errorf("SmallestCycle after restore = %v, want %v", gotCycle, wantCycle)
	}
	if gotChans != wantChans || gotEdges != wantEdges {
		t.Errorf("size after restore = (%d ch, %d dep), want (%d, %d)",
			gotChans, gotEdges, wantChans, wantEdges)
	}
}

// TestSnapshotReusableAcrossFailures pins the documented contract that
// one Snapshot can rescue several failed attempts: restoring, mutating
// again, and restoring again still lands on the original state.
func TestSnapshotReusableAcrossFailures(t *testing.T) {
	top, tab := paperExample(t)
	m, err := BuildIncremental(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	wantDeps := m.Dependencies()
	snap := m.Snapshot()
	mutate := func() {
		if err := m.ApplyReroute(Reroute{FlowID: 2,
			Old: []topology.Channel{topology.Chan(3, 0), topology.Chan(0, 0)},
			New: nil}); err != nil {
			t.Fatal(err)
		}
	}
	for attempt := 0; attempt < 3; attempt++ {
		mutate()
		m.Restore(snap)
		if got := m.Dependencies(); !reflect.DeepEqual(got, wantDeps) {
			t.Fatalf("attempt %d: Dependencies after restore = %v, want %v", attempt, got, wantDeps)
		}
	}
}

// TestSnapshotIndependentOfLaterMutations guards against aliasing bugs:
// in-place growth of adjacency lists after the snapshot must not leak
// into it.
func TestSnapshotIndependentOfLaterMutations(t *testing.T) {
	top, tab := paperExample(t)
	m, err := BuildIncremental(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	wantDeps := m.Dependencies()
	snap := m.Snapshot()
	// Add edges that insert into existing adjacency lists.
	if err := m.ApplyReroute(Reroute{FlowID: 3,
		Old: []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0)},
		New: []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0), topology.Chan(2, 0), topology.Chan(3, 0)}}); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)
	if got := m.Dependencies(); !reflect.DeepEqual(got, wantDeps) {
		t.Errorf("snapshot was mutated through aliasing: %v, want %v", got, wantDeps)
	}
}

func TestRebindRestores(t *testing.T) {
	top, tab := paperExample(t)
	m, err := BuildIncremental(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	clone := top.Clone()
	if _, err := clone.AddVC(0); err != nil {
		t.Fatal(err)
	}
	m.Rebind(clone)
	// A reroute onto the clone-only channel validates against the clone.
	if err := m.ApplyReroute(Reroute{FlowID: 3,
		Old: []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0)},
		New: []topology.Channel{topology.Chan(0, 1), topology.Chan(1, 0)}}); err != nil {
		t.Fatalf("reroute onto rebound topology's channel: %v", err)
	}
	m.Restore(snap)
	// After restore the original topology is bound again, so the same
	// reroute must fail validation.
	if err := m.ApplyReroute(Reroute{FlowID: 3,
		Old: []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0)},
		New: []topology.Channel{topology.Chan(0, 1), topology.Chan(1, 0)}}); err == nil {
		t.Fatal("reroute onto unprovisioned channel succeeded after Restore; topology binding not rewound")
	}
}
