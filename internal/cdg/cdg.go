// Package cdg builds and analyzes the Channel Dependency Graph of
// Definition 4: one vertex per channel (physical link + virtual channel)
// and a directed edge ci→cj whenever at least one flow's route uses
// channel ci immediately followed by channel cj. Dally & Towles' theorem
// (the paper's reference [10]) makes a cycle in this graph the necessary
// condition for a routing deadlock under wormhole flow control, so
// "deadlock-free" below always means "the CDG is acyclic".
package cdg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nocdr/nocdr/internal/graph"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// Dependency is a directed CDG edge together with the flows that create it.
type Dependency struct {
	From, To topology.Channel
	Flows    []int // flow IDs, ascending
}

// CDG is an immutable channel dependency graph built from a topology and
// a route table. Vertex IDs are dense and assigned in the topology's
// canonical (link, VC) channel order, so two CDGs built from identical
// inputs are identical.
type CDG struct {
	top       *topology.Topology
	channels  []topology.Channel
	index     map[topology.Channel]int
	g         *graph.Digraph
	edgeFlows map[[2]int][]int
}

// Build constructs the CDG for the given topology and routes. Routes may
// reference only provisioned channels; Build returns an error otherwise.
func Build(top *topology.Topology, table *route.Table) (*CDG, error) {
	channels := top.Channels()
	c := &CDG{
		top:       top,
		channels:  channels,
		index:     make(map[topology.Channel]int, len(channels)),
		g:         graph.New(len(channels)),
		edgeFlows: make(map[[2]int][]int),
	}
	for i, ch := range channels {
		c.index[ch] = i
	}
	if len(channels) > 0 {
		c.g.Ensure(len(channels) - 1)
	}
	for _, r := range table.Routes() {
		for i, ch := range r.Channels {
			if _, ok := c.index[ch]; !ok {
				return nil, fmt.Errorf("cdg: flow %d hop %d uses unprovisioned channel %v",
					r.FlowID, i, ch)
			}
		}
		for i := 0; i+1 < len(r.Channels); i++ {
			from := c.index[r.Channels[i]]
			to := c.index[r.Channels[i+1]]
			key := [2]int{from, to}
			c.edgeFlows[key] = append(c.edgeFlows[key], r.FlowID)
		}
	}
	// Insert edges in sorted (from, to) order so adjacency lists — and with
	// them every cycle search — depend only on the edge set, never on route
	// scan order. This keeps Build interchangeable with the Incremental CDG,
	// whose edges come and go in break order.
	keys := make([][2]int, 0, len(c.edgeFlows))
	for key := range c.edgeFlows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		c.g.AddEdge(key[0], key[1])
	}
	for _, flows := range c.edgeFlows {
		sort.Ints(flows)
	}
	return c, nil
}

// BuildSet constructs the CDG over the *union* of a route set's permitted
// channel transitions: the set is flattened into pseudo-flows (one per
// candidate path, see route.RouteSet.Flatten) and Build runs on the
// result unchanged. Edge attributions (FlowsOn, Dependencies) therefore
// name pseudo-flow IDs; the returned refs map them back to (flow, path).
// For a single-path set the pseudo-flow IDs equal the real flow IDs and
// the graph is identical to Build on the equivalent table.
func BuildSet(top *topology.Topology, set *route.RouteSet) (*CDG, []route.PathRef, error) {
	tab, refs := set.Flatten()
	c, err := Build(top, tab)
	if err != nil {
		return nil, nil, err
	}
	return c, refs, nil
}

// NumChannels returns the number of CDG vertices.
func (c *CDG) NumChannels() int { return len(c.channels) }

// NumDependencies returns the number of CDG edges.
func (c *CDG) NumDependencies() int { return c.g.NumEdges() }

// Channel returns the channel for a vertex ID.
func (c *CDG) Channel(id int) topology.Channel { return c.channels[id] }

// VertexOf returns the vertex ID of a channel, if it exists in the CDG.
func (c *CDG) VertexOf(ch topology.Channel) (int, bool) {
	id, ok := c.index[ch]
	return id, ok
}

// HasDependency reports whether the dependency from→to exists.
func (c *CDG) HasDependency(from, to topology.Channel) bool {
	fi, ok1 := c.index[from]
	ti, ok2 := c.index[to]
	return ok1 && ok2 && c.g.HasEdge(fi, ti)
}

// FlowsOn returns the flows creating the dependency from→to (ascending),
// or nil if the dependency does not exist.
func (c *CDG) FlowsOn(from, to topology.Channel) []int {
	fi, ok1 := c.index[from]
	ti, ok2 := c.index[to]
	if !ok1 || !ok2 {
		return nil
	}
	return append([]int(nil), c.edgeFlows[[2]int{fi, ti}]...)
}

// Dependencies returns every CDG edge with its creating flows, sorted by
// (from, to) vertex ID.
func (c *CDG) Dependencies() []Dependency {
	edges := c.g.Edges()
	out := make([]Dependency, 0, len(edges))
	for _, e := range edges {
		out = append(out, Dependency{
			From:  c.channels[e[0]],
			To:    c.channels[e[1]],
			Flows: append([]int(nil), c.edgeFlows[[2]int{e[0], e[1]}]...),
		})
	}
	return out
}

// Acyclic reports whether the CDG has no cycles — the paper's deadlock-
// freedom condition.
func (c *CDG) Acyclic() bool { return !c.g.HasCycle() }

// SmallestCycle implements the paper's GetSmallestCycle: the shortest
// cycle as an ordered channel list (the closing dependency from the last
// back to the first channel is implicit), or nil if the CDG is acyclic.
func (c *CDG) SmallestCycle() []topology.Channel {
	ids := c.g.ShortestCycle()
	if ids == nil {
		return nil
	}
	out := make([]topology.Channel, len(ids))
	for i, id := range ids {
		out[i] = c.channels[id]
	}
	return out
}

// SmallestCycleThrough returns the shortest cycle passing through the
// given channel (rotated to start at it), or nil if the channel lies on
// no cycle or is unknown.
func (c *CDG) SmallestCycleThrough(ch topology.Channel) []topology.Channel {
	id, ok := c.index[ch]
	if !ok {
		return nil
	}
	ids := c.g.ShortestCycleThrough(id)
	if ids == nil {
		return nil
	}
	out := make([]topology.Channel, len(ids))
	for i, v := range ids {
		out[i] = c.channels[v]
	}
	return out
}

// CyclicChannels returns the channels involved in at least one cycle.
func (c *CDG) CyclicChannels() []topology.Channel {
	ids := c.g.CyclicNodes()
	out := make([]topology.Channel, len(ids))
	for i, id := range ids {
		out[i] = c.channels[id]
	}
	return out
}

// CountCycles counts elementary cycles up to limit (<=0 for all); see
// graph.CountCycles for caveats.
func (c *CDG) CountCycles(limit int) int { return c.g.CountCycles(limit) }

// String renders a compact summary like "CDG{5 channels, 5 deps, cyclic}".
func (c *CDG) String() string {
	state := "acyclic"
	if !c.Acyclic() {
		state = "cyclic"
	}
	return fmt.Sprintf("CDG{%d channels, %d deps, %s}", c.NumChannels(), c.NumDependencies(), state)
}

// WriteDOT renders the CDG in Graphviz DOT format with the paper's
// channel naming (L1, L1', …). Vertices on cycles are drawn doubled.
func (c *CDG) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph cdg {\n  node [shape=ellipse];\n")
	cyclic := make(map[int]bool)
	for _, id := range c.g.CyclicNodes() {
		cyclic[id] = true
	}
	for id, ch := range c.channels {
		attr := ""
		if cyclic[id] {
			attr = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", id, c.top.ChannelName(ch), attr)
	}
	for _, e := range c.g.Edges() {
		flows := c.edgeFlows[[2]int{e[0], e[1]}]
		labels := make([]string, len(flows))
		for i, f := range flows {
			labels[i] = fmt.Sprintf("F%d", f+1)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e[0], e[1], strings.Join(labels, ","))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
