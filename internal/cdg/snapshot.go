package cdg

import "github.com/nocdr/nocdr/internal/topology"

// Snapshot is a point-in-time copy of an Incremental CDG's complete
// mutable state. It exists for the online-reconfiguration commit
// protocol: a reroute batch plus a warm-start removal replay mutate the
// live graph in place, and when the replay fails mid-way (ErrVCLimit, a
// cancellation, an inconsistent reroute) the graph must come back
// byte-identical instead of staying half-mutated. Take a Snapshot before
// the batch, Restore it on any error, drop it on commit.
//
// A Snapshot is independent of later mutations (every slice and map is
// deep-copied, except the immutable-after-construction SCC cache entries,
// which are shared) and is reusable: Restore copies out of the snapshot
// rather than aliasing it, so the same Snapshot can rescue several failed
// attempts.
type Snapshot struct {
	top       *topology.Topology
	chans     []topology.Channel
	id        map[topology.Channel]int
	order     []int
	succ      [][]int
	pred      [][]int
	edgeFlows map[[2]int][]int
	nEdges    int
	touched   map[int]bool
	cache     map[int]*sccEntry
	valid     bool
}

// Snapshot captures the graph's current state. Cost is O(V + E) — far
// below one removal iteration's Tarjan pass, so snapshotting per
// reconfiguration event is cheap.
func (m *Incremental) Snapshot() *Snapshot {
	return &Snapshot{
		top:       m.top,
		chans:     append([]topology.Channel(nil), m.chans...),
		id:        copyIntMap(m.id),
		order:     append([]int(nil), m.order...),
		succ:      copyAdj(m.succ),
		pred:      copyAdj(m.pred),
		edgeFlows: copyEdgeFlows(m.edgeFlows),
		nEdges:    m.nEdges,
		touched:   copyBoolMap(m.touched),
		cache:     copyCache(m.cache),
		valid:     m.valid,
	}
}

// Restore rewinds the graph to the snapshotted state, including the
// topology binding Rebind may have changed since. The scratch buffers are
// left alone — they carry no graph state, only epoch-stamped work arrays.
func (m *Incremental) Restore(s *Snapshot) {
	m.top = s.top
	m.chans = append(m.chans[:0], s.chans...)
	m.id = copyIntMap(s.id)
	m.order = append(m.order[:0], s.order...)
	m.succ = copyAdj(s.succ)
	m.pred = copyAdj(s.pred)
	m.edgeFlows = copyEdgeFlows(s.edgeFlows)
	m.nEdges = s.nEdges
	m.touched = copyBoolMap(s.touched)
	m.cache = copyCache(s.cache)
	m.valid = s.valid
}

// Rebind points the graph's channel validation at a different topology —
// typically a clone of the original that has just had a link faulted and
// will receive the replay's new VCs. Reroutes are validated against the
// bound topology, so a reconfiguration rebinds to its working clone up
// front and relies on Restore to rebind back on failure. The clone must
// be structurally identical to the original (same switch/link IDs); only
// fault masks and VC counts may diverge.
func (m *Incremental) Rebind(top *topology.Topology) {
	m.top = top
}

func copyIntMap(src map[topology.Channel]int) map[topology.Channel]int {
	out := make(map[topology.Channel]int, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func copyBoolMap(src map[int]bool) map[int]bool {
	out := make(map[int]bool, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func copyAdj(src [][]int) [][]int {
	out := make([][]int, len(src))
	for i, list := range src {
		if list != nil {
			out[i] = append([]int(nil), list...)
		}
	}
	return out
}

func copyEdgeFlows(src map[[2]int][]int) map[[2]int][]int {
	out := make(map[[2]int][]int, len(src))
	for k, v := range src {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// copyCache shallow-copies the SCC cache: entries are immutable once
// refresh builds them, so sharing them between the live graph and a
// snapshot is safe.
func copyCache(src map[int]*sccEntry) map[int]*sccEntry {
	out := make(map[int]*sccEntry, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}
