package certify_test

import (
	"errors"
	"testing"

	"github.com/nocdr/nocdr/internal/certify"
)

// TestNegativeDesigns feeds the checker hand-built pathological bundles.
// Structurally valid cyclic designs must yield the correct counterexample
// witness; schema violations must yield the matching typed error.
func TestNegativeDesigns(t *testing.T) {
	cases := []struct {
		name string
		json string
		// wantErr: the typed validation error expected, nil when a
		// certificate should be issued.
		wantErr error
		// wantCycle: expected counterexample witness length (0 = acyclic).
		wantCycle int
	}{
		{
			name: "hidden 2-cycle",
			// Two links, two flows crossing in opposite orders: the CDG
			// holds 0:0 -> 1:0 and 1:0 -> 0:0, a 2-cycle invisible to any
			// per-flow check.
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":1},{"id":1,"from":1,"to":0,"vcs":1}], "faults": []},
				"routes": {"routes": [
					{"flow":0,"channels":[{"link":0,"vc":0},{"link":1,"vc":0}]},
					{"flow":1,"channels":[{"link":1,"vc":0},{"link":0,"vc":0}]}]}
			}`,
			wantCycle: 2,
		},
		{
			name: "self-loop",
			// A route that crosses the same channel twice in a row: the
			// dependency 0:0 -> 0:0 is a 1-cycle.
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":0,"vcs":1}], "faults": []},
				"routes": {"routes": [{"flow":0,"channels":[{"link":0,"vc":0},{"link":0,"vc":0}]}]}
			}`,
			wantCycle: 1,
		},
		{
			name: "dangling VC reference",
			// Link 0 provisions a single VC; the route asks for vc 1.
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":1}], "faults": []},
				"routes": {"routes": [{"flow":0,"channels":[{"link":0,"vc":1}]}]}
			}`,
			wantErr: certify.ErrDanglingVC,
		},
		{
			name: "unknown link reference",
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":2}], "faults": []},
				"routes": {"routes": [{"flow":0,"channels":[{"link":7,"vc":0}]}]}
			}`,
			wantErr: certify.ErrDanglingVC,
		},
		{
			name: "route crosses faulted link",
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":1},{"id":1,"from":1,"to":2,"vcs":1}], "faults": [1]},
				"routes": {"routes": [{"flow":0,"channels":[{"link":0,"vc":0},{"link":1,"vc":0}]}]}
			}`,
			wantErr: certify.ErrFaultedLink,
		},
		{
			name:    "missing topology section",
			json:    `{"routes": {"routes": [{"flow":0,"channels":[{"link":0,"vc":0}]}]}}`,
			wantErr: certify.ErrSchema,
		},
		{
			name: "empty routes section",
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":1}], "faults": []},
				"routes": {}
			}`,
			wantErr: certify.ErrSchema,
		},
		{
			name: "zero-VC link",
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":0}], "faults": []},
				"routes": {"routes": [{"flow":0,"channels":[]}]}
			}`,
			wantErr: certify.ErrSchema,
		},
		{
			name: "fault names unknown link",
			json: `{
				"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":1}], "faults": [9]},
				"routes": {"routes": [{"flow":0,"channels":[{"link":0,"vc":0}]}]}
			}`,
			wantErr: certify.ErrSchema,
		},
		{
			name:    "not JSON at all",
			json:    `]]][[[`,
			wantErr: certify.ErrSchema,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cert, err := certify.Check([]byte(tc.json), "pre")
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if cert.Acyclic {
				t.Fatal("pathological design certified acyclic")
			}
			if len(cert.Cycle) != tc.wantCycle {
				t.Fatalf("cycle witness %v has length %d, want %d", cert.Cycle, len(cert.Cycle), tc.wantCycle)
			}
			if err := certify.Validate(cert, []byte(tc.json)); err != nil {
				t.Fatalf("cycle witness does not validate: %v", err)
			}
		})
	}
}
