// Cross-validation of the independent checker against the engine: the
// external test package deliberately imports reconfig/cdg/core — the
// code the checker must agree with while sharing none of.
package certify_test

import (
	"encoding/json"
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/certify"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/reconfig"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/traffic"
)

// buildDesign produces a removed (acyclic) design bundle on a grid, the
// same artifact `nocexp design` writes.
func buildDesign(t *testing.T, wrap bool, cols, rows int, model string) *reconfig.Design {
	t.Helper()
	var g *regular.Grid
	var err error
	if wrap {
		g, err = regular.Torus(cols, rows)
	} else {
		g, err = regular.Mesh(cols, rows)
	}
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewGraph("stride")
	n := cols * rows
	for i := 0; i < n; i++ {
		tr.AddCore("")
	}
	for i := 0; i < n; i++ {
		if d := (i + n/2) % n; d != i {
			tr.MustAddFlow(traffic.CoreID(i), traffic.CoreID(d), 100)
		}
	}
	tm, err := route.ParseTurnModel(model)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := reconfig.New(g, tr, tm, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCheckAgainstEngine certifies real post-removal bundles and
// cross-checks the checker's verdict against the engine's own CDG.
func TestCheckAgainstEngine(t *testing.T) {
	cases := []struct {
		name  string
		wrap  bool
		model string
	}{
		{"mesh4x4_oddEven", false, "odd-even"},
		{"mesh4x4_westFirst", false, "west-first"},
		{"torus4x4_oddEven", true, "odd-even"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := buildDesign(t, tc.wrap, 4, 4, tc.model)
			data, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			cert, err := certify.Check(data, "post")
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if !cert.Acyclic {
				t.Fatalf("checker calls a removed design cyclic; cycle %v", cert.Cycle)
			}
			if len(cert.TopoOrder) != cert.Channels {
				t.Fatalf("topo order has %d entries, %d channels", len(cert.TopoOrder), cert.Channels)
			}
			if cert.Salt != certify.Salt || cert.CheckerVersion != certify.Version {
				t.Fatalf("certificate identity %q/%d", cert.Salt, cert.CheckerVersion)
			}

			// Engine leg: the same design through internal/cdg.
			g, _, err := cdg.BuildSet(d.Topology, d.Routes)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Acyclic() {
				t.Fatal("engine CDG disagrees: cyclic")
			}
			if want := len(d.Topology.Channels()); cert.Channels != want {
				t.Fatalf("checker sees %d channels, topology has %d", cert.Channels, want)
			}

			// The witness must survive independent validation.
			if err := certify.Validate(cert, data); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			// And a JSON round-trip of the certificate must too.
			enc, err := json.Marshal(cert)
			if err != nil {
				t.Fatal(err)
			}
			back, err := certify.ReadCertificate(enc)
			if err != nil {
				t.Fatal(err)
			}
			if err := certify.Validate(back, data); err != nil {
				t.Fatalf("Validate after round-trip: %v", err)
			}
		})
	}
}

// TestCheckPreRemoval feeds the checker a torus with plain DOR-ish
// cyclic routes (hand-built wraparound ring) and expects a validated
// cycle witness.
func TestCheckPreRemoval(t *testing.T) {
	// A 1-VC unidirectional 3-ring: 0→1→2→0 with one flow per hop pair
	// creates the classic wraparound dependency cycle.
	design := []byte(`{
		"version": 1,
		"topology": {"name": "ring3", "switches": [{"id":0},{"id":1},{"id":2}],
			"links": [{"id":0,"from":0,"to":1,"vcs":1},{"id":1,"from":1,"to":2,"vcs":1},{"id":2,"from":2,"to":0,"vcs":1}],
			"cores": [], "faults": []},
		"routes": {"routes": [
			{"flow":0,"channels":[{"link":0,"vc":0},{"link":1,"vc":0}]},
			{"flow":1,"channels":[{"link":1,"vc":0},{"link":2,"vc":0}]},
			{"flow":2,"channels":[{"link":2,"vc":0},{"link":0,"vc":0}]}]}
	}`)
	cert, err := certify.Check(design, "pre")
	if err != nil {
		t.Fatal(err)
	}
	if cert.Acyclic {
		t.Fatal("checker calls the wraparound ring acyclic")
	}
	if len(cert.Cycle) != 3 {
		t.Fatalf("smallest cycle has %d channels, want 3: %v", len(cert.Cycle), cert.Cycle)
	}
	if err := certify.Validate(cert, design); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestValidateRejectsTampering pins the binding: a certificate must not
// validate against different bytes, a doctored witness, or a wrong
// checker version.
func TestValidateRejectsTampering(t *testing.T) {
	d := buildDesign(t, false, 4, 4, "odd-even")
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := certify.Check(data, "post")
	if err != nil {
		t.Fatal(err)
	}

	tampered := append([]byte(nil), data...)
	tampered = append(tampered, ' ')
	if err := certify.Validate(cert, tampered); err == nil {
		t.Error("certificate validated against different design bytes")
	}

	swapped := *cert
	swapped.TopoOrder = append([]certify.Channel(nil), cert.TopoOrder...)
	swapped.TopoOrder[0], swapped.TopoOrder[len(swapped.TopoOrder)-1] =
		swapped.TopoOrder[len(swapped.TopoOrder)-1], swapped.TopoOrder[0]
	if err := certify.Validate(&swapped, data); err == nil {
		t.Error("doctored topological order validated")
	}

	wrongVer := *cert
	wrongVer.CheckerVersion = certify.Version + 1
	if err := certify.Validate(&wrongVer, data); err == nil {
		t.Error("future checker version validated")
	}
}

// TestCheckDeterministic pins byte-identical certificates across runs —
// the property the sweep cache's byte-identity invariant leans on.
func TestCheckDeterministic(t *testing.T) {
	d := buildDesign(t, true, 4, 4, "negative-first")
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := certify.Check(data, "post")
	if err != nil {
		t.Fatal(err)
	}
	b, err := certify.Check(data, "post")
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("certificates differ across runs:\n%s\n%s", ja, jb)
	}
}

// TestCheckModeRecorded pins that mode is recorded verbatim and bad
// modes are rejected.
func TestCheckModeRecorded(t *testing.T) {
	d := buildDesign(t, false, 4, 4, "odd-even")
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := certify.Check(data, "pre")
	if err != nil {
		t.Fatal(err)
	}
	if cert.Mode != "pre" {
		t.Fatalf("mode %q", cert.Mode)
	}
	if _, err := certify.Check(data, "sideways"); err == nil {
		t.Fatal("bad mode accepted")
	}
}
