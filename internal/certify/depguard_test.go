package certify

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestCheckerIndependence is the depguard: the checker proper (every
// non-test file of this package) may import ONLY the standard library.
// In particular nothing from internal/cdg, internal/core,
// internal/route, internal/graph, or internal/topology — the engine
// code whose verdicts this package exists to double-check. Test files
// are exempt (the external test cross-validates against the engine on
// purpose).
func TestCheckerIndependence(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked++
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: import %s: %v", name, imp.Path.Value, err)
			}
			// Stdlib import paths never contain a dot in their first
			// element; module paths (github.com/..., and this module's own
			// internal packages) always do.
			first := path
			if i := strings.IndexByte(path, '/'); i >= 0 {
				first = path[:i]
			}
			if strings.Contains(first, ".") {
				t.Errorf("%s imports %q: checker must be stdlib-only (filepath %s)",
					name, path, filepath.Join("internal/certify", name))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-test files checked; depguard is vacuous")
	}
}
