package certify

import (
	"encoding/json"
	"testing"
)

// fuzzSeed is a small valid post-removal-shaped bundle: a 2-link path
// with one flow, trivially acyclic.
const fuzzSeed = `{
	"topology": {"links": [{"id":0,"from":0,"to":1,"vcs":2},{"id":1,"from":1,"to":2,"vcs":2}], "faults": []},
	"routes": {"routes": [
		{"flow":0,"channels":[{"link":0,"vc":0},{"link":1,"vc":0}]},
		{"flow":1,"channels":[{"link":0,"vc":1},{"link":1,"vc":1}]}]}
}`

// FuzzCertificate drives arbitrary bytes through the checker and pins
// the certificate laws on every design that parses:
//
//  1. a certificate always validates against the bytes it was issued for;
//  2. certification is deterministic (byte-identical across runs);
//  3. mutating one dependency edge of a certified acyclic design —
//     appending a route that reverses an existing dependency, closing a
//     2-cycle — must flip the verdict, and the stale witness must be
//     rejected even when the digest and edge counts are forged to match
//     the mutated bytes.
func FuzzCertificate(f *testing.F) {
	f.Add([]byte(fuzzSeed))
	f.Add([]byte(`{"topology":{"links":[{"id":0,"vcs":1}]},"routes":{"routes":[{"flow":0,"channels":[{"link":0,"vc":0}]}]}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cert, err := Check(data, "post")
		if err != nil {
			return // malformed designs are out of scope; typed rejection is its own test
		}
		// Law 1: self-validation.
		if verr := Validate(cert, data); verr != nil {
			t.Fatalf("fresh certificate rejected: %v", verr)
		}
		// Law 2: determinism.
		again, err := Check(data, "post")
		if err != nil {
			t.Fatalf("second Check errored: %v", err)
		}
		ja, _ := json.Marshal(cert)
		jb, _ := json.Marshal(again)
		if string(ja) != string(jb) {
			t.Fatalf("nondeterministic certificate:\n%s\n%s", ja, jb)
		}
		if !cert.Acyclic {
			return
		}
		// Law 3: one-edge mutation must be caught. Reverse an existing
		// dependency u -> v by appending a route [v, u]: the mutated
		// design holds a 2-cycle by construction.
		mutated, ok := addBackEdge(t, data)
		if !ok {
			return
		}
		mcert, err := Check(mutated, "post")
		if err != nil {
			t.Fatalf("mutated design no longer parses: %v", err)
		}
		if mcert.Acyclic {
			t.Fatalf("back edge did not flip the verdict; order %v", cert.TopoOrder)
		}
		// Forge everything forgeable: digest and edge count now match the
		// mutated bytes. The witness itself must still be rejected.
		forged := *cert
		forged.DesignSHA256 = sha256Hex(mutated)
		forged.Dependencies = mcert.Dependencies
		if verr := Validate(&forged, mutated); verr == nil {
			t.Fatal("stale topological order validated against a mutated design")
		}
	})
}

// addBackEdge appends a single-route mutation reversing the first
// dependency edge of the rebuilt graph. Returns ok=false when the design
// has no dependencies to reverse.
func addBackEdge(t *testing.T, data []byte) ([]byte, bool) {
	t.Helper()
	g, err := rebuild(data)
	if err != nil {
		t.Fatalf("re-rebuild: %v", err)
	}
	u, v := -1, -1
	for from, out := range g.adj {
		if len(out) > 0 {
			u, v = from, out[0]
			break
		}
	}
	if u < 0 {
		return nil, false
	}
	var d design
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	var routes routesDoc
	if err := json.Unmarshal(d.Routes, &routes); err != nil {
		t.Fatalf("re-parse routes: %v", err)
	}
	routes.Routes = append(routes.Routes, struct {
		Flow     int       `json:"flow"`
		Channels []Channel `json:"channels"`
	}{Flow: 1 << 20, Channels: []Channel{g.channels[v], g.channels[u]}})
	rraw, err := json.Marshal(routes)
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := json.Marshal(design{Topology: d.Topology, Routes: rraw})
	if err != nil {
		t.Fatal(err)
	}
	return mutated, true
}
