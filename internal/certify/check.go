package certify

import (
	"encoding/json"
	"fmt"
	"os"
)

// Check rebuilds the CDG from the design bytes and issues a certificate.
// mode is the caller's claim: "pre" (pre-removal, expected cyclic) or
// "post" (post-removal, expected acyclic). The claim is recorded, not
// enforced — Check always reports what the graph actually is; callers
// compare Acyclic against their expectation.
func Check(designJSON []byte, mode string) (*Certificate, error) {
	if mode != "pre" && mode != "post" {
		return nil, fmt.Errorf("%w: mode %q (want \"pre\" or \"post\")", ErrSchema, mode)
	}
	g, err := rebuild(designJSON)
	if err != nil {
		return nil, err
	}
	cert := &Certificate{
		CheckerVersion: Version,
		Salt:           Salt,
		DesignSHA256:   sha256Hex(designJSON),
		Mode:           mode,
		Channels:       len(g.channels),
		Dependencies:   g.edges,
	}
	if order, ok := g.toposort(); ok {
		cert.Acyclic = true
		cert.TopoOrder = make([]Channel, len(order))
		for i, v := range order {
			cert.TopoOrder[i] = g.channels[v]
		}
		return cert, nil
	}
	cycle := g.smallestCycle()
	cert.Cycle = make([]Channel, len(cycle))
	for i, v := range cycle {
		cert.Cycle[i] = g.channels[v]
	}
	return cert, nil
}

// CheckFile reads a design bundle from disk and certifies it.
func CheckFile(path, mode string) (*Certificate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Check(data, mode)
}

// toposort runs Kahn's algorithm with a deterministic smallest-vertex
// tie-break (vertex IDs follow the canonical channel order, so the
// witness is stable across runs). Returns the order and true iff the
// graph is acyclic.
func (g *cdgraph) toposort() ([]int, bool) {
	n := len(g.channels)
	indeg := make([]int, n)
	for _, out := range g.adj {
		for _, w := range out {
			indeg[w]++
		}
	}
	// ready is a min-heap of zero-indegree vertices.
	var ready intHeap
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready.push(v)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		v := ready.pop()
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready.push(w)
			}
		}
	}
	return order, len(order) == n
}

// smallestCycle finds a minimum-length dependency cycle by BFS from each
// vertex back to itself, preferring the lexicographically smallest start
// among equal lengths (start vertices are scanned in canonical order).
// Must only be called on a graph toposort rejected.
func (g *cdgraph) smallestCycle() []int {
	n := len(g.channels)
	best := []int(nil)
	parent := make([]int, n)
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		if best != nil && len(best) == 2 {
			break // a 2-cycle (or self-loop, len 1) cannot be beaten by later starts
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue := []int{s}
		found := -1
		for len(queue) > 0 && found < 0 {
			v := queue[0]
			queue = queue[1:]
			if best != nil && dist[v]+1 >= len(best) {
				continue // cannot close a shorter cycle through v
			}
			for _, w := range g.adj[v] {
				if w == s {
					found = v
					break
				}
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		if found < 0 {
			continue
		}
		cycle := []int{}
		for v := found; v != -1; v = parent[v] {
			cycle = append(cycle, v)
		}
		// cycle is [found .. s] reversed; flip to path order s -> ... -> found.
		for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
			cycle[i], cycle[j] = cycle[j], cycle[i]
		}
		if best == nil || len(cycle) < len(best) {
			best = cycle
		}
		if len(best) == 1 {
			break // self-loop, globally minimal
		}
	}
	return best
}

// Validate independently re-checks a certificate against the design it
// names. It re-derives the CDG and verifies the witness from scratch:
// a TopoOrder must be a permutation of every provisioned channel with
// every dependency pointing forward; a Cycle must consist of real
// dependency edges with a real closing edge. All failures wrap
// ErrWitness.
func Validate(cert *Certificate, designJSON []byte) error {
	if cert == nil {
		return fmt.Errorf("%w: nil certificate", ErrWitness)
	}
	if cert.CheckerVersion != Version {
		return fmt.Errorf("%w: checker version %d (running %d)", ErrWitness, cert.CheckerVersion, Version)
	}
	if got := sha256Hex(designJSON); got != cert.DesignSHA256 {
		return fmt.Errorf("%w: design digest %s does not match certificate %s", ErrWitness, got, cert.DesignSHA256)
	}
	g, err := rebuild(designJSON)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWitness, err)
	}
	if cert.Channels != len(g.channels) || cert.Dependencies != g.edges {
		return fmt.Errorf("%w: graph has %d channels / %d dependencies, certificate says %d / %d",
			ErrWitness, len(g.channels), g.edges, cert.Channels, cert.Dependencies)
	}
	if cert.Acyclic {
		return g.validateOrder(cert.TopoOrder)
	}
	return g.validateCycle(cert.Cycle)
}

// validateOrder checks the witness is a permutation of all channels with
// every edge forward.
func (g *cdgraph) validateOrder(order []Channel) error {
	if len(order) != len(g.channels) {
		return fmt.Errorf("%w: topo order lists %d channels, graph has %d", ErrWitness, len(order), len(g.channels))
	}
	pos := make([]int, len(g.channels))
	for i := range pos {
		pos[i] = -1
	}
	for i, ch := range order {
		v, ok := g.index[ch]
		if !ok {
			return fmt.Errorf("%w: topo order names unknown channel %d:%d", ErrWitness, ch.Link, ch.VC)
		}
		if pos[v] >= 0 {
			return fmt.Errorf("%w: channel %d:%d appears twice in topo order", ErrWitness, ch.Link, ch.VC)
		}
		pos[v] = i
	}
	for v, out := range g.adj {
		for _, w := range out {
			if pos[v] >= pos[w] {
				return fmt.Errorf("%w: dependency %d:%d -> %d:%d points backward in topo order",
					ErrWitness, g.channels[v].Link, g.channels[v].VC, g.channels[w].Link, g.channels[w].VC)
			}
		}
	}
	return nil
}

// validateCycle checks every consecutive witness pair (and the closing
// pair) is a real dependency edge.
func (g *cdgraph) validateCycle(cycle []Channel) error {
	if len(cycle) == 0 {
		return fmt.Errorf("%w: cyclic certificate carries no cycle witness", ErrWitness)
	}
	ids := make([]int, len(cycle))
	for i, ch := range cycle {
		v, ok := g.index[ch]
		if !ok {
			return fmt.Errorf("%w: cycle names unknown channel %d:%d", ErrWitness, ch.Link, ch.VC)
		}
		ids[i] = v
	}
	for i := range ids {
		v, w := ids[i], ids[(i+1)%len(ids)]
		if !g.hasEdge(v, w) {
			return fmt.Errorf("%w: cycle step %d:%d -> %d:%d is not a dependency",
				ErrWitness, cycle[i].Link, cycle[i].VC, cycle[(i+1)%len(ids)].Link, cycle[(i+1)%len(ids)].VC)
		}
	}
	return nil
}

func (g *cdgraph) hasEdge(v, w int) bool {
	for _, x := range g.adj[v] {
		if x == w {
			return true
		}
	}
	return false
}

// ReadCertificate parses a certificate JSON document.
func ReadCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: certificate: %v", ErrSchema, err)
	}
	return &c, nil
}

// intHeap is a minimal binary min-heap so the checker does not pull in
// container/heap's interface machinery.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
