// Package certify is the independent acyclicity checker: a deliberately
// small verifier that re-reads an emitted design bundle (the `nocexp
// design` / sweep-cell artifact), rebuilds the channel-dependency graph
// from the VC-assigned topology and route table from first principles,
// and emits a machine-checkable Certificate — a topological order as the
// acyclicity witness, or the smallest dependency cycle as the
// counterexample witness.
//
// Independence is the point. The rest of the system asserts deadlock
// freedom with the same graph code that computes removal
// (internal/cdg + internal/graph), so a bug there would silently
// self-certify. This package therefore imports NOTHING from the engine:
// no internal/cdg, no internal/core, no internal/route, no
// internal/graph, no internal/topology — only the standard library and
// its own reading of the design JSON schema. A depguard test parses the
// package's import list and fails the build the moment anything
// non-stdlib creeps in. In the spirit of Verbeek & Schmaltz's formally
// verified deadlock-detection condition, the checker is small enough to
// audit in one sitting, and its certificates are validated a third time
// in CI by a jq/shell re-check that shares no code with Go at all.
package certify

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Version is the checker's schema/algorithm version, recorded in every
// certificate so a consumer can reject certificates from an older
// checker.
const Version = 1

// Salt names the checker build that produced a certificate. It doubles
// as the cache-poisoning guard: a stored certificate whose salt differs
// from the running checker's is discarded and recomputed, never reused.
const Salt = "nocdr-certify/1"

// Typed validation errors. Schema violations and impossible designs are
// errors (no certificate can be issued); a cyclic CDG is NOT an error —
// it yields a certificate carrying the cycle witness.
var (
	// ErrSchema marks malformed design JSON: not the bundle schema at
	// all, or missing its topology/routes sections.
	ErrSchema = errors.New("certify: malformed design")
	// ErrDanglingVC marks a route referencing a channel the topology
	// never provisioned (unknown link ID or VC index >= the link's VCs).
	ErrDanglingVC = errors.New("certify: route uses unprovisioned channel")
	// ErrFaultedLink marks a route crossing a link the fault mask
	// retired.
	ErrFaultedLink = errors.New("certify: route uses faulted link")
	// ErrWitness marks a certificate whose witness does not validate
	// against the design it names.
	ErrWitness = errors.New("certify: witness validation failed")
)

// Channel is one (physical link, virtual channel) pair — the checker's
// own spelling of the CDG vertex type.
type Channel struct {
	Link int `json:"link"`
	VC   int `json:"vc"`
}

// Certificate is the machine-checkable verdict for one design. Exactly
// one of TopoOrder (acyclic: every provisioned channel once, every
// dependency pointing forward) and Cycle (cyclic: the smallest
// dependency cycle, closing edge implicit) is present.
type Certificate struct {
	CheckerVersion int    `json:"checker_version"`
	Salt           string `json:"salt"`
	// DesignSHA256 is the SHA-256 of the exact design bytes certified,
	// binding the witness to one artifact.
	DesignSHA256 string `json:"design_sha256"`
	// Mode is what the caller claimed about the design: "pre" (expected
	// cyclic, pre-removal) or "post" (expected acyclic, post-removal).
	Mode string `json:"mode"`
	// Channels/Dependencies are the rebuilt CDG's vertex and edge counts.
	Channels     int `json:"channels"`
	Dependencies int `json:"dependencies"`
	// Acyclic is the checker's verdict.
	Acyclic   bool      `json:"acyclic"`
	TopoOrder []Channel `json:"topo_order,omitempty"`
	Cycle     []Channel `json:"cycle,omitempty"`
}

// design is the checker's own reading of the bundle schema: only the
// fields the CDG needs. Extra fields (grid shape, traffic, versioning)
// are deliberately ignored so the checker accepts both full
// reconfig.Design bundles and the minimal {topology, routes} documents
// the sweep runner emits per cell.
type design struct {
	Topology json.RawMessage `json:"topology"`
	Routes   json.RawMessage `json:"routes"`
}

type topologyDoc struct {
	Links []struct {
		ID  int `json:"id"`
		VCs int `json:"vcs"`
	} `json:"links"`
	Faults []int `json:"faults"`
}

// routesDoc covers both route schemas: a candidate route set
// ({"flows": [{flow, paths: [[{link, vc}, ...], ...]}]}) and a
// single-path table ({"routes": [{flow, channels: [{link, vc}, ...]}]}).
type routesDoc struct {
	Flows []struct {
		Flow  int         `json:"flow"`
		Paths [][]Channel `json:"paths"`
	} `json:"flows"`
	Routes []struct {
		Flow     int       `json:"flow"`
		Channels []Channel `json:"channels"`
	} `json:"routes"`
}

// cdgraph is the rebuilt channel-dependency graph: dense vertex IDs in
// (link, VC) order and a deduplicated adjacency list.
type cdgraph struct {
	channels []Channel
	index    map[Channel]int
	adj      [][]int
	edges    int
}

// rebuild parses the design bytes and reconstructs the CDG from first
// principles: one vertex per provisioned (link, VC) channel in link-major
// order, one edge per consecutive channel pair of any route path.
func rebuild(designJSON []byte) (*cdgraph, error) {
	var d design
	if err := json.Unmarshal(designJSON, &d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSchema, err)
	}
	if len(d.Topology) == 0 || len(d.Routes) == 0 {
		return nil, fmt.Errorf("%w: missing topology or routes section", ErrSchema)
	}
	var top topologyDoc
	if err := json.Unmarshal(d.Topology, &top); err != nil {
		return nil, fmt.Errorf("%w: topology: %v", ErrSchema, err)
	}
	if len(top.Links) == 0 {
		return nil, fmt.Errorf("%w: topology has no links", ErrSchema)
	}
	vcs := make(map[int]int, len(top.Links))
	for _, l := range top.Links {
		if l.VCs < 1 {
			return nil, fmt.Errorf("%w: link %d has %d VCs", ErrSchema, l.ID, l.VCs)
		}
		if _, dup := vcs[l.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate link ID %d", ErrSchema, l.ID)
		}
		vcs[l.ID] = l.VCs
	}
	faulted := make(map[int]bool, len(top.Faults))
	for _, id := range top.Faults {
		if _, ok := vcs[id]; !ok {
			return nil, fmt.Errorf("%w: fault names unknown link %d", ErrSchema, id)
		}
		faulted[id] = true
	}

	g := &cdgraph{index: make(map[Channel]int)}
	// Vertices in the file's link order, VC-minor — the canonical channel
	// enumeration the design schema implies (link IDs are dense and
	// serialized ascending).
	for _, l := range top.Links {
		for vc := 0; vc < l.VCs; vc++ {
			ch := Channel{Link: l.ID, VC: vc}
			g.index[ch] = len(g.channels)
			g.channels = append(g.channels, ch)
		}
	}
	g.adj = make([][]int, len(g.channels))

	var routes routesDoc
	if err := json.Unmarshal(d.Routes, &routes); err != nil {
		return nil, fmt.Errorf("%w: routes: %v", ErrSchema, err)
	}
	paths := make([][]Channel, 0, len(routes.Flows)+len(routes.Routes))
	flowOf := make([]int, 0, cap(paths))
	for _, f := range routes.Flows {
		for _, p := range f.Paths {
			paths = append(paths, p)
			flowOf = append(flowOf, f.Flow)
		}
	}
	for _, r := range routes.Routes {
		paths = append(paths, r.Channels)
		flowOf = append(flowOf, r.Flow)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: routes section has neither flows nor routes", ErrSchema)
	}

	seen := make(map[[2]int]bool)
	for pi, p := range paths {
		for i, ch := range p {
			n, ok := vcs[ch.Link]
			if !ok || ch.VC < 0 || ch.VC >= n {
				return nil, fmt.Errorf("%w: flow %d hop %d names link %d vc %d",
					ErrDanglingVC, flowOf[pi], i, ch.Link, ch.VC)
			}
			if faulted[ch.Link] {
				return nil, fmt.Errorf("%w: flow %d hop %d crosses faulted link %d",
					ErrFaultedLink, flowOf[pi], i, ch.Link)
			}
		}
		for i := 0; i+1 < len(p); i++ {
			key := [2]int{g.index[p[i]], g.index[p[i+1]]}
			if seen[key] {
				continue
			}
			seen[key] = true
			g.adj[key[0]] = append(g.adj[key[0]], key[1])
			g.edges++
		}
	}
	// Sort adjacency so the witness depends only on the edge set, never
	// on route scan order.
	for _, out := range g.adj {
		sortInts(out)
	}
	return g, nil
}

// sortInts is a tiny insertion sort: adjacency lists are short, and
// keeping the checker free of even sort.Ints keeps its footprint obvious.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sha256Hex is the design-binding digest.
func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
