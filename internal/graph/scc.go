package graph

// SCCs returns the strongly connected components of the graph using an
// iterative Tarjan algorithm. Components are emitted in reverse
// topological order of the condensation (callees before callers), each
// component's nodes sorted ascending for determinism.
func (g *Digraph) SCCs() [][]int {
	n := len(g.succ)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		comps   [][]int
		tStack  []int // Tarjan stack
		counter int
	)
	type frame struct {
		node int
		next int
	}
	var callStack []frame
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{node: start})
		index[start] = counter
		low[start] = counter
		counter++
		tStack = append(tStack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.node
			if f.next < len(g.succ[v]) {
				w := g.succ[v][f.next]
				f.next++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					tStack = append(tStack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-order: fold lowlink into parent, emit component at root.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].node
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := tStack[len(tStack)-1]
					tStack = tStack[:len(tStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// sortInts is a tiny insertion sort: component slices are usually short,
// and this avoids pulling sort into the hot path.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CyclicNodes returns the set of nodes that lie on at least one directed
// cycle: members of SCCs of size >= 2 plus self-loop nodes.
func (g *Digraph) CyclicNodes() []int {
	var out []int
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			out = append(out, comp...)
			continue
		}
		if g.HasEdge(comp[0], comp[0]) {
			out = append(out, comp[0])
		}
	}
	sortInts(out)
	return out
}
