package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	var g Digraph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.HasCycle() {
		t.Error("empty graph reports a cycle")
	}
	if c := g.ShortestCycle(); c != nil {
		t.Errorf("empty graph shortest cycle = %v", c)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Error("first AddEdge(0,1) returned false")
	}
	if g.AddEdge(0, 1) {
		t.Error("duplicate AddEdge(0,1) returned true")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge mismatch after single insert")
	}
}

func TestEnsureGrowsNodes(t *testing.T) {
	g := New(0)
	g.Ensure(5)
	if g.NumNodes() != 6 {
		t.Errorf("NumNodes = %d, want 6", g.NumNodes())
	}
	if g.Succ(5) != nil || g.Pred(5) != nil {
		t.Error("fresh node has adjacency")
	}
}

func TestEnsureNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ensure(-1) did not panic")
		}
	}()
	g := New(0)
	g.Ensure(-1)
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) returned false")
	}
	if g.RemoveEdge(1, 2) {
		t.Error("second RemoveEdge(1,2) returned true")
	}
	if g.HasEdge(1, 2) {
		t.Error("edge (1,2) still present")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.HasCycle() {
		t.Error("cycle remains after breaking edge")
	}
}

func TestSuccPredConsistency(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	if got := g.Succ(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Succ(0) = %v, want [1 2]", got)
	}
	if got := g.Pred(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Pred(1) = %v, want [0 2]", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 {
		t.Error("degree mismatch")
	}
	if g.Succ(-1) != nil || g.Succ(99) != nil {
		t.Error("out-of-range Succ not nil")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {2, 0}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("Edges()[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("mutating clone affected original")
	}
	if !c.HasEdge(0, 1) {
		t.Error("clone lost edge (0,1)")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) {
		t.Error("Reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Error("Reverse kept original edge direction")
	}
	if r.NumNodes() != g.NumNodes() {
		t.Error("Reverse changed node count")
	}
}

func TestHasCycleChain(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	if g.HasCycle() {
		t.Error("chain reports cycle")
	}
	g.AddEdge(4, 0)
	if !g.HasCycle() {
		t.Error("ring does not report cycle")
	}
}

func TestHasCycleSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	if !g.HasCycle() {
		t.Error("self-loop not detected as cycle")
	}
	if c := g.ShortestCycle(); len(c) != 1 || c[0] != 1 {
		t.Errorf("ShortestCycle = %v, want [1]", c)
	}
}

func TestShortestCyclePicksSmallest(t *testing.T) {
	g := New(10)
	// Long cycle 0→1→2→3→4→0 and short cycle 5→6→5.
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(4, 0)
	g.AddEdge(5, 6)
	g.AddEdge(6, 5)
	c := g.ShortestCycle()
	if len(c) != 2 {
		t.Fatalf("ShortestCycle = %v, want length 2", c)
	}
	if c[0] != 5 || c[1] != 6 {
		t.Errorf("ShortestCycle = %v, want [5 6]", c)
	}
}

func TestShortestCycleIsValidCycle(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	c := g.ShortestCycle()
	if len(c) != 3 {
		t.Fatalf("ShortestCycle length = %d, want 3", len(c))
	}
	verifyCycle(t, g, c)
}

func verifyCycle(t *testing.T, g *Digraph, c []int) {
	t.Helper()
	for i := range c {
		from, to := c[i], c[(i+1)%len(c)]
		if !g.HasEdge(from, to) {
			t.Errorf("cycle %v: missing edge %d→%d", c, from, to)
		}
	}
}

func TestShortestCycleAcyclicDAG(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if c := g.ShortestCycle(); c != nil {
		t.Errorf("DAG shortest cycle = %v, want nil", c)
	}
	if g.HasCycle() {
		t.Error("DAG reports cycle")
	}
}

func TestSCCs(t *testing.T) {
	g := New(8)
	// SCC {0,1,2}, SCC {3,4}, singletons 5, 6 (self-loop), 7.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(4, 5)
	g.AddEdge(6, 6)
	g.Ensure(7)
	comps := g.SCCs()
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 3 {
		t.Errorf("SCC size histogram = %v, want one 3, one 2, three 1", sizes)
	}
}

func TestCyclicNodes(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(4, 4)
	got := g.CyclicNodes()
	want := []int{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("CyclicNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CyclicNodes = %v, want %v", got, want)
			break
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 5)
	g.AddEdge(0, 3)
	g.AddEdge(3, 5)
	p := g.BFSPath(0, 5)
	if len(p) != 3 {
		t.Fatalf("BFSPath(0,5) = %v, want length 3", p)
	}
	if p[0] != 0 || p[len(p)-1] != 5 {
		t.Errorf("path endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path %v uses missing edge %d→%d", p, p[i], p[i+1])
		}
	}
}

func TestBFSPathUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if p := g.BFSPath(0, 3); p != nil {
		t.Errorf("BFSPath to unreachable node = %v, want nil", p)
	}
	if g.Reachable(0, 3) {
		t.Error("Reachable(0,3) = true")
	}
	if !g.Reachable(0, 0) {
		t.Error("Reachable(0,0) = false")
	}
}

func TestBFSPathSelf(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	p := g.BFSPath(0, 0)
	if len(p) != 1 || p[0] != 0 {
		t.Errorf("BFSPath(0,0) = %v, want [0]", p)
	}
}

func TestDijkstraPrefersCheapPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1) // expensive direct hop
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	w := func(u, v int) float64 {
		if u == 0 && v == 1 {
			return 10
		}
		return 1
	}
	p := g.DijkstraPath(0, 1, w)
	if len(p) != 4 {
		t.Fatalf("DijkstraPath = %v, want 4-node detour", p)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.Ensure(2)
	if p := g.DijkstraPath(0, 2, func(u, v int) float64 { return 1 }); p != nil {
		t.Errorf("DijkstraPath unreachable = %v, want nil", p)
	}
}

func TestTopoSortDAG(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("TopoSort reported cycle on DAG")
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("TopoSort order violates edge %v", e)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := g.TopoSort(); ok {
		t.Error("TopoSort succeeded on cyclic graph")
	}
}

func TestCountCycles(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(3, 3)
	if n := g.CountCycles(0); n != 3 {
		t.Errorf("CountCycles = %d, want 3", n)
	}
	if n := g.CountCycles(2); n < 2 {
		t.Errorf("CountCycles(limit=2) = %d, want >= 2", n)
	}
}

// Property: ShortestCycle returns a real cycle whose closing edge exists,
// and returns nil iff HasCycle is false.
func TestShortestCycleAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		g.Ensure(n - 1)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		c := g.ShortestCycle()
		if (c == nil) == g.HasCycle() {
			return false
		}
		if c == nil {
			return true
		}
		for i := range c {
			if !g.HasEdge(c[i], c[(i+1)%len(c)]) {
				return false
			}
		}
		// No repeated vertices within the cycle.
		seen := map[int]bool{}
		for _, v := range c {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TopoSort succeeds iff HasCycle is false, and SCCs partition
// the node set.
func TestTopoSCCConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := New(n)
		g.Ensure(n - 1)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		_, ok := g.TopoSort()
		if ok == g.HasCycle() {
			return false
		}
		seen := make([]bool, n)
		total := 0
		for _, comp := range g.SCCs() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: removing every edge of a shortest cycle one at a time always
// reduces or eliminates that specific cycle (sanity of RemoveEdge +
// ShortestCycle interplay used by the removal loop).
func TestRemoveShortestCycleEdgeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		g.Ensure(n - 1)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for guard := 0; guard < 10*n; guard++ {
			c := g.ShortestCycle()
			if c == nil {
				return !g.HasCycle()
			}
			g.RemoveEdge(c[len(c)-1], c[0])
		}
		return !g.HasCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShortestCycleSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(2000)
	g.Ensure(1999)
	for i := 0; i < 6000; i++ {
		g.AddEdge(rng.Intn(2000), rng.Intn(2000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestCycle()
	}
}

func TestShortestCycleThrough(t *testing.T) {
	g := New(8)
	// Cycle A: 0→1→2→0; cycle B: 3→4→3; node 5 on no cycle but reaches A.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(5, 0)
	c := g.ShortestCycleThrough(0)
	if len(c) != 3 || c[0] != 0 {
		t.Errorf("ShortestCycleThrough(0) = %v, want 3-cycle starting at 0", c)
	}
	verifyCycle(t, g, c)
	if c := g.ShortestCycleThrough(3); len(c) != 2 || c[0] != 3 {
		t.Errorf("ShortestCycleThrough(3) = %v, want [3 4]", c)
	}
	if c := g.ShortestCycleThrough(5); c != nil {
		t.Errorf("node on no cycle returned %v", c)
	}
	if c := g.ShortestCycleThrough(99); c != nil {
		t.Error("out-of-range node returned a cycle")
	}
	g.AddEdge(6, 6)
	if c := g.ShortestCycleThrough(6); len(c) != 1 || c[0] != 6 {
		t.Errorf("self-loop cycle = %v, want [6]", c)
	}
}

func TestShortestCycleThroughPicksLocalShortest(t *testing.T) {
	g := New(6)
	// Node 0 lies on a 4-cycle and a 2-cycle; the probe must return the 2-cycle.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(0, 4)
	g.AddEdge(4, 0)
	c := g.ShortestCycleThrough(0)
	if len(c) != 2 {
		t.Errorf("ShortestCycleThrough(0) = %v, want the 2-cycle", c)
	}
}
