// Package graph provides a small deterministic directed-graph kernel used
// by the topology, channel-dependency-graph and routing packages.
//
// Nodes are dense non-negative integers assigned by the caller. All
// traversals visit neighbours in insertion order, so every algorithm in
// this package is deterministic for a fixed construction sequence — a
// property the deadlock-removal algorithm relies on for reproducible
// results across runs.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over dense integer node IDs.
//
// The zero value is an empty graph ready to use. Nodes are created
// implicitly by AddEdge or explicitly by Ensure. Parallel edges are
// collapsed: AddEdge is idempotent per (from, to) pair.
type Digraph struct {
	succ    [][]int         // adjacency lists in insertion order
	pred    [][]int         // reverse adjacency lists in insertion order
	edgeSet map[[2]int]bool // existence check for O(1) duplicate rejection
	nEdges  int
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Digraph {
	return &Digraph{
		succ:    make([][]int, 0, n),
		pred:    make([][]int, 0, n),
		edgeSet: make(map[[2]int]bool),
	}
}

// NumNodes reports the number of nodes (max ensured ID + 1).
func (g *Digraph) NumNodes() int { return len(g.succ) }

// NumEdges reports the number of distinct directed edges.
func (g *Digraph) NumEdges() int { return g.nEdges }

// Ensure grows the graph so that node id exists, creating any missing
// intermediate IDs with empty adjacency.
func (g *Digraph) Ensure(id int) {
	if id < 0 {
		panic(fmt.Sprintf("graph: negative node id %d", id))
	}
	for len(g.succ) <= id {
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
	}
}

// AddEdge inserts the directed edge from→to, creating nodes as needed.
// It reports whether the edge was newly added (false if it already existed).
// Self-loops are allowed: a channel that depends on itself is a deadlock
// by definition and is surfaced as a length-1 cycle.
func (g *Digraph) AddEdge(from, to int) bool {
	g.Ensure(from)
	g.Ensure(to)
	if g.edgeSet == nil {
		g.edgeSet = make(map[[2]int]bool)
	}
	key := [2]int{from, to}
	if g.edgeSet[key] {
		return false
	}
	g.edgeSet[key] = true
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.nEdges++
	return true
}

// RemoveEdge deletes the directed edge from→to if present and reports
// whether it existed.
func (g *Digraph) RemoveEdge(from, to int) bool {
	key := [2]int{from, to}
	if g.edgeSet == nil || !g.edgeSet[key] {
		return false
	}
	delete(g.edgeSet, key)
	g.succ[from] = removeFirst(g.succ[from], to)
	g.pred[to] = removeFirst(g.pred[to], from)
	g.nEdges--
	return true
}

func removeFirst(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// HasEdge reports whether the directed edge from→to exists.
func (g *Digraph) HasEdge(from, to int) bool {
	if g.edgeSet == nil {
		return false
	}
	return g.edgeSet[[2]int{from, to}]
}

// Succ returns the successors of node id in insertion order.
// The returned slice is owned by the graph and must not be modified.
func (g *Digraph) Succ(id int) []int {
	if id < 0 || id >= len(g.succ) {
		return nil
	}
	return g.succ[id]
}

// Pred returns the predecessors of node id in insertion order.
// The returned slice is owned by the graph and must not be modified.
func (g *Digraph) Pred(id int) []int {
	if id < 0 || id >= len(g.pred) {
		return nil
	}
	return g.pred[id]
}

// OutDegree reports the number of successors of node id.
func (g *Digraph) OutDegree(id int) int { return len(g.Succ(id)) }

// InDegree reports the number of predecessors of node id.
func (g *Digraph) InDegree(id int) int { return len(g.Pred(id)) }

// Edges returns all edges sorted by (from, to); useful for stable output.
func (g *Digraph) Edges() [][2]int {
	out := make([][2]int, 0, g.nEdges)
	for from, adj := range g.succ {
		for _, to := range adj {
			out = append(out, [2]int{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(len(g.succ))
	c.Ensure(len(g.succ) - 1)
	for from, adj := range g.succ {
		for _, to := range adj {
			c.AddEdge(from, to)
		}
	}
	return c
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(len(g.succ))
	if n := len(g.succ); n > 0 {
		r.Ensure(n - 1)
	}
	for from, adj := range g.succ {
		for _, to := range adj {
			r.AddEdge(to, from)
		}
	}
	return r
}
