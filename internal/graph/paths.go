package graph

import "container/heap"

// BFSPath returns a shortest (fewest-hops) path from src to dst as a node
// sequence including both endpoints, or nil if dst is unreachable.
// When src == dst it returns the single-node path.
func (g *Digraph) BFSPath(src, dst int) []int {
	n := len(g.succ)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[src] = -1
	queue := []int{src}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range g.succ[u] {
			if parent[v] != -2 {
				continue
			}
			parent[v] = u
			if v == dst {
				return reconstructFrom(parent, dst)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

func reconstructFrom(parent []int, last int) []int {
	var rev []int
	for v := last; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Reachable reports whether dst is reachable from src (src reaches itself).
func (g *Digraph) Reachable(src, dst int) bool {
	return g.BFSPath(src, dst) != nil
}

// WeightFunc gives the cost of traversing edge u→v. Costs must be >= 0.
type WeightFunc func(u, v int) float64

// DijkstraPath returns a minimum-cost path from src to dst under w, or nil
// if unreachable. Ties are broken toward lower node IDs so the result is
// deterministic, which keeps synthesized routes reproducible.
func (g *Digraph) DijkstraPath(src, dst int, w WeightFunc) []int {
	n := len(g.succ)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil
	}
	const inf = 1e300
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		parent[i] = -2
	}
	dist[src] = 0
	parent[src] = -1
	pq := &nodeHeap{{node: src, prio: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, v := range g.succ[u] {
			if done[v] {
				continue
			}
			nd := dist[u] + w(u, v)
			if nd < dist[v] || (nd == dist[v] && parent[v] != -2 && u < parent[v]) {
				dist[v] = nd
				parent[v] = u
				heap.Push(pq, nodeItem{node: v, prio: nd})
			}
		}
	}
	if parent[dst] == -2 {
		return nil
	}
	return reconstructFrom(parent, dst)
}

type nodeItem struct {
	node int
	prio float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].node < h[j].node
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
