package graph

// TopoSort returns a topological order of the nodes (Kahn's algorithm) and
// true, or nil and false if the graph contains a cycle. Among ready nodes
// the smallest ID is emitted first, so the order is canonical.
func (g *Digraph) TopoSort() ([]int, bool) {
	n := len(g.succ)
	indeg := make([]int, n)
	for _, adj := range g.succ {
		for _, v := range adj {
			indeg[v]++
		}
	}
	// A sorted ready "queue" realized as a min-heap over node IDs would be
	// overkill; CDGs are small enough that a linear scan per pop is fine,
	// but we keep it O((V+E) log V) with a simple binary heap inline.
	ready := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready.push(v)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		u := ready.pop()
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// intHeap is a minimal binary min-heap of ints.
type intHeap struct{ s []int }

func (h *intHeap) len() int { return len(h.s) }

func (h *intHeap) push(v int) {
	h.s = append(h.s, v)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.s[p] <= h.s[i] {
			break
		}
		h.s[p], h.s[i] = h.s[i], h.s[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.s) && h.s[l] < h.s[small] {
			small = l
		}
		if r < len(h.s) && h.s[r] < h.s[small] {
			small = r
		}
		if small == i {
			break
		}
		h.s[i], h.s[small] = h.s[small], h.s[i]
		i = small
	}
	return top
}
