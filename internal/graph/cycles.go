package graph

// HasCycle reports whether the graph contains any directed cycle.
// It runs an iterative three-colour DFS in O(V+E).
func (g *Digraph) HasCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]byte, len(g.succ))
	// Iterative DFS with an explicit stack of (node, next-successor-index)
	// frames to avoid recursion depth limits on large CDGs.
	type frame struct {
		node int
		next int
	}
	var stack []frame
	for start := range g.succ {
		if colour[start] != white {
			continue
		}
		colour[start] = grey
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.succ[f.node]) {
				next := g.succ[f.node][f.next]
				f.next++
				switch colour[next] {
				case grey:
					return true
				case white:
					colour[next] = grey
					stack = append(stack, frame{node: next})
				}
				continue
			}
			colour[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// ShortestCycle returns the shortest directed cycle in the graph as a node
// sequence c1…ck (the closing edge ck→c1 is implicit), or nil if the graph
// is acyclic.
//
// Following the paper's GetSmallestCycle, it runs a BFS from every vertex
// and records the shortest path that returns to its start. Ties are broken
// by the smallest starting node ID, so results are deterministic. The cycle
// is rotated so it begins at its smallest node ID.
func (g *Digraph) ShortestCycle() []int {
	n := len(g.succ)
	if n == 0 {
		return nil
	}
	best := []int(nil)
	parent := make([]int, n)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		// A self-loop is the shortest possible cycle; report immediately.
		for _, s := range g.succ[start] {
			if s == start {
				return []int{start}
			}
		}
		if best != nil && len(best) == 2 {
			break // cannot beat a 2-cycle except by a self-loop, handled above
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[start] = 0
		parent[start] = -1
		queue = append(queue[:0], start)
		found := false
		for qi := 0; qi < len(queue) && !found; qi++ {
			u := queue[qi]
			if best != nil && dist[u]+1 >= len(best) {
				continue // any cycle through u would not be shorter
			}
			for _, v := range g.succ[u] {
				if v == start {
					// Closing edge back to the start: reconstruct u…start.
					cyc := reconstructPath(parent, u)
					if best == nil || len(cyc) < len(best) {
						best = cyc
					}
					found = true
					break
				}
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
	}
	return rotateToMin(best)
}

// ShortestCycleThrough returns the shortest cycle that passes through
// node start (rotated to begin at start), or nil if start lies on no
// cycle. It is the single-source BFS probe that ShortestCycle runs from
// every vertex.
func (g *Digraph) ShortestCycleThrough(start int) []int {
	n := len(g.succ)
	if start < 0 || start >= n {
		return nil
	}
	for _, s := range g.succ[start] {
		if s == start {
			return []int{start}
		}
	}
	dist := make([]int, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	parent[start] = -1
	queue := []int{start}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range g.succ[u] {
			if v == start {
				return reconstructPath(parent, u)
			}
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// reconstructPath walks parent pointers from last back to the BFS root and
// returns root…last.
func reconstructPath(parent []int, last int) []int {
	var rev []int
	for v := last; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// rotateToMin rotates a cycle so it starts at its minimum node ID,
// preserving orientation. Returns nil for nil input.
func rotateToMin(cycle []int) []int {
	if len(cycle) == 0 {
		return nil
	}
	minIdx := 0
	for i, v := range cycle {
		if v < cycle[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 {
		return cycle
	}
	out := make([]int, 0, len(cycle))
	out = append(out, cycle[minIdx:]...)
	out = append(out, cycle[:minIdx]...)
	return out
}

// CountCycles returns the number of elementary cycles up to limit using
// Johnson-style enumeration restricted to strongly connected components.
// It exists for diagnostics and tests; the removal algorithm itself only
// ever needs the shortest cycle. A limit <= 0 counts all cycles (beware:
// can be exponential).
func (g *Digraph) CountCycles(limit int) int {
	count := 0
	// Enumerate cycles per SCC; single-node SCCs only matter for self-loops.
	for _, comp := range g.SCCs() {
		if len(comp) == 1 {
			v := comp[0]
			if g.HasEdge(v, v) {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
			continue
		}
		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		// Simple DFS cycle enumeration anchored at the smallest vertex of
		// the component, then shrinking: adequate for the CDG sizes in this
		// repo (thousands of nodes, sparse).
		count += enumerateCycles(g, comp, inComp, limit, count)
		if limit > 0 && count >= limit {
			return count
		}
	}
	return count
}

func enumerateCycles(g *Digraph, comp []int, inComp map[int]bool, limit, sofar int) int {
	count := 0
	blocked := make(map[int]bool)
	onStack := make(map[int]bool)
	var stack []int
	var dfs func(root, v int) bool
	dfs = func(root, v int) bool {
		stack = append(stack, v)
		onStack[v] = true
		defer func() {
			stack = stack[:len(stack)-1]
			onStack[v] = false
		}()
		for _, w := range g.succ[v] {
			if !inComp[w] || w < root {
				continue // only cycles whose minimum vertex is root
			}
			if w == root {
				count++
				if limit > 0 && sofar+count >= limit {
					return true
				}
				continue
			}
			if !onStack[w] {
				if dfs(root, w) {
					return true
				}
			}
		}
		return false
	}
	for _, root := range comp {
		blocked[root] = true
		if dfs(root, root) {
			break
		}
	}
	return count
}
