// Package nocerr holds the typed sentinel errors shared by every layer of
// the library. Internal packages wrap these with %w so callers can use
// errors.Is/As across the whole pipeline; the root package re-exports them
// as nocdr.ErrCyclicCDG etc. Sentinel messages carry no "nocdr: " prefix
// themselves — the public API boundary (wrapErr in the root package) adds
// it exactly once, wherever the sentinel sits in the chain.
package nocerr

import "errors"

var (
	// ErrCyclicCDG reports that the channel dependency graph is (still)
	// cyclic: removal hit its iteration bound, or an operation that
	// requires an acyclic CDG was handed a cyclic design.
	ErrCyclicCDG = errors.New("CDG is cyclic")

	// ErrVCLimit reports that deadlock removal would exceed the caller's
	// virtual-channel budget (Session WithVCLimit / core.Options.VCLimit).
	ErrVCLimit = errors.New("VC limit exceeded")

	// ErrCanceled reports cooperative cancellation of a long-running
	// operation. Errors wrapping it also wrap the context's own error, so
	// errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("canceled")

	// ErrInvalidInput reports malformed or inconsistent inputs: bad JSON
	// schemas, routes referencing unknown channels, detached cores, and
	// the like.
	ErrInvalidInput = errors.New("invalid input")

	// ErrNotFound reports a lookup miss: unknown benchmark names, unknown
	// serve job IDs.
	ErrNotFound = errors.New("not found")

	// ErrWorker reports a sharded-sweep worker failure the dispatcher
	// could not absorb: a shard exhausted its retry budget, or every
	// worker died with cells still unassigned.
	ErrWorker = errors.New("worker failure")
)
