package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// CacheEntry is one key/value pair on the cache propagation wire: the
// body of POST /v1/cache/seed is {"entries":[CacheEntry...]}, and the
// value is the canonical Result encoding the content address commits to,
// so a seeded entry is byte-identical to a locally computed one.
type CacheEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// seedRequest is the POST /v1/cache/seed body.
type seedRequest struct {
	Entries []CacheEntry `json:"entries"`
}

// SeedBatch bounds how many entries ride in one /v1/cache/seed POST so a
// large warm shard never builds a body near the server's byte limit.
const SeedBatch = 128

// Upstream links a cache to a peer's (typically a worker's cache to the
// coordinator's): local misses fall through to GET {URL}/v1/cache/{key},
// and fresh Puts are pushed back asynchronously, batched and
// best-effort, via POST {URL}/v1/cache/seed. Both directions are
// optimizations — an unreachable upstream degrades to local-only
// caching, never to an error.
type Upstream struct {
	// URL is the peer's base URL (the coordinator address a worker joined).
	URL string
	// Token is the fleet bearer token presented on seed pushes.
	Token string
	// Client is the HTTP client (nil = 10s-timeout default). Fleets
	// running TLS pass a client built from ClientTLS here.
	Client *http.Client
}

func (u *Upstream) client() *http.Client {
	if u.Client != nil {
		return u.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// fetch pulls one entry from the upstream cache; any non-200 answer is
// reported as an error so the caller counts a plain miss.
func (u *Upstream) fetch(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(u.URL, "/")+"/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	SetAuth(req, u.Token)
	resp, err := u.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cache fetch: status %d", resp.StatusCode)
	}
	return data, nil
}

// SeedEntries ships warm cache entries to base's /v1/cache/seed endpoint
// in SeedBatch-sized POSTs. Used by the sharded dispatcher to warm a
// worker before handing it a shard, and by a worker cache's push loop to
// feed fresh results back to the coordinator. The first failed batch
// aborts the rest: seeding is an optimization and the receiver computes
// anything it did not get.
func SeedEntries(ctx context.Context, base, token string, client *http.Client, entries []CacheEntry) error {
	if len(entries) == 0 {
		return nil
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	for start := 0; start < len(entries); start += SeedBatch {
		end := start + SeedBatch
		if end > len(entries) {
			end = len(entries)
		}
		body, err := json.Marshal(seedRequest{Entries: entries[start:end]})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimSuffix(base, "/")+"/v1/cache/seed", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		SetAuth(req, token)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cache seed: status %d", resp.StatusCode)
		}
	}
	return nil
}
