package fabric

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeyDeterministic pins that the content address is a pure function
// of the semantic inputs: equal values hash equal, different values (or
// kinds, or salts) hash differently.
func TestKeyDeterministic(t *testing.T) {
	type in struct {
		A string
		B []int
		M map[string]int
	}
	v := in{A: "x", B: []int{1, 2}, M: map[string]int{"b": 2, "a": 1}}
	if Key("k", v) != Key("k", v) {
		t.Fatal("equal inputs hashed differently")
	}
	if Key("k", v) == Key("other-kind", v) {
		t.Fatal("kind does not participate in the key")
	}
	w := v
	w.B = []int{1, 3}
	if Key("k", v) == Key("k", w) {
		t.Fatal("different inputs collided")
	}
	// Map iteration order must not leak into the address.
	for i := 0; i < 32; i++ {
		u := in{A: "x", B: []int{1, 2}, M: map[string]int{"a": 1, "b": 2}}
		if Key("k", u) != Key("k", v) {
			t.Fatal("map ordering leaked into the key")
		}
	}
}

// TestKeySalt pins the engine-version salt: the same inputs under a
// different salt produce a disjoint address, so no result cached before
// an engine change can be served after it.
func TestKeySalt(t *testing.T) {
	if keyWithSalt("engine/1", "k", 42) == keyWithSalt("engine/2", "k", 42) {
		t.Fatal("salt does not participate in the key")
	}
	if Key("k", 42) != keyWithSalt(EngineVersion, "k", 42) {
		t.Fatal("Key does not use the EngineVersion salt")
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(CacheOptions{MaxEntries: 2})
	c.Put("a", []byte("va"))
	c.Put("b", []byte("vb"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c must evict b.
	c.Put("c", []byte("vc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past the bound")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "va" {
		t.Fatalf("a lost or corrupted: %q %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}
	if st.Bytes != int64(len("va")+len("vc")) {
		t.Fatalf("bytes %d", st.Bytes)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits %d misses %d, want 2/1", st.Hits, st.Misses)
	}
}

// TestCacheDisk pins the on-disk tier: entries survive a fresh Cache
// instance over the same directory (the cross-process story), and disk
// hits are promoted and counted.
func TestCacheDisk(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(CacheOptions{Dir: dir})
	c1.Put("deadbeef", []byte(`{"x":1}`))

	c2 := NewCache(CacheOptions{Dir: dir})
	v, ok := c2.Get("deadbeef")
	if !ok || string(v) != `{"x":1}` {
		t.Fatalf("disk tier miss: %q %v", v, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
	// Promoted: the second read must come from memory.
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Fatal("promotion lost the entry")
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Fatalf("promotion not served from memory: %+v", st)
	}
	// No stray temp files.
	entries, _ := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	if len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestCacheDiskUnwritable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheOptions{Dir: dir})
	c.Put("k", []byte("v")) // must not panic
	if v, ok := c.Get("k"); !ok || string(v) != "v" {
		t.Fatal("memory tier must still serve when disk writes fail")
	}
}

// TestCacheDoCollapses pins singleflight: N concurrent Do calls for one
// key execute the computation exactly once, every caller gets the same
// bytes, and followers are counted as collapsed.
func TestCacheDoCollapses(t *testing.T) {
	c := NewCache(CacheOptions{})
	var execs atomic.Int32
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", false, func() ([]byte, error) {
				execs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for execs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("computation executed %d times, want exactly 1", got)
	}
	for i, v := range vals {
		if string(v) != "result" {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
	st := c.Stats()
	if st.Collapsed != n-1 {
		t.Fatalf("collapsed %d, want %d", st.Collapsed, n-1)
	}
	// The stored entry now serves hits.
	if _, cached, _ := c.Do("k", false, func() ([]byte, error) { t.Fatal("recomputed"); return nil, nil }); !cached {
		t.Fatal("post-flight lookup missed")
	}
}

// TestCacheDoError pins that failed computations are not stored and the
// error reaches every collapsed follower.
func TestCacheDoError(t *testing.T) {
	c := NewCache(CacheOptions{})
	boom := errors.New("boom")
	if _, _, err := c.Do("k", false, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed computation was cached")
	}
}

// TestCacheNoCacheBypass pins the bypass contract: noCache skips the
// lookup (the computation reruns) but still refreshes the entry.
func TestCacheNoCacheBypass(t *testing.T) {
	c := NewCache(CacheOptions{})
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte(fmt.Sprintf("v%d", calls)), nil }
	v, cached, _ := c.Do("k", false, compute)
	if cached || string(v) != "v1" {
		t.Fatalf("cold: %q cached=%v", v, cached)
	}
	v, cached, _ = c.Do("k", true, compute)
	if cached || string(v) != "v2" {
		t.Fatalf("bypass did not recompute: %q cached=%v", v, cached)
	}
	// The bypass refreshed the entry: a normal lookup now sees v2.
	v, cached, _ = c.Do("k", false, compute)
	if !cached || string(v) != "v2" {
		t.Fatalf("bypass did not refresh: %q cached=%v", v, cached)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("k", []byte("v"))
	v, cached, err := c.Do("k", false, func() ([]byte, error) { return []byte("v"), nil })
	if err != nil || cached || string(v) != "v" {
		t.Fatalf("nil Do: %q %v %v", v, cached, err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats %+v", st)
	}
}

// fakeClock is a hand-advanced clock for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestRegistryLifecycle pins the membership state machine: register →
// heartbeats keep a worker alive past any number of intervals → silence
// beyond the missed-heartbeat budget retires it → its next heartbeat is
// rejected → re-registration readmits it under a fresh ID.
func TestRegistryLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(RegistryOptions{HeartbeatInterval: time.Second, MissedBudget: 3, Now: clk.now})
	w := r.Register("http://a:1")
	if r.Count() != 1 {
		t.Fatalf("count %d", r.Count())
	}
	// Beating every interval keeps it alive arbitrarily long.
	for i := 0; i < 10; i++ {
		clk.advance(time.Second)
		if !r.Heartbeat(w.ID) {
			t.Fatalf("live heartbeat rejected at %d", i)
		}
	}
	// TTL is interval×budget = 3s; 3s of silence is within budget...
	clk.advance(3 * time.Second)
	if r.Count() != 1 {
		t.Fatal("retired within the budget")
	}
	// ...but one more tick past it retires the worker.
	clk.advance(time.Second)
	if r.Count() != 0 {
		t.Fatal("silent worker not retired")
	}
	if r.Heartbeat(w.ID) {
		t.Fatal("retired worker's heartbeat accepted")
	}
	if r.Retired() != 1 {
		t.Fatalf("retired counter %d", r.Retired())
	}
	// Rejoining after retirement is a fresh membership.
	w2 := r.Register("http://a:1")
	if w2.ID == w.ID {
		t.Fatal("retired ID reused")
	}
	if got := r.Live(); len(got) != 1 || got[0].URL != "http://a:1" {
		t.Fatalf("live %v", got)
	}
}

// TestRegistryReregisterKeepsIdentity pins that a live worker
// re-registering (e.g. its join loop restarted) keeps its ID.
func TestRegistryReregisterKeepsIdentity(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(RegistryOptions{HeartbeatInterval: time.Second, Now: clk.now})
	a := r.Register("http://a:1")
	clk.advance(time.Second)
	b := r.Register("http://a:1")
	if a.ID != b.ID {
		t.Fatalf("live re-registration changed identity: %s -> %s", a.ID, b.ID)
	}
	if r.Count() != 1 {
		t.Fatalf("count %d", r.Count())
	}
}

// TestRegistryHeartbeatAtTTLBoundary pins the boundary semantics of the
// lazy prune: retirement requires silence *strictly greater* than
// interval×budget, so a heartbeat landing exactly at the TTL is still
// accepted — the worker used its whole budget and survived.
func TestRegistryHeartbeatAtTTLBoundary(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(RegistryOptions{HeartbeatInterval: time.Second, MissedBudget: 3, Now: clk.now})
	w := r.Register("http://a:1")

	clk.advance(r.TTL()) // exactly interval×budget of silence
	if !r.Heartbeat(w.ID) {
		t.Fatal("heartbeat landing exactly at the TTL boundary was rejected")
	}
	if r.Retired() != 0 {
		t.Fatalf("retired %d at the boundary", r.Retired())
	}
	// The smallest step past the boundary retires the worker.
	clk.advance(r.TTL() + time.Nanosecond)
	if r.Heartbeat(w.ID) {
		t.Fatal("heartbeat strictly past the TTL boundary was accepted")
	}
	if r.Retired() != 1 {
		t.Fatalf("retired %d past the boundary", r.Retired())
	}
}

// TestRegistryReregisterRacesPrune pins re-registration against the lazy
// prune, which runs inside Register itself: exactly at the TTL the
// worker is still live and keeps its identity; strictly past it the
// prune wins first and the same URL joins fresh under a new ID.
func TestRegistryReregisterRacesPrune(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(RegistryOptions{HeartbeatInterval: time.Second, MissedBudget: 3, Now: clk.now})
	a := r.Register("http://a:1")

	clk.advance(r.TTL())
	b := r.Register("http://a:1")
	if b.ID != a.ID {
		t.Fatalf("re-registration at the boundary lost identity: %s -> %s", a.ID, b.ID)
	}

	clk.advance(r.TTL() + time.Nanosecond)
	c := r.Register("http://a:1")
	if c.ID == a.ID {
		t.Fatal("re-registration past the TTL reused the retired ID")
	}
	if r.Retired() != 1 {
		t.Fatalf("retired %d", r.Retired())
	}
	if r.Count() != 1 {
		t.Fatalf("count %d", r.Count())
	}
}

func TestRegistryDefaults(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	if r.TTL() != DefaultHeartbeatInterval*DefaultMissedBudget {
		t.Fatalf("ttl %v", r.TTL())
	}
	if r.HeartbeatInterval() != DefaultHeartbeatInterval {
		t.Fatalf("interval %v", r.HeartbeatInterval())
	}
}
