package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// upstreamStub is a minimal cache peer: GET /v1/cache/{key} serves a
// map, POST /v1/cache/seed records and applies batches.
type upstreamStub struct {
	mu     sync.Mutex
	store  map[string][]byte
	posts  []int // entry count per seed POST
	auth   string
	server *httptest.Server
}

func newUpstreamStub() *upstreamStub {
	u := &upstreamStub{store: make(map[string][]byte)}
	u.server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/cache/"):
			key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
			u.mu.Lock()
			v, ok := u.store[key]
			u.mu.Unlock()
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Write(v)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/cache/seed":
			var req struct {
				Entries []CacheEntry `json:"entries"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			u.mu.Lock()
			u.auth = r.Header.Get("Authorization")
			u.posts = append(u.posts, len(req.Entries))
			for _, e := range req.Entries {
				u.store[e.Key] = e.Value
			}
			u.mu.Unlock()
			fmt.Fprint(w, `{"stored":true}`)
		default:
			http.NotFound(w, r)
		}
	}))
	return u
}

func (u *upstreamStub) has(key string) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	_, ok := u.store[key]
	return ok
}

// TestCacheUpstreamPull pins the pull fallback: a lookup missing both
// local tiers is answered by the upstream peer, counted as an upstream
// hit, and stored locally so the next read never leaves the process.
func TestCacheUpstreamPull(t *testing.T) {
	up := newUpstreamStub()
	defer up.server.Close()
	up.store["warm"] = []byte(`{"v":1}`)

	c := NewCache(CacheOptions{Upstream: &Upstream{URL: up.server.URL}})
	defer c.Close()

	v, ok := c.Get("warm")
	if !ok || string(v) != `{"v":1}` {
		t.Fatalf("upstream pull: %q %v", v, ok)
	}
	if st := c.Stats(); st.UpstreamHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("pull stats %+v", st)
	}
	if _, ok := c.Get("warm"); !ok {
		t.Fatal("pulled entry not stored locally")
	}
	if st := c.Stats(); st.UpstreamHits != 1 || st.Hits != 2 {
		t.Fatalf("second read went upstream again: %+v", st)
	}
	// A key the upstream does not hold is a plain miss.
	if _, ok := c.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("miss stats %+v", st)
	}
}

// TestCachePutPushesUpstream pins the push-back half of propagation: Put
// reaches the upstream peer (asynchronously, with the bearer token),
// Seed never does, and Close flushes the queue.
func TestCachePutPushesUpstream(t *testing.T) {
	up := newUpstreamStub()
	defer up.server.Close()

	c := NewCache(CacheOptions{Upstream: &Upstream{URL: up.server.URL, Token: "tok"}})
	c.Seed("seeded", []byte(`"s"`))
	c.Put("fresh", []byte(`"f"`))
	c.Close() // flushes the push queue

	if !up.has("fresh") {
		t.Fatal("Put never reached the upstream")
	}
	if up.has("seeded") {
		t.Fatal("Seed echoed back to the upstream")
	}
	up.mu.Lock()
	auth := up.auth
	up.mu.Unlock()
	if auth != "Bearer tok" {
		t.Fatalf("seed push auth %q", auth)
	}
	if st := c.Stats(); st.Pushed != 1 {
		t.Fatalf("pushed %d, want 1", st.Pushed)
	}
	// Put after Close must not panic or block; it just stays local.
	c.Put("late", []byte(`"l"`))
	if up.has("late") {
		t.Fatal("post-Close Put reached the upstream")
	}
	c.Close() // idempotent
}

// TestCacheUpstreamUnreachable pins the degrade path: a dead upstream
// makes lookups plain misses and Puts local-only, never errors or hangs.
func TestCacheUpstreamUnreachable(t *testing.T) {
	up := newUpstreamStub()
	up.server.Close() // dead before first use

	c := NewCache(CacheOptions{Upstream: &Upstream{URL: up.server.URL}})
	defer c.Close()
	if _, ok := c.Get("k"); ok {
		t.Fatal("dead upstream produced a hit")
	}
	c.Put("k", []byte("v"))
	if v, ok := c.Get("k"); !ok || string(v) != "v" {
		t.Fatal("local tier must still serve with a dead upstream")
	}
}

// TestSeedEntriesBatches pins the wire batching: a payload larger than
// SeedBatch is split so no single POST approaches the server body limit.
func TestSeedEntriesBatches(t *testing.T) {
	up := newUpstreamStub()
	defer up.server.Close()

	entries := make([]CacheEntry, SeedBatch*2+5)
	for i := range entries {
		entries[i] = CacheEntry{Key: fmt.Sprintf("k%d", i), Value: json.RawMessage(`1`)}
	}
	if err := SeedEntries(context.Background(), up.server.URL, "", nil, entries); err != nil {
		t.Fatal(err)
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	if len(up.posts) != 3 {
		t.Fatalf("posts %v, want 3 batches", up.posts)
	}
	total := 0
	for _, n := range up.posts {
		if n > SeedBatch {
			t.Fatalf("batch of %d exceeds SeedBatch %d", n, SeedBatch)
		}
		total += n
	}
	if total != len(entries) {
		t.Fatalf("delivered %d of %d entries", total, len(entries))
	}
}

// TestWatcherCloseUnblocksConsumer pins the Close contract: a consumer
// ranging over Updates() terminates once the watcher is closed instead
// of blocking forever on a channel nobody will ever send on again.
func TestWatcherCloseUnblocksConsumer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"workers":[{"id":"w-1","url":"http://a:1"}],"count":1}`)
	}))
	defer ts.Close()

	w, err := WatchWorkers(context.Background(), ts.URL, "", 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range w.Updates() {
		}
		close(done)
	}()
	w.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer ranging over Updates() still blocked after Close")
	}
	// The last snapshot remains readable after close.
	if urls := w.WorkerURLs(); len(urls) != 1 || urls[0] != "http://a:1" {
		t.Fatalf("post-close snapshot %v", urls)
	}
}
