package fabric

import (
	"bytes"
	"testing"
)

// FuzzCacheKey pins the content-address laws under arbitrary inputs:
// keys are deterministic, salt/kind/payload all participate in the
// address (changing any one yields a disjoint key), and a Put under one
// key is returned verbatim by Get for that key and invisible to any
// other.
func FuzzCacheKey(f *testing.F) {
	f.Add("sweep-cell", "nocdr-engine/8", []byte(`{"policy":"cheapest"}`), []byte(`{"added_vcs":3}`))
	f.Add("remove", "nocdr-engine/7", []byte(`{}`), []byte(``))
	f.Add("", "", []byte(nil), []byte(nil))
	f.Fuzz(func(t *testing.T, kind, salt string, payload, result []byte) {
		parts := struct {
			Payload []byte `json:"payload"`
		}{payload}

		k1 := keyWithSalt(salt, kind, parts)
		k2 := keyWithSalt(salt, kind, parts)
		if k1 != k2 {
			t.Fatalf("nondeterministic key: %s vs %s", k1, k2)
		}
		if len(k1) != 64 {
			t.Fatalf("key %q is not a SHA-256 hex digest", k1)
		}

		// Salt and kind are both separators in the preimage: perturbing
		// either must move the address.
		if k := keyWithSalt(salt+"x", kind, parts); k == k1 {
			t.Fatal("salt does not participate in the address")
		}
		if k := keyWithSalt(salt, kind+"x", parts); k == k1 {
			t.Fatal("kind does not participate in the address")
		}
		// The salt/kind boundary must be unambiguous: moving a byte across
		// the separator must not produce the same key. (A kind whose first
		// byte IS the NUL separator genuinely aliases; real kinds are
		// compile-time constants and never contain NUL.)
		if kind != "" && kind[0] != 0 {
			shifted := keyWithSalt(salt+kind[:1], kind[1:], parts)
			if shifted == k1 {
				t.Fatal("salt/kind concatenation is ambiguous")
			}
		}
		if k := keyWithSalt(salt, kind, struct {
			Payload []byte `json:"payload"`
		}{append(append([]byte(nil), payload...), 0)}); k == k1 {
			t.Fatal("payload does not participate in the address")
		}

		// Round-trip through the cache: stored bytes come back verbatim
		// under their key and only their key.
		c := NewCache(CacheOptions{MaxEntries: 8})
		c.Put(k1, result)
		got, ok := c.Get(k1)
		if !ok {
			t.Fatal("stored entry missing")
		}
		if !bytes.Equal(got, result) {
			t.Fatalf("cache returned %q, stored %q", got, result)
		}
		other := keyWithSalt(salt+"y", kind, parts)
		if _, ok := c.Get(other); ok {
			t.Fatal("disjoint key hit the stored entry")
		}
	})
}
