package fabric

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
	"time"
)

// ServerTLS builds the listener-side TLS configuration for a fleet
// member: certFile/keyFile are the PEM pair it serves, and caFile, when
// non-empty, additionally requires and verifies client certificates
// signed by that CA (mTLS).
func ServerTLS(certFile, keyFile, caFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("fabric: load server cert: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// ClientTLS builds the dialer-side TLS configuration for fleet calls:
// caFile pins the peers' server certificates (empty = system roots), and
// certFile/keyFile, when both non-empty, present a client certificate
// for mTLS fleets.
func ClientTLS(caFile, certFile, keyFile string) (*tls.Config, error) {
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	if certFile != "" && keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("fabric: load client cert: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

// HTTPClient wraps a TLS configuration in an HTTP client. A nil config
// yields a plain client. timeout 0 means no overall timeout — the right
// choice for job traffic, whose SSE streams stay open for the life of a
// shard; membership calls pass a short one.
func HTTPClient(cfg *tls.Config, timeout time.Duration) *http.Client {
	c := &http.Client{Timeout: timeout}
	if cfg != nil {
		c.Transport = &http.Transport{TLSClientConfig: cfg}
	}
	return c
}

func loadCertPool(caFile string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("fabric: read CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("fabric: no certificates in CA bundle %s", caFile)
	}
	return pool, nil
}
