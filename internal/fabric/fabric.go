// Package fabric is the job-fabric layer of the deployment story: the
// pieces that turn a set of `nocdr serve` processes into a fleet.
//
// It has three cooperating parts, deliberately independent of the
// removal/simulation engine so every layer above (serve, the sweep
// coordinator, the CLIs) can compose them:
//
//   - A content-addressed result cache (Cache): the canonical hash of a
//     job's semantic inputs — topology, routes, traffic, options, and an
//     engine-version salt — keys a two-tier store (bounded in-memory LRU
//     plus an optional on-disk tier) with singleflight collapsing of
//     concurrent identical computations. A popular design costs one
//     computation no matter how many times it is requested.
//
//   - A worker registry (Registry): workers register with a coordinator
//     and heartbeat on an interval; a worker that misses its heartbeat
//     budget is retired from the live set. Join/Watch are the two client
//     halves: Join is the worker-side register-and-heartbeat loop, and
//     Watcher polls a coordinator's live set so a sweep dispatcher can
//     absorb workers joining and leaving mid-run.
//
//   - Fleet auth (RequireBearer): shared bearer-token authentication for
//     every mutating endpoint, compared in constant time.
//
// Everything here is deliberately deterministic and clock-injectable so
// the conformance suite can pin retirement and cache behavior without
// real time.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// EngineVersion is the cache-key salt tied to the semantics of the
// removal and simulation engines. Bump it whenever a change alters any
// result bytes for identical inputs (new break heuristics, simulator
// arbitration changes, report-shape changes) — stale cached results can
// then never survive an engine change, because every key derived after
// the bump is disjoint from every key derived before it.
const EngineVersion = "nocdr-engine/8"

// Key returns the content address of a job's semantic inputs: the
// SHA-256 of the deterministic JSON encoding of parts, salted with
// EngineVersion and a caller-chosen kind (so a remove job and a sweep
// cell with coincidentally equal encodings can never collide).
//
// Determinism: encoding/json marshals struct fields in declaration
// order and map keys sorted, so two semantically equal inputs — however
// their original wire documents were ordered or spaced — hash
// identically. Callers must pass normalized values (e.g. canonical
// policy spellings), not raw request bytes.
func Key(kind string, parts any) string {
	return keyWithSalt(EngineVersion, kind, parts)
}

// keyWithSalt is Key with an explicit salt, split out so tests can pin
// that the salt participates in the address.
func keyWithSalt(salt, kind string, parts any) string {
	data, err := json.Marshal(parts)
	if err != nil {
		// Inputs are always marshalable value types; an error here is a
		// programming bug. Fold it into the hash rather than panic so a
		// cache lookup degrades to a guaranteed miss.
		data = []byte(fmt.Sprintf("unmarshalable:%v", err))
	}
	h := sha256.New()
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}
