package fabric

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CertAuthority is a self-signed CA that can issue leaf certificates for
// fleet members. It backs `go run ./scripts/gencert` (the dev/CI cert
// generator for TLS smokes) and the TLS test suites; production fleets
// bring their own PKI and only ever hand this package PEM files.
type CertAuthority struct {
	// CertPEM is the CA certificate, the bundle peers verify against.
	CertPEM []byte
	// KeyPEM is the CA private key.
	KeyPEM []byte

	cert *x509.Certificate
	key  *ecdsa.PrivateKey
}

// NewCertAuthority creates a fresh self-signed CA valid for ten years.
func NewCertAuthority(commonName string) (*CertAuthority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().AddDate(10, 0, 0),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, err
	}
	return &CertAuthority{
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		KeyPEM:  pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
		cert:    cert,
		key:     key,
	}, nil
}

// Issue signs a leaf certificate for the given hosts (DNS names or IP
// literals), usable as both a server and a client certificate so one
// pair serves a fleet member's listener and its mTLS dials alike.
func (ca *CertAuthority) Issue(commonName string, hosts []string) (certPEM, keyPEM []byte, err error) {
	if len(hosts) == 0 {
		return nil, nil, fmt.Errorf("fabric: issue %s: no hosts", commonName)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: commonName},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().AddDate(10, 0, 0),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, nil, err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), nil
}
