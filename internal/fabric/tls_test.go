package fabric

import (
	"crypto/tls"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeTLSFile drops PEM bytes into dir and returns the path.
func writeTLSFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return p
}

// fleetPKI generates the file layout scripts/gencert produces: one CA,
// one leaf usable for both listener and client auth.
func fleetPKI(t *testing.T) (caFile, certFile, keyFile string) {
	t.Helper()
	ca, err := NewCertAuthority("nocdr-test-ca")
	if err != nil {
		t.Fatal(err)
	}
	cert, key, err := ca.Issue("nocdr-test", []string{"127.0.0.1", "localhost"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	return writeTLSFile(t, dir, "ca.pem", ca.CertPEM),
		writeTLSFile(t, dir, "server.pem", cert),
		writeTLSFile(t, dir, "server-key.pem", key)
}

// TestTLSHandshake pins the server/client pair end to end: a client
// pinning the generated CA reaches the listener, one without it fails
// certificate verification.
func TestTLSHandshake(t *testing.T) {
	caFile, certFile, keyFile := fleetPKI(t)
	scfg, err := ServerTLS(certFile, keyFile, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	ts.TLS = scfg
	ts.StartTLS()
	defer ts.Close()

	ccfg, err := ClientTLS(caFile, "", "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := HTTPClient(ccfg, 5*time.Second).Get(ts.URL)
	if err != nil {
		t.Fatalf("pinned client failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}

	// A client without the CA must refuse the self-signed chain.
	bare := HTTPClient(&tls.Config{MinVersion: tls.VersionTLS12}, 5*time.Second)
	if _, err := bare.Get(ts.URL); err == nil {
		t.Fatal("unpinned client accepted the fleet certificate")
	}
}

// TestTLSMutual pins the mTLS mode: with a CA on the server side,
// clients presenting a CA-signed certificate are admitted and bare TLS
// clients are rejected during the handshake.
func TestTLSMutual(t *testing.T) {
	caFile, certFile, keyFile := fleetPKI(t)
	scfg, err := ServerTLS(certFile, keyFile, caFile)
	if err != nil {
		t.Fatal(err)
	}
	if scfg.ClientAuth != tls.RequireAndVerifyClientCert {
		t.Fatalf("client auth mode %v", scfg.ClientAuth)
	}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	ts.TLS = scfg
	ts.StartTLS()
	defer ts.Close()

	with, err := ClientTLS(caFile, certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := HTTPClient(with, 5*time.Second).Get(ts.URL)
	if err != nil {
		t.Fatalf("mTLS client rejected: %v", err)
	}
	resp.Body.Close()

	without, err := ClientTLS(caFile, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HTTPClient(without, 5*time.Second).Get(ts.URL); err == nil {
		t.Fatal("client without a certificate admitted by an mTLS listener")
	}
}

// TestTLSBadInputs pins the error paths: missing files and junk bundles
// fail loudly at config build time, not at first dial.
func TestTLSBadInputs(t *testing.T) {
	if _, err := ServerTLS("missing.pem", "missing-key.pem", ""); err == nil {
		t.Fatal("missing server pair accepted")
	}
	if _, err := ClientTLS("missing-ca.pem", "", ""); err == nil {
		t.Fatal("missing CA accepted")
	}
	junk := writeTLSFile(t, t.TempDir(), "junk.pem", []byte("not a certificate"))
	if _, err := ClientTLS(junk, "", ""); err == nil {
		t.Fatal("junk CA bundle accepted")
	}
	if cfg := HTTPClient(nil, time.Second); cfg.Transport != nil {
		t.Fatal("nil TLS config grew a transport")
	}
}
