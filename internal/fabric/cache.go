package fabric

import (
	"container/list"
	"context"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// CacheOptions configures a Cache.
type CacheOptions struct {
	// MaxEntries bounds the in-memory LRU tier. Default 1024.
	MaxEntries int
	// Dir, when non-empty, enables the on-disk tier: every stored value
	// is also written to a file named by its key under Dir, and memory
	// misses fall through to it. The directory is created on demand.
	// Disk entries are never evicted by the cache itself — the engine
	// salt in every key already retires stale files, and operators can
	// clear the directory wholesale.
	Dir string
	// Upstream, when non-nil, links this cache to a peer's: lookups that
	// miss both local tiers fall through to the peer (counted in
	// UpstreamHits and stored locally), and Put feeds a background push
	// loop that ships fresh entries back via /v1/cache/seed. Seed stores
	// bypass the push loop so seeded entries never echo back to their
	// origin. Call Close to flush and stop the push loop.
	Upstream *Upstream
}

func (o CacheOptions) withDefaults() CacheOptions {
	if o.MaxEntries < 1 {
		o.MaxEntries = 1024
	}
	return o
}

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	// Hits counts lookups answered from either tier (disk hits are
	// counted in both Hits and DiskHits).
	Hits uint64 `json:"hits"`
	// Misses counts lookups answered by neither tier.
	Misses uint64 `json:"misses"`
	// Collapsed counts Do callers that piggybacked on another caller's
	// in-flight computation instead of executing their own.
	Collapsed uint64 `json:"collapsed"`
	// DiskHits counts lookups that missed memory but hit the disk tier.
	DiskHits uint64 `json:"disk_hits"`
	// UpstreamHits counts lookups that missed both local tiers but were
	// answered by the upstream peer (also counted in Hits).
	UpstreamHits uint64 `json:"upstream_hits"`
	// Puts counts stores (Put and Seed alike).
	Puts uint64 `json:"puts"`
	// Pushed counts entries shipped to the upstream peer by the push loop.
	Pushed uint64 `json:"pushed"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
	// Bytes is the resident size of the in-memory tier's values.
	Bytes int64 `json:"bytes"`
	// MaxEntries echoes the configured memory bound.
	MaxEntries int `json:"max_entries"`
}

// HitRate is hits over total lookups, 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// flight is one in-progress Do computation; followers wait on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the content-addressed result store: a bounded in-memory LRU
// in front of an optional on-disk tier, with singleflight collapsing of
// concurrent identical computations. All methods are safe for concurrent
// use, and every method is a no-op-safe on a nil receiver, so call sites
// need not branch on whether caching is configured.
type Cache struct {
	mu      sync.Mutex
	opts    CacheOptions
	ll      *list.List // front = most recent
	items   map[string]*list.Element
	flights map[string]*flight
	bytes   int64
	hits    uint64
	misses  uint64
	clps    uint64
	dskHits uint64
	upHits  uint64
	puts    uint64
	pushed  uint64

	// Upstream push loop: Put enqueues, pusher ships batches, Close
	// drains. closed guards the channel against send-after-close.
	pushCh chan CacheEntry
	pushWG sync.WaitGroup
	closed bool
}

// entry is one resident value.
type entry struct {
	key string
	val []byte
}

// NewCache builds a Cache.
func NewCache(opts CacheOptions) *Cache {
	c := &Cache{
		opts:    opts.withDefaults(),
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
	if c.opts.Upstream != nil && c.opts.Upstream.URL != "" {
		c.pushCh = make(chan CacheEntry, 256)
		c.pushWG.Add(1)
		go c.pusher()
	}
	return c
}

// pusher ships queued entries upstream in batches. Failures drop the
// batch: the upstream can always pull what it missed.
func (c *Cache) pusher() {
	defer c.pushWG.Done()
	up := c.opts.Upstream
	for e := range c.pushCh {
		batch := []CacheEntry{e}
	fill:
		for len(batch) < SeedBatch {
			select {
			case next, ok := <-c.pushCh:
				if !ok {
					break fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := SeedEntries(ctx, up.URL, up.Token, up.Client, batch)
		cancel()
		if err == nil {
			c.mu.Lock()
			c.pushed += uint64(len(batch))
			c.mu.Unlock()
		}
	}
}

// Get returns the value stored under key, consulting memory first and
// the disk tier second (promoting disk hits into memory). The returned
// slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	return c.get(key, true)
}

// get is Get with the miss accounting optional: Do suppresses it so a
// caller that goes on to join an in-flight computation is counted as
// Collapsed, not as a Miss — exactly one miss per actual computation.
func (c *Cache) get(key string, countMiss bool) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	dir := c.opts.Dir
	c.mu.Unlock()
	if dir != "" {
		if val, err := os.ReadFile(c.diskPath(key)); err == nil {
			c.mu.Lock()
			c.hits++
			c.dskHits++
			c.storeLocked(key, val)
			c.mu.Unlock()
			return val, true
		}
	}
	if up := c.opts.Upstream; up != nil && up.URL != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		val, err := up.fetch(ctx, key)
		cancel()
		if err == nil && len(val) > 0 {
			c.mu.Lock()
			c.hits++
			c.upHits++
			c.storeLocked(key, val)
			c.mu.Unlock()
			if dir != "" {
				c.writeDisk(key, val)
			}
			return val, true
		}
	}
	if countMiss {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
	}
	return nil, false
}

// Put stores val under key in both tiers and, when an upstream peer is
// linked, enqueues it for the background push loop (dropped without
// blocking when the queue is full — the peer can always pull). The value
// is retained as given — callers must not mutate it afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.store(key, val, true)
}

// Seed stores val like Put but never enqueues an upstream push: it is
// the receiving side of propagation, and echoing a seeded entry back to
// the peer that shipped it would be pure churn.
func (c *Cache) Seed(key string, val []byte) {
	c.store(key, val, false)
}

func (c *Cache) store(key string, val []byte, push bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.puts++
	c.storeLocked(key, val)
	if push && c.pushCh != nil && !c.closed {
		select {
		case c.pushCh <- CacheEntry{Key: key, Value: val}:
		default:
		}
	}
	dir := c.opts.Dir
	c.mu.Unlock()
	if dir != "" {
		c.writeDisk(key, val)
	}
}

// Close flushes and stops the upstream push loop. Idempotent, and safe
// on a nil receiver or a cache with no upstream.
func (c *Cache) Close() {
	if c == nil || c.pushCh == nil {
		return
	}
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		close(c.pushCh)
	}
	c.pushWG.Wait()
}

// storeLocked inserts or refreshes the memory entry and evicts past the
// bound; the caller holds c.mu.
func (c *Cache) storeLocked(key string, val []byte) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	c.bytes += int64(len(val))
	for c.ll.Len() > c.opts.MaxEntries {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
	}
}

// Do returns the value for key, computing it at most once across all
// concurrent callers: a cache hit returns immediately; otherwise the
// first caller runs compute while followers with the same key block and
// share its outcome. cached reports whether this caller avoided the
// computation (a tier hit or a collapsed flight). Failed computations
// are not stored, and every waiting follower receives the error.
//
// When noCache is set the lookup is skipped — compute always runs for
// the leading caller — but the result is still stored, so a bypassing
// request refreshes the entry rather than leaving it stale.
func (c *Cache) Do(key string, noCache bool, compute func() ([]byte, error)) (val []byte, cached bool, err error) {
	if c == nil {
		val, err = compute()
		return val, false, err
	}
	if !noCache {
		if val, ok := c.get(key, false); ok {
			return val, true, nil
		}
	}
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.clps++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	if !noCache {
		// The one real miss per computation is charged to the leader;
		// followers joining the flight are Collapsed instead.
		c.misses++
	}
	c.mu.Unlock()

	f.val, f.err = compute()
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	if f.err == nil {
		c.Put(key, f.val)
	}
	return f.val, false, f.err
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:         c.hits,
		Misses:       c.misses,
		Collapsed:    c.clps,
		DiskHits:     c.dskHits,
		UpstreamHits: c.upHits,
		Puts:         c.puts,
		Pushed:       c.pushed,
		Entries:      c.ll.Len(),
		Bytes:        c.bytes,
		MaxEntries:   c.opts.MaxEntries,
	}
}

// diskPath shards disk entries across 256 prefix directories so a large
// cache never produces one enormous flat directory.
func (c *Cache) diskPath(key string) string {
	prefix := "xx"
	if len(key) >= 2 {
		prefix = key[:2]
	}
	return filepath.Join(c.opts.Dir, prefix, key+".json")
}

// writeDisk persists one entry atomically: write-to-temp then rename, so
// a concurrent reader never observes a torn file. Failures are silent —
// the disk tier is an optimization, never a correctness dependency.
func (c *Cache) writeDisk(key string, val []byte) {
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}
