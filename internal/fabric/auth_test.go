package fabric

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func authProbe(t *testing.T, h http.Handler, header string) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/thing", nil)
	if header != "" {
		req.Header.Set("Authorization", header)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

func TestRequireBearer(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })

	// Empty token: open — the guard is identity.
	if code := authProbe(t, RequireBearer("", inner), ""); code != http.StatusOK {
		t.Fatalf("open fleet rejected: %d", code)
	}

	h := RequireBearer("sekrit", inner)
	cases := []struct {
		name   string
		header string
		want   int
	}{
		{"missing", "", http.StatusUnauthorized},
		{"wrong scheme", "Basic sekrit", http.StatusUnauthorized},
		{"wrong token", "Bearer wrong", http.StatusUnauthorized},
		{"prefix of token", "Bearer sekri", http.StatusUnauthorized},
		{"token plus suffix", "Bearer sekrit2", http.StatusUnauthorized},
		{"exact", "Bearer sekrit", http.StatusOK},
	}
	for _, tc := range cases {
		if code := authProbe(t, h, tc.header); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Rejections must carry the challenge header.
	req := httptest.NewRequest(http.MethodPost, "/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get("WWW-Authenticate") == "" {
		t.Fatal("401 without a WWW-Authenticate challenge")
	}
}

func TestSetAuth(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	SetAuth(req, "")
	if req.Header.Get("Authorization") != "" {
		t.Fatal("empty token set a header")
	}
	SetAuth(req, "tok")
	if req.Header.Get("Authorization") != "Bearer tok" {
		t.Fatalf("header %q", req.Header.Get("Authorization"))
	}
}
