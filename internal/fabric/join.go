package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// registerRequest is the worker→coordinator join body.
type registerRequest struct {
	URL string `json:"url"`
}

// registerResponse is the coordinator's join answer: the assigned worker
// ID plus the heartbeat contract the worker must honor.
type registerResponse struct {
	ID                  string `json:"id"`
	HeartbeatIntervalMS int64  `json:"heartbeat_interval_ms"`
	TTLMS               int64  `json:"ttl_ms"`
}

// workersResponse is the coordinator's GET /v1/workers document.
type workersResponse struct {
	Workers []Worker `json:"workers"`
	Count   int      `json:"count"`
}

// JoinOptions configures a worker's membership loop.
type JoinOptions struct {
	// Token is the fleet bearer token presented on register/heartbeat.
	Token string
	// Client is the HTTP client (nil = 10s-timeout default: membership
	// calls are tiny and must fail fast, unlike job traffic).
	Client *http.Client
	// OnState, when non-nil, observes membership transitions for logs:
	// "registered <id>", "re-registered <id>", "heartbeat lost: <err>".
	OnState func(msg string)
}

func (o JoinOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Join runs a worker's membership loop against a coordinator until ctx
// is done: register self (advertised at selfURL), then heartbeat at the
// interval the coordinator dictated. A rejected heartbeat (the
// coordinator retired us, or restarted and lost the table) triggers
// re-registration; transport errors are retried at the same cadence, so
// a briefly unreachable coordinator never kills a healthy worker. The
// first registration is attempted immediately and its failure returned,
// so a mistyped coordinator URL surfaces at startup instead of silently
// looping.
func Join(ctx context.Context, coordinator, selfURL string, opts JoinOptions) error {
	reg, err := registerWorker(ctx, coordinator, selfURL, opts)
	if err != nil {
		return fmt.Errorf("fabric: join %s: %w", coordinator, err)
	}
	if opts.OnState != nil {
		opts.OnState("registered " + reg.ID)
	}
	go func() {
		interval := time.Duration(reg.HeartbeatIntervalMS) * time.Millisecond
		if interval <= 0 {
			interval = DefaultHeartbeatInterval
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			ok, err := heartbeatWorker(ctx, coordinator, reg.ID, opts)
			if err != nil {
				if opts.OnState != nil && ctx.Err() == nil {
					opts.OnState("heartbeat lost: " + err.Error())
				}
				continue
			}
			if !ok {
				// Retired (or the coordinator restarted): join again under
				// whatever ID it hands out now.
				if r2, err := registerWorker(ctx, coordinator, selfURL, opts); err == nil {
					reg = r2
					if opts.OnState != nil {
						opts.OnState("re-registered " + reg.ID)
					}
				}
			}
		}
	}()
	return nil
}

// registerWorker POSTs one registration.
func registerWorker(ctx context.Context, coordinator, selfURL string, opts JoinOptions) (*registerResponse, error) {
	body, _ := json.Marshal(registerRequest{URL: selfURL})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(coordinator, "/")+"/v1/workers/register", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	SetAuth(req, opts.Token)
	resp, err := opts.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("register: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var reg registerResponse
	if err := json.Unmarshal(data, &reg); err != nil || reg.ID == "" {
		return nil, fmt.Errorf("register: malformed response %q", data)
	}
	return &reg, nil
}

// heartbeatWorker POSTs one heartbeat; ok=false means the coordinator no
// longer knows the ID.
func heartbeatWorker(ctx context.Context, coordinator, id string, opts JoinOptions) (ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(coordinator, "/")+"/v1/workers/"+id+"/heartbeat", nil)
	if err != nil {
		return false, err
	}
	SetAuth(req, opts.Token)
	resp, err := opts.client().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("heartbeat: status %d", resp.StatusCode)
	}
}

// FetchWorkers reads a coordinator's live worker URLs once.
func FetchWorkers(ctx context.Context, coordinator, token string, client *http.Client) ([]string, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(coordinator, "/")+"/v1/workers", nil)
	if err != nil {
		return nil, err
	}
	SetAuth(req, token)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workers: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var doc workersResponse
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("workers: malformed response %q", data)
	}
	urls := make([]string, 0, len(doc.Workers))
	for _, w := range doc.Workers {
		urls = append(urls, w.URL)
	}
	return urls, nil
}

// Watcher polls a coordinator's registry and exposes the live worker set
// to a sweep dispatcher: WorkerURLs snapshots the current membership and
// Updates signals whenever it changed, so a dispatcher can hand unowned
// shards to workers that join mid-run. It implements the dispatcher's
// WorkerSource contract.
type Watcher struct {
	mu      sync.Mutex
	urls    []string
	updates chan struct{}
	cancel  context.CancelFunc
}

// WatchWorkers starts polling the coordinator every interval (0 =
// DefaultHeartbeatInterval/2), using client for the fetches (nil = 10s
// default; TLS fleets pass a client built from ClientTLS). The initial
// fetch is synchronous so the caller starts with a real snapshot — an
// unreachable coordinator fails here rather than in the middle of a
// dispatch. Stop with Close, after which Updates is closed, so a
// consumer ranging over it terminates.
func WatchWorkers(ctx context.Context, coordinator, token string, interval time.Duration, client *http.Client) (*Watcher, error) {
	if interval <= 0 {
		interval = DefaultHeartbeatInterval / 2
	}
	urls, err := FetchWorkers(ctx, coordinator, token, client)
	if err != nil {
		return nil, fmt.Errorf("fabric: coordinator %s: %w", coordinator, err)
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &Watcher{urls: urls, updates: make(chan struct{}, 1), cancel: cancel}
	go func() {
		// Closing updates on exit is part of the Watcher contract: it is
		// the only way a consumer draining Updates learns the source is
		// gone rather than merely quiet.
		defer close(w.updates)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-wctx.Done():
				return
			case <-t.C:
			}
			urls, err := FetchWorkers(wctx, coordinator, token, client)
			if err != nil {
				continue
			}
			w.mu.Lock()
			changed := !equalStrings(urls, w.urls)
			w.urls = urls
			w.mu.Unlock()
			if changed {
				select {
				case w.updates <- struct{}{}:
				default:
				}
			}
		}
	}()
	return w, nil
}

// WorkerURLs snapshots the live membership.
func (w *Watcher) WorkerURLs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.urls...)
}

// Updates signals membership changes; the channel carries no payload,
// call WorkerURLs for the new set. It is closed when the watcher stops
// (Close, or the parent context ending), so consumers ranging over it
// terminate instead of blocking forever.
func (w *Watcher) Updates() <-chan struct{} { return w.updates }

// Close stops the poll loop; the Updates channel closes once the loop
// has exited.
func (w *Watcher) Close() { w.cancel() }

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
