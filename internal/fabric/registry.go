package fabric

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultHeartbeatInterval is how often a joined worker announces
// liveness, and DefaultMissedBudget how many consecutive intervals may
// pass silently before the registry retires it. Together they form the
// worker TTL: interval × budget.
const (
	DefaultHeartbeatInterval = 2 * time.Second
	DefaultMissedBudget      = 3
)

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// HeartbeatInterval is the interval workers are told to beat at.
	// Default DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// MissedBudget is how many consecutive missed heartbeats retire a
	// worker. Default DefaultMissedBudget.
	MissedBudget int
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if o.MissedBudget < 1 {
		o.MissedBudget = DefaultMissedBudget
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Worker is one registered fleet member. LastSeen advances on every
// heartbeat (and on re-registration); a worker whose LastSeen falls
// behind the TTL is retired lazily on the next read.
type Worker struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Joined   time.Time `json:"joined"`
	LastSeen time.Time `json:"last_seen"`
}

// Registry is the coordinator-side membership table: a monotonic ID per
// join, a URL-keyed live set, and lazy TTL expiry — there is no janitor
// goroutine, workers are pruned whenever the live set is read, which
// keeps retirement deterministic under an injected clock.
type Registry struct {
	opts RegistryOptions

	mu      sync.Mutex
	seq     int
	byID    map[string]*Worker
	byURL   map[string]*Worker
	retired uint64
}

// NewRegistry builds a Registry.
func NewRegistry(opts RegistryOptions) *Registry {
	return &Registry{
		opts:  opts.withDefaults(),
		byID:  make(map[string]*Worker),
		byURL: make(map[string]*Worker),
	}
}

// TTL is the silence budget after which a worker is retired.
func (r *Registry) TTL() time.Duration {
	return r.opts.HeartbeatInterval * time.Duration(r.opts.MissedBudget)
}

// HeartbeatInterval is the interval workers are told to beat at.
func (r *Registry) HeartbeatInterval() time.Duration {
	return r.opts.HeartbeatInterval
}

// Register adds (or refreshes) a worker by URL and returns its record.
// Re-registering a URL keeps its ID and join time — a worker restarting
// its heartbeat loop is the same fleet member, not a new one — unless it
// had already been retired, in which case it joins fresh under a new ID.
func (r *Registry) Register(url string) Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.opts.Now()
	r.pruneLocked(now)
	if w, ok := r.byURL[url]; ok {
		w.LastSeen = now
		return *w
	}
	r.seq++
	w := &Worker{
		ID:       fmt.Sprintf("w-%d", r.seq),
		URL:      url,
		Joined:   now,
		LastSeen: now,
	}
	r.byID[w.ID] = w
	r.byURL[url] = w
	return *w
}

// Heartbeat refreshes a worker's liveness; false means the ID is unknown
// (never registered, or retired after missing its budget) and the worker
// must re-register.
func (r *Registry) Heartbeat(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.opts.Now()
	r.pruneLocked(now)
	w, ok := r.byID[id]
	if !ok {
		return false
	}
	w.LastSeen = now
	return true
}

// Live returns the current live workers sorted by ID sequence (join
// order), pruning any whose heartbeat budget has lapsed.
func (r *Registry) Live() []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.opts.Now())
	out := make([]Worker, 0, len(r.byID))
	for _, w := range r.byID {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Joined.Before(out[j].Joined) || (out[i].Joined.Equal(out[j].Joined) && out[i].ID < out[j].ID)
	})
	return out
}

// Count returns the live worker count.
func (r *Registry) Count() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.opts.Now())
	return len(r.byID)
}

// Retired counts workers retired for silence since the registry started.
func (r *Registry) Retired() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.opts.Now())
	return r.retired
}

// pruneLocked retires every worker silent past the TTL; the caller holds
// r.mu.
func (r *Registry) pruneLocked(now time.Time) {
	ttl := r.TTL()
	for id, w := range r.byID {
		if now.Sub(w.LastSeen) > ttl {
			delete(r.byID, id)
			delete(r.byURL, w.URL)
			r.retired++
		}
	}
}
