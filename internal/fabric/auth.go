package fabric

import (
	"crypto/subtle"
	"net/http"
	"strings"
)

// TokenEnv is the environment variable both CLIs read the fleet bearer
// token from when no -token flag is given.
const TokenEnv = "NOCDR_TOKEN"

// RequireBearer guards next behind shared bearer-token auth: requests
// must carry `Authorization: Bearer <token>` or are answered 401 with a
// WWW-Authenticate challenge. The comparison is constant-time, so the
// handler leaks no timing signal about how much of a guessed token
// matched. An empty token disables the guard (open fleet — loopback and
// test deployments).
func RequireBearer(token string, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="nocdr"`)
			http.Error(w, `{"error": "fabric: missing or invalid bearer token"}`, http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// SetAuth attaches the bearer token to an outgoing request; a no-op when
// the token is empty.
func SetAuth(r *http.Request, token string) {
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
}
