// Package updown implements up*/down* routing, the turn-prohibition
// family the paper discusses as related work ([17], [18] and the
// synthesis-integrated uses [5], [9]): orient every link up (toward a
// BFS root) or down, and allow only routes that never take an up-link
// after a down-link. The rule makes any topology deadlock-free without
// adding a single VC — but it restricts paths (routes inflate and hot-
// spot around the root) and, as the paper points out, it needs
// bidirectional connectivity: on topologies with one-way links some
// flows simply cannot be routed, which is exactly why the paper's
// VC-insertion method exists.
package updown

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Result is the outcome of up*/down* routing.
type Result struct {
	Routes *route.Table
	Root   topology.SwitchID
	// Unroutable lists flows that have no legal up*/down* path (possible
	// on topologies with unidirectional links). Routes is complete only
	// when this is empty; Apply returns an error but still reports the
	// list here for diagnostics.
	Unroutable []int
}

// Apply computes up*/down* routes for every flow. The root is the
// highest-degree switch (ties to the lowest ID), the classical choice.
// It fails if any flow has no legal path.
func Apply(top *topology.Topology, g *traffic.Graph) (*Result, error) {
	if top.NumSwitches() == 0 {
		return nil, fmt.Errorf("updown: empty topology")
	}
	root := pickRoot(top)
	level := bfsLevels(top, root)
	res := &Result{
		Routes: route.NewTable(g.NumFlows()),
		Root:   root,
	}
	for _, f := range g.Flows() {
		srcSw, ok := top.SwitchOf(int(f.Src))
		if !ok {
			return nil, fmt.Errorf("updown: core %d not attached", f.Src)
		}
		dstSw, ok := top.SwitchOf(int(f.Dst))
		if !ok {
			return nil, fmt.Errorf("updown: core %d not attached", f.Dst)
		}
		if srcSw == dstSw {
			res.Routes.Set(f.ID, nil)
			continue
		}
		channels := legalPath(top, level, srcSw, dstSw)
		if channels == nil {
			res.Unroutable = append(res.Unroutable, f.ID)
			continue
		}
		res.Routes.Set(f.ID, channels)
	}
	if len(res.Unroutable) > 0 {
		return res, fmt.Errorf("updown: %d flow(s) unroutable under up*/down* (topology has one-way links?): %v",
			len(res.Unroutable), res.Unroutable)
	}
	return res, nil
}

// pickRoot returns the switch with the most links (ties to lowest ID).
func pickRoot(top *topology.Topology) topology.SwitchID {
	best := topology.SwitchID(0)
	bestDeg := -1
	for _, sw := range top.Switches() {
		if d := top.Degree(sw.ID); d > bestDeg {
			best = sw.ID
			bestDeg = d
		}
	}
	return best
}

// bfsLevels returns each switch's BFS distance from the root over the
// undirected link structure (unreached switches get level -1).
func bfsLevels(top *topology.Topology, root topology.SwitchID) []int {
	level := make([]int, top.NumSwitches())
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := []topology.SwitchID{root}
	for qi := 0; qi < len(queue); qi++ {
		sw := queue[qi]
		visit := func(other topology.SwitchID) {
			if level[other] == -1 {
				level[other] = level[sw] + 1
				queue = append(queue, other)
			}
		}
		for _, lid := range top.OutLinks(sw) {
			visit(top.Link(lid).To)
		}
		for _, lid := range top.InLinks(sw) {
			visit(top.Link(lid).From)
		}
	}
	return level
}

// isUp reports whether traversing link l is an "up" move: toward a
// strictly lower BFS level, with level ties broken by switch ID (the
// standard total order that makes the orientation acyclic).
func isUp(l topology.Link, level []int) bool {
	lf, lt := level[l.From], level[l.To]
	if lf != lt {
		return lt < lf
	}
	return l.To < l.From
}

// legalPath returns the shortest up*-then-down* channel path from src to
// dst, or nil if none exists. It searches the phase-augmented graph
// (switch, stillClimbing) by BFS, preferring lower link IDs for
// determinism.
func legalPath(top *topology.Topology, level []int, src, dst topology.SwitchID) []topology.Channel {
	const (
		phaseUp   = 0
		phaseDown = 1
	)
	n := top.NumSwitches()
	type state struct {
		sw    topology.SwitchID
		phase int
	}
	parent := make(map[state]state, 2*n)
	via := make(map[state]topology.LinkID, 2*n)
	start := state{sw: src, phase: phaseUp}
	parent[start] = state{sw: -1}
	queue := []state{start}
	var goal *state
	for qi := 0; qi < len(queue) && goal == nil; qi++ {
		cur := queue[qi]
		for _, lid := range top.OutLinks(cur.sw) {
			l := top.Link(lid)
			next := state{sw: l.To}
			if isUp(l, level) {
				if cur.phase == phaseDown {
					continue // down→up turn prohibited
				}
				next.phase = phaseUp
			} else {
				next.phase = phaseDown
			}
			if _, seen := parent[next]; seen {
				continue
			}
			parent[next] = cur
			via[next] = lid
			if next.sw == dst {
				g := next
				goal = &g
				break
			}
			queue = append(queue, next)
		}
	}
	if goal == nil {
		return nil
	}
	var rev []topology.Channel
	for s := *goal; parent[s].sw != -1; s = parent[s] {
		rev = append(rev, topology.Chan(via[s], 0))
	}
	out := make([]topology.Channel, len(rev))
	for i, c := range rev {
		out[len(rev)-1-i] = c
	}
	return out
}
