package updown

import (
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

func TestUpDownOnMeshIsDeadlockFree(t *testing.T) {
	g, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tg := traffic.RandomKOut("m", 16, 4, 3)
	res, err := Apply(g.Topology, tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Routes.Validate(g.Topology, tg); err != nil {
		t.Fatal(err)
	}
	c, err := cdg.Build(g.Topology, res.Routes)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acyclic() {
		t.Error("up*/down* produced a cyclic CDG on a mesh")
	}
}

func TestUpDownOnTorusIsDeadlockFree(t *testing.T) {
	// The same torus whose DOR routes deadlock: up*/down* avoids the
	// cycles without VCs, at the cost of longer routes.
	g, err := regular.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := regular.UniformTraffic(16, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apply(g.Topology, tg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cdg.Build(g.Topology, res.Routes)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acyclic() {
		t.Error("up*/down* produced a cyclic CDG on a torus")
	}
}

func TestUpDownOnSynthesizedBenchmarks(t *testing.T) {
	// Synthesized topologies are bidirectional, so up*/down* must route
	// everything deadlock-free; its routes may be longer than shortest.
	for _, name := range []string{"D26_media", "D36_8"} {
		tg, err := traffic.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		des, err := synth.Synthesize(tg, synth.Options{SwitchCount: 14})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Apply(des.Topology, tg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Routes.Validate(des.Topology, tg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := cdg.Build(des.Topology, res.Routes)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Acyclic() {
			t.Errorf("%s: cyclic CDG under up*/down*", name)
		}
		if res.Routes.AvgLen() < des.Routes.AvgLen() {
			t.Errorf("%s: up*/down* routes shorter than shortest paths (%.2f < %.2f)",
				name, res.Routes.AvgLen(), des.Routes.AvgLen())
		}
	}
}

func TestUpDownFailsOnUnidirectionalRing(t *testing.T) {
	// The paper's critique of [18]: turn prohibition needs bidirectional
	// links. On a one-way ring a two-hop flow crossing the dateline must
	// make a down→up turn, and there is no alternative path to detour to.
	g, err := regular.Ring(4, false)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := regular.UniformTraffic(4, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apply(g.Topology, tg)
	if err == nil {
		t.Fatal("up*/down* routed a unidirectional ring; some flow must be unroutable")
	}
	if res == nil || len(res.Unroutable) == 0 {
		t.Error("error without diagnostics")
	}
}

func TestUpDownRootChoice(t *testing.T) {
	top := topology.New("t")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	c := top.AddSwitch("")
	top.AddBidi(a, b)
	top.AddBidi(b, c)
	if root := pickRoot(top); root != b {
		t.Errorf("root = %d, want hub switch %d", root, b)
	}
}

func TestUpDownLocalFlows(t *testing.T) {
	top := topology.New("t")
	sw := top.AddSwitch("")
	top.AddSwitch("")
	top.AttachCore(0, sw)
	top.AttachCore(1, sw)
	tg := traffic.NewGraph("t")
	tg.AddCore("")
	tg.AddCore("")
	tg.MustAddFlow(0, 1, 5)
	res, err := Apply(top, tg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Routes.Route(0).Len() != 0 {
		t.Error("same-switch flow got a route")
	}
}

func TestUpDownUnattachedCore(t *testing.T) {
	top := topology.New("t")
	top.AddSwitch("")
	tg := traffic.NewGraph("t")
	tg.AddCore("")
	tg.AddCore("")
	tg.MustAddFlow(0, 1, 5)
	if _, err := Apply(top, tg); err == nil {
		t.Error("unattached core accepted")
	}
}

// TestNoDownUpTurns verifies the defining invariant on every route.
func TestNoDownUpTurns(t *testing.T) {
	tg, err := traffic.ByName("D36_6")
	if err != nil {
		t.Fatal(err)
	}
	des, err := synth.Synthesize(tg, synth.Options{SwitchCount: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apply(des.Topology, tg)
	if err != nil {
		t.Fatal(err)
	}
	level := bfsLevels(des.Topology, res.Root)
	checkRoutes(t, des.Topology, res.Routes, level)
}

func checkRoutes(t *testing.T, top *topology.Topology, tab *route.Table, level []int) {
	t.Helper()
	for _, r := range tab.Routes() {
		wentDown := false
		for _, ch := range r.Channels {
			l := top.Link(ch.Link)
			if isUp(l, level) {
				if wentDown {
					t.Fatalf("flow %d makes a down→up turn", r.FlowID)
				}
			} else {
				wentDown = true
			}
		}
	}
}
