package wormhole_test

import (
	"reflect"
	"testing"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

func meshTranspose(t *testing.T, n int) (*regular.Grid, *traffic.Graph) {
	t.Helper()
	grid, err := regular.Mesh(n, n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.Transpose(n * n)
	if err != nil {
		t.Fatal(err)
	}
	return grid, g
}

// meshAllToAll pairs an n x n mesh with one flow per ordered core pair —
// the workload whose min-adaptive union CDG is pinned cyclic on ≥4x4
// meshes by the route package's turn-model tests (transpose sets happen
// to come out acyclic there, so they cannot serve as negative controls).
func meshAllToAll(t *testing.T, n int) (*regular.Grid, *traffic.Graph) {
	t.Helper()
	grid, err := regular.Mesh(n, n)
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGraph("all2all")
	for i := 0; i < n*n; i++ {
		g.AddCore("")
	}
	for s := 0; s < n*n; s++ {
		for d := 0; d < n*n; d++ {
			if s != d {
				g.MustAddFlow(traffic.CoreID(s), traffic.CoreID(d), 10)
			}
		}
	}
	return grid, g
}

// TestAdaptiveTurnModelDelivers runs the adaptive engine on each turn
// model's route set (deadlock-free by construction) at saturation and
// checks packets flow and no deadlock is reported, under both selection
// policies.
func TestAdaptiveTurnModelDelivers(t *testing.T) {
	grid, g := meshTranspose(t, 4)
	for _, model := range []route.TurnModel{route.WestFirst, route.NorthLast, route.NegativeFirst, route.OddEven} {
		set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), model, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range []wormhole.AdaptiveSelection{wormhole.FirstFree, wormhole.LeastCongested} {
			sim, err := wormhole.NewAdaptive(grid.Topology, g, set, wormhole.Config{
				MaxCycles: 20000, LoadFactor: 1.0, BufferDepth: 2, Seed: 7, Adaptive: sel,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, sel, err)
			}
			st, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if st.Deadlocked {
				t.Errorf("%s/%s: deadlock at cycle %d on a deadlock-free turn model", model, sel, st.DeadlockCycle)
			}
			if st.DeliveredPackets == 0 {
				t.Errorf("%s/%s: nothing delivered", model, sel)
			}
		}
	}
}

// TestAdaptiveDeterministic pins that two identically-seeded adaptive
// runs produce identical statistics.
func TestAdaptiveDeterministic(t *testing.T) {
	grid, g := meshTranspose(t, 4)
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.OddEven, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *wormhole.Stats {
		sim, err := wormhole.NewAdaptive(grid.Topology, g, set, wormhole.Config{
			MaxCycles: 5000, LoadFactor: 0.8, BufferDepth: 2, Seed: 42,
			Adaptive: wormhole.LeastCongested, CollectLatencies: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identically-seeded adaptive runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestAdaptiveMinimalDeadlocksAndRemovalRepairs is the paper's story on
// the adaptive engine: fully-adaptive minimal routing on a mesh has a
// cyclic union CDG and deadlocks under saturated long-packet traffic;
// after RemoveSet the same workload on the repaired design never does.
func TestAdaptiveMinimalDeadlocksAndRemovalRepairs(t *testing.T) {
	grid, g := meshAllToAll(t, 4)
	// Long worms make the cycle's holdings interlock.
	for _, f := range g.Flows() {
		if err := g.SetPacketFlits(f.ID, 16); err != nil {
			t.Fatal(err)
		}
	}
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.MinimalAdaptive, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wormhole.Config{MaxCycles: 20000, LoadFactor: 1.0, BufferDepth: 1, Seed: 3}

	deadlocked := false
	for seed := int64(1); seed <= 5 && !deadlocked; seed++ {
		cfg.Seed = seed
		sim, err := wormhole.NewAdaptive(grid.Topology, g, set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		deadlocked = st.Deadlocked
		if st.Deadlocked && len(st.DeadlockPackets) == 0 {
			t.Fatal("deadlock confirmed but wait-for cycle empty")
		}
	}
	if !deadlocked {
		// Deterministic seeds: this fixture deadlocks today, and a cyclic
		// union CDG plus saturated long worms is exactly the adversarial
		// setting the removal method exists for.
		t.Fatal("min-adaptive all-to-all saturation did not deadlock in 5 seeds — negative control lost")
	}

	res, err := core.RemoveSet(grid.Topology, set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		cfg.Seed = seed
		sim, err := wormhole.NewAdaptive(res.Topology, g, res.Routes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			t.Fatalf("seed %d: post-removal adaptive design deadlocked at cycle %d", seed, st.DeadlockCycle)
		}
		if st.DeliveredPackets == 0 {
			t.Fatalf("seed %d: post-removal design delivered nothing", seed)
		}
	}
}

// TestAdaptiveSinglePathMatchesTableEngine pins that the adaptive engine
// degenerates exactly to the table engine on a single-path set: same
// per-cycle moves, hence identical final statistics.
func TestAdaptiveSinglePathMatchesTableEngine(t *testing.T) {
	grid, err := regular.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := regular.UniformTraffic(16, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wormhole.Config{MaxCycles: 5000, LoadFactor: 0.7, BufferDepth: 2, Seed: 11, CollectLatencies: true}
	tabSim, err := wormhole.New(grid.Topology, g, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	setSim, err := wormhole.NewAdaptive(grid.Topology, g, route.FromTable(tab), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tabSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := setSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("single-path adaptive run diverged from table engine:\ntable: %+v\nadaptive: %+v", a, b)
	}
}

// TestAdaptiveRejectsReference pins the documented incompatibility.
func TestAdaptiveRejectsReference(t *testing.T) {
	grid, g := meshTranspose(t, 3)
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.WestFirst, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = wormhole.NewAdaptive(grid.Topology, g, set, wormhole.Config{MaxCycles: 10, Reference: true})
	if err == nil {
		t.Fatal("Reference + adaptive accepted")
	}
}

// TestAdaptiveFaultedSetSimulates drives the full fault story through
// the simulator: faulted mesh, regenerated min-adaptive set, removal,
// saturated run with zero deadlocks.
func TestAdaptiveFaultedSetSimulates(t *testing.T) {
	grid, g := meshTranspose(t, 4)
	ids, err := regular.SelectFaults(grid, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Topology.Fault(ids...); err != nil {
		t.Fatal(err)
	}
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.MinimalAdaptive, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RemoveSet(grid.Topology, set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := wormhole.NewAdaptive(res.Topology, g, res.Routes, wormhole.Config{
		MaxCycles: 20000, LoadFactor: 1.0, BufferDepth: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("faulted post-removal design deadlocked at cycle %d", st.DeadlockCycle)
	}
	if st.DeliveredPackets == 0 {
		t.Fatal("faulted post-removal design delivered nothing")
	}
}

// TestParseAdaptiveSelection covers the CLI spellings.
func TestParseAdaptiveSelection(t *testing.T) {
	for _, name := range []string{"first-free", "least-congested"} {
		sel, err := wormhole.ParseAdaptiveSelection(name)
		if err != nil {
			t.Fatal(err)
		}
		if sel.String() != name {
			t.Errorf("round trip %q → %q", name, sel.String())
		}
	}
	if _, err := wormhole.ParseAdaptiveSelection("nope"); err == nil {
		t.Error("bad selection accepted")
	}
}
