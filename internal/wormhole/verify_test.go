package wormhole

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// --- Differential: the dense/worklist engine and the Reference path must
// decide identical moves on every cycle (two paths, one answer). ---

// diffStats compares two stats snapshots field by field, ignoring the
// collection order of Latencies (both runs record the same multiset; only
// Run's finish pass sorts it).
func diffStats(t *testing.T, label string, a, b Stats) {
	t.Helper()
	a.Latencies, b.Latencies = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: fast and reference stats diverge:\nfast: %+v\nref:  %+v", label, a, b)
	}
}

func diffScenario(t *testing.T, label string, build func() (*topology.Topology, *traffic.Graph, *route.Table), cfg Config, cycles int) {
	t.Helper()
	top, g, tab := build()
	fast, err := New(top, g, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg
	refCfg.Reference = true
	ref, err := New(top, g, tab, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cycles; i++ {
		fm := fast.Step()
		rm := ref.Step()
		if fm != rm {
			t.Fatalf("%s: cycle %d: fast progressed=%v, reference progressed=%v", label, i, fm, rm)
		}
		if i%64 == 0 {
			diffStats(t, fmt.Sprintf("%s @ cycle %d", label, i), fast.Stats(), ref.Stats())
		}
	}
	diffStats(t, label+" final", fast.Stats(), ref.Stats())
}

func TestReferenceMatchesFastStepwise(t *testing.T) {
	saturated := Config{MaxCycles: 1 << 30, LoadFactor: 1.0, Seed: 7, BufferDepth: 2}
	moderate := Config{MaxCycles: 1 << 30, LoadFactor: 0.4, Seed: 3}
	drain := Config{MaxCycles: 1 << 30, PacketsPerFlow: 10, Seed: 5}

	removed := func() (*topology.Topology, *traffic.Graph, *route.Table) {
		top, g, tab := ringExample()
		res, err := core.Remove(top, tab, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Topology, g, res.Routes
	}

	diffScenario(t, "cyclic ring saturated", ringExample, saturated, 2000)
	diffScenario(t, "removed ring saturated", removed, saturated, 3000)
	diffScenario(t, "removed ring moderate", removed, moderate, 3000)
	diffScenario(t, "removed ring drain", removed, drain, 3000)
}

func TestReferenceMatchesFastRunOutcome(t *testing.T) {
	// Full Run comparison including deadlock confirmation on the cyclic
	// ring and clean completion after removal, with latency collection.
	run := func(reference bool, remove bool) Stats {
		top, g, tab := ringExample()
		if remove {
			res, err := core.Remove(top, tab, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			top, tab = res.Topology, res.Routes
		}
		sim, err := New(top, g, tab, Config{
			MaxCycles:        20000,
			LoadFactor:       1.0,
			Seed:             9,
			CollectLatencies: true,
			Reference:        reference,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	for _, remove := range []bool{false, true} {
		fast, ref := run(false, remove), run(true, remove)
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("remove=%v: Run outcomes diverge:\nfast: %+v\nref:  %+v", remove, fast, ref)
		}
	}
}

// --- Seeded stress for detect.go and recovery.go under the new engine:
// known-cyclic route sets must trip the detector, and recovery must drain
// every packet of a finite workload through the same cyclic design. ---

// sixRing builds a 6-switch unidirectional ring with stride-2 uniform
// traffic routed forward — every link's dependency chain wraps, so the
// CDG is one big cycle (the paper's Figure 1 family, scaled up).
func sixRing(t *testing.T) (*topology.Topology, *traffic.Graph, *route.Table) {
	t.Helper()
	grid, err := regular.Ring(6, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := regular.UniformTraffic(6, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	return grid.Topology, g, tab
}

func TestDetectorStressSeeded(t *testing.T) {
	builders := map[string]func() (*topology.Topology, *traffic.Graph, *route.Table){
		"fig1_ring": func() (*topology.Topology, *traffic.Graph, *route.Table) { return ringExample() },
		"six_ring":  func() (*topology.Topology, *traffic.Graph, *route.Table) { return sixRing(t) },
	}
	for name, build := range builders {
		for seed := int64(1); seed <= 8; seed++ {
			top, g, tab := build()
			sim, err := New(top, g, tab, Config{
				MaxCycles:   50000,
				LoadFactor:  1.0,
				Seed:        seed,
				BufferDepth: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Deadlocked {
				t.Fatalf("%s seed %d: cyclic route set did not deadlock at saturation: %+v", name, seed, st)
			}
			if len(st.DeadlockPackets) < 2 {
				t.Errorf("%s seed %d: watchdog fired but wait-for cycle has %d packets",
					name, seed, len(st.DeadlockPackets))
			}
			for _, pid := range st.DeadlockPackets {
				if len(sim.HeldChannels(pid)) == 0 {
					t.Errorf("%s seed %d: deadlocked packet %d holds no channel", name, seed, pid)
				}
			}
		}
	}
}

func TestRecoveryStressDrainsAllPackets(t *testing.T) {
	const perFlow = 25
	var totalRecoveries int64
	for seed := int64(1); seed <= 8; seed++ {
		top, g, tab := ringExample()
		sim, err := New(top, g, tab, Config{
			MaxCycles:      500000,
			PacketsPerFlow: perFlow,
			Seed:           seed,
			BufferDepth:    2,
			Recovery:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			t.Fatalf("seed %d: recovery enabled but run reports deadlock at cycle %d", seed, st.DeadlockCycle)
		}
		if !st.Drained {
			t.Fatalf("seed %d: finite workload did not drain under recovery: %+v", seed, st)
		}
		want := int64(g.NumFlows() * perFlow)
		if got := st.DeliveredPackets + st.LocalPackets; got != want {
			t.Errorf("seed %d: delivered %d packets, want %d", seed, got, want)
		}
		if st.InjectedFlits != st.DeliveredFlits {
			t.Errorf("seed %d: flits injected %d != delivered %d", seed, st.InjectedFlits, st.DeliveredFlits)
		}
		totalRecoveries += st.Recoveries
	}
	if totalRecoveries == 0 {
		t.Error("no seed triggered a recovery on the cyclic ring; stress has no teeth")
	}
}

// TestSourceQueueStorageBounded pins the bounded-memory contract of
// SourceQueueCap: under sustained saturation the queue backing arrays
// must stay O(cap), not grow one slot per delivered packet.
func TestSourceQueueStorageBounded(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{MaxCycles: 1 << 30, LoadFactor: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		sim.Step()
	}
	for i := range sim.flows {
		if n := len(sim.flows[i].queue); n > 64 {
			t.Errorf("flow %d: queue backing array grew to %d entries under saturation", i, n)
		}
	}
}

// --- Input-sharing contract: Simulators never mutate their inputs, so
// many of them may share one Topology/Graph/Table across goroutines.
// CI runs this under -race, which is the actual assertion. ---

func TestSimulatorsShareInputsAcrossGoroutines(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	stats := make([]*Stats, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the goroutines simulate the removed design, half the
			// original (which deadlocks) — both share the same inputs.
			var sim *Simulator
			var err error
			if w%2 == 0 {
				sim, err = New(res.Topology, g, res.Routes, Config{MaxCycles: 10000, LoadFactor: 1.0, Seed: int64(w + 1)})
			} else {
				sim, err = New(top, g, tab, Config{MaxCycles: 10000, LoadFactor: 1.0, Seed: int64(w + 1)})
			}
			if err != nil {
				errs[w] = err
				return
			}
			stats[w], errs[w] = sim.Run()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if w%2 == 0 && stats[w].Deadlocked {
			t.Errorf("worker %d: removed design deadlocked", w)
		}
		if w%2 == 1 && !stats[w].Deadlocked {
			t.Errorf("worker %d: cyclic design did not deadlock", w)
		}
	}
}
