package wormhole_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// batchCell is one (topology × routing) design of the differential
// matrix. mk builds the oracle simulator, mkBatch the batch under test,
// from the same shared inputs.
type batchCell struct {
	name    string
	mk      func(cfg wormhole.Config) (*wormhole.Simulator, error)
	mkBatch func(cfg wormhole.Config, vs []wormhole.Variant) (*wormhole.Batch, error)
}

// batchMatrix builds the (mesh/torus × dor/odd-even/min-adaptive)
// differential cells over transpose traffic.
func batchMatrix(t *testing.T, n int) []batchCell {
	t.Helper()
	var cells []batchCell
	for _, shape := range []string{"mesh", "torus"} {
		var grid *regular.Grid
		var err error
		if shape == "mesh" {
			grid, err = regular.Mesh(n, n)
		} else {
			grid, err = regular.Torus(n, n)
		}
		if err != nil {
			t.Fatal(err)
		}
		g, err := traffic.Transpose(n * n)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := regular.DORRoutes(grid, g)
		if err != nil {
			t.Fatal(err)
		}
		// Repair the DOR table so torus cells exercise long runs, not
		// just an early identical deadlock.
		res, err := core.Remove(grid.Topology, tab, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		top, rtab := res.Topology, res.Routes
		cells = append(cells, batchCell{
			name: shape + "/dor",
			mk: func(cfg wormhole.Config) (*wormhole.Simulator, error) {
				return wormhole.New(top, g, rtab, cfg)
			},
			mkBatch: func(cfg wormhole.Config, vs []wormhole.Variant) (*wormhole.Batch, error) {
				return wormhole.NewBatch(top, g, rtab, cfg, vs)
			},
		})
		for _, model := range []route.TurnModel{route.OddEven, route.MinimalAdaptive} {
			set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), model, 4)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := core.RemoveSet(grid.Topology, set, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			stop, sset := sres.Topology, sres.Routes
			cells = append(cells, batchCell{
				name: shape + "/" + model.String(),
				mk: func(cfg wormhole.Config) (*wormhole.Simulator, error) {
					return wormhole.NewAdaptive(stop, g, sset, cfg)
				},
				mkBatch: func(cfg wormhole.Config, vs []wormhole.Variant) (*wormhole.Batch, error) {
					return wormhole.NewAdaptiveBatch(stop, g, sset, cfg, vs)
				},
			})
		}
	}
	return cells
}

// oracleRun is the sequential reference: an independent single-variant
// simulator built with the variant's (seed, load) folded into the base
// config.
func oracleRun(t *testing.T, cell batchCell, cfg wormhole.Config, v wormhole.Variant) *wormhole.Stats {
	t.Helper()
	if v.Seed != 0 {
		cfg.Seed = v.Seed
	}
	if v.Load != 0 {
		cfg.LoadFactor = v.Load
	}
	sim, err := cell.mk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBatchMatchesSequential is the tentpole's differential property:
// per-variant stats from one batch must be byte-identical to N
// independent sequential runs, per (mesh/torus × dor/odd-even/
// min-adaptive) cell, across a seed × load variant grid.
func TestBatchMatchesSequential(t *testing.T) {
	variants := []wormhole.Variant{
		{},                          // base lane
		{Seed: 7},                   // reseeded
		{Seed: 123, Load: 0.3},      // light
		{Seed: 123, Load: 0.95},     // near saturation
		{Load: 0.6},                 // base seed, new load
		{Seed: 9999999, Load: 0.05}, // sparse injection
	}
	cfg := wormhole.Config{
		MaxCycles: 3000, BufferDepth: 2, LoadFactor: 0.8, Seed: 1,
		CollectLatencies: true,
	}
	for _, cell := range batchMatrix(t, 4) {
		t.Run(cell.name, func(t *testing.T) {
			b, err := cell.mkBatch(cfg, variants)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(variants) {
				t.Fatalf("got %d lane stats, want %d", len(got), len(variants))
			}
			for i := range variants {
				want := oracleRun(t, cell, cfg, variants[i])
				if !reflect.DeepEqual(got[i], want) {
					t.Errorf("variant %d (%+v): batch stats diverge from sequential oracle\nbatch: %+v\noracle: %+v",
						i, variants[i], got[i], want)
				}
			}
		})
	}
}

// TestBatchParallelMatchesSerial pins that lane partitioning is
// invisible: the same batch run with 1 and 4 workers yields identical
// per-lane stats (the variant isolation invariant).
func TestBatchParallelMatchesSerial(t *testing.T) {
	cells := batchMatrix(t, 4)
	cell := cells[1] // mesh/odd-even
	variants := []wormhole.Variant{{Seed: 2}, {Seed: 3}, {Seed: 4, Load: 0.4}, {Seed: 5, Load: 0.9}, {Seed: 6}}
	cfg := wormhole.Config{MaxCycles: 2000, BufferDepth: 2, LoadFactor: 0.7, CollectLatencies: true}
	run := func(parallel int) []*wormhole.Stats {
		b, err := cell.mkBatch(cfg, variants)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.RunContext(context.Background(), parallel)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, par := run(1), run(4)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel lane partitioning changed results:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestBatchReferenceEngine runs a batch on the Reference arbitration
// path: lanes share the seed engine's next-hop maps read-only and must
// still match per-variant oracles.
func TestBatchReferenceEngine(t *testing.T) {
	grid, err := regular.Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.Transpose(9)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wormhole.Config{MaxCycles: 1500, LoadFactor: 0.5, Reference: true}
	variants := []wormhole.Variant{{Seed: 11}, {Seed: 12, Load: 0.9}}
	b, err := wormhole.NewBatch(grid.Topology, g, tab, cfg, variants)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		c := cfg
		c.Seed = v.Seed
		if v.Load != 0 {
			c.LoadFactor = v.Load
		}
		sim, err := wormhole.New(grid.Topology, g, tab, c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("reference variant %d diverges:\nbatch: %+v\noracle: %+v", i, got[i], want)
		}
	}
}

// TestBatchDrainAndRecovery covers the two non-probabilistic run
// endings through the batch path: drain mode (PacketsPerFlow) and
// DISHA recovery on a deadlocking design, both against the oracle.
func TestBatchDrainAndRecovery(t *testing.T) {
	grid, err := regular.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := regular.UniformTraffic(16, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  wormhole.Config
	}{
		{"recovery", wormhole.Config{MaxCycles: 8000, LoadFactor: 1.0, BufferDepth: 2, Recovery: true}},
		{"drain", wormhole.Config{MaxCycles: 20000, LoadFactor: 1.0, BufferDepth: 4, PacketsPerFlow: 3, Recovery: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			variants := []wormhole.Variant{{Seed: 5}, {Seed: 21}}
			b, err := wormhole.NewBatch(grid.Topology, g, tab, tc.cfg, variants)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Run()
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range variants {
				c := tc.cfg
				c.Seed = v.Seed
				sim, err := wormhole.New(grid.Topology, g, tab, c)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Errorf("%s variant %d diverges:\nbatch: %+v\noracle: %+v", tc.name, i, got[i], want)
				}
			}
		})
	}
}

// TestBatchValidation covers construction rejections and variant
// normalization.
func TestBatchValidation(t *testing.T) {
	grid, err := regular.Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.Transpose(9)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wormhole.Config{MaxCycles: 100}
	if _, err := wormhole.NewBatch(grid.Topology, g, tab, cfg, nil); !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Errorf("empty variants: got %v, want ErrInvalidInput", err)
	}
	if _, err := wormhole.NewBatch(grid.Topology, g, tab, cfg, []wormhole.Variant{{Load: 1.5}}); !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Errorf("load > 1: got %v, want ErrInvalidInput", err)
	}
	b, err := wormhole.NewBatch(grid.Topology, g, tab, cfg, []wormhole.Variant{{}, {Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	vs := b.Variants()
	if vs[0].Seed != 1 || vs[0].Load != 0.1 {
		t.Errorf("zero variant not normalized to base defaults: %+v", vs[0])
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

// TestBatchCancel pins cancellation semantics: finished lanes keep
// stats, unfinished lanes are nil, and the error wraps ErrCanceled.
func TestBatchCancel(t *testing.T) {
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.Transpose(16)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := wormhole.NewBatch(grid.Topology, g, tab, wormhole.Config{MaxCycles: 1 << 40},
		[]wormhole.Variant{{Seed: 1}, {Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := b.RunContext(ctx, 1)
	if !errors.Is(err, nocerr.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	for i, st := range out {
		if st != nil {
			t.Errorf("lane %d has stats despite pre-canceled context", i)
		}
	}
}

// FuzzLockstepVariants is the nightly fuzz leg of the tentpole's
// invariant: for arbitrary variant counts, seeds and loads, every lane
// of a batch must match its sequential oracle byte for byte, on both
// the table and adaptive engines.
func FuzzLockstepVariants(f *testing.F) {
	grid, err := regular.Mesh(3, 3)
	if err != nil {
		f.Fatal(err)
	}
	g, err := traffic.Transpose(9)
	if err != nil {
		f.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		f.Fatal(err)
	}
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.OddEven, 4)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(3), int64(42), uint8(128), false)
	f.Add(uint8(1), int64(0), uint8(0), true)
	f.Add(uint8(8), int64(-17), uint8(255), true)
	f.Fuzz(func(t *testing.T, nv uint8, seed int64, load uint8, adaptive bool) {
		n := int(nv%8) + 1
		variants := make([]wormhole.Variant, n)
		for i := range variants {
			// Derived, collision-friendly seeds and loads; 0 exercises
			// base-config inheritance.
			variants[i].Seed = seed + int64(i)*7
			variants[i].Load = float64((int(load)+i*37)%101) / 100
		}
		cfg := wormhole.Config{MaxCycles: 1200, BufferDepth: 2, LoadFactor: 0.7, Seed: 9}
		var (
			b    *wormhole.Batch
			berr error
		)
		if adaptive {
			b, berr = wormhole.NewAdaptiveBatch(grid.Topology, g, set, cfg, variants)
		} else {
			b, berr = wormhole.NewBatch(grid.Topology, g, tab, cfg, variants)
		}
		if berr != nil {
			t.Fatal(berr)
		}
		got, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range b.Variants() {
			c := cfg
			c.Seed = v.Seed
			c.LoadFactor = v.Load
			var sim *wormhole.Simulator
			if adaptive {
				sim, err = wormhole.NewAdaptive(grid.Topology, g, set, c)
			} else {
				sim, err = wormhole.New(grid.Topology, g, tab, c)
			}
			if err != nil {
				t.Fatal(err)
			}
			want, serr := sim.Run()
			if serr != nil {
				t.Fatal(serr)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("variant %d (%+v) diverges from oracle\nbatch: %+v\noracle: %+v", i, v, got[i], want)
			}
		}
	})
}
