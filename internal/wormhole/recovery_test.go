package wormhole

import (
	"testing"

	"github.com/nocdr/nocdr/internal/core"
)

func TestRecoveryResolvesRingDeadlock(t *testing.T) {
	top, g, tab := ringExample()
	sim, err := New(top, g, tab, Config{
		MaxCycles:  50000,
		LoadFactor: 1.0,
		Seed:       7,
		Recovery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("recovery enabled but run still reports deadlock: %+v", st)
	}
	if st.Recoveries == 0 {
		t.Fatal("saturated cyclic ring triggered no recoveries")
	}
	if st.RecoveredPackets == 0 {
		t.Error("no packets delivered through the recovery lane")
	}
	if st.DeliveredPackets <= st.RecoveredPackets {
		t.Error("normal network delivered nothing; recovery should be the exception path")
	}
}

func TestRecoveryIdleOnDeadlockFreeDesign(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles:  20000,
		LoadFactor: 1.0,
		Seed:       7,
		Recovery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recoveries != 0 {
		t.Errorf("deadlock-free design triggered %d recoveries", st.Recoveries)
	}
}

func TestRecoveryVsRemovalThroughput(t *testing.T) {
	// The paper's design-time method should beat runtime recovery on the
	// same workload: recovery stalls the whole network for every token
	// cycle, removal never stalls at all.
	top, g, tab := ringExample()

	rec, err := New(top, g, tab, Config{
		MaxCycles: 50000, LoadFactor: 1.0, Seed: 7, Recovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	recSt, err := rec.Run()
	if err != nil {
		t.Fatal(err)
	}

	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles: 50000, LoadFactor: 1.0, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rmSt, err := rm.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rmSt.DeliveredFlits <= recSt.DeliveredFlits {
		t.Errorf("removal delivered %d flits, recovery %d: design-time fix should win",
			rmSt.DeliveredFlits, recSt.DeliveredFlits)
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	run := func() Stats {
		top, g, tab := ringExample()
		sim, err := New(top, g, tab, Config{
			MaxCycles: 20000, LoadFactor: 1.0, Seed: 9, Recovery: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	a, b := run(), run()
	if a.Recoveries != b.Recoveries || a.DeliveredPackets != b.DeliveredPackets {
		t.Errorf("nondeterministic recovery: %d/%d recoveries, %d/%d delivered",
			a.Recoveries, b.Recoveries, a.DeliveredPackets, b.DeliveredPackets)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles:        20000,
		LoadFactor:       0.3,
		Seed:             7,
		CollectLatencies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(st.Latencies)) != st.LatencyCount {
		t.Fatalf("collected %d latencies, counted %d", len(st.Latencies), st.LatencyCount)
	}
	p0 := st.LatencyPercentile(0)
	p50 := st.LatencyPercentile(50)
	p100 := st.LatencyPercentile(100)
	if p0 > p50 || p50 > p100 {
		t.Errorf("percentiles not monotone: %d %d %d", p0, p50, p100)
	}
	if p100 != st.LatencyMax {
		t.Errorf("p100 = %d, max = %d", p100, st.LatencyMax)
	}
	// Sorted ascending?
	for i := 1; i < len(st.Latencies); i++ {
		if st.Latencies[i] < st.Latencies[i-1] {
			t.Fatal("latencies not sorted")
		}
	}
}

func TestLatencyPercentileEmpty(t *testing.T) {
	var st Stats
	if st.LatencyPercentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
}
