package wormhole

import (
	"fmt"
	"sort"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// NewAdaptive builds a simulator with per-hop adaptive output selection
// over a multi-candidate route set: at every switch the head flit picks
// among the flow's permitted next channels (the union of the set's path
// transitions) under Config.Adaptive — first-free or least-congested —
// and the worm's body follows the committed choice. The decision
// procedure is seeded and deterministic: candidate lists are sorted,
// ties break to the lowest channel, and the only randomness is the
// injection process already driven by Config.Seed.
//
// The set must be valid for (top, g) — every flow has at least one path,
// all over provisioned, non-faulted channels (see route.RouteSet
// Validate). Worms cannot wander: every permitted transition comes from
// some src→dst path of the set, and once the set's union CDG is acyclic
// (post-removal) the per-flow transition graph is a DAG, so any walk the
// selector takes terminates at the destination.
//
// Config.Reference is incompatible with adaptive selection — the seed
// engine predates multi-candidate routing.
func NewAdaptive(top *topology.Topology, g *traffic.Graph, set *route.RouteSet, cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if cfg.Reference {
		return nil, fmt.Errorf("wormhole: Reference arbitration does not support adaptive routing")
	}
	if err := set.Validate(top, g); err != nil {
		return nil, err
	}
	s, maxBW, err := newSkeleton(top, g, cfg)
	if err != nil {
		return nil, err
	}
	s.adaptive = true
	if cfg.Adaptive == LeastCongested {
		s.linkOcc = make([]int32, top.NumLinks())
	}
	for _, f := range g.Flows() {
		paths := set.Paths(f.ID)
		fs := flowState{
			id:       f.ID,
			probBits: uint64(cfg.LoadFactor * f.Bandwidth / maxBW * (1 << 63)),
			bw:       f.Bandwidth,
			flits:    f.PacketFlits,
			adj:      make(map[int32][]int32),
			final:    make(map[int32]bool),
			local:    len(paths) == 1 && len(paths[0]) == 0,
		}
		firstSet := make(map[int32]bool)
		for _, p := range paths {
			if len(p) == 0 {
				if !fs.local {
					return nil, fmt.Errorf("wormhole: flow %d mixes local and fabric paths", f.ID)
				}
				continue
			}
			if len(p) > fs.maxLen {
				fs.maxLen = len(p)
			}
			idxs := make([]int32, len(p))
			for i, ch := range p {
				ci, ok := s.idx[ch]
				if !ok {
					return nil, fmt.Errorf("wormhole: flow %d uses unprovisioned channel %v", f.ID, ch)
				}
				idxs[i] = int32(ci)
			}
			firstSet[idxs[0]] = true
			fs.final[idxs[len(idxs)-1]] = true
			for i := 0; i+1 < len(idxs); i++ {
				fs.adj[idxs[i]] = appendUnique(fs.adj[idxs[i]], idxs[i+1])
			}
		}
		// A channel that ends some path cannot also continue another:
		// the head must know on entry whether the worm ejects there.
		for ci := range fs.final {
			if len(fs.adj[ci]) > 0 {
				return nil, fmt.Errorf("wormhole: flow %d channel %d is both final and transitive in its route set", f.ID, ci)
			}
		}
		fs.first = make([]int32, 0, len(firstSet))
		for ci := range firstSet {
			fs.first = append(fs.first, ci)
		}
		sort.Slice(fs.first, func(i, j int) bool { return fs.first[i] < fs.first[j] })
		for _, cands := range fs.adj {
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		}
		s.flows = append(s.flows, fs)
	}
	s.finishInit()
	return s, nil
}

func appendUnique(s []int32, v int32) []int32 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// chooseAdaptive picks the next channel for a head flit among the sorted
// candidates, honoring the configured selection policy; -1 means no
// candidate is admissible this cycle. Only free channels qualify (a head
// entering a channel its own packet already owns would fold the worm
// onto itself). An admissible channel's own buffer is necessarily empty,
// so LeastCongested measures congestion on the candidate's *physical
// link* — flits buffered across its other VCs, which compete for the
// same link bandwidth — and ties break to the lowest-ordered candidate.
func (s *Simulator) chooseAdaptive(cands []int32, fr flitRef) int {
	best, bestOcc := -1, int32(0)
	for _, nc := range cands {
		ni := int(nc)
		// admissible alone would admit a channel this worm already owns
		// (that allowance exists for body flits following their head); a
		// head re-entering its own channel would land behind its own
		// body, so adaptive choice is restricted to free channels.
		if s.chans[ni].owner != -1 || !s.admissible(ni, fr) {
			continue
		}
		if s.cfg.Adaptive == FirstFree {
			return ni
		}
		if occ := s.linkOcc[s.chanLink[ni]]; best == -1 || occ < bestOcc {
			best, bestOcc = ni, occ
		}
	}
	return best
}
