package wormhole

import (
	"context"
	"fmt"
	"sync"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Variant is one lane of a Batch: a (seed, load) instantiation of the
// shared design. Zero fields inherit the base Config (Seed, LoadFactor),
// so Variant{} is "the base run" and Variant{Seed: 7} is "the base run
// reseeded".
type Variant struct {
	// Seed drives the lane's injection process; 0 means the base
	// Config.Seed.
	Seed int64
	// Load is the lane's injection load factor in (0, 1]; 0 means the
	// base Config.LoadFactor.
	Load float64
}

// Batch steps N seed/load variants of one design. Construction work —
// channel indexing, route validation, dense route indices, adaptive
// transition tables, the reference engine's next-hop maps — happens once
// and is shared read-only across every lane; each lane owns only its
// mutable state (channel FIFOs carved from one contiguous per-lane flit
// block, source queues, packet freelist, worklists, RNG, stats).
//
// Variant isolation invariant: lanes share nothing mutable, so each
// lane's statistics are byte-identical to an independent Simulator built
// with the same (seed, load) config — the differential and fuzz tests
// pin this against New/NewAdaptive as the oracle. Arbitration stays
// deterministic per lane because every shared table is immutable and the
// only randomness is the lane's own splitmix64 stream.
//
// Concurrency contract: RunContext may fan lanes across goroutines, but
// a Batch itself is single-use and single-goroutine like Simulator.
type Batch struct {
	lanes    []*Simulator
	variants []Variant
}

// NewBatch builds a batch over the single-path (table-routed) engine:
// one lane per variant, all sharing the design built from (top, g, tab).
func NewBatch(top *topology.Topology, g *traffic.Graph, tab *route.Table, cfg Config, variants []Variant) (*Batch, error) {
	cfg = cfg.withDefaults()
	proto, err := New(top, g, tab, cfg)
	if err != nil {
		return nil, err
	}
	return newBatch(proto, cfg, variants)
}

// NewAdaptiveBatch builds a batch over the adaptive engine (see
// NewAdaptive): one lane per variant sharing the route set's transition
// tables.
func NewAdaptiveBatch(top *topology.Topology, g *traffic.Graph, set *route.RouteSet, cfg Config, variants []Variant) (*Batch, error) {
	cfg = cfg.withDefaults()
	proto, err := NewAdaptive(top, g, set, cfg)
	if err != nil {
		return nil, err
	}
	return newBatch(proto, cfg, variants)
}

// newBatch normalizes the variants against the (already defaulted) base
// config and carves one lane per variant off the prototype. The first
// variant that matches the base config gets the prototype itself, so a
// batch of one base variant is exactly the simulator New would have
// returned.
func newBatch(proto *Simulator, cfg Config, variants []Variant) (*Batch, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("wormhole: batch needs at least one variant: %w", nocerr.ErrInvalidInput)
	}
	b := &Batch{
		lanes:    make([]*Simulator, len(variants)),
		variants: make([]Variant, len(variants)),
	}
	protoUsed := false
	for i, v := range variants {
		if v.Seed == 0 {
			v.Seed = cfg.Seed
		}
		if v.Load == 0 {
			v.Load = cfg.LoadFactor
		}
		if v.Load < 0 || v.Load > 1 {
			return nil, fmt.Errorf("wormhole: variant %d load %f must be in (0,1]: %w", i, v.Load, nocerr.ErrInvalidInput)
		}
		b.variants[i] = v
		if !protoUsed && v.Seed == cfg.Seed && v.Load == cfg.LoadFactor {
			b.lanes[i] = proto
			protoUsed = true
			continue
		}
		laneCfg := cfg
		laneCfg.Seed = v.Seed
		laneCfg.LoadFactor = v.Load
		b.lanes[i] = proto.cloneVariant(laneCfg)
	}
	return b, nil
}

// Variants returns the normalized variants, lane-aligned with the slices
// Run/RunContext return.
func (b *Batch) Variants() []Variant { return b.variants }

// Len returns the number of lanes.
func (b *Batch) Len() int { return len(b.variants) }

// Run is RunContext without cancellation, on one goroutine.
func (b *Batch) Run() ([]*Stats, error) {
	return b.RunContext(context.Background(), 1)
}

// RunContext steps every lane to completion and returns per-lane stats,
// index-aligned with Variants. parallel > 1 partitions the lanes across
// min(parallel, len) goroutines; within each partition the lanes advance
// in coarse lockstep — laneBlock cycles per lane per round over the
// shared design tables. Each lane's outcome is independent of the
// partitioning and the block size (variant isolation invariant).
//
// On cancellation, finished lanes keep their stats, unfinished lanes are
// nil, and the returned error is the lowest-indexed unfinished lane's
// (wrapping nocerr.ErrCanceled and ctx.Err()).
func (b *Batch) RunContext(ctx context.Context, parallel int) ([]*Stats, error) {
	out := make([]*Stats, len(b.lanes))
	errs := make([]error, len(b.lanes))
	workers := parallel
	if workers > len(b.lanes) {
		workers = len(b.lanes)
	}
	if workers <= 1 {
		runLockstep(ctx, b.lanes, out, errs)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(b.lanes) / workers
			hi := (w + 1) * len(b.lanes) / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				runLockstep(ctx, b.lanes[lo:hi], out[lo:hi], errs[lo:hi])
			}(lo, hi)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// laneBlock is how many cycles a lane advances per lockstep round. Lanes
// are fully independent, so the block size only trades cancellation
// staleness against cache residency: a lane's mutable state (channel
// buffers, in-flight flits, RNG) stays resident for a whole block
// instead of being evicted by its neighbours every cycle, while the
// shared design tables are hot for the entire round. 1024 matches the
// single-run path's cancellation poll period.
const laneBlock = ctxCheckMask + 1

// runLockstep drives a slice of lanes through the RunContext protocol in
// coarse lockstep: each round advances every live lane by up to
// laneBlock cycles, then polls for cancellation. Per-lane results are
// identical under any scheduling (variant isolation), so the block size
// is purely a performance knob.
func runLockstep(ctx context.Context, lanes []*Simulator, out []*Stats, errs []error) {
	done := ctx.Done()
	runs := make([]laneRun, len(lanes))
	for i, s := range lanes {
		runs[i] = s.startRun()
	}
	live := len(lanes)
	for live > 0 {
		if done != nil {
			select {
			case <-done:
				for i := range runs {
					if !runs[i].done {
						errs[i] = fmt.Errorf("%w at cycle %d: %w", nocerr.ErrCanceled, lanes[i].now, ctx.Err())
					}
				}
				return
			default:
			}
		}
		for i := range runs {
			lr := &runs[i]
			if lr.done {
				continue
			}
			for c := 0; c < laneBlock; c++ {
				if !lr.stepOnce() {
					lr.done = true
					live--
					lanes[i].finishStats()
					st := lanes[i].Stats()
					out[i] = &st
					break
				}
			}
		}
	}
}

// cloneVariant carves a fresh lane off a just-constructed prototype:
// everything immutable — the channel index, dense per-channel metadata,
// per-flow routes, adaptive transition tables, the reference engine's
// next-hop maps — is shared by reference; everything the stepping loop
// mutates is allocated fresh. The lane's injection probabilities are
// recomputed with the exact float expression the constructors use, so a
// lane is byte-for-byte the simulator New/NewAdaptive would return for
// laneCfg.
func (s *Simulator) cloneVariant(cfg Config) *Simulator {
	n := len(s.chans)
	c := &Simulator{
		cfg:       cfg,
		adaptive:  s.adaptive,
		rngState:  uint64(cfg.Seed),
		idx:       s.idx,
		chans:     make([]chanState, n),
		flows:     make([]flowState, len(s.flows)),
		chanLink:  s.chanLink,
		chanVC:    s.chanVC,
		activePos: make([]int32, n),
		buckets:   make([][]cand, len(s.buckets)),
		linkRR:    make([]int, len(s.linkRR)),
		maxBW:     s.maxBW,
	}
	// One contiguous flit block per lane: the channel FIFOs — the hot
	// mutable state — are carved out of it so a lane's working set stays
	// cache-contiguous instead of scattered across n small allocations.
	block := make([]flitRef, n*cfg.BufferDepth)
	for i := range c.chans {
		c.chans[i] = chanState{
			buf:   block[i*cfg.BufferDepth : (i+1)*cfg.BufferDepth],
			owner: -1,
			// refHop is written only during construction; sharing it
			// read-only keeps the Reference path's per-flit lookup cost
			// identical per lane.
			refHop: s.chans[i].refHop,
		}
		c.activePos[i] = -1
	}
	if cfg.Reference {
		c.refPackets = make(map[int]*packet)
	}
	if s.linkOcc != nil {
		c.linkOcc = make([]int32, len(s.linkOcc))
	}
	c.stats.PerFlow = make([]FlowStats, len(s.stats.PerFlow))
	for i := range s.flows {
		fs := s.flows[i] // value copy shares routeCh/routeIdx/first/adj/final
		fs.queue = nil
		fs.qhead = 0
		fs.created = 0
		fs.curFirst = 0
		fs.probBits = uint64(cfg.LoadFactor * fs.bw / s.maxBW * (1 << 63))
		c.flows[i] = fs
	}
	c.finishInit()
	return c
}
