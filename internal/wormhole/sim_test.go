package wormhole

import (
	"testing"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// ringExample builds the paper's Figure 1 network: the cyclic-CDG ring
// with flows F1..F4, one core per switch.
func ringExample() (*topology.Topology, *traffic.Graph, *route.Table) {
	top := topology.New("figure1")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		top.AttachCore(i, sw)
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%4))
	}
	g := traffic.NewGraph("ring")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100) // F1 = L1,L2,L3
	g.MustAddFlow(2, 0, 100) // F2 = L3,L4
	g.MustAddFlow(3, 1, 100) // F3 = L4,L1
	g.MustAddFlow(0, 2, 100) // F4 = L1,L2
	ch := func(ids ...int) []topology.Channel {
		out := make([]topology.Channel, len(ids))
		for i, id := range ids {
			out[i] = topology.Chan(topology.LinkID(id), 0)
		}
		return out
	}
	tab := route.NewTable(4)
	tab.Set(0, ch(0, 1, 2))
	tab.Set(1, ch(2, 3))
	tab.Set(2, ch(3, 0))
	tab.Set(3, ch(0, 1))
	return top, g, tab
}

// lineExample builds an acyclic 3-switch line with one flow across it.
func lineExample(flits int) (*topology.Topology, *traffic.Graph, *route.Table) {
	top := topology.New("line")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	c := top.AddSwitch("")
	l0 := top.MustAddLink(a, b)
	l1 := top.MustAddLink(b, c)
	top.AttachCore(0, a)
	top.AttachCore(1, c)
	g := traffic.NewGraph("line")
	g.AddCore("")
	g.AddCore("")
	fid := g.MustAddFlow(0, 1, 100)
	g.SetPacketFlits(fid, flits)
	tab := route.NewTable(1)
	tab.Set(0, []topology.Channel{topology.Chan(l0, 0), topology.Chan(l1, 0)})
	return top, g, tab
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                                   // MaxCycles missing
		{MaxCycles: 100, LoadFactor: 2},      // load > 1
		{MaxCycles: 100, LoadFactor: -0.5},   // negative load
		{MaxCycles: 100, PacketsPerFlow: -1}, // negative budget
		{MaxCycles: 100, WarmupCycles: -1},   // negative warmup
	}
	for i, cfg := range cases {
		top, g, tab := lineExample(4)
		if _, err := New(top, g, tab, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestNewRejectsBadRoutes(t *testing.T) {
	top, g, _ := lineExample(4)
	missing := route.NewTable(1)
	if _, err := New(top, g, missing, Config{MaxCycles: 10}); err == nil {
		t.Error("missing route accepted")
	}
	bad := route.NewTable(1)
	bad.Set(0, []topology.Channel{topology.Chan(0, 5)})
	if _, err := New(top, g, bad, Config{MaxCycles: 10}); err == nil {
		t.Error("unprovisioned channel accepted")
	}
	dup := route.NewTable(1)
	dup.Set(0, []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0), topology.Chan(0, 0)})
	if _, err := New(top, g, dup, Config{MaxCycles: 10}); err == nil {
		t.Error("channel revisit accepted")
	}
}

func TestSinglePacketLatency(t *testing.T) {
	// One 4-flit packet over 2 hops: tail ejects at cycle
	// hops + flits - 1 = 5 (head: inject@0, hop@1, eject@2; one flit
	// drains per cycle after).
	top, g, tab := lineExample(4)
	sim, err := New(top, g, tab, Config{MaxCycles: 100, PacketsPerFlow: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drained {
		t.Fatalf("single packet did not drain: %+v", st)
	}
	if st.DeliveredPackets != 1 || st.DeliveredFlits != 4 {
		t.Errorf("delivered %d packets / %d flits", st.DeliveredPackets, st.DeliveredFlits)
	}
	if st.LatencyMax != 5 {
		t.Errorf("latency = %d, want 5 (2 hops + 4 flits - 1)", st.LatencyMax)
	}
	if st.AvgLatency() != 5 {
		t.Errorf("avg latency = %f, want 5", st.AvgLatency())
	}
}

func TestRingDeadlocksUnderSaturation(t *testing.T) {
	top, g, tab := ringExample()
	sim, err := New(top, g, tab, Config{
		MaxCycles:  20000,
		LoadFactor: 1.0,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Fatalf("cyclic-CDG ring did not deadlock at saturation: %+v", st)
	}
	if len(st.DeadlockPackets) < 2 {
		t.Errorf("wait-for cycle has %d packets, want >= 2", len(st.DeadlockPackets))
	}
	// Every packet on the cycle must hold at least one channel.
	for _, pid := range st.DeadlockPackets {
		if len(sim.HeldChannels(pid)) == 0 {
			t.Errorf("deadlocked packet %d holds no channel", pid)
		}
	}
}

func TestRemovalEliminatesDeadlock(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles:  20000,
		LoadFactor: 1.0,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("deadlock after removal at cycle %d (packets %v)",
			st.DeadlockCycle, st.DeadlockPackets)
	}
	if st.DeliveredPackets == 0 {
		t.Error("nothing delivered at saturation")
	}
}

func TestOrderingEliminatesDeadlock(t *testing.T) {
	top, g, tab := ringExample()
	res, err := ordering.Apply(top, tab, ordering.HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles:  20000,
		LoadFactor: 1.0,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatal("deadlock after resource ordering")
	}
}

func TestRemovedRingDrainsFiniteWorkload(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles:      200000,
		PacketsPerFlow: 50,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drained {
		t.Fatalf("finite workload did not drain: %+v", st)
	}
	if st.DeliveredPackets != 4*50 {
		t.Errorf("delivered %d packets, want 200", st.DeliveredPackets)
	}
	if st.InjectedFlits != st.DeliveredFlits {
		t.Errorf("flits injected %d != delivered %d", st.InjectedFlits, st.DeliveredFlits)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		top, g, tab := ringExample()
		res, err := core.Remove(top, tab, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(res.Topology, g, res.Routes, Config{
			MaxCycles:  5000,
			LoadFactor: 0.5,
			Seed:       42,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	a, b := run(), run()
	if !statsEqual(a, b) {
		t.Errorf("nondeterministic simulation:\n%+v\n%+v", a, b)
	}
}

func statsEqual(a, b Stats) bool {
	return a.Cycles == b.Cycles &&
		a.InjectedPackets == b.InjectedPackets &&
		a.DeliveredPackets == b.DeliveredPackets &&
		a.InjectedFlits == b.InjectedFlits &&
		a.DeliveredFlits == b.DeliveredFlits &&
		a.LatencySum == b.LatencySum &&
		a.LatencyMax == b.LatencyMax &&
		a.Deadlocked == b.Deadlocked &&
		a.DeadlockCycle == b.DeadlockCycle
}

func TestLocalFlowsBypassFabric(t *testing.T) {
	top := topology.New("t")
	sw := top.AddSwitch("")
	top.AttachCore(0, sw)
	top.AttachCore(1, sw)
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 10)
	tab := route.NewTable(1)
	tab.Set(0, nil)
	sim, err := New(top, g, tab, Config{MaxCycles: 100, PacketsPerFlow: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalPackets != 5 {
		t.Errorf("LocalPackets = %d, want 5", st.LocalPackets)
	}
	if st.InjectedPackets != 0 || st.Deadlocked {
		t.Errorf("local traffic entered the fabric: %+v", st)
	}
	if !st.Drained {
		t.Error("local workload did not drain")
	}
}

func TestBackpressureWithTinyBuffers(t *testing.T) {
	// Depth-1 buffers and a 16-flit packet: the worm spans the whole
	// line; everything must still drain on an acyclic route.
	top, g, tab := lineExample(16)
	sim, err := New(top, g, tab, Config{
		MaxCycles:      10000,
		PacketsPerFlow: 3,
		BufferDepth:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drained || st.Deadlocked {
		t.Fatalf("acyclic line stalled with tiny buffers: %+v", st)
	}
	if st.DeliveredFlits != 3*16 {
		t.Errorf("delivered %d flits, want 48", st.DeliveredFlits)
	}
}

// TestWormholeInvariants steps a saturated ring and checks the channel
// ownership invariants every cycle until the deadlock (or horizon).
func TestWormholeInvariants(t *testing.T) {
	top, g, tab := ringExample()
	sim, err := New(top, g, tab, Config{MaxCycles: 3000, LoadFactor: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		sim.Step()
		for ci := range sim.chans {
			cs := &sim.chans[ci]
			if (cs.owner == -1) != (cs.n == 0) {
				t.Fatalf("cycle %d: channel %d owner/buffer invariant broken (owner %d, %d flits)",
					i, ci, cs.owner, cs.n)
			}
			if cs.n > sim.cfg.BufferDepth {
				t.Fatalf("cycle %d: channel %d overflows (%d flits)", i, ci, cs.n)
			}
			for k := 0; k < cs.n; k++ {
				fr := cs.buf[(cs.head+k)%len(cs.buf)]
				if fr.pkt.id != cs.owner {
					t.Fatalf("cycle %d: foreign flit (pkt %d) in channel %d owned by %d",
						i, fr.pkt.id, ci, cs.owner)
				}
			}
			// The active worklist must mirror buffer occupancy exactly.
			if inList := sim.activePos[ci] >= 0; inList != (cs.n > 0) {
				t.Fatalf("cycle %d: channel %d worklist membership %v with %d flits",
					i, ci, inList, cs.n)
			}
		}
	}
}

func TestPerFlowStats(t *testing.T) {
	top, g, tab := ringExample()
	res, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(res.Topology, g, res.Routes, Config{
		MaxCycles:      100000,
		PacketsPerFlow: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drained {
		t.Fatalf("workload did not drain: %+v", st)
	}
	if len(st.PerFlow) != g.NumFlows() {
		t.Fatalf("PerFlow has %d entries, want %d", len(st.PerFlow), g.NumFlows())
	}
	var delivered int64
	for i, f := range st.PerFlow {
		if f.Injected != 20 || f.Delivered != 20 {
			t.Errorf("flow %d: injected %d delivered %d, want 20/20", i, f.Injected, f.Delivered)
		}
		if f.AvgLatency() <= 0 {
			t.Errorf("flow %d: non-positive avg latency", i)
		}
		delivered += f.Delivered
	}
	if delivered != st.DeliveredPackets+st.LocalPackets {
		t.Errorf("per-flow delivered %d != total %d", delivered, st.DeliveredPackets+st.LocalPackets)
	}
	var zero FlowStats
	if zero.AvgLatency() != 0 {
		t.Error("zero FlowStats latency not 0")
	}
}

func TestStatsHelpers(t *testing.T) {
	var st Stats
	if st.AvgLatency() != 0 || st.ThroughputFlitsPerCycle() != 0 {
		t.Error("zero-value stats helpers must return 0")
	}
	st = Stats{LatencyCount: 2, LatencySum: 10, Cycles: 4, DeliveredFlits: 8}
	if st.AvgLatency() != 5 || st.ThroughputFlitsPerCycle() != 2 {
		t.Error("stats helpers wrong")
	}
}

func TestHigherLoadHigherLatencyOnSharedLink(t *testing.T) {
	// Two flows share one link; at higher load the average latency must
	// not drop (sanity of the congestion model).
	build := func(load float64) *Stats {
		top := topology.New("t")
		a := top.AddSwitch("")
		b := top.AddSwitch("")
		l0 := top.MustAddLink(a, b)
		top.AttachCore(0, a)
		top.AttachCore(1, b)
		top.AttachCore(2, a)
		top.AttachCore(3, b)
		g := traffic.NewGraph("t")
		for i := 0; i < 4; i++ {
			g.AddCore("")
		}
		g.MustAddFlow(0, 1, 100)
		g.MustAddFlow(2, 3, 100)
		tab := route.NewTable(2)
		tab.Set(0, []topology.Channel{topology.Chan(l0, 0)})
		top.AddVC(l0)
		tab.Set(1, []topology.Channel{topology.Chan(l0, 1)})
		sim, err := New(top, g, tab, Config{MaxCycles: 20000, LoadFactor: load, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	low := build(0.1)
	high := build(0.9)
	if high.AvgLatency() < low.AvgLatency() {
		t.Errorf("latency fell with load: %.2f @0.1 vs %.2f @0.9",
			low.AvgLatency(), high.AvgLatency())
	}
	if high.Deadlocked || low.Deadlocked {
		t.Error("acyclic two-VC link deadlocked")
	}
}
