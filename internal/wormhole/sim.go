package wormhole

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// packet is one in-flight wormhole packet.
type packet struct {
	id      int
	flow    int
	flits   int // total length
	created int64

	injected int // flits that have left the source queue (0..flits)
	ejected  int // flits that have left the network at the destination
}

// chanState is the runtime state of one channel: its downstream FIFO and
// owning packet. Invariant: the buffer holds only the owner's flits, and
// owner == -1 exactly when the buffer is empty and no worm spans the
// channel.
type chanState struct {
	ch    topology.Channel
	hop   map[int]int // flowID → hop index of this channel in the flow's route
	buf   []flitRef
	owner int // packet ID, -1 if free
}

type flitRef struct {
	pkt    int
	isHead bool
	isTail bool
}

// flowState tracks a flow's injection side.
type flowState struct {
	id      int
	routeCh []topology.Channel
	prob    float64 // per-cycle packet creation probability
	queue   []*packet
	created int // packets created so far (for PacketsPerFlow budgeting)
}

// Simulator runs a wormhole NoC. Create with New, advance with Step or
// Run. A Simulator is single-goroutine; wrap it if you need concurrency.
type Simulator struct {
	cfg     Config
	top     *topology.Topology
	g       *traffic.Graph
	tab     *route.Table
	rng     *rand.Rand
	idx     map[topology.Channel]int
	chans   []chanState
	linkRR  map[topology.LinkID]int
	flows   []flowState
	packets map[int]*packet
	nextPkt int

	now          int64
	lastProgress int64
	stats        Stats
	rec          *recovery // in-flight DISHA-style recovery, if any
}

// New builds a simulator for a routed workload. Every flow must have a
// route whose channels are provisioned in the topology.
func New(top *topology.Topology, g *traffic.Graph, tab *route.Table, cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:     cfg,
		top:     top,
		g:       g,
		tab:     tab,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		idx:     make(map[topology.Channel]int),
		linkRR:  make(map[topology.LinkID]int),
		packets: make(map[int]*packet),
	}
	for i, ch := range top.Channels() {
		s.idx[ch] = i
		s.chans = append(s.chans, chanState{ch: ch, hop: map[int]int{}, owner: -1})
	}

	s.stats.PerFlow = make([]FlowStats, g.NumFlows())
	maxBW := 0.0
	for _, f := range g.Flows() {
		if f.Bandwidth > maxBW {
			maxBW = f.Bandwidth
		}
	}
	if maxBW == 0 {
		maxBW = 1
	}
	for _, f := range g.Flows() {
		r := tab.Route(f.ID)
		if r == nil {
			return nil, fmt.Errorf("wormhole: flow %d has no route", f.ID)
		}
		fs := flowState{
			id:      f.ID,
			routeCh: r.Channels,
			prob:    cfg.LoadFactor * f.Bandwidth / maxBW,
		}
		for hopIdx, ch := range r.Channels {
			ci, ok := s.idx[ch]
			if !ok {
				return nil, fmt.Errorf("wormhole: flow %d uses unprovisioned channel %v", f.ID, ch)
			}
			if _, dup := s.chans[ci].hop[f.ID]; dup {
				return nil, fmt.Errorf("wormhole: flow %d visits channel %v twice", f.ID, ch)
			}
			s.chans[ci].hop[f.ID] = hopIdx
		}
		s.flows = append(s.flows, fs)
	}
	return s, nil
}

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.now }

// Stats returns a snapshot of the statistics so far.
func (s *Simulator) Stats() Stats {
	st := s.stats
	st.Cycles = s.now
	return st
}

// move describes one flit transmission decided this cycle.
type move struct {
	// src: source buffer channel index, or -1 for injection from flow fl.
	src int
	fl  int
	// dst: destination channel index, or -1 for ejection.
	dst int
}

// Step advances the simulation by one cycle and reports whether anything
// moved. The order within a cycle is: recovery completion, packet
// creation, move arbitration against start-of-cycle state, move
// application, progress bookkeeping.
func (s *Simulator) Step() bool {
	s.stepRecovery()
	s.createPackets()
	moves := s.arbitrate()
	for _, m := range moves {
		s.apply(m)
	}
	progressed := len(moves) > 0
	if progressed || !s.flitsInFlight() || s.rec != nil {
		// An in-flight recovery counts as progress: its lane delivers
		// flits the normal switch fabric cannot see.
		s.lastProgress = s.now
	}
	s.now++
	return progressed
}

// createPackets draws new packets for each flow per the injection process.
func (s *Simulator) createPackets() {
	for i := range s.flows {
		fs := &s.flows[i]
		if s.cfg.PacketsPerFlow > 0 {
			// Drain mode: deterministic injection that keeps the source
			// queue primed until the budget is spent.
			if fs.created >= s.cfg.PacketsPerFlow || len(fs.queue) >= 2 {
				continue
			}
		} else if s.rng.Float64() >= fs.prob {
			continue
		}
		f := s.g.Flow(fs.id)
		p := &packet{
			id:      s.nextPkt,
			flow:    fs.id,
			flits:   f.PacketFlits,
			created: s.now,
		}
		s.nextPkt++
		fs.created++
		s.stats.PerFlow[fs.id].Injected++
		if len(fs.routeCh) == 0 {
			// Local (same-switch) delivery bypasses the fabric.
			s.stats.LocalPackets++
			s.recordDelivery(p)
			continue
		}
		s.packets[p.id] = p
		fs.queue = append(fs.queue, p)
		s.stats.InjectedPackets++
	}
}

// arbitrate collects at most one move per physical link plus unlimited
// ejections, all judged against start-of-cycle state.
func (s *Simulator) arbitrate() []move {
	var moves []move
	// Ejections first: final-hop buffers always drain one flit.
	for ci := range s.chans {
		cs := &s.chans[ci]
		if len(cs.buf) == 0 {
			continue
		}
		front := cs.buf[0]
		p := s.packets[front.pkt]
		hop := cs.hop[p.flow]
		if hop == len(s.flows[p.flow].routeCh)-1 {
			moves = append(moves, move{src: ci, fl: p.flow, dst: -1})
		}
	}

	// Link transfers: gather candidates per link, pick one round-robin.
	byLink := make(map[topology.LinkID][]cand)
	// Buffer-to-buffer candidates.
	for ci := range s.chans {
		cs := &s.chans[ci]
		if len(cs.buf) == 0 {
			continue
		}
		front := cs.buf[0]
		p := s.packets[front.pkt]
		rt := s.flows[p.flow].routeCh
		hop := cs.hop[p.flow]
		if hop == len(rt)-1 {
			continue // ejection, handled above
		}
		next := rt[hop+1]
		ni := s.idx[next]
		if !s.admissible(ni, front) {
			continue
		}
		byLink[next.Link] = append(byLink[next.Link], cand{
			m:   move{src: ci, fl: p.flow, dst: ni},
			key: next.VC*2 + 0,
		})
	}
	// Injection candidates.
	for i := range s.flows {
		fs := &s.flows[i]
		if len(fs.queue) == 0 {
			continue
		}
		p := fs.queue[0]
		first := fs.routeCh[0]
		ni := s.idx[first]
		fr := flitRef{pkt: p.id, isHead: p.injected == 0, isTail: p.injected == p.flits-1}
		if !s.admissible(ni, fr) {
			continue
		}
		byLink[first.Link] = append(byLink[first.Link], cand{
			m:   move{src: -1, fl: fs.id, dst: ni},
			key: first.VC*2 + 1,
		})
	}
	// Iterate links in ID order so the cycle outcome is independent of
	// map iteration order.
	links := make([]topology.LinkID, 0, len(byLink))
	for link := range byLink {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, link := range links {
		cands := byLink[link]
		if len(cands) == 1 {
			moves = append(moves, cands[0].m)
			continue
		}
		// Deterministic round-robin: sort by key (VC, kind) then rotate.
		sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
		pick := s.linkRR[link] % len(cands)
		s.linkRR[link]++
		moves = append(moves, cands[pick].m)
	}
	return moves
}

// cand is a link-transfer candidate with a deterministic ordering key.
type cand struct {
	m   move
	key int
}

// admissible reports whether flit fr may enter channel ci this cycle
// (ownership and buffer space against start-of-cycle state).
func (s *Simulator) admissible(ci int, fr flitRef) bool {
	cs := &s.chans[ci]
	if len(cs.buf) >= s.cfg.BufferDepth {
		return false
	}
	if cs.owner == fr.pkt {
		return true
	}
	return cs.owner == -1 && fr.isHead
}

// apply executes one move decided by arbitrate.
func (s *Simulator) apply(m move) {
	if m.dst == -1 {
		// Ejection.
		cs := &s.chans[m.src]
		fr := cs.buf[0]
		cs.buf = cs.buf[1:]
		p := s.packets[fr.pkt]
		p.ejected++
		s.stats.DeliveredFlits++
		if fr.isTail {
			cs.owner = -1
			s.recordDelivery(p)
			delete(s.packets, p.id)
			s.stats.DeliveredPackets++
		}
		return
	}
	var fr flitRef
	if m.src == -1 {
		// Injection: consume the next flit of the flow's head packet.
		fs := &s.flows[m.fl]
		p := fs.queue[0]
		fr = flitRef{pkt: p.id, isHead: p.injected == 0, isTail: p.injected == p.flits-1}
		p.injected++
		s.stats.InjectedFlits++
		if fr.isTail {
			fs.queue = fs.queue[1:]
		}
	} else {
		src := &s.chans[m.src]
		fr = src.buf[0]
		src.buf = src.buf[1:]
		if fr.isTail {
			src.owner = -1
		}
	}
	dst := &s.chans[m.dst]
	if fr.isHead {
		dst.owner = fr.pkt
	}
	dst.buf = append(dst.buf, fr)
}

func (s *Simulator) recordDelivery(p *packet) {
	fs := &s.stats.PerFlow[p.flow]
	fs.Delivered++
	if p.created >= s.cfg.WarmupCycles {
		lat := s.now - p.created
		s.stats.LatencyCount++
		s.stats.LatencySum += lat
		if lat > s.stats.LatencyMax {
			s.stats.LatencyMax = lat
		}
		fs.LatencySum += lat
		fs.LatencyN++
		if s.cfg.CollectLatencies {
			s.stats.Latencies = append(s.stats.Latencies, lat)
		}
	}
}

// flitsInFlight reports whether any channel buffer holds flits.
func (s *Simulator) flitsInFlight() bool {
	for ci := range s.chans {
		if len(s.chans[ci].buf) > 0 {
			return true
		}
	}
	return false
}

// drained reports whether drain mode has delivered every budgeted packet.
func (s *Simulator) drained() bool {
	if s.cfg.PacketsPerFlow <= 0 {
		return false
	}
	for i := range s.flows {
		if s.flows[i].created < s.cfg.PacketsPerFlow || len(s.flows[i].queue) > 0 {
			return false
		}
	}
	return len(s.packets) == 0
}

// Run advances the simulation until MaxCycles, a confirmed deadlock
// (unless recovery is enabled, which resolves deadlocks at runtime), or
// (in drain mode) full delivery, and returns the final statistics.
func (s *Simulator) Run() (*Stats, error) {
	for s.now < s.cfg.MaxCycles {
		s.Step()
		if s.now-s.lastProgress >= s.cfg.StallThreshold {
			if s.cfg.Recovery && s.tryRecover() {
				continue
			}
			pkts := s.confirmDeadlock()
			s.stats.Deadlocked = true
			s.stats.DeadlockCycle = s.now
			s.stats.DeadlockPackets = pkts
			break
		}
		if s.drained() {
			s.stats.Drained = true
			break
		}
	}
	s.finishStats()
	st := s.Stats()
	return &st, nil
}

func (s *Simulator) finishStats() {
	if s.cfg.CollectLatencies {
		sort.Slice(s.stats.Latencies, func(i, j int) bool {
			return s.stats.Latencies[i] < s.stats.Latencies[j]
		})
	}
}
