package wormhole

import (
	"context"
	"fmt"
	"sort"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// packet is one in-flight wormhole packet.
type packet struct {
	id      int
	flow    int
	flits   int // total length
	created int64

	injected int // flits that have left the source queue (0..flits)
	ejected  int // flits that have left the network at the destination
}

// flitRef carries the owning packet by pointer so the per-cycle hot loop
// never consults a lookup table to resolve a flit.
type flitRef struct {
	pkt    *packet
	isHead bool
	isTail bool
}

// adaptivePending marks a channel whose owning worm's head has not yet
// committed to a next channel — the adaptive engine re-evaluates the
// permitted candidates every cycle until one is admissible; the head's
// departure then freezes the choice so body flits follow it.
const adaptivePending = -2

// chanState is the runtime state of one channel: its downstream FIFO
// (a fixed-capacity ring over a preallocated slice) and owning packet.
// Invariant: the buffer holds only the owner's flits, and owner == -1
// exactly when the buffer is empty and no worm spans the channel.
type chanState struct {
	buf     []flitRef // ring storage, len == Config.BufferDepth
	head    int       // index of the front flit
	n       int       // occupied slots
	owner   int       // packet ID, -1 if free
	hop     int       // owner's hop index at this channel (valid while owner != -1)
	nextIdx int32     // owner's next channel index, -1 at the final hop, adaptivePending while undecided

	// refHop is the seed engine's flowID → hop-index table, built and
	// consulted only on the Reference path so the baseline pays the same
	// per-flit map lookups the original implementation did.
	refHop map[int]int
}

// front returns the flit at the head of the FIFO; the caller must have
// checked n > 0.
func (cs *chanState) front() flitRef { return cs.buf[cs.head] }

// flowState tracks a flow's injection side. The route is held twice: as
// channels (construction, diagnostics, the reference arbitration path)
// and as dense channel indices (the hot path).
type flowState struct {
	id       int
	routeCh  []topology.Channel
	routeIdx []int32
	probBits uint64    // per-cycle creation probability, scaled to [0, 2^63]
	bw       float64   // declared bandwidth, kept so lanes can rescale probBits per load
	flits    int       // packet length, hoisted out of the creation loop
	local    bool      // same-switch flow: packets bypass the fabric
	maxLen   int       // longest candidate path in hops (route length in table mode)
	queue    []*packet // pending packets; queue[qhead:] are live
	qhead    int       // consumed prefix, reclaimed when the queue empties
	created  int       // packets created so far (for PacketsPerFlow budgeting)

	// Adaptive-mode routing tables (nil in single-path mode): first are
	// the permitted injection channels, adj the permitted transitions out
	// of each channel, final the channels that end at the destination
	// switch. All candidate lists are deduplicated and sorted ascending,
	// so adaptive selection is deterministic.
	first []int32
	adj   map[int32][]int32
	final map[int32]bool
	// curFirst is the channel the currently-injecting packet's head chose;
	// body flits of the same packet must follow it. Valid while the front
	// packet is mid-injection.
	curFirst int32
}

// qlen returns the number of queued packets.
func (fs *flowState) qlen() int { return len(fs.queue) - fs.qhead }

// qfront returns the packet next to inject; the caller checks qlen > 0.
func (fs *flowState) qfront() *packet { return fs.queue[fs.qhead] }

// Simulator runs a wormhole NoC. Create with New, advance with Step or
// Run.
//
// Concurrency contract: a Simulator is single-goroutine — never share one
// across goroutines. The *inputs* however are only read, never written:
// New and every subsequent Step/Run treat the topology, traffic graph and
// route table as immutable, so any number of Simulators may share the
// same inputs from different goroutines (pinned by a -race test).
type Simulator struct {
	cfg      Config
	adaptive bool                     // NewAdaptive engine: per-hop output selection
	rngState uint64                   // splitmix64 state driving the injection process
	idx      map[topology.Channel]int // channel → dense index (construction + reference path)
	chans    []chanState
	flows    []flowState
	live     int       // packets currently in the fabric (injected, not yet delivered)
	free     []*packet // delivered packet structs, recycled by createPackets
	nextPkt  int

	// refPackets mirrors the seed engine's live-packet table, maintained
	// and consulted only on the Reference path (see Config.Reference).
	refPackets map[int]*packet

	// Dense per-channel metadata, indexed like chans.
	chanLink []int32 // physical link of each channel
	chanVC   []int32 // VC index of each channel
	// linkOcc counts flits buffered across all VCs of each link — the
	// LeastCongested congestion signal. It is allocated (and maintained)
	// only by NewAdaptive under that policy, so the single-path engine
	// and FirstFree runs pay nothing for it.
	linkOcc []int32

	// Per-step scratch, reused to keep the steady-state loop allocation-free.
	active    []int32  // channels with a non-empty buffer (the worklist)
	activePos []int32  // channel → position in active, -1 if absent
	ready     []int32  // flows with a non-empty source queue
	readyPos  []int32  // flow → position in ready, -1 if absent
	moves     []move   // this cycle's decided moves
	buckets   [][]cand // per-link transfer candidates
	touched   []int32  // links with candidates this cycle
	linkRR    []int    // per-link round-robin counters

	now          int64
	lastProgress int64
	stats        Stats
	rec          *recovery // in-flight DISHA-style recovery, if any

	// maxBW is the bandwidth normalizer probBits was scaled with, kept so
	// batch lanes recompute per-load probabilities with the exact same
	// float expression the constructor used (byte-identical injection).
	maxBW float64
}

// newSkeleton builds the per-channel state shared by both engines and
// returns the simulator plus the bandwidth normalizer for probBits.
func newSkeleton(top *topology.Topology, g *traffic.Graph, cfg Config) (*Simulator, float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	channels := top.Channels()
	s := &Simulator{
		cfg:       cfg,
		rngState:  uint64(cfg.Seed),
		idx:       make(map[topology.Channel]int, len(channels)),
		chans:     make([]chanState, len(channels)),
		chanLink:  make([]int32, len(channels)),
		chanVC:    make([]int32, len(channels)),
		activePos: make([]int32, len(channels)),
		buckets:   make([][]cand, top.NumLinks()),
		linkRR:    make([]int, top.NumLinks()),
	}
	for i, ch := range channels {
		s.idx[ch] = i
		s.chans[i] = chanState{buf: make([]flitRef, cfg.BufferDepth), owner: -1}
		s.chanLink[i] = int32(ch.Link)
		s.chanVC[i] = int32(ch.VC)
		s.activePos[i] = -1
		if cfg.Reference {
			s.chans[i].refHop = map[int]int{}
		}
	}
	if cfg.Reference {
		s.refPackets = make(map[int]*packet)
	}

	s.stats.PerFlow = make([]FlowStats, g.NumFlows())
	maxBW := 0.0
	for _, f := range g.Flows() {
		if f.Bandwidth > maxBW {
			maxBW = f.Bandwidth
		}
	}
	if maxBW == 0 {
		maxBW = 1
	}
	s.maxBW = maxBW
	return s, maxBW, nil
}

// finishInit sizes the ready worklist once the flow states exist.
func (s *Simulator) finishInit() {
	s.readyPos = make([]int32, len(s.flows))
	for i := range s.readyPos {
		s.readyPos[i] = -1
	}
}

// New builds a simulator for a routed workload. Every flow must have a
// route whose channels are provisioned (and not faulted) in the
// topology. The inputs are never mutated, neither here nor by Step/Run.
func New(top *topology.Topology, g *traffic.Graph, tab *route.Table, cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	s, maxBW, err := newSkeleton(top, g, cfg)
	if err != nil {
		return nil, err
	}
	for _, f := range g.Flows() {
		r := tab.Route(f.ID)
		if r == nil {
			return nil, fmt.Errorf("wormhole: flow %d has no route", f.ID)
		}
		fs := flowState{
			id:       f.ID,
			routeCh:  r.Channels,
			routeIdx: make([]int32, len(r.Channels)),
			probBits: uint64(cfg.LoadFactor * f.Bandwidth / maxBW * (1 << 63)),
			bw:       f.Bandwidth,
			flits:    f.PacketFlits,
			local:    len(r.Channels) == 0,
			maxLen:   len(r.Channels),
		}
		seen := make(map[int]bool, len(r.Channels))
		for hopIdx, ch := range r.Channels {
			ci, ok := s.idx[ch]
			if !ok {
				return nil, fmt.Errorf("wormhole: flow %d uses unprovisioned channel %v", f.ID, ch)
			}
			if top.FaultedChannel(ch) {
				return nil, fmt.Errorf("wormhole: flow %d routed over faulted link %d", f.ID, ch.Link)
			}
			if seen[ci] {
				return nil, fmt.Errorf("wormhole: flow %d visits channel %v twice", f.ID, ch)
			}
			seen[ci] = true
			fs.routeIdx[hopIdx] = int32(ci)
			if cfg.Reference {
				s.chans[ci].refHop[f.ID] = hopIdx
			}
		}
		s.flows = append(s.flows, fs)
	}
	s.finishInit()
	return s, nil
}

// enqueue appends a packet to flow fi's source queue, maintaining the
// ready worklist.
func (s *Simulator) enqueue(fi int, p *packet) {
	fs := &s.flows[fi]
	if fs.qlen() == 0 {
		// Reclaim the consumed prefix so steady-state queue storage is
		// reused instead of creeping through fresh allocations.
		fs.queue = fs.queue[:0]
		fs.qhead = 0
		s.readyPos[fi] = int32(len(s.ready))
		s.ready = append(s.ready, int32(fi))
	}
	fs.queue = append(fs.queue, p)
}

// dequeue removes flow fi's front packet, maintaining the ready worklist.
func (s *Simulator) dequeue(fi int) {
	fs := &s.flows[fi]
	fs.queue[fs.qhead] = nil
	fs.qhead++
	if fs.qhead >= 16 {
		// Compact in place so a queue that never fully drains (sustained
		// load) still keeps its backing array bounded at O(cap + 16)
		// instead of growing one slot per delivered packet.
		n := copy(fs.queue, fs.queue[fs.qhead:])
		clear(fs.queue[n:])
		fs.queue = fs.queue[:n]
		fs.qhead = 0
	}
	if fs.qlen() == 0 {
		pos := s.readyPos[fi]
		last := s.ready[len(s.ready)-1]
		s.ready[pos] = last
		s.readyPos[last] = pos
		s.ready = s.ready[:len(s.ready)-1]
		s.readyPos[fi] = -1
	}
}

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.now }

// Stats returns a snapshot of the statistics so far.
func (s *Simulator) Stats() Stats {
	st := s.stats
	st.Cycles = s.now
	return st
}

// move describes one flit transmission decided this cycle.
type move struct {
	// src: source buffer channel index, or -1 for injection from flow fl.
	src int
	fl  int
	// dst: destination channel index, or -1 for ejection.
	dst int
}

// Step advances the simulation by one cycle and reports whether anything
// moved. The order within a cycle is: recovery completion, packet
// creation, move arbitration against start-of-cycle state, move
// application, progress bookkeeping.
func (s *Simulator) Step() bool {
	s.stepRecovery()
	s.createPackets()
	var moves []move
	if s.cfg.Reference {
		moves = s.arbitrateReference()
	} else {
		moves = s.arbitrate()
	}
	for _, m := range moves {
		s.apply(m)
	}
	progressed := len(moves) > 0
	if progressed || !s.flitsInFlight() || s.rec != nil {
		// An in-flight recovery counts as progress: its lane delivers
		// flits the normal switch fabric cannot see.
		s.lastProgress = s.now
	}
	s.now++
	return progressed
}

// createPackets draws new packets for each flow per the injection process.
func (s *Simulator) createPackets() {
	for i := range s.flows {
		fs := &s.flows[i]
		if s.cfg.PacketsPerFlow > 0 {
			// Drain mode: deterministic injection that keeps the source
			// queue primed until the budget is spent.
			if fs.created >= s.cfg.PacketsPerFlow || fs.qlen() >= 2 {
				continue
			}
		} else if fs.qlen() >= s.cfg.SourceQueueCap {
			// Source back-pressure: offered load beyond the queue cap is
			// shed, keeping saturation runs in bounded memory.
			continue
		} else if s.nextRand()>>1 >= fs.probBits {
			continue
		}
		p := s.newPacket()
		*p = packet{
			id:      s.nextPkt,
			flow:    fs.id,
			flits:   fs.flits,
			created: s.now,
		}
		s.nextPkt++
		fs.created++
		s.stats.PerFlow[fs.id].Injected++
		if fs.local {
			// Local (same-switch) delivery bypasses the fabric. It counts
			// as delivered but contributes no latency sample: local
			// latency is zero by construction, and letting it into the
			// statistics would drown the fabric percentiles at low switch
			// counts.
			s.stats.LocalPackets++
			s.stats.PerFlow[fs.id].Delivered++
			s.freePacket(p)
			continue
		}
		s.live++
		if s.refPackets != nil {
			s.refPackets[p.id] = p
		}
		s.enqueue(i, p)
		s.stats.InjectedPackets++
	}
}

// nextRand draws the next value of the seeded injection process. It is a
// splitmix64 step — a few arithmetic ops, no locking, no pointer chasing —
// because at low loads the per-flow Bernoulli draws are a measurable share
// of the whole cycle. The Bernoulli test compares the top 63 bits against
// the flow's scaled probability, so probability 1 always fires.
func (s *Simulator) nextRand() uint64 {
	s.rngState += 0x9e3779b97f4a7c15
	z := s.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newPacket takes a packet struct off the free list, or allocates one.
func (s *Simulator) newPacket() *packet {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		return p
	}
	return new(packet)
}

// freePacket recycles a delivered packet. The caller must guarantee no
// flitRef or queue slot still points at it.
func (s *Simulator) freePacket(p *packet) {
	s.free = append(s.free, p)
}

// push appends a flit to channel ci's FIFO and maintains the active
// worklist. The caller must have established buffer space (admissible).
func (s *Simulator) push(ci int, fr flitRef) {
	cs := &s.chans[ci]
	if cs.n == 0 {
		s.activePos[ci] = int32(len(s.active))
		s.active = append(s.active, int32(ci))
	}
	pos := cs.head + cs.n
	if pos >= len(cs.buf) {
		pos -= len(cs.buf)
	}
	cs.buf[pos] = fr
	cs.n++
	if s.linkOcc != nil {
		s.linkOcc[s.chanLink[ci]]++
	}
}

// pop removes and returns channel ci's front flit, maintaining the
// worklist.
func (s *Simulator) pop(ci int) flitRef {
	cs := &s.chans[ci]
	fr := cs.buf[cs.head]
	cs.buf[cs.head] = flitRef{}
	cs.head++
	if cs.head == len(cs.buf) {
		cs.head = 0
	}
	cs.n--
	if s.linkOcc != nil {
		s.linkOcc[s.chanLink[ci]]--
	}
	if cs.n == 0 {
		s.deactivate(ci)
	}
	return fr
}

// clearChannel empties channel ci outright (recovery pulling a worm out of
// the network) and returns how many flits were discarded.
func (s *Simulator) clearChannel(ci int) int {
	cs := &s.chans[ci]
	n := cs.n
	if n > 0 {
		for i := range cs.buf {
			cs.buf[i] = flitRef{}
		}
		if s.linkOcc != nil {
			s.linkOcc[s.chanLink[ci]] -= int32(n)
		}
		s.deactivate(ci)
	}
	cs.head, cs.n = 0, 0
	cs.owner = -1
	return n
}

// deactivate removes channel ci from the active worklist (swap-remove).
func (s *Simulator) deactivate(ci int) {
	pos := s.activePos[ci]
	last := s.active[len(s.active)-1]
	s.active[pos] = last
	s.activePos[last] = pos
	s.active = s.active[:len(s.active)-1]
	s.activePos[ci] = -1
}

// cand is a link-transfer candidate. The key totally orders candidates on
// a link — (destination VC, kind, source ordinal) packed into one int64 —
// so the round-robin pick is a pure function of the candidate *set*, never
// of discovery order. Kind 0 is a buffer-to-buffer transfer, kind 1 an
// injection; the source ordinal is the source channel index for transfers
// and numChannels+flowID for injections.
type cand struct {
	m   move
	key int64
}

func candKey(vc int32, kind, src int) int64 {
	return int64(int(vc)*2+kind)<<32 | int64(src)
}

// arbitrate collects at most one move per physical link plus unlimited
// ejections, all judged against start-of-cycle state. It walks only the
// active worklist — idle channels cost nothing — and uses the dense
// per-flow route indices, so the steady-state cycle does no map lookups
// and no allocation.
func (s *Simulator) arbitrate() []move {
	moves := s.moves[:0]
	s.touched = s.touched[:0]
	// One pass over occupied channels yields both ejections (final-hop
	// buffers always drain one flit) and transfer candidates. The owner's
	// next-hop channel is cached on the channel itself, so this loop
	// never touches flow state.
	for _, ci32 := range s.active {
		ci := int(ci32)
		cs := &s.chans[ci]
		if cs.nextIdx == -1 {
			moves = append(moves, move{src: ci, dst: -1})
			continue
		}
		fr := cs.front()
		var ni int
		if cs.nextIdx == adaptivePending {
			// Undecided adaptive head: FIFO order guarantees the front
			// flit is the head, so choose among the flow's permitted next
			// channels now; the choice only commits when the move lands.
			ni = s.chooseAdaptive(s.flows[fr.pkt.flow].adj[ci32], fr)
			if ni < 0 {
				continue
			}
		} else {
			ni = int(cs.nextIdx)
			if !s.admissible(ni, fr) {
				continue
			}
		}
		s.addCand(ni, cand{
			m:   move{src: ci, dst: ni},
			key: candKey(s.chanVC[ni], 0, ci),
		})
	}
	// Injection candidates, off the ready worklist. The admissibility
	// test is unrolled so a blocked flow (full or foreign-owned first
	// channel — the common case under load) bails before touching its
	// queue.
	depth := s.cfg.BufferDepth
	for _, fi := range s.ready {
		fs := &s.flows[fi]
		var ni int
		if s.adaptive {
			p := fs.qfront()
			if p.injected == 0 {
				// New head: adaptive choice among the permitted injection
				// channels.
				fr := flitRef{pkt: p, isHead: true, isTail: p.flits == 1}
				ni = s.chooseAdaptive(fs.first, fr)
				if ni < 0 {
					continue
				}
			} else {
				// Body flits follow the head's committed first channel.
				ni = int(fs.curFirst)
				cs := &s.chans[ni]
				if cs.n >= depth || cs.owner != p.id {
					continue
				}
			}
		} else {
			ni = int(fs.routeIdx[0])
			cs := &s.chans[ni]
			if cs.n >= depth {
				continue
			}
			p := fs.qfront()
			if cs.owner != p.id && (cs.owner != -1 || p.injected != 0) {
				continue
			}
		}
		s.addCand(ni, cand{
			m:   move{src: -1, fl: fs.id, dst: ni},
			key: candKey(s.chanVC[ni], 1, len(s.chans)+fs.id),
		})
	}
	// One winner per contended link. Winners on different links are
	// independent and the keys are unique, so the outcome does not depend
	// on the order links were touched in.
	for _, l := range s.touched {
		cands := s.buckets[l]
		pick := 0
		if len(cands) > 1 {
			sortCands(cands)
			pick = s.linkRR[l] % len(cands)
			s.linkRR[l]++
		}
		moves = append(moves, cands[pick].m)
		s.buckets[l] = cands[:0]
	}
	s.moves = moves
	return moves
}

// addCand buckets a transfer candidate by its destination's physical link.
func (s *Simulator) addCand(ni int, c cand) {
	l := s.chanLink[ni]
	if len(s.buckets[l]) == 0 {
		s.touched = append(s.touched, l)
	}
	s.buckets[l] = append(s.buckets[l], c)
}

// sortCands is an insertion sort: candidate lists are per-link and tiny,
// and this avoids sort.Slice's closure allocation on the hot path.
func sortCands(cands []cand) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].key < cands[j-1].key; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// arbitrateReference reproduces the seed engine's arbitration: a full scan
// over every channel (idle or not), flit resolution through the
// live-packet table, hop resolution through the per-channel flow→hop map,
// next-hop resolution through the channel→index map, and per-link
// candidate grouping in a freshly allocated map with an explicit link
// sort. It decides exactly the same moves as arbitrate — the differential
// tests pin that — and exists as the map-based baseline for
// BenchmarkSimStep and as the reference half of the two-paths-one-answer
// invariant.
func (s *Simulator) arbitrateReference() []move {
	var moves []move
	// Ejections first: final-hop buffers always drain one flit.
	for ci := range s.chans {
		cs := &s.chans[ci]
		if cs.n == 0 {
			continue
		}
		p := s.refPackets[cs.front().pkt.id]
		hop := cs.refHop[p.flow]
		if hop == len(s.flows[p.flow].routeCh)-1 {
			moves = append(moves, move{src: ci, dst: -1})
		}
	}
	// Link transfers: gather candidates per link, pick one round-robin.
	byLink := make(map[topology.LinkID][]cand)
	for ci := range s.chans {
		cs := &s.chans[ci]
		if cs.n == 0 {
			continue
		}
		fr := cs.front()
		p := s.refPackets[fr.pkt.id]
		rt := s.flows[p.flow].routeCh
		hop := cs.refHop[p.flow]
		if hop == len(rt)-1 {
			continue // ejection, handled above
		}
		next := rt[hop+1]
		ni := s.idx[next]
		if !s.admissible(ni, fr) {
			continue
		}
		byLink[next.Link] = append(byLink[next.Link], cand{
			m:   move{src: ci, dst: ni},
			key: candKey(int32(next.VC), 0, ci),
		})
	}
	// Injection candidates.
	for i := range s.flows {
		fs := &s.flows[i]
		if fs.qlen() == 0 {
			continue
		}
		p := fs.qfront()
		first := fs.routeCh[0]
		ni := s.idx[first]
		fr := flitRef{pkt: p, isHead: p.injected == 0, isTail: p.injected == p.flits-1}
		if !s.admissible(ni, fr) {
			continue
		}
		byLink[first.Link] = append(byLink[first.Link], cand{
			m:   move{src: -1, fl: fs.id, dst: ni},
			key: candKey(int32(first.VC), 1, len(s.chans)+fs.id),
		})
	}
	// Iterate links in ID order so the cycle outcome is independent of
	// map iteration order.
	links := make([]topology.LinkID, 0, len(byLink))
	for link := range byLink {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, link := range links {
		cands := byLink[link]
		pick := 0
		if len(cands) > 1 {
			sortCands(cands)
			pick = s.linkRR[link] % len(cands)
			s.linkRR[link]++
		}
		moves = append(moves, cands[pick].m)
	}
	return moves
}

// admissible reports whether flit fr may enter channel ci this cycle
// (ownership and buffer space against start-of-cycle state).
func (s *Simulator) admissible(ci int, fr flitRef) bool {
	cs := &s.chans[ci]
	if cs.n >= s.cfg.BufferDepth {
		return false
	}
	if cs.owner == fr.pkt.id {
		return true
	}
	return cs.owner == -1 && fr.isHead
}

// apply executes one move decided by arbitrate. Moves within a cycle
// commute: every source channel appears in at most one move, every
// destination channel gains at most one flit, and admissibility was
// judged against start-of-cycle state.
func (s *Simulator) apply(m move) {
	if m.dst == -1 {
		// Ejection.
		fr := s.pop(m.src)
		p := fr.pkt
		p.ejected++
		s.stats.DeliveredFlits++
		if fr.isTail {
			s.chans[m.src].owner = -1
			s.recordDelivery(p)
			s.live--
			s.stats.DeliveredPackets++
			if s.refPackets != nil {
				delete(s.refPackets, p.id)
			}
			s.freePacket(p)
		}
		return
	}
	var fr flitRef
	hop := 0
	if m.src == -1 {
		// Injection: consume the next flit of the flow's head packet.
		fs := &s.flows[m.fl]
		p := fs.qfront()
		fr = flitRef{pkt: p, isHead: p.injected == 0, isTail: p.injected == p.flits-1}
		p.injected++
		s.stats.InjectedFlits++
		if fr.isHead {
			// Commit the head's injection choice so body flits follow.
			fs.curFirst = int32(m.dst)
		}
		if fr.isTail {
			s.dequeue(m.fl)
		}
	} else {
		src := &s.chans[m.src]
		hop = src.hop + 1
		fr = s.pop(m.src)
		if fr.isHead && s.adaptive {
			// The head's departure freezes the adaptive choice for the
			// body flits still queued behind it in the source channel.
			src.nextIdx = int32(m.dst)
		}
		if fr.isTail {
			src.owner = -1
		}
	}
	dst := &s.chans[m.dst]
	if fr.isHead {
		dst.owner = fr.pkt.id
		dst.hop = hop
		if s.adaptive {
			fs := &s.flows[fr.pkt.flow]
			if fs.final[int32(m.dst)] {
				dst.nextIdx = -1
			} else {
				dst.nextIdx = adaptivePending
			}
		} else {
			ridx := s.flows[fr.pkt.flow].routeIdx
			if hop == len(ridx)-1 {
				dst.nextIdx = -1
			} else {
				dst.nextIdx = ridx[hop+1]
			}
		}
	}
	s.push(m.dst, fr)
}

func (s *Simulator) recordDelivery(p *packet) {
	fs := &s.stats.PerFlow[p.flow]
	fs.Delivered++
	if p.created >= s.cfg.WarmupCycles {
		lat := s.now - p.created
		s.stats.LatencyCount++
		s.stats.LatencySum += lat
		if lat > s.stats.LatencyMax {
			s.stats.LatencyMax = lat
		}
		fs.LatencySum += lat
		fs.LatencyN++
		if s.cfg.CollectLatencies {
			s.stats.Latencies = append(s.stats.Latencies, lat)
		}
	}
}

// flitsInFlight reports whether any channel buffer holds flits.
func (s *Simulator) flitsInFlight() bool {
	return len(s.active) > 0
}

// drained reports whether drain mode has delivered every budgeted packet.
func (s *Simulator) drained() bool {
	if s.cfg.PacketsPerFlow <= 0 {
		return false
	}
	for i := range s.flows {
		if s.flows[i].created < s.cfg.PacketsPerFlow || s.flows[i].qlen() > 0 {
			return false
		}
	}
	return s.live == 0
}

// Run advances the simulation until MaxCycles, a confirmed deadlock
// (unless recovery is enabled, which resolves deadlocks at runtime), or
// (in drain mode) full delivery, and returns the final statistics.
func (s *Simulator) Run() (*Stats, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask throttles the cooperative cancellation poll in the
// stepping loop: ctx.Done is consulted once every (mask+1) cycles so the
// per-cycle overhead is one integer AND on the hot path.
const ctxCheckMask = 1023

// RunContext is Run with cooperative cancellation and the epoch feed:
// the flit-stepping loop polls ctx every few hundred cycles and returns
// an error wrapping both nocerr.ErrCanceled and ctx.Err() when the
// context is done, and emits Config.OnEpoch snapshots every
// Config.EpochCycles cycles.
func (s *Simulator) RunContext(ctx context.Context) (*Stats, error) {
	done := ctx.Done()
	lr := s.startRun()
	for s.now < s.cfg.MaxCycles {
		if done != nil && s.now&ctxCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("%w at cycle %d: %w", nocerr.ErrCanceled, s.now, ctx.Err())
			default:
			}
		}
		if !lr.stepOnce() {
			break
		}
	}
	s.finishStats()
	st := s.Stats()
	return &st, nil
}

// laneRun is the incremental state RunContext keeps on the stack between
// cycles — the epoch schedule — factored out so the batch engine can
// drive many simulators through the exact same per-cycle protocol in
// lockstep. Any change to run semantics belongs in stepOnce, where both
// the single-variant and batch paths pick it up.
type laneRun struct {
	s         *Simulator
	nextEpoch int64
	done      bool
}

// startRun begins the RunContext protocol without stepping.
func (s *Simulator) startRun() laneRun {
	var nextEpoch int64 = -1
	if s.cfg.OnEpoch != nil && s.cfg.EpochCycles > 0 {
		nextEpoch = s.now + s.cfg.EpochCycles
	}
	return laneRun{s: s, nextEpoch: nextEpoch}
}

// stepOnce advances the run by one cycle: step, epoch emission, stall
// watchdog (recovery or deadlock confirmation), drain check. It returns
// false when the run is over — horizon reached, deadlock confirmed, or
// drained — after which the caller finalizes with finishStats/Stats.
func (lr *laneRun) stepOnce() bool {
	s := lr.s
	if s.now >= s.cfg.MaxCycles {
		return false
	}
	s.Step()
	if lr.nextEpoch >= 0 && s.now >= lr.nextEpoch {
		s.cfg.OnEpoch(EpochStats{
			Cycle:            s.now,
			InjectedPackets:  s.stats.InjectedPackets,
			DeliveredPackets: s.stats.DeliveredPackets,
			DeliveredFlits:   s.stats.DeliveredFlits,
			InFlight:         s.live,
		})
		lr.nextEpoch = s.now + s.cfg.EpochCycles
	}
	if s.now-s.lastProgress >= s.cfg.StallThreshold {
		if s.cfg.Recovery && s.tryRecover() {
			return true
		}
		pkts := s.confirmDeadlock()
		s.stats.Deadlocked = true
		s.stats.DeadlockCycle = s.now
		s.stats.DeadlockPackets = packetIDs(pkts)
		return false
	}
	if s.drained() {
		s.stats.Drained = true
		return false
	}
	return true
}

func (s *Simulator) finishStats() {
	if s.cfg.CollectLatencies {
		sort.Slice(s.stats.Latencies, func(i, j int) bool {
			return s.stats.Latencies[i] < s.stats.Latencies[j]
		})
	}
}
