// Package wormhole is a flit-level, cycle-based simulator of a wormhole
// flow-controlled NoC with virtual channels and static per-flow channel
// routes — the network model of the paper's Definition 3. It exists to
// demonstrate, not just assert, the paper's premise: a route configuration
// whose channel dependency graph is cyclic can deadlock under load, and
// the same workload runs to completion after the removal algorithm (or
// resource ordering) has broken every cycle.
//
// Model summary:
//
//   - Each channel (physical link + VC) has a FIFO flit buffer of
//     configurable depth at its downstream switch and is owned by at most
//     one packet at a time, from the cycle its head flit crosses the link
//     until its tail flit leaves the buffer (wormhole semantics: the worm
//     holds every channel it spans).
//   - A physical link transmits one flit per cycle, arbitrated round-robin
//     among the VCs (and injections) competing for it.
//   - A packet follows its flow's static route channel by channel; the
//     head flit acquires each channel, body flits follow in order, and
//     buffer space is granted against start-of-cycle occupancy
//     (credit-style, one-cycle turnaround).
//   - Ejection at the destination always drains one flit per cycle, so the
//     network sink never back-pressures — deadlocks that appear are pure
//     routing deadlocks, the kind the paper's algorithm removes.
//
// Deadlock detection is two-staged: a progress watchdog notices that no
// flit moved for StallThreshold cycles while flits are in flight, then a
// packet wait-for graph confirms the cyclic wait and reports the packets
// and channels involved.
package wormhole

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/nocerr"
)

// Config parameterizes a simulation. The zero value of every field except
// MaxCycles picks a sensible default.
type Config struct {
	// MaxCycles is the simulation horizon. Required, > 0.
	MaxCycles int64
	// BufferDepth is the per-VC buffer depth in flits. Default 4.
	BufferDepth int
	// LoadFactor scales injection: the heaviest flow attempts a new
	// packet each cycle with this probability, lighter flows
	// proportionally to their bandwidth. Default 0.1; values near 1
	// saturate the network (used to provoke deadlocks).
	LoadFactor float64
	// PacketsPerFlow, when > 0, switches to drain mode: each flow injects
	// exactly this many packets and the simulation ends when all are
	// delivered (or deadlock/MaxCycles strikes first).
	PacketsPerFlow int
	// StallThreshold is how many consecutive cycles without any flit
	// movement trigger deadlock confirmation. Default 256.
	StallThreshold int64
	// SourceQueueCap bounds each flow's source queue (packets created but
	// not yet fully injected) in probabilistic injection mode; a flow at
	// its cap skips creation until the queue drains below it. This keeps
	// saturation runs in bounded memory — offered load beyond the fabric's
	// capacity is shed at the source instead of accumulating as backlog.
	// Default 4. Drain mode (PacketsPerFlow > 0) uses its own priming
	// rule and ignores this.
	SourceQueueCap int
	// WarmupCycles excludes initial transients from latency statistics.
	// Default 0.
	WarmupCycles int64
	// Seed drives the injection process. Default 1.
	Seed int64
	// Recovery enables DISHA-style progressive deadlock recovery: instead
	// of stopping at a confirmed deadlock, one deadlocked packet at a time
	// is drained through a dedicated recovery lane (see recovery.go). The
	// run then never reports Deadlocked; it reports Recoveries instead.
	Recovery bool
	// CollectLatencies records every delivered packet's latency so the
	// Stats percentile helpers work (costs memory on long runs).
	CollectLatencies bool
	// EpochCycles, when > 0 together with OnEpoch, emits an EpochStats
	// snapshot every EpochCycles simulated cycles — the progress feed for
	// long runs. Default 0 (no epochs).
	EpochCycles int64
	// OnEpoch receives the periodic snapshots. It runs on the simulating
	// goroutine; a slow callback slows the simulation.
	OnEpoch func(EpochStats)
	// Reference selects the unoptimized arbitration path: a full scan
	// over every channel per cycle with map-based next-hop resolution and
	// per-link map grouping — the seed engine's cost profile. It decides
	// exactly the same moves as the default dense/worklist path (the
	// differential tests pin this) and exists as the baseline for
	// BenchmarkSimStep and as the reference half of the repo's
	// two-paths-one-answer invariant. Incompatible with NewAdaptive.
	Reference bool
	// Adaptive selects the per-hop output policy for simulators built
	// with NewAdaptive; it is ignored by the single-path engine.
	Adaptive AdaptiveSelection
}

// AdaptiveSelection is the per-hop output-selection policy of an adaptive
// simulator: how a head flit picks among its flow's permitted (and this
// cycle admissible) next channels. Both policies are deterministic given
// the seed: candidates are examined in ascending channel order, so the
// outcome is a pure function of the simulation state.
type AdaptiveSelection int

const (
	// FirstFree takes the lowest-ordered admissible candidate.
	FirstFree AdaptiveSelection = iota
	// LeastCongested takes the admissible candidate whose physical link
	// buffers the fewest flits across its VCs (an admissible channel's
	// own buffer is always empty; the other VCs of its link compete for
	// the same link bandwidth). Ties go to the lowest-ordered candidate.
	LeastCongested
)

// String returns the CLI spelling of the policy.
func (a AdaptiveSelection) String() string {
	if a == LeastCongested {
		return "least-congested"
	}
	return "first-free"
}

// ParseAdaptiveSelection resolves a CLI spelling; empty means FirstFree.
func ParseAdaptiveSelection(s string) (AdaptiveSelection, error) {
	switch s {
	case "", "first-free":
		return FirstFree, nil
	case "least-congested":
		return LeastCongested, nil
	}
	return 0, fmt.Errorf("wormhole: unknown adaptive selection %q (valid: first-free, least-congested): %w",
		s, nocerr.ErrInvalidInput)
}

func (c Config) withDefaults() Config {
	if c.BufferDepth == 0 {
		c.BufferDepth = 4
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 0.1
	}
	if c.StallThreshold == 0 {
		c.StallThreshold = 256
	}
	if c.SourceQueueCap == 0 {
		c.SourceQueueCap = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.MaxCycles <= 0 {
		return fmt.Errorf("wormhole: MaxCycles %d must be > 0", c.MaxCycles)
	}
	if c.BufferDepth < 1 {
		return fmt.Errorf("wormhole: BufferDepth %d must be >= 1", c.BufferDepth)
	}
	if c.LoadFactor < 0 || c.LoadFactor > 1 {
		return fmt.Errorf("wormhole: LoadFactor %f must be in [0,1]", c.LoadFactor)
	}
	if c.Adaptive != FirstFree && c.Adaptive != LeastCongested {
		return fmt.Errorf("wormhole: unknown AdaptiveSelection %d: %w", c.Adaptive, nocerr.ErrInvalidInput)
	}
	if c.StallThreshold < 1 {
		return fmt.Errorf("wormhole: StallThreshold %d must be >= 1", c.StallThreshold)
	}
	if c.PacketsPerFlow < 0 {
		return fmt.Errorf("wormhole: PacketsPerFlow %d must be >= 0", c.PacketsPerFlow)
	}
	if c.SourceQueueCap < 1 {
		return fmt.Errorf("wormhole: SourceQueueCap %d must be >= 1", c.SourceQueueCap)
	}
	if c.WarmupCycles < 0 {
		return fmt.Errorf("wormhole: WarmupCycles %d must be >= 0", c.WarmupCycles)
	}
	if c.EpochCycles < 0 {
		return fmt.Errorf("wormhole: EpochCycles %d must be >= 0", c.EpochCycles)
	}
	return nil
}

// EpochStats is one periodic progress snapshot of a running simulation
// (see Config.EpochCycles/OnEpoch): cumulative counters as of Cycle.
type EpochStats struct {
	Cycle            int64
	InjectedPackets  int64
	DeliveredPackets int64
	DeliveredFlits   int64
	// InFlight is the number of packets currently inside the fabric.
	InFlight int
}

// Stats is the outcome of a simulation run.
type Stats struct {
	Cycles int64

	InjectedPackets  int64
	DeliveredPackets int64
	InjectedFlits    int64
	DeliveredFlits   int64
	// LocalPackets counts same-switch deliveries that never enter the
	// switch fabric.
	LocalPackets int64

	// Latency statistics over fabric packets created after WarmupCycles
	// and delivered before the run ended. Local same-switch deliveries
	// are excluded: their latency is zero by construction and would
	// drown the fabric percentiles.
	LatencyCount int64
	LatencySum   int64
	LatencyMax   int64

	// Deadlock reporting.
	Deadlocked    bool
	DeadlockCycle int64
	// DeadlockPackets are the packet IDs on the confirmed cyclic wait
	// (empty if the watchdog fired but the wait-for graph was acyclic,
	// which indicates a simulator bug and is asserted against in tests).
	DeadlockPackets []int

	// Drained reports that drain mode delivered every injected packet.
	Drained bool

	// Recovery statistics (only non-zero with Config.Recovery).
	// Recoveries counts token grants; RecoveredPackets counts packets
	// delivered through the recovery lane.
	Recoveries       int64
	RecoveredPackets int64

	// Latencies holds every recorded packet latency (sorted ascending)
	// when Config.CollectLatencies is set.
	Latencies []int64

	// PerFlow holds per-flow delivery counters indexed by flow ID.
	PerFlow []FlowStats
}

// FlowStats is one flow's delivery record.
type FlowStats struct {
	Injected   int64 // packets that entered the fabric (or recovery lane)
	Delivered  int64 // packets fully delivered
	LatencySum int64 // summed latency of delivered packets (post warm-up)
	LatencyN   int64
}

// AvgLatency returns the flow's mean delivered-packet latency.
func (f FlowStats) AvgLatency() float64 {
	if f.LatencyN == 0 {
		return 0
	}
	return float64(f.LatencySum) / float64(f.LatencyN)
}

// AvgLatency returns the mean packet latency in cycles (0 if no samples).
func (s *Stats) AvgLatency() float64 {
	if s.LatencyCount == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.LatencyCount)
}

// ThroughputFlitsPerCycle returns delivered flits per elapsed cycle.
func (s *Stats) ThroughputFlitsPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.DeliveredFlits) / float64(s.Cycles)
}

// LatencyPercentile returns the p-th percentile latency (p in [0,100])
// from the collected samples, or 0 if CollectLatencies was off or no
// packet was delivered.
func (s *Stats) LatencyPercentile(p float64) int64 {
	if len(s.Latencies) == 0 {
		return 0
	}
	if p <= 0 {
		return s.Latencies[0]
	}
	if p >= 100 {
		return s.Latencies[len(s.Latencies)-1]
	}
	idx := int(p / 100 * float64(len(s.Latencies)-1))
	return s.Latencies[idx]
}
