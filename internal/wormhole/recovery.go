package wormhole

// DISHA-style progressive deadlock recovery (Anjan & Pinkston), the
// scheme the paper's *static* method is the design-time alternative to.
// Instead of provisioning VCs so deadlock cannot form, a recovery-enabled
// router lets deadlocks happen, detects them, and drains one deadlocked
// packet at a time through a dedicated deadlock-free recovery lane
// guarded by a network-wide token.
//
// The model here abstracts the recovery lane's microarchitecture: when
// the detector confirms a cyclic wait, the token is granted to the
// lowest-numbered packet on the cycle, the packet's held channels are
// released (its worm is pulled out of the normal network), and it is
// delivered after the time its remaining flits need to cross its
// remaining hops one flit per cycle through the lane — the same
// first-order timing a real one-flit-per-router recovery path gives.
// Only one packet recovers at a time, exactly like the DISHA token.

// recovery tracks the in-flight recovery, if any.
type recovery struct {
	pkt     *packet
	deliver int64 // cycle at which the packet completes
}

// tryRecover is called when the progress watchdog fires with recovery
// enabled. It confirms the deadlock, grants the token to one packet and
// schedules its lane delivery. It reports whether a recovery started.
func (s *Simulator) tryRecover() bool {
	if s.rec != nil {
		// Token busy: the network is stalled behind an in-flight
		// recovery; nothing to do until it completes.
		return false
	}
	cyc := s.confirmDeadlock()
	if len(cyc) == 0 {
		return false
	}
	p := cyc[0] // lowest ID: the deterministic token grant
	// Pull the worm out of the normal network, freeing its channels.
	for ci := range s.chans {
		if s.chans[ci].owner != p.id {
			continue
		}
		s.clearChannel(ci)
	}
	// Flits still queued at the source keep injecting through the lane
	// as well; time the drain as (remaining flits) + (remaining hops).
	// Adaptive flows bound the hop count by their longest candidate path.
	remFlits := int64(p.flits - p.ejected)
	remHops := int64(s.flows[p.flow].maxLen)
	s.rec = &recovery{pkt: p, deliver: s.now + remFlits + remHops}
	// If the packet was mid-injection, take it off the source queue so
	// the next packet of the flow can start once the lane drain ends.
	fs := &s.flows[p.flow]
	if fs.qlen() > 0 && fs.qfront() == p {
		s.stats.InjectedFlits += int64(p.flits - p.injected)
		p.injected = p.flits
		s.dequeue(p.flow)
	}
	s.stats.Recoveries++
	s.lastProgress = s.now
	return true
}

// stepRecovery completes an in-flight recovery whose drain time elapsed.
func (s *Simulator) stepRecovery() {
	if s.rec == nil || s.now < s.rec.deliver {
		return
	}
	p := s.rec.pkt
	s.stats.DeliveredFlits += int64(p.flits - p.ejected)
	s.stats.DeliveredPackets++
	s.stats.RecoveredPackets++
	s.recordDelivery(p)
	s.live--
	if s.refPackets != nil {
		delete(s.refPackets, p.id)
	}
	s.freePacket(p)
	s.rec = nil
	s.lastProgress = s.now
}
