package wormhole

import "sort"

// confirmDeadlock builds the packet wait-for graph at the current cycle
// and returns the packet IDs on a cyclic wait, ascending. It is called
// after the progress watchdog fires; during a genuine global stall every
// in-flight packet's frontier is blocked on a channel held by another
// packet, so the graph must contain a cycle.
//
// Wait edges: packet P → packet Q when P's next transmission needs a
// channel currently owned by Q. Two blocking causes produce an edge:
//
//   - acquisition: P's head flit wants channel c with owner Q ≠ P;
//   - back-pressure: P's flit wants channel c owned by P itself but the
//     buffer is full — the stall then propagates along P's own worm to
//     P's head, which is covered by the first case, so self-edges are
//     skipped.
func (s *Simulator) confirmDeadlock() []int {
	wait := make(map[int][]int) // packet → packets it waits on

	addEdge := func(p, q int) {
		if p == q {
			return
		}
		wait[p] = append(wait[p], q)
	}

	// Blocked buffer fronts.
	for ci := range s.chans {
		cs := &s.chans[ci]
		if len(cs.buf) == 0 {
			continue
		}
		front := cs.buf[0]
		p := s.packets[front.pkt]
		if p == nil {
			continue
		}
		rt := s.flows[p.flow].routeCh
		hop := cs.hop[p.flow]
		if hop == len(rt)-1 {
			continue // ejection always possible: not blocked
		}
		next := &s.chans[s.idx[rt[hop+1]]]
		if next.owner != -1 && next.owner != front.pkt {
			addEdge(front.pkt, next.owner)
		}
	}
	// Blocked injections (the queued packet holds nothing yet, but its
	// wait still participates in the graph; it can never be part of a
	// cycle because nothing waits on it).
	for i := range s.flows {
		fs := &s.flows[i]
		if len(fs.queue) == 0 {
			continue
		}
		first := &s.chans[s.idx[fs.routeCh[0]]]
		if first.owner != -1 && first.owner != fs.queue[0].id {
			addEdge(fs.queue[0].id, first.owner)
		}
	}

	// Find a cycle with an iterative DFS.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[int]int, len(wait))
	parent := make(map[int]int, len(wait))
	var cycleAt int = -1
	var cycleEnd int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		colour[v] = grey
		for _, w := range wait[v] {
			switch colour[w] {
			case grey:
				cycleAt, cycleEnd = w, v
				return true
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			}
		}
		colour[v] = black
		return false
	}
	starts := make([]int, 0, len(wait))
	for p := range wait {
		starts = append(starts, p)
	}
	sort.Ints(starts)
	for _, p := range starts {
		if colour[p] == white {
			if dfs(p) {
				break
			}
		}
	}
	if cycleAt == -1 {
		return nil
	}
	var cyc []int
	for v := cycleEnd; ; v = parent[v] {
		cyc = append(cyc, v)
		if v == cycleAt {
			break
		}
	}
	sort.Ints(cyc)
	return cyc
}

// HeldChannels returns the channels currently owned by the given packet,
// in route order. Useful for diagnostics and tests.
func (s *Simulator) HeldChannels(pkt int) []int {
	var out []int
	for ci := range s.chans {
		if s.chans[ci].owner == pkt {
			out = append(out, ci)
		}
	}
	return out
}
