package wormhole

import "sort"

// confirmDeadlock builds the packet wait-for graph at the current cycle
// and returns the packet IDs on a cyclic wait, ascending. It is called
// after the progress watchdog fires; during a genuine global stall every
// in-flight packet's frontier is blocked on a channel held by another
// packet, so the graph must contain a cycle.
//
// Wait edges: packet P → packet Q when P's next transmission needs a
// channel currently owned by Q. Two blocking causes produce an edge:
//
//   - acquisition: P's head flit wants channel c with owner Q ≠ P;
//   - back-pressure: P's flit wants channel c owned by P itself but the
//     buffer is full — the stall then propagates along P's own worm to
//     P's head, which is covered by the first case, so self-edges are
//     skipped.
//
// This is the cold path: it runs once per confirmed stall, so it scans
// every channel rather than the active worklist. It returns the packets
// themselves (not just IDs) so recovery can act on the cycle without a
// live-packet lookup table existing anywhere.
func (s *Simulator) confirmDeadlock() []*packet {
	wait := make(map[int][]int)   // packet ID → packet IDs it waits on
	byID := make(map[int]*packet) // every packet with an outgoing wait edge

	addEdge := func(p *packet, q int) {
		if p.id == q {
			return
		}
		wait[p.id] = append(wait[p.id], q)
		byID[p.id] = p
	}

	// Blocked buffer fronts. In adaptive mode an undecided head waits on
	// every permitted candidate it cannot take: the watchdog only fires
	// after a cycle-long global stall, so a candidate that is free would
	// already have been taken — each one is either owned by another worm
	// (a wait edge) or back-pressured along this packet's own worm
	// (covered transitively, skipped like the table-mode self case).
	for ci := range s.chans {
		cs := &s.chans[ci]
		if cs.n == 0 {
			continue
		}
		p := cs.front().pkt
		if s.adaptive {
			switch cs.nextIdx {
			case -1: // ejection always possible: not blocked
			case adaptivePending:
				for _, nc := range s.flows[p.flow].adj[int32(ci)] {
					if o := s.chans[nc].owner; o != -1 && o != p.id {
						addEdge(p, o)
					}
				}
			default:
				if next := &s.chans[cs.nextIdx]; next.owner != -1 && next.owner != p.id {
					addEdge(p, next.owner)
				}
			}
			continue
		}
		ridx := s.flows[p.flow].routeIdx
		if cs.hop == len(ridx)-1 {
			continue // ejection always possible: not blocked
		}
		next := &s.chans[ridx[cs.hop+1]]
		if next.owner != -1 && next.owner != p.id {
			addEdge(p, next.owner)
		}
	}
	// Blocked injections (the queued packet holds nothing yet, but its
	// wait still participates in the graph; it can never be part of a
	// cycle because nothing waits on it).
	for i := range s.flows {
		fs := &s.flows[i]
		if fs.qlen() == 0 || fs.local {
			continue
		}
		p := fs.qfront()
		if s.adaptive {
			if p.injected > 0 {
				if o := s.chans[fs.curFirst].owner; o != -1 && o != p.id {
					addEdge(p, o)
				}
				continue
			}
			for _, nc := range fs.first {
				if o := s.chans[nc].owner; o != -1 && o != p.id {
					addEdge(p, o)
				}
			}
			continue
		}
		first := &s.chans[fs.routeIdx[0]]
		if first.owner != -1 && first.owner != p.id {
			addEdge(p, first.owner)
		}
	}

	// Find a cycle with an iterative DFS.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[int]int, len(wait))
	parent := make(map[int]int, len(wait))
	var cycleAt int = -1
	var cycleEnd int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		colour[v] = grey
		for _, w := range wait[v] {
			switch colour[w] {
			case grey:
				cycleAt, cycleEnd = w, v
				return true
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			}
		}
		colour[v] = black
		return false
	}
	starts := make([]int, 0, len(wait))
	for p := range wait {
		starts = append(starts, p)
	}
	sort.Ints(starts)
	for _, p := range starts {
		if colour[p] == white {
			if dfs(p) {
				break
			}
		}
	}
	if cycleAt == -1 {
		return nil
	}
	var cyc []*packet
	for v := cycleEnd; ; v = parent[v] {
		// Every cycle node has an outgoing wait edge, so byID covers it.
		cyc = append(cyc, byID[v])
		if v == cycleAt {
			break
		}
	}
	sort.Slice(cyc, func(i, j int) bool { return cyc[i].id < cyc[j].id })
	return cyc
}

// packetIDs projects a packet list onto its IDs (for Stats reporting).
func packetIDs(pkts []*packet) []int {
	if len(pkts) == 0 {
		return nil
	}
	ids := make([]int, len(pkts))
	for i, p := range pkts {
		ids[i] = p.id
	}
	return ids
}

// HeldChannels returns the channels currently owned by the given packet,
// in route order. Useful for diagnostics and tests.
func (s *Simulator) HeldChannels(pkt int) []int {
	var out []int
	for ci := range s.chans {
		if s.chans[ci].owner == pkt {
			out = append(out, ci)
		}
	}
	return out
}
