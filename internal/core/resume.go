package core

import (
	"context"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// ResumeContext is the warm-start half of online reconfiguration: it
// runs the Algorithm 1 break loop against a CDG that already exists —
// typically one carried over from a previous removal and just perturbed
// by a reroute batch — instead of building one from scratch. The
// existing VC assignment is kept; only cycles the perturbation
// introduced are broken, so a fault that displaces a handful of flows
// costs a handful of SCC-scoped searches rather than a full rebuild.
//
// Unlike RemoveContext, the inputs are mutated IN PLACE: top and tab
// must be working copies the caller can afford to lose, and m must be
// the incremental CDG built over exactly that pair (after the caller's
// reroutes have been applied to all three). On any error the trio is
// left mid-mutation — callers needing atomicity take a cdg.Snapshot
// plus their own topology/route copies first and restore on failure.
//
// The returned Result aliases top and tab. AddedVCs counts only the VCs
// this replay added — the reconfiguration delta — not the ones the
// original removal already spent. opts.VCLimit likewise bounds the
// replay's own additions.
func ResumeContext(ctx context.Context, top *topology.Topology, tab *route.Table, m *cdg.Incremental, opts Options) (*Result, error) {
	res := &Result{Topology: top, Routes: tab}
	for {
		if err := canceled(ctx); err != nil {
			return nil, err
		}
		cycle := selectCycleIncremental(m, opts.Selection)
		if cycle == nil {
			res.InitialAcyclic = res.Iterations == 0
			return res, nil
		}
		if err := res.applyBreak(cycle, opts, m); err != nil {
			return nil, err
		}
	}
}
