package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// TestResumeMatchesRemoveFromScratch pins that a warm start over a
// freshly built CDG is exactly the incremental removal: same breaks,
// same VC count, same final routes. This is the degenerate case of the
// reconfiguration replay (no perturbation), and it must coincide with
// RemoveContext byte for byte.
func TestResumeMatchesRemoveFromScratch(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		top, _, tab := randomSetup(seed, 10, 24)
		want, err := Remove(top, tab, Options{})
		if err != nil {
			t.Fatal(err)
		}

		wtop, wtab := top.Clone(), tab.Clone()
		m, err := cdg.BuildIncremental(wtop, wtab)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ResumeContext(context.Background(), wtop, wtab, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.AddedVCs != want.AddedVCs || got.Iterations != want.Iterations ||
			got.InitialAcyclic != want.InitialAcyclic {
			t.Fatalf("seed %d: resume (%d VCs, %d iters) != remove (%d VCs, %d iters)",
				seed, got.AddedVCs, got.Iterations, want.AddedVCs, want.Iterations)
		}
		if !reflect.DeepEqual(got.Breaks, want.Breaks) {
			t.Fatalf("seed %d: break logs differ", seed)
		}
		if !reflect.DeepEqual(got.Routes.Routes(), want.Routes.Routes()) {
			t.Fatalf("seed %d: final routes differ", seed)
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestResumeMutatesInPlace pins the documented aliasing contract: the
// Result's Topology and Routes ARE the inputs, not copies.
func TestResumeMutatesInPlace(t *testing.T) {
	top, _, tab := randomSetup(3, 8, 20)
	wtop, wtab := top.Clone(), tab.Clone()
	m, err := cdg.BuildIncremental(wtop, wtab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResumeContext(context.Background(), wtop, wtab, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != wtop || res.Routes != wtab {
		t.Fatal("ResumeContext returned copies; contract is in-place mutation")
	}
	if res.Iterations > 0 && wtop.ExtraVCs() == top.ExtraVCs() {
		t.Fatal("breaks executed but input topology unchanged")
	}
}

// TestResumeVCLimit pins that the replay budget counts only the
// replay's own additions and surfaces ErrVCLimit.
func TestResumeVCLimit(t *testing.T) {
	var base *Result
	var top, tab = (*topology.Topology)(nil), (*route.Table)(nil)
	for seed := int64(0); seed < 32; seed++ {
		top, _, tab = randomSetup(seed, 10, 30)
		b, err := Remove(top, tab, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// VCLimit 0 means unlimited, so we need an input costing ≥ 2 VCs
		// for AddedVCs-1 to be a real budget.
		if b.AddedVCs >= 2 {
			base = b
			break
		}
	}
	if base == nil {
		t.Fatal("no seed in range needs ≥ 2 VCs; pick different setup parameters")
	}
	wtop, wtab := top.Clone(), tab.Clone()
	m, err := cdg.BuildIncremental(wtop, wtab)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ResumeContext(context.Background(), wtop, wtab, m, Options{VCLimit: base.AddedVCs - 1})
	if !errors.Is(err, nocerr.ErrVCLimit) {
		t.Fatalf("err = %v, want ErrVCLimit", err)
	}
}

// TestResumeCanceled pins cooperative cancellation.
func TestResumeCanceled(t *testing.T) {
	top, _, tab := randomSetup(1, 10, 30)
	wtop, wtab := top.Clone(), tab.Clone()
	m, err := cdg.BuildIncremental(wtop, wtab)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ResumeContext(ctx, wtop, wtab, m, Options{}); !errors.Is(err, nocerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
