package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// randomSetup builds a random strongly-ish connected topology with one
// core per switch, random flows, and shortest-path routes. It is the
// workhorse for the convergence property tests.
func randomSetup(seed int64, nSwitch, nFlow int) (*topology.Topology, *traffic.Graph, *route.Table) {
	rng := rand.New(rand.NewSource(seed))
	top := topology.New("rand")
	for i := 0; i < nSwitch; i++ {
		sw := top.AddSwitch("")
		top.AttachCore(i, sw)
	}
	// Ring both ways guarantees connectivity; random chords add cycles.
	for i := 0; i < nSwitch; i++ {
		top.AddBidi(topology.SwitchID(i), topology.SwitchID((i+1)%nSwitch))
	}
	for i := 0; i < nSwitch; i++ {
		a := topology.SwitchID(rng.Intn(nSwitch))
		b := topology.SwitchID(rng.Intn(nSwitch))
		if a != b {
			top.AddLink(a, b) // duplicate rejection is fine
		}
	}
	g := traffic.NewGraph("rand")
	for i := 0; i < nSwitch; i++ {
		g.AddCore("")
	}
	for i := 0; i < nFlow; i++ {
		a := traffic.CoreID(rng.Intn(nSwitch))
		b := traffic.CoreID(rng.Intn(nSwitch))
		if a != b {
			g.MustAddFlow(a, b, float64(1+rng.Intn(100)))
		}
	}
	tab, err := route.ShortestPaths(top, g)
	if err != nil {
		panic(err) // construction guarantees connectivity
	}
	return top, g, tab
}

func TestRemoveOnAcyclicInputIsNoop(t *testing.T) {
	// Two switches, one flow each way — single-hop routes create no
	// dependencies at all.
	top := topology.New("t")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	top.AddBidi(a, b)
	tab := route.NewTable(2)
	tab.Set(0, []topology.Channel{topology.Chan(0, 0)})
	tab.Set(1, []topology.Channel{topology.Chan(1, 0)})
	res, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InitialAcyclic || res.AddedVCs != 0 || res.Iterations != 0 || len(res.Breaks) != 0 {
		t.Errorf("no-op removal: %+v", res)
	}
}

func TestRemoveTwoDisjointRings(t *testing.T) {
	// Two independent 3-switch rings, each with flows wrapping all the way
	// around: two cycles, two breaks, at least two VCs.
	top := topology.New("t")
	for i := 0; i < 6; i++ {
		top.AddSwitch("")
	}
	ring := func(base int) []topology.LinkID {
		var ids []topology.LinkID
		for i := 0; i < 3; i++ {
			ids = append(ids, top.MustAddLink(
				topology.SwitchID(base+i), topology.SwitchID(base+(i+1)%3)))
		}
		return ids
	}
	r1 := ring(0)
	r2 := ring(3)
	tab := route.NewTable(6)
	mk := func(ids ...topology.LinkID) []topology.Channel {
		out := make([]topology.Channel, len(ids))
		for i, id := range ids {
			out[i] = topology.Chan(id, 0)
		}
		return out
	}
	// Each ring gets three 2-hop flows covering all consecutive pairs.
	tab.Set(0, mk(r1[0], r1[1]))
	tab.Set(1, mk(r1[1], r1[2]))
	tab.Set(2, mk(r1[2], r1[0]))
	tab.Set(3, mk(r2[0], r2[1]))
	tab.Set(4, mk(r2[1], r2[2]))
	tab.Set(5, mk(r2[2], r2[0]))
	res, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2 (one per ring)", res.Iterations)
	}
	if res.AddedVCs < 2 {
		t.Errorf("AddedVCs = %d, want >= 2", res.AddedVCs)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestRemoveIdempotent(t *testing.T) {
	top, _, tab := randomSetup(11, 8, 30)
	res, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Remove(res.Topology, res.Routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.InitialAcyclic || again.AddedVCs != 0 {
		t.Errorf("second removal not a no-op: %+v", again)
	}
}

func TestRemoveBookkeeping(t *testing.T) {
	top, _, tab := randomSetup(5, 10, 40)
	before := top.ExtraVCs()
	res, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Topology.ExtraVCs() - before; got != res.AddedVCs {
		t.Errorf("AddedVCs = %d but topology grew by %d", res.AddedVCs, got)
	}
	total := 0
	for _, b := range res.Breaks {
		total += len(b.NewChannels)
	}
	if total != res.AddedVCs {
		t.Errorf("break records account for %d VCs, result says %d", total, res.AddedVCs)
	}
	if len(res.Breaks) != res.Iterations {
		t.Errorf("%d break records for %d iterations", len(res.Breaks), res.Iterations)
	}
}

func TestRemoveMaxIterations(t *testing.T) {
	top, tab := paperExample()
	if _, err := Remove(top, tab, Options{MaxIterations: 0}); err != nil {
		t.Errorf("default iterations should succeed: %v", err)
	}
	// The example needs exactly one break. MaxIterations is a cap on
	// executed breaks, so the loop must error out when the CDG is still
	// cyclic at the cap. A cap of 1 must succeed.
	if _, err := Remove(top, tab, Options{MaxIterations: 1}); err != nil {
		t.Errorf("cap of 1 should suffice for the paper example: %v", err)
	}
}

func TestRemoveDegenerateSelfLoop(t *testing.T) {
	// A route that repeats a channel back to back produces a self-
	// dependency; Remove must reject it rather than duplicate forever.
	top := topology.New("t")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	top.MustAddLink(a, b)
	tab := route.NewTable(1)
	tab.Set(0, []topology.Channel{topology.Chan(0, 0), topology.Chan(0, 0)})
	if _, err := Remove(top, tab, Options{}); err == nil {
		t.Error("self-dependency accepted")
	}
}

func TestRemovePolicies(t *testing.T) {
	for _, policy := range []DirectionPolicy{BestOfBoth, ForwardOnly, BackwardOnly} {
		top, _, tab := randomSetup(23, 9, 35)
		res, err := Remove(top, tab, Options{Policy: policy})
		if err != nil {
			t.Errorf("policy %v: %v", policy, err)
			continue
		}
		if err := res.Verify(); err != nil {
			t.Errorf("policy %v: %v", policy, err)
		}
	}
}

func TestRemoveCycleSelections(t *testing.T) {
	for _, sel := range []CycleSelection{SmallestFirst, FirstFound} {
		top, _, tab := randomSetup(31, 9, 35)
		res, err := Remove(top, tab, Options{Selection: sel})
		if err != nil {
			t.Errorf("selection %v: %v", sel, err)
			continue
		}
		if err := res.Verify(); err != nil {
			t.Errorf("selection %v: %v", sel, err)
		}
	}
}

func TestBestOfBothNeverWorseThanSingleDirection(t *testing.T) {
	// The paper's two-direction search must never add more VCs than the
	// better of the two single-direction ablations on the same input.
	for seed := int64(0); seed < 10; seed++ {
		top, _, tab := randomSetup(seed, 8, 30)
		both, err := Remove(top, tab, Options{Policy: BestOfBoth})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fwd, err1 := Remove(top, tab, Options{Policy: ForwardOnly})
		bwd, err2 := Remove(top, tab, Options{Policy: BackwardOnly})
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v / %v", seed, err1, err2)
		}
		best := fwd.AddedVCs
		if bwd.AddedVCs < best {
			best = bwd.AddedVCs
		}
		// Greedy per-cycle choice is not globally optimal, so allow a
		// small slack; what we pin is that it is not systematically worse.
		if both.AddedVCs > best+2 {
			t.Errorf("seed %d: BestOfBoth added %d VCs, single-direction best %d",
				seed, both.AddedVCs, best)
		}
	}
}

func TestDeadlockFree(t *testing.T) {
	top, tab := paperExample()
	free, err := DeadlockFree(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Error("paper example reported deadlock-free before removal")
	}
	res, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	free, err = DeadlockFree(res.Topology, res.Routes)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Error("result reported deadlocked after removal")
	}
}

// TestRemoveConvergesProperty is the central property test: for random
// topologies and random shortest-path-routed traffic, Remove always
// terminates with an acyclic CDG, valid routes, and consistent
// bookkeeping.
func TestRemoveConvergesProperty(t *testing.T) {
	f := func(seed int64) bool {
		nSwitch := 4 + int(uint64(seed)%7)
		top, g, tab := randomSetup(seed, nSwitch, 4*nSwitch)
		res, err := Remove(top, tab, Options{})
		if err != nil {
			return false
		}
		if res.Verify() != nil {
			return false
		}
		// Routes must remain valid against topology and traffic: same
		// endpoints, contiguous, no revisits.
		if res.Routes.Validate(res.Topology, g) != nil {
			return false
		}
		// Physical structure is untouched: only VCs were added.
		if res.Topology.NumLinks() != top.NumLinks() || res.Topology.NumSwitches() != top.NumSwitches() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRerouteKeepsPhysicalPath verifies that rerouting only changes VC
// indices, never the physical links — the paper moves flows onto new VCs
// of the same links.
func TestRerouteKeepsPhysicalPath(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		top, _, tab := randomSetup(seed, 7, 25)
		res, err := Remove(top, tab, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tab.Routes() {
			got := res.Routes.Route(r.FlowID)
			if got.Len() != r.Len() {
				t.Fatalf("seed %d flow %d: length changed %d→%d", seed, r.FlowID, r.Len(), got.Len())
			}
			for i := range r.Channels {
				if got.Channels[i].Link != r.Channels[i].Link {
					t.Fatalf("seed %d flow %d hop %d: physical link changed", seed, r.FlowID, i)
				}
			}
		}
	}
}

func TestCostTableErrorPaths(t *testing.T) {
	_, tab := paperExample()
	// A "cycle" made of channels no flow connects: must error.
	fake := []topology.Channel{topology.Chan(0, 0), topology.Chan(2, 0)}
	if _, err := BuildCostTable(Forward, fake, tab); err == nil {
		t.Error("cost table built for cycle with uncovered edges")
	}
	// breakCycle on a dependency no flow creates: must error.
	top, tab2 := paperExample()
	if _, _, err := breakCycle(top, tab2, fake, 0, Forward, 1, nil); err == nil {
		t.Error("breakCycle succeeded on nonexistent dependency")
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("Direction.String mismatch")
	}
}

// TestChainSharingAcrossFlows pins the shared-duplicate behaviour: two
// flows creating the same broken dependency with nested chains must share
// the duplicated channels rather than each getting a private copy.
func TestChainSharingAcrossFlows(t *testing.T) {
	// Line topology A→B→C→D→A ring; F1 = {L1,L2,L3}, F4 = {L1,L2} share
	// the forward chain at D2... use the paper example and break D1
	// forward: both F1 and F4 enter at L1, chain length 1, one duplicate.
	top, tab := paperExample()
	rec, _, err := breakCycle(top, tab, paperCycle(), 0, Forward, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewChannels) != 1 {
		t.Fatalf("expected 1 shared duplicate, got %v", rec.NewChannels)
	}
	if tab.Route(0).Channels[0] != tab.Route(3).Channels[0] {
		t.Error("F1 and F4 do not share the duplicate channel")
	}
}

// TestRemoveDeterministic pins run-to-run determinism of the whole
// algorithm, which the experiments rely on.
func TestRemoveDeterministic(t *testing.T) {
	top, _, tab := randomSetup(77, 10, 50)
	a, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.AddedVCs != b.AddedVCs || a.Iterations != b.Iterations {
		t.Fatalf("nondeterministic removal: %d/%d VCs, %d/%d iterations",
			a.AddedVCs, b.AddedVCs, a.Iterations, b.Iterations)
	}
	for i := range a.Breaks {
		if a.Breaks[i].EdgePos != b.Breaks[i].EdgePos || a.Breaks[i].Direction != b.Breaks[i].Direction {
			t.Fatalf("break %d differs between runs", i)
		}
	}
}
