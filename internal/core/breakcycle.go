package core

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// BreakRecord documents one executed cycle break for result reporting and
// the experiment harness.
type BreakRecord struct {
	Cycle       []topology.Channel // the cycle that was broken
	Direction   Direction          // chosen break direction
	EdgePos     int                // broken dependency: Cycle[EdgePos]→Cycle[(EdgePos+1)%n]
	Cost        int                // Algorithm 2's estimate (max duplicate-chain length)
	NewChannels []topology.Channel // channels actually added (usually Cost of them)
	Reroutes    []int              // flows moved onto the new channels, ascending
}

// breakCycle implements BreakCycleForward / BreakCycleBackward: it
// duplicates the necessary channel vertices (provisioning one new VC per
// duplicated channel on the same physical link) and reroutes every flow
// that creates the broken dependency onto the duplicates. Duplicates are
// shared among the rerouted flows, which is what makes the paper's cost —
// the maximum chain length over those flows — the number of channels
// added in the common (chord-free) case.
//
// The returned reroutes pair each moved flow's old and new channel
// sequence so the caller can maintain an incremental CDG without
// rescanning the route table. A non-nil flows restricts the scan for the
// broken dependency's creators to that candidate subset (ascending IDs;
// see buildCostTable for the equivalence argument).
func breakCycle(top *topology.Topology, tab *route.Table, cycle []topology.Channel,
	edge int, dir Direction, cost int, flows []int) (*BreakRecord, []cdg.Reroute, error) {

	n := len(cycle)
	from, to := cycle[edge], cycle[(edge+1)%n]
	inCycle := make(map[topology.Channel]bool, n)
	for _, ch := range cycle {
		inCycle[ch] = true
	}

	// Find the flows creating the broken dependency and the chain of
	// route positions each must vacate.
	type chain struct {
		flowID int
		lo, hi int
	}
	var chains []chain
	scan := func(r *route.Route) {
		for i := 0; i+1 < len(r.Channels); i++ {
			if r.Channels[i] != from || r.Channels[i+1] != to {
				continue
			}
			lo, hi := chainBounds(dir, r.Channels, i, inCycle)
			chains = append(chains, chain{flowID: r.FlowID, lo: lo, hi: hi})
			break // a route cannot repeat a channel, so the edge occurs once
		}
	}
	if flows == nil {
		for _, r := range tab.Routes() {
			scan(r)
		}
	} else {
		for _, id := range flows {
			if r := tab.Route(id); r != nil {
				scan(r)
			}
		}
	}
	if len(chains) == 0 {
		return nil, nil, fmt.Errorf("core: dependency %v→%v not created by any flow", from, to)
	}

	// Duplicate each distinct chain channel once; rerouted flows share the
	// duplicates (the paper reroutes "the flows", plural, onto "the new
	// vertices").
	dup := make(map[topology.Channel]topology.Channel)
	rec := &BreakRecord{
		Cycle:     append([]topology.Channel(nil), cycle...),
		Direction: dir,
		EdgePos:   edge,
		Cost:      cost,
	}
	for _, c := range chains {
		r := tab.Route(c.flowID)
		for i := c.lo; i <= c.hi; i++ {
			ch := r.Channels[i]
			if _, done := dup[ch]; done {
				continue
			}
			vc, err := top.AddVC(ch.Link)
			if err != nil {
				return nil, nil, fmt.Errorf("core: duplicating %v: %w", ch, err)
			}
			dup[ch] = topology.Chan(ch.Link, vc)
			rec.NewChannels = append(rec.NewChannels, dup[ch])
		}
	}
	reroutes := make([]cdg.Reroute, 0, len(chains))
	for _, c := range chains {
		r := tab.Route(c.flowID)
		old := append([]topology.Channel(nil), r.Channels...)
		channels := append([]topology.Channel(nil), r.Channels...)
		for i := c.lo; i <= c.hi; i++ {
			channels[i] = dup[channels[i]]
		}
		tab.Set(c.flowID, channels)
		rec.Reroutes = append(rec.Reroutes, c.flowID)
		reroutes = append(reroutes, cdg.Reroute{FlowID: c.flowID, Old: old, New: channels})
	}
	return rec, reroutes, nil
}
