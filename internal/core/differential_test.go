package core

import (
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/traffic"
)

// assertSameRemoval runs Remove with and without FullRebuild on identical
// inputs and requires byte-for-byte identical break sequences plus a
// verified acyclic result from both paths.
func assertSameRemoval(t *testing.T, name string, opts Options, run func(Options) (*Result, error)) {
	t.Helper()
	optsFull := opts
	optsFull.FullRebuild = true
	inc, err := run(opts)
	if err != nil {
		t.Fatalf("%s: incremental Remove: %v", name, err)
	}
	full, err := run(optsFull)
	if err != nil {
		t.Fatalf("%s: full-rebuild Remove: %v", name, err)
	}
	if inc.AddedVCs != full.AddedVCs || inc.Iterations != full.Iterations {
		t.Fatalf("%s: incremental %d VCs / %d breaks, full rebuild %d VCs / %d breaks",
			name, inc.AddedVCs, inc.Iterations, full.AddedVCs, full.Iterations)
	}
	for i := range inc.Breaks {
		a, b := inc.Breaks[i], full.Breaks[i]
		if a.EdgePos != b.EdgePos || a.Direction != b.Direction || a.Cost != b.Cost ||
			len(a.Cycle) != len(b.Cycle) || len(a.NewChannels) != len(b.NewChannels) {
			t.Fatalf("%s: break %d differs: incremental %+v, full rebuild %+v", name, i, a, b)
		}
		for j := range a.Cycle {
			if a.Cycle[j] != b.Cycle[j] {
				t.Fatalf("%s: break %d cycle differs at %d: %v vs %v", name, i, j, a.Cycle, b.Cycle)
			}
		}
	}
	if err := inc.Verify(); err != nil {
		t.Fatalf("%s: incremental result: %v", name, err)
	}
	if err := full.Verify(); err != nil {
		t.Fatalf("%s: full-rebuild result: %v", name, err)
	}
}

// TestIncrementalMatchesFullRebuildBenchmarks is the differential check
// over the paper's six benchmarks across several switch counts: the
// incremental Remove must reproduce the full-rebuild Remove exactly.
func TestIncrementalMatchesFullRebuildBenchmarks(t *testing.T) {
	for _, g := range traffic.AllBenchmarks() {
		for _, switches := range []int{8, 11, 14, 20} {
			if switches > g.NumCores() {
				continue
			}
			des, err := synth.Synthesize(g, synth.Options{SwitchCount: switches})
			if err != nil {
				t.Fatalf("synthesize %s @ %d: %v", g.Name, switches, err)
			}
			name := g.Name
			assertSameRemoval(t, name, Options{}, func(o Options) (*Result, error) {
				return Remove(des.Topology, des.Routes, o)
			})
		}
	}
}

// TestIncrementalMatchesFullRebuildPolicies covers the non-default
// direction and selection policies on random inputs.
func TestIncrementalMatchesFullRebuildPolicies(t *testing.T) {
	policies := []Options{
		{},
		{Policy: ForwardOnly},
		{Policy: BackwardOnly},
		{Selection: FirstFound},
	}
	for seed := int64(1); seed <= 8; seed++ {
		top, _, tab := randomSetup(seed, 12, 60)
		for _, opts := range policies {
			assertSameRemoval(t, "random", opts, func(o Options) (*Result, error) {
				return Remove(top, tab, o)
			})
		}
	}
}

// TestIncrementalCDGTracksRebuild pins the maintained CDG itself: after
// every break the Incremental edge set (with per-edge flow lists) must be
// identical to a CDG rebuilt from scratch.
func TestIncrementalCDGTracksRebuild(t *testing.T) {
	top, _, tab := randomSetup(99, 10, 50)
	res := &Result{Topology: top.Clone(), Routes: tab.Clone()}
	m, err := cdg.BuildIncremental(res.Topology, res.Routes)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; ; iter++ {
		rebuilt, err := cdg.Build(res.Topology, res.Routes)
		if err != nil {
			t.Fatal(err)
		}
		want := rebuilt.Dependencies()
		got := m.Dependencies()
		if len(got) != len(want) {
			t.Fatalf("iteration %d: incremental has %d deps, rebuild %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i].From != want[i].From || got[i].To != want[i].To {
				t.Fatalf("iteration %d dep %d: incremental %v→%v, rebuild %v→%v",
					iter, i, got[i].From, got[i].To, want[i].From, want[i].To)
			}
			if len(got[i].Flows) != len(want[i].Flows) {
				t.Fatalf("iteration %d dep %d: flow lists differ: %v vs %v",
					iter, i, got[i].Flows, want[i].Flows)
			}
			for j := range want[i].Flows {
				if got[i].Flows[j] != want[i].Flows[j] {
					t.Fatalf("iteration %d dep %d: flow lists differ: %v vs %v",
						iter, i, got[i].Flows, want[i].Flows)
				}
			}
		}
		cycle := m.SmallestCycle()
		wantCycle := rebuilt.SmallestCycle()
		if len(cycle) != len(wantCycle) {
			t.Fatalf("iteration %d: incremental cycle %v, rebuild cycle %v", iter, cycle, wantCycle)
		}
		for i := range wantCycle {
			if cycle[i] != wantCycle[i] {
				t.Fatalf("iteration %d: incremental cycle %v, rebuild cycle %v", iter, cycle, wantCycle)
			}
		}
		if cycle == nil {
			break
		}
		if err := res.applyBreak(cycle, Options{}, m); err != nil {
			t.Fatal(err)
		}
		if iter > DefaultMaxIterations {
			t.Fatal("removal did not converge")
		}
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}
