package core

import (
	"context"
	"fmt"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// Result reports what Remove did. Topology and Routes are modified deep
// copies; the inputs are never mutated.
type Result struct {
	Topology *topology.Topology
	Routes   *route.Table
	// AddedVCs is |L'|−|L|: the number of channels added to make the CDG
	// acyclic — the quantity the paper minimizes.
	AddedVCs int
	// Iterations counts executed cycle breaks (Algorithm 1 loop trips).
	Iterations int
	// InitialAcyclic is true when the input CDG already had no cycles, the
	// case the paper highlights for most application-specific topologies.
	InitialAcyclic bool
	// Breaks logs every executed break in order.
	Breaks []BreakRecord
}

// Remove runs the paper's Algorithm 1 on a topology and route table: it
// builds the channel dependency graph, and while a cycle exists it breaks
// the smallest one at the cheapest dependency in the cheaper of the two
// directions, adding VCs and rerouting flows. On success the returned
// topology/routes have an acyclic CDG.
//
// By default the CDG is maintained incrementally across breaks: each
// break's channel duplications and flow reroutes are applied as localized
// edge updates, and cycle re-search is restricted to the strongly
// connected components those updates touched. Options.FullRebuild selects
// the original rebuild-per-iteration loop instead; both paths select the
// same cycles and produce identical results (see the differential tests).
//
// The inputs are not modified. Remove fails if a cycle edge cannot be
// attributed to a flow (inconsistent inputs) or if opts.MaxIterations is
// exceeded (never observed on the paper's benchmark family; the bound
// exists to fail loudly instead of looping).
func Remove(top *topology.Topology, tab *route.Table, opts Options) (*Result, error) {
	return RemoveContext(context.Background(), top, tab, opts)
}

// RemoveContext is Remove with cooperative cancellation: the break loop
// checks ctx between iterations and returns an error wrapping both
// nocerr.ErrCanceled and ctx.Err() as soon as the context is done. A
// canceled removal returns no partial result.
func RemoveContext(ctx context.Context, top *topology.Topology, tab *route.Table, opts Options) (*Result, error) {
	res := &Result{
		Topology: top.Clone(),
		Routes:   tab.Clone(),
	}
	if opts.FullRebuild {
		return removeFullRebuild(ctx, res, opts)
	}
	return removeIncremental(ctx, res, opts)
}

// canceled folds a done context into the library's sentinel scheme: the
// returned error satisfies errors.Is for both nocerr.ErrCanceled and the
// context's own error (context.Canceled / DeadlineExceeded).
func canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", nocerr.ErrCanceled, err)
	}
	return nil
}

// removeFullRebuild is the original Algorithm 1 loop: full cdg.Build plus
// global cycle search on every iteration.
func removeFullRebuild(ctx context.Context, res *Result, opts Options) (*Result, error) {
	for {
		if err := canceled(ctx); err != nil {
			return nil, err
		}
		g, err := cdg.Build(res.Topology, res.Routes)
		if err != nil {
			return nil, err
		}
		cycle := selectCycle(g, opts.Selection)
		if cycle == nil {
			res.InitialAcyclic = res.Iterations == 0
			return res, nil
		}
		if err := res.applyBreak(cycle, opts, nil); err != nil {
			return nil, err
		}
	}
}

// removeIncremental is the hot path: one CDG built up front, then each
// break applied as localized edge updates with SCC-restricted re-search.
func removeIncremental(ctx context.Context, res *Result, opts Options) (*Result, error) {
	m, err := cdg.BuildIncremental(res.Topology, res.Routes)
	if err != nil {
		return nil, err
	}
	for {
		if err := canceled(ctx); err != nil {
			return nil, err
		}
		cycle := selectCycleIncremental(m, opts.Selection)
		if cycle == nil {
			res.InitialAcyclic = res.Iterations == 0
			return res, nil
		}
		if err := res.applyBreak(cycle, opts, m); err != nil {
			return nil, err
		}
	}
}

// applyBreak executes one Algorithm 1 loop trip on an already-selected
// cycle: choose the break, perform it, record it, and (when maintaining an
// incremental CDG) apply the resulting reroutes as edge updates.
func (res *Result) applyBreak(cycle []topology.Channel, opts Options, m *cdg.Incremental) error {
	if len(cycle) < 2 {
		return fmt.Errorf("core: degenerate self-dependency on channel %v (route repeats a channel?)", cycle)
	}
	if res.Iterations >= opts.maxIterations() {
		return fmt.Errorf("%w: cycle remains after %d breaks (MaxIterations reached)", nocerr.ErrCyclicCDG, res.Iterations)
	}
	// The incremental CDG knows which flows create the cycle's edges;
	// restricting Algorithm 2 and the break to them turns the per-break
	// cost from O(all flows) into O(flows on the cycle). The full-rebuild
	// path (m == nil) keeps the global scan; the differential tests pin
	// both paths to identical results.
	var cycleFlows []int
	if m != nil {
		cycleFlows = m.CycleFlows(cycle)
	}
	dir, ct, err := chooseBreak(cycle, res.Routes, opts.Policy, cycleFlows)
	if err != nil {
		return err
	}
	rec, reroutes, err := breakCycle(res.Topology, res.Routes, cycle, ct.BestEdge, dir, ct.BestCost, cycleFlows)
	if err != nil {
		return err
	}
	if opts.VCLimit > 0 && res.AddedVCs+len(rec.NewChannels) > opts.VCLimit {
		// The caller discards the whole result on error, so the break that
		// busted the budget needs no rollback.
		return fmt.Errorf("%w: break %d needs %d more VC(s) on top of %d, limit %d",
			nocerr.ErrVCLimit, res.Iterations+1, len(rec.NewChannels), res.AddedVCs, opts.VCLimit)
	}
	if m != nil {
		for _, rr := range reroutes {
			if err := m.ApplyReroute(rr); err != nil {
				return err
			}
		}
	}
	res.Breaks = append(res.Breaks, *rec)
	res.AddedVCs += len(rec.NewChannels)
	res.Iterations++
	if opts.OnBreak != nil {
		opts.OnBreak(*rec)
	}
	return nil
}

// selectCycle returns the next cycle to break under the given policy, or
// nil if the CDG is acyclic. selectCycleIncremental is its mirror for the
// incremental CDG: a new CycleSelection must be handled in both so the
// two Remove paths keep picking identical cycles.
func selectCycle(g *cdg.CDG, sel CycleSelection) []topology.Channel {
	switch sel {
	case FirstFound:
		// Any cycle will do; reuse the smallest-cycle search but stop at
		// the first vertex that closes a cycle by taking the cycle through
		// the lowest-numbered cyclic channel.
		cyclic := g.CyclicChannels()
		if len(cyclic) == 0 {
			return nil
		}
		// Deterministic "arbitrary" cycle: shortest cycle through the
		// first cyclic channel only. This is still cheaper than the full
		// smallest-first scan and deliberately non-optimal for ablation.
		return g.SmallestCycleThrough(cyclic[0])
	default:
		return g.SmallestCycle()
	}
}

// selectCycleIncremental mirrors selectCycle over the incremental CDG;
// keep the two policy switches in sync.
func selectCycleIncremental(m *cdg.Incremental, sel CycleSelection) []topology.Channel {
	switch sel {
	case FirstFound:
		return m.SmallestCycleThroughFirstCyclic()
	default:
		return m.SmallestCycle()
	}
}

// chooseBreak evaluates Algorithm 2 in the allowed directions and picks
// the cheaper one (forward wins ties, per Algorithm 1 step 7). A non-nil
// flows restricts the evaluation to that candidate subset (see
// buildCostTable).
func chooseBreak(cycle []topology.Channel, tab *route.Table, policy DirectionPolicy, flows []int) (Direction, *CostTable, error) {
	switch policy {
	case ForwardOnly:
		ct, err := buildCostTable(Forward, cycle, tab, flows)
		return Forward, ct, err
	case BackwardOnly:
		ct, err := buildCostTable(Backward, cycle, tab, flows)
		return Backward, ct, err
	}
	fwd, err := buildCostTable(Forward, cycle, tab, flows)
	if err != nil {
		return Forward, nil, err
	}
	bwd, err := buildCostTable(Backward, cycle, tab, flows)
	if err != nil {
		return Backward, nil, err
	}
	if fwd.BestCost <= bwd.BestCost {
		return Forward, fwd, nil
	}
	return Backward, bwd, nil
}

// DeadlockFree reports whether the topology/route pair already has an
// acyclic CDG (no removal needed).
func DeadlockFree(top *topology.Topology, tab *route.Table) (bool, error) {
	g, err := cdg.Build(top, tab)
	if err != nil {
		return false, err
	}
	return g.Acyclic(), nil
}

// Verify checks a Result: its CDG must be acyclic and every rerouted
// flow's channels must be provisioned in the result topology. It is used
// by tests and by the CLI after every removal.
func (r *Result) Verify() error {
	g, err := cdg.Build(r.Topology, r.Routes)
	if err != nil {
		return err
	}
	if !g.Acyclic() {
		return fmt.Errorf("%w: result CDG still cyclic", nocerr.ErrCyclicCDG)
	}
	for _, rt := range r.Routes.Routes() {
		for i, ch := range rt.Channels {
			if !r.Topology.ValidChannel(ch) {
				return fmt.Errorf("core: flow %d hop %d references unprovisioned channel %v", rt.FlowID, i, ch)
			}
		}
	}
	return nil
}
