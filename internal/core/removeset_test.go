package core

import (
	"reflect"
	"testing"

	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/traffic"
)

// torusFixture is a deadlock-prone single-path design: DOR on a torus
// crosses wrap links, so its CDG is cyclic and Remove has real work.
func torusFixture(t *testing.T) (*regular.Grid, *traffic.Graph, *route.Table) {
	t.Helper()
	grid, err := regular.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := regular.UniformTraffic(16, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	return grid, g, tab
}

// TestRemoveSetSinglePathIdentical is the differential pin: RemoveSet on
// a single-path set must produce byte-identical break sequences, the
// same added-VC count, and identical rewritten routes as Remove on the
// equivalent table — the adaptive path is a strict generalization.
func TestRemoveSetSinglePathIdentical(t *testing.T) {
	grid, _, tab := torusFixture(t)
	want, err := Remove(grid.Topology, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RemoveSet(grid.Topology, route.FromTable(tab), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.AddedVCs != want.AddedVCs || got.Iterations != want.Iterations || got.InitialAcyclic != want.InitialAcyclic {
		t.Fatalf("summary differs: set (%d VCs, %d iters) vs table (%d VCs, %d iters)",
			got.AddedVCs, got.Iterations, want.AddedVCs, want.Iterations)
	}
	if !reflect.DeepEqual(got.Breaks, want.Breaks) {
		t.Fatal("break sequences differ between RemoveSet(single-path) and Remove")
	}
	for f := 0; f < tab.NumFlows(); f++ {
		ps := got.Routes.Paths(f)
		if len(ps) != 1 {
			t.Fatalf("flow %d: %d paths after removal, want 1", f, len(ps))
		}
		if !reflect.DeepEqual(ps[0], want.Routes.Route(f).Channels) {
			t.Fatalf("flow %d: rewritten route differs", f)
		}
	}
	if err := got.VerifySet(); err != nil {
		t.Fatal(err)
	}
}

// allToAll builds a traffic graph with one core per switch and one flow
// per ordered pair; min-adaptive all-to-all on a ≥4x4 mesh is pinned
// cyclic by the route package's turn-model tests.
func allToAll(t *testing.T, n int) *traffic.Graph {
	t.Helper()
	g := traffic.NewGraph("all2all")
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				g.MustAddFlow(traffic.CoreID(s), traffic.CoreID(d), 10)
			}
		}
	}
	return g
}

// TestRemoveSetMinimalAdaptiveMesh runs removal on the deliberately
// deadlock-prone fully-adaptive minimal route set and checks the union
// CDG comes back acyclic with the candidate structure preserved.
func TestRemoveSetMinimalAdaptiveMesh(t *testing.T) {
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 16)
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.MinimalAdaptive, 4)
	if err != nil {
		t.Fatal(err)
	}
	free, err := DeadlockFreeSet(grid.Topology, set)
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("min-adaptive all-to-all union CDG acyclic on a 4x4 mesh; the fixture lost its cycle")
	}
	res, err := RemoveSet(grid.Topology, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialAcyclic {
		t.Fatal("InitialAcyclic true for a cyclic input")
	}
	if res.AddedVCs == 0 || res.Iterations == 0 {
		t.Fatal("removal did no work on a cyclic union CDG")
	}
	if err := res.VerifySet(); err != nil {
		t.Fatal(err)
	}
	// The candidate structure must survive: same path counts per flow.
	for f := 0; f < g.NumFlows(); f++ {
		if res.Routes.NumPaths(f) != set.NumPaths(f) {
			t.Fatalf("flow %d: path count changed %d → %d", f, set.NumPaths(f), res.Routes.NumPaths(f))
		}
	}
	// Break records must name real flow IDs.
	for _, b := range res.Breaks {
		for _, f := range b.Reroutes {
			if f < 0 || f >= g.NumFlows() {
				t.Fatalf("break reroute names pseudo-flow %d (have %d real flows)", f, g.NumFlows())
			}
		}
	}
}

// TestRemoveSetFaultedMinimalAdaptive is the reconfiguration scenario:
// fault links, regenerate the adaptive set around them, remove, verify.
func TestRemoveSetFaultedMinimalAdaptive(t *testing.T) {
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.Transpose(16)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := regular.SelectFaults(grid, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Topology.Fault(ids...); err != nil {
		t.Fatal(err)
	}
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.MinimalAdaptive, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RemoveSet(grid.Topology, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifySet(); err != nil {
		t.Fatal(err)
	}
	// No rewritten path may touch a faulted link: removal only ever
	// duplicates channels that routes already use.
	for f := 0; f < g.NumFlows(); f++ {
		for _, p := range res.Routes.Paths(f) {
			for _, ch := range p {
				if res.Topology.FaultedChannel(ch) {
					t.Fatalf("flow %d routed over faulted link %d after removal", f, ch.Link)
				}
			}
		}
	}
}
