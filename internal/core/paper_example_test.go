package core

// Tests in this file pin the implementation to the paper's running
// example: the 4-switch ring of Figure 1, the cyclic CDG of Figure 2, the
// forward cost table (Table 1), the break-direction figures (5–7), and
// the fixed design of Figures 3–4.

import (
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// L returns the base channel of 1-based link k, matching the paper's L1..L4.
func L(k int) topology.Channel { return topology.Chan(topology.LinkID(k-1), 0) }

// paperExample builds Figure 1: ring SW1→SW2→SW3→SW4→SW1 with flows
// F1={L1,L2,L3}, F2={L3,L4}, F3={L4,L1}, F4={L1,L2}.
func paperExample() (*topology.Topology, *route.Table) {
	top := topology.New("figure1")
	for i := 0; i < 4; i++ {
		top.AddSwitch("")
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%4))
	}
	tab := route.NewTable(4)
	tab.Set(0, []topology.Channel{L(1), L(2), L(3)})
	tab.Set(1, []topology.Channel{L(3), L(4)})
	tab.Set(2, []topology.Channel{L(4), L(1)})
	tab.Set(3, []topology.Channel{L(1), L(2)})
	return top, tab
}

// paperCycle is the CDG cycle of Figure 2 in canonical order L1→L2→L3→L4.
func paperCycle() []topology.Channel {
	return []topology.Channel{L(1), L(2), L(3), L(4)}
}

// TestPaperTable1Forward reproduces Table 1 cell by cell: the forward
// cost table for breaking the Figure 2 cycle.
func TestPaperTable1Forward(t *testing.T) {
	_, tab := paperExample()
	ct, err := BuildCostTable(Forward, paperCycle(), tab)
	if err != nil {
		t.Fatal(err)
	}
	// Rows are F1..F4 (flow IDs 0..3), columns are D1..D4 where
	// D1 = L1→L2, D2 = L2→L3, D3 = L3→L4, D4 = L4→L1.
	want := [][]int{
		{1, 2, 0, 0}, // F1
		{0, 0, 1, 0}, // F2
		{0, 0, 0, 1}, // F3
		{1, 0, 0, 0}, // F4
	}
	wantMax := []int{1, 2, 1, 1}
	if len(ct.FlowIDs) != 4 {
		t.Fatalf("flows in cycle = %v, want 4 rows", ct.FlowIDs)
	}
	for r, flowID := range ct.FlowIDs {
		if flowID != r {
			t.Errorf("row %d is flow %d, want %d", r, flowID, r)
		}
		for e := 0; e < 4; e++ {
			if ct.PerFlow[r][e] != want[r][e] {
				t.Errorf("cost(F%d, D%d) = %d, want %d (Table 1)",
					r+1, e+1, ct.PerFlow[r][e], want[r][e])
			}
		}
	}
	for e := 0; e < 4; e++ {
		if ct.Max[e] != wantMax[e] {
			t.Errorf("MAX(D%d) = %d, want %d (Table 1)", e+1, ct.Max[e], wantMax[e])
		}
	}
	if ct.BestCost != 1 {
		t.Errorf("f_cost = %d, want 1", ct.BestCost)
	}
	if ct.BestEdge != 0 {
		t.Errorf("f_pos = D%d, want D1 (first minimum)", ct.BestEdge+1)
	}
}

// TestPaperBackwardCosts checks the mirrored table: costs counted from
// the broken edge to where each flow exits the cycle (Figure 6).
func TestPaperBackwardCosts(t *testing.T) {
	_, tab := paperExample()
	ct, err := BuildCostTable(Backward, paperCycle(), tab)
	if err != nil {
		t.Fatal(err)
	}
	// F1 = {L1,L2,L3}: breaking D1 (L1→L2) backward duplicates L2,L3 → 2;
	// breaking D2 (L2→L3) duplicates L3 → 1.
	// F2 = {L3,L4}: D3 → duplicate L4 → 1.
	// F3 = {L4,L1}: D4 → duplicate L1 → 1.
	// F4 = {L1,L2}: D1 → duplicate L2 → 1.
	want := [][]int{
		{2, 1, 0, 0}, // F1
		{0, 0, 1, 0}, // F2
		{0, 0, 0, 1}, // F3
		{1, 0, 0, 0}, // F4
	}
	wantMax := []int{2, 1, 1, 1}
	for r := range want {
		for e := 0; e < 4; e++ {
			if ct.PerFlow[r][e] != want[r][e] {
				t.Errorf("bwd cost(F%d, D%d) = %d, want %d", r+1, e+1, ct.PerFlow[r][e], want[r][e])
			}
		}
	}
	for e := 0; e < 4; e++ {
		if ct.Max[e] != wantMax[e] {
			t.Errorf("bwd MAX(D%d) = %d, want %d", e+1, ct.Max[e], wantMax[e])
		}
	}
	if ct.BestCost != 1 || ct.BestEdge != 1 {
		t.Errorf("b_cost,b_pos = %d,D%d, want 1,D2", ct.BestCost, ct.BestEdge+1)
	}
}

// TestPaperExampleRemoval runs the full Algorithm 1 on the running
// example: one break, one added VC, acyclic result (Figures 3–4 add L1'
// and end with |L'|−|L| = 1).
func TestPaperExampleRemoval(t *testing.T) {
	top, tab := paperExample()
	res, err := Remove(top, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialAcyclic {
		t.Error("InitialAcyclic = true; Figure 2 has a cycle")
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
	if res.AddedVCs != 1 {
		t.Errorf("AddedVCs = %d, want 1 (the paper adds only L1')", res.AddedVCs)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// The inputs must be untouched.
	if top.ExtraVCs() != 0 {
		t.Error("input topology was mutated")
	}
	if tab.Route(2).Channels[1] != L(1) {
		t.Error("input route table was mutated")
	}
	// The chosen break: forward at D1 with cost 1 (duplicate L1, reroute
	// F1 and F4 onto L1').
	b := res.Breaks[0]
	if b.Direction != Forward || b.EdgePos != 0 || b.Cost != 1 {
		t.Errorf("break = %s at D%d cost %d, want forward at D1 cost 1",
			b.Direction, b.EdgePos+1, b.Cost)
	}
	if len(b.NewChannels) != 1 || b.NewChannels[0] != topology.Chan(0, 1) {
		t.Errorf("NewChannels = %v, want [L1']", b.NewChannels)
	}
	if len(b.Reroutes) != 2 || b.Reroutes[0] != 0 || b.Reroutes[1] != 3 {
		t.Errorf("Reroutes = %v, want [0 3] (F1 and F4 create L1→L2)", b.Reroutes)
	}
	// F1 and F4 now start on L1'; F2, F3 are untouched.
	l1p := topology.Chan(0, 1)
	if res.Routes.Route(0).Channels[0] != l1p || res.Routes.Route(3).Channels[0] != l1p {
		t.Error("rerouted flows do not use L1'")
	}
	if res.Routes.Route(2).Channels[1] != L(1) {
		t.Error("flow F3 was rerouted but does not create the broken dependency")
	}
}

// TestSuffixDuplicationReclosesCycle demonstrates Figure 7: duplicating
// only the vertex at the broken edge (a suffix of the needed chain) keeps
// the cyclic dependency alive through the new vertex, which is why the
// cost of breaking D2 for F1 is 2, not 1.
func TestSuffixDuplicationReclosesCycle(t *testing.T) {
	top, tab := paperExample()
	// Manual wrong fix: duplicate only L2 and move F1's second hop to L2',
	// leaving its first hop on L1.
	vc, err := top.AddVC(1)
	if err != nil {
		t.Fatal(err)
	}
	l2p := topology.Chan(1, vc)
	tab.Set(0, []topology.Channel{L(1), l2p, L(3)})
	g, err := cdg.Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if g.Acyclic() {
		t.Fatal("Figure 7 situation should still be cyclic: L1→L2'→L3→L4→L1")
	}
	// The surviving cycle must route through the new vertex L2'.
	cycle := g.SmallestCycle()
	found := false
	for _, ch := range cycle {
		if ch == l2p {
			found = true
		}
	}
	if !found {
		t.Errorf("surviving cycle %v does not pass through L2'", cycle)
	}
}

// TestBreakForwardDirection pins Figure 5's semantics: breaking D2 in the
// forward direction duplicates both L1 and L2 (the chain from where F1
// enters the cycle), and the result is acyclic in one step.
func TestBreakForwardDirection(t *testing.T) {
	top, tab := paperExample()
	rec, _, err := breakCycle(top, tab, paperCycle(), 1, Forward, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewChannels) != 2 {
		t.Fatalf("NewChannels = %v, want L1' and L2'", rec.NewChannels)
	}
	wantNew := []topology.Channel{topology.Chan(0, 1), topology.Chan(1, 1)}
	for i, want := range wantNew {
		if rec.NewChannels[i] != want {
			t.Errorf("NewChannels[%d] = %v, want %v", i, rec.NewChannels[i], want)
		}
	}
	// Only F1 creates L2→L3.
	if len(rec.Reroutes) != 1 || rec.Reroutes[0] != 0 {
		t.Errorf("Reroutes = %v, want [0]", rec.Reroutes)
	}
	// F1 must now be {L1', L2', L3}.
	got := tab.Route(0).Channels
	want := []topology.Channel{topology.Chan(0, 1), topology.Chan(1, 1), L(3)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("F1 route hop %d = %v, want %v", i, got[i], want[i])
		}
	}
	g, err := cdg.Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Acyclic() {
		t.Error("forward break of D2 with full chain left the CDG cyclic")
	}
}

// TestBreakBackwardDirection pins Figure 6's semantics: breaking D1 in
// the backward direction duplicates the chain from after the edge to the
// cycle exit — for F1 that is L2 and L3, for F4 just L2 — and the
// duplicates are shared.
func TestBreakBackwardDirection(t *testing.T) {
	top, tab := paperExample()
	rec, _, err := breakCycle(top, tab, paperCycle(), 0, Backward, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewChannels) != 2 {
		t.Fatalf("NewChannels = %v, want L2' and L3'", rec.NewChannels)
	}
	if len(rec.Reroutes) != 2 {
		t.Fatalf("Reroutes = %v, want F1 and F4", rec.Reroutes)
	}
	l2p, l3p := topology.Chan(1, 1), topology.Chan(2, 1)
	gotF1 := tab.Route(0).Channels
	wantF1 := []topology.Channel{L(1), l2p, l3p}
	for i := range wantF1 {
		if gotF1[i] != wantF1[i] {
			t.Errorf("F1 hop %d = %v, want %v", i, gotF1[i], wantF1[i])
		}
	}
	gotF4 := tab.Route(3).Channels
	wantF4 := []topology.Channel{L(1), l2p}
	for i := range wantF4 {
		if gotF4[i] != wantF4[i] {
			t.Errorf("F4 hop %d = %v, want %v", i, gotF4[i], wantF4[i])
		}
	}
	g, err := cdg.Build(top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Acyclic() {
		t.Error("backward break of D1 left the CDG cyclic")
	}
}
