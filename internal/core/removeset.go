package core

import (
	"context"
	"sort"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// SetResult reports what RemoveSet did: modified deep copies of the
// topology and route set whose union CDG is acyclic. Break records are
// translated back to real flow IDs (a flow appears once per break even
// when several of its candidate paths were rerouted).
type SetResult struct {
	Topology *topology.Topology
	Routes   *route.RouteSet
	// AddedVCs, Iterations, InitialAcyclic and Breaks mirror Result.
	AddedVCs       int
	Iterations     int
	InitialAcyclic bool
	Breaks         []BreakRecord
}

// RemoveSet runs the paper's Algorithm 1 on an adaptive route set: the
// set is flattened into pseudo-flows (one per candidate path), Remove
// runs on the flattened table unchanged — the CDG it breaks is the union
// of the set's permitted channel transitions — and the rewritten paths
// are folded back into a RouteSet. A set with one path per flow goes
// through the exact same code path as Remove on the equivalent table and
// produces an identical break sequence (pinned by differential tests).
// The inputs are never mutated.
func RemoveSet(top *topology.Topology, set *route.RouteSet, opts Options) (*SetResult, error) {
	return RemoveSetContext(context.Background(), top, set, opts)
}

// RemoveSetContext is RemoveSet with cooperative cancellation (see
// RemoveContext).
func RemoveSetContext(ctx context.Context, top *topology.Topology, set *route.RouteSet, opts Options) (*SetResult, error) {
	tab, refs := set.Flatten()
	res, err := RemoveContext(ctx, top, tab, opts)
	if err != nil {
		return nil, err
	}
	out, err := route.Unflatten(res.Routes, refs, set.NumFlows())
	if err != nil {
		return nil, err
	}
	sr := &SetResult{
		Topology:       res.Topology,
		Routes:         out,
		AddedVCs:       res.AddedVCs,
		Iterations:     res.Iterations,
		InitialAcyclic: res.InitialAcyclic,
		Breaks:         res.Breaks,
	}
	// Breaks carry pseudo-flow reroute IDs; translate to real flows.
	for i := range sr.Breaks {
		sr.Breaks[i].Reroutes = realFlows(sr.Breaks[i].Reroutes, refs)
	}
	return sr, nil
}

// realFlows maps pseudo-flow IDs to deduplicated ascending real flow IDs.
func realFlows(pseudo []int, refs []route.PathRef) []int {
	seen := make(map[int]bool, len(pseudo))
	out := make([]int, 0, len(pseudo))
	for _, p := range pseudo {
		f := p
		if p >= 0 && p < len(refs) {
			f = refs[p].FlowID
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}

// DeadlockFreeSet reports whether the route set's union CDG is acyclic.
func DeadlockFreeSet(top *topology.Topology, set *route.RouteSet) (bool, error) {
	tab, _ := set.Flatten()
	return DeadlockFree(top, tab)
}

// VerifySet checks a SetResult the way Result.Verify checks a Result:
// acyclic union CDG and only provisioned channels on every path.
func (r *SetResult) VerifySet() error {
	tab, _ := r.Routes.Flatten()
	tmp := &Result{Topology: r.Topology, Routes: tab}
	return tmp.Verify()
}
