package core

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// CostTable is the per-cycle cost matrix of Algorithm 2 (Table 1 in the
// paper). Rows are the flows taking part in the cycle; columns are the
// cycle's dependency edges (edge i runs cycle[i]→cycle[(i+1)%n]). Entry
// (f, e) is the number of channel vertices that must be duplicated to
// reroute flow f off dependency e, or 0 if flow f does not create e.
type CostTable struct {
	Direction Direction
	Cycle     []topology.Channel
	FlowIDs   []int   // row labels, ascending flow ID
	PerFlow   [][]int // [row][edge]
	Max       []int   // per-edge maximum over rows (the MAX row of Table 1)
	BestCost  int     // minimum of Max — the f_cost / b_cost of Algorithm 1
	BestEdge  int     // first edge position achieving BestCost
}

// BuildCostTable runs Algorithm 2 (FindDepToBreakForward) or its backward
// mirror over one cycle. It returns an error if some cycle edge is not
// created by any flow, which would mean the CDG and the route table are
// out of sync.
func BuildCostTable(dir Direction, cycle []topology.Channel, tab *route.Table) (*CostTable, error) {
	return buildCostTable(dir, cycle, tab, nil)
}

// buildCostTable is BuildCostTable restricted to a candidate flow subset:
// with flowIDs nil every flow of the table is scanned; otherwise only the
// given flows (ascending IDs) are considered. The incremental removal path
// passes the CDG's per-edge flow lists, which contain exactly the flows
// with a cost row, so both variants build the identical table — only the
// scan changes from O(all flows) to O(flows on the cycle).
func buildCostTable(dir Direction, cycle []topology.Channel, tab *route.Table, flowIDs []int) (*CostTable, error) {
	n := len(cycle)
	inCycle := make(map[topology.Channel]bool, n)
	for _, ch := range cycle {
		inCycle[ch] = true
	}
	edgeIndex := make(map[[2]topology.Channel]int, n)
	for i := 0; i < n; i++ {
		edgeIndex[[2]topology.Channel{cycle[i], cycle[(i+1)%n]}] = i
	}

	ct := &CostTable{Direction: dir, Cycle: cycle}
	addRow := func(r *route.Route) {
		row := flowCosts(dir, r, inCycle, edgeIndex, n)
		if row == nil {
			return // flow creates no dependency of this cycle
		}
		ct.FlowIDs = append(ct.FlowIDs, r.FlowID)
		ct.PerFlow = append(ct.PerFlow, row)
	}
	if flowIDs == nil {
		for _, r := range tab.Routes() {
			addRow(r)
		}
	} else {
		for _, id := range flowIDs {
			if r := tab.Route(id); r != nil {
				addRow(r)
			}
		}
	}
	if len(ct.FlowIDs) == 0 {
		return nil, fmt.Errorf("core: no flow creates any dependency of cycle %v", cycle)
	}

	ct.Max = make([]int, n)
	for _, row := range ct.PerFlow {
		for e, v := range row {
			if v > ct.Max[e] {
				ct.Max[e] = v
			}
		}
	}
	ct.BestCost = -1
	for e, v := range ct.Max {
		if v == 0 {
			return nil, fmt.Errorf("core: cycle edge %d (%v→%v) created by no flow",
				e, cycle[e], cycle[(e+1)%n])
		}
		if ct.BestCost == -1 || v < ct.BestCost {
			ct.BestCost = v
			ct.BestEdge = e
		}
	}
	return ct, nil
}

// flowCosts returns the cost row of one flow, or nil if the flow creates
// no dependency edge of the cycle.
//
// For every consecutive route pair (r[i], r[i+1]) that is a cycle edge e,
// the cost is the length of the duplicate chain needed to move the flow
// off e (see chainBounds): forward it is the contiguous stretch of
// in-cycle channels ending at r[i] (where the flow "entered the cycle",
// Figure 5); backward it is the stretch starting at r[i+1] and running to
// where the flow leaves the cycle (Figure 6).
//
// The published pseudocode keeps incrementing its counter at every cycle
// vertex on the path, but the paper's own Table 1 shows 0 for (F2, D4) —
// F2 uses channel L4 without creating dependency L4→L1 — so the table
// semantics, implemented here, is: a flow contributes a cost only at the
// edges it creates.
func flowCosts(dir Direction, r *route.Route, inCycle map[topology.Channel]bool,
	edgeIndex map[[2]topology.Channel]int, n int) []int {

	var row []int
	for i := 0; i+1 < len(r.Channels); i++ {
		e, ok := edgeIndex[[2]topology.Channel{r.Channels[i], r.Channels[i+1]}]
		if !ok {
			continue
		}
		if row == nil {
			row = make([]int, n)
		}
		lo, hi := chainBounds(dir, r.Channels, i, inCycle)
		row[e] = hi - lo + 1
	}
	return row
}

// chainBounds returns the inclusive route-index range [lo, hi] of the
// channels that must be duplicated to move route chs off the dependency
// created at position i (chs[i]→chs[i+1]).
//
// Forward: the maximal run of in-cycle channels ending at i. Duplicating
// anything less leaves a dependency from an original in-cycle channel
// into the duplicate chain, which re-closes the cycle through the new
// vertices — exactly the trap Figure 7 illustrates.
//
// Backward: the maximal run of in-cycle channels starting at i+1.
func chainBounds(dir Direction, chs []topology.Channel, i int, inCycle map[topology.Channel]bool) (lo, hi int) {
	if dir == Forward {
		lo = i
		for lo > 0 && inCycle[chs[lo-1]] {
			lo--
		}
		return lo, i
	}
	hi = i + 1
	for hi+1 < len(chs) && inCycle[chs[hi+1]] {
		hi++
	}
	return i + 1, hi
}
