// Package core implements the paper's contribution: the deadlock-removal
// algorithm of Sections 3–4. Given a topology graph, and a route table, it
// repeatedly finds the smallest cycle in the channel dependency graph
// (Algorithm 1), locates the cheapest dependency to break in the forward
// and backward directions (Algorithm 2 and its mirror), and breaks the
// cycle by duplicating channel vertices — adding virtual channels on the
// corresponding physical links — and rerouting the flows that created the
// broken dependency onto the new channels. It terminates when the CDG is
// acyclic, which by Dally & Towles' condition makes the network deadlock-
// free under wormhole flow control.
package core

// Direction says which side of a broken dependency gets duplicated
// (Figures 5 and 6 of the paper).
type Direction int

const (
	// Forward duplicates vertices from where the flow enters the cycle
	// up to the removed edge (Figure 5).
	Forward Direction = iota
	// Backward duplicates vertices from the removed edge to where the
	// flow exits the cycle (Figure 6).
	Backward
)

// String returns "forward" or "backward".
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// DirectionPolicy selects how Algorithm 1 chooses between the forward and
// backward break (step 7). The non-default policies exist for the
// ablation study in bench_test.go.
type DirectionPolicy int

const (
	// BestOfBoth compares forward and backward costs and takes the
	// cheaper, preferring forward on ties — the paper's policy.
	BestOfBoth DirectionPolicy = iota
	// ForwardOnly always breaks in the forward direction.
	ForwardOnly
	// BackwardOnly always breaks in the backward direction.
	BackwardOnly
)

// CycleSelection selects which cycle Algorithm 1 attacks next. The paper
// uses smallest-first; FirstFound exists for the ablation study.
type CycleSelection int

const (
	// SmallestFirst breaks the shortest CDG cycle first (the paper's
	// heuristic: a small cycle often shares edges with larger ones).
	SmallestFirst CycleSelection = iota
	// FirstFound breaks an arbitrary (but deterministic) cycle found by
	// depth-first search, regardless of length.
	FirstFound
)

// DefaultMaxIterations bounds the removal loop. Every iteration adds at
// least one VC, so on realistic SoC inputs the loop ends after a handful
// of breaks; the bound only exists to turn a (never observed) livelock
// into an error instead of a hang.
const DefaultMaxIterations = 10000

// Options configures Remove. The zero value is the paper's algorithm.
type Options struct {
	// MaxIterations caps the number of cycle breaks; 0 means
	// DefaultMaxIterations.
	MaxIterations int
	// VCLimit caps the total virtual channels the removal may add; 0
	// means unlimited. When a break would push AddedVCs past the limit,
	// Remove fails with an error wrapping nocerr.ErrVCLimit.
	VCLimit int
	// OnBreak, when non-nil, is invoked after every executed cycle break
	// with the record just appended to Result.Breaks. It runs on the
	// calling goroutine; a slow callback slows the removal loop.
	OnBreak func(BreakRecord)
	// Policy selects the break-direction rule; zero value is BestOfBoth.
	Policy DirectionPolicy
	// Selection selects the next cycle to break; zero value is
	// SmallestFirst.
	Selection CycleSelection
	// FullRebuild forces the original Algorithm 1 loop that rebuilds the
	// whole CDG and re-runs the global cycle search on every break. The
	// default (false) maintains the CDG incrementally across breaks and
	// restricts cycle re-search to the affected strongly connected
	// component — same results, measurably faster; the rebuild path is
	// kept for differential testing and benchmarking.
	FullRebuild bool
}

func (o Options) maxIterations() int {
	if o.MaxIterations <= 0 {
		return DefaultMaxIterations
	}
	return o.MaxIterations
}
