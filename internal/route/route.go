// Package route implements the paper's Definition 3: a Route is the
// ordered set of channels (physical link + virtual channel) a flow
// traverses from source to destination. It provides a route table keyed
// by flow ID, a deterministic load-aware shortest-path router used by
// topology synthesis, and validation that ties routes, topology and
// traffic together.
package route

import (
	"fmt"
	"strings"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Route is an ordered channel list for one flow. An empty Channels slice
// is legal and means source and destination cores share a switch, so the
// flow never enters the switch-to-switch network.
type Route struct {
	FlowID   int
	Channels []topology.Channel
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	return &Route{FlowID: r.FlowID, Channels: append([]topology.Channel(nil), r.Channels...)}
}

// Len returns the number of channels (hops) on the route.
func (r *Route) Len() int { return len(r.Channels) }

// String renders the route in the paper's notation, e.g. "L1 → L2' → L3".
func (r *Route) String(t *topology.Topology) string {
	if len(r.Channels) == 0 {
		return "(local)"
	}
	parts := make([]string, len(r.Channels))
	for i, c := range r.Channels {
		parts[i] = t.ChannelName(c)
	}
	return strings.Join(parts, " → ")
}

// Table holds one route per flow, indexed by flow ID.
type Table struct {
	routes []*Route
}

// NewTable returns a table sized for n flows, all routes initially unset.
func NewTable(n int) *Table {
	return &Table{routes: make([]*Route, n)}
}

// NumFlows returns the table capacity (number of flow slots).
func (t *Table) NumFlows() int { return len(t.routes) }

// Route returns the route for a flow, or nil if unset or out of range.
func (t *Table) Route(flowID int) *Route {
	if flowID < 0 || flowID >= len(t.routes) {
		return nil
	}
	return t.routes[flowID]
}

// Set installs a route for flow flowID, growing the table if needed.
func (t *Table) Set(flowID int, channels []topology.Channel) {
	for len(t.routes) <= flowID {
		t.routes = append(t.routes, nil)
	}
	t.routes[flowID] = &Route{FlowID: flowID, Channels: channels}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	nt := NewTable(len(t.routes))
	for i, r := range t.routes {
		if r != nil {
			nt.routes[i] = r.Clone()
		}
	}
	return nt
}

// Routes returns the non-nil routes in flow-ID order.
func (t *Table) Routes() []*Route {
	var out []*Route
	for _, r := range t.routes {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// MaxLen returns the longest route length in hops.
func (t *Table) MaxLen() int {
	m := 0
	for _, r := range t.routes {
		if r != nil && len(r.Channels) > m {
			m = len(r.Channels)
		}
	}
	return m
}

// AvgLen returns the mean route length over set routes (0 if none).
func (t *Table) AvgLen() float64 {
	n, sum := 0, 0
	for _, r := range t.routes {
		if r != nil {
			n++
			sum += len(r.Channels)
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// ChannelUsers returns, for every channel, the IDs of flows whose route
// uses it, in flow-ID order.
func (t *Table) ChannelUsers() map[topology.Channel][]int {
	users := make(map[topology.Channel][]int)
	for _, r := range t.routes {
		if r == nil {
			continue
		}
		for _, c := range r.Channels {
			users[c] = append(users[c], r.FlowID)
		}
	}
	return users
}

// LinkLoads returns summed flow bandwidth per physical link.
func (t *Table) LinkLoads(g *traffic.Graph) map[topology.LinkID]float64 {
	loads := make(map[topology.LinkID]float64)
	for _, r := range t.routes {
		if r == nil {
			continue
		}
		bw := g.Flow(r.FlowID).Bandwidth
		for _, c := range r.Channels {
			loads[c.Link] += bw
		}
	}
	return loads
}

// Validate checks that every flow of g has a route, every route is a
// contiguous switch walk from the source core's switch to the destination
// core's switch, all channels exist in the topology, and no physical link
// repeats within one route.
func (t *Table) Validate(top *topology.Topology, g *traffic.Graph) error {
	for _, f := range g.Flows() {
		r := t.Route(f.ID)
		if r == nil {
			return fmt.Errorf("route: flow %d has no route: %w", f.ID, nocerr.ErrInvalidInput)
		}
		srcSw, ok := top.SwitchOf(int(f.Src))
		if !ok {
			return fmt.Errorf("route: core %d not attached to any switch: %w", f.Src, nocerr.ErrInvalidInput)
		}
		dstSw, ok := top.SwitchOf(int(f.Dst))
		if !ok {
			return fmt.Errorf("route: core %d not attached to any switch: %w", f.Dst, nocerr.ErrInvalidInput)
		}
		if len(r.Channels) == 0 {
			if srcSw != dstSw {
				return fmt.Errorf("route: flow %d has empty route but cores on different switches: %w", f.ID, nocerr.ErrInvalidInput)
			}
			continue
		}
		cur := srcSw
		seen := make(map[topology.LinkID]bool, len(r.Channels))
		for i, c := range r.Channels {
			if !top.ValidChannel(c) {
				return fmt.Errorf("route: flow %d hop %d uses invalid channel %v: %w", f.ID, i, c, nocerr.ErrInvalidInput)
			}
			if top.FaultedChannel(c) {
				return fmt.Errorf("route: flow %d hop %d crosses faulted link %d: %w", f.ID, i, c.Link, nocerr.ErrInvalidInput)
			}
			l := top.Link(c.Link)
			if l.From != cur {
				return fmt.Errorf("route: flow %d hop %d starts at switch %d, expected %d: %w", f.ID, i, l.From, cur, nocerr.ErrInvalidInput)
			}
			if seen[c.Link] {
				return fmt.Errorf("route: flow %d revisits physical link %d: %w", f.ID, c.Link, nocerr.ErrInvalidInput)
			}
			seen[c.Link] = true
			cur = l.To
		}
		if cur != dstSw {
			return fmt.Errorf("route: flow %d ends at switch %d, want %d: %w", f.ID, cur, dstSw, nocerr.ErrInvalidInput)
		}
	}
	return nil
}
