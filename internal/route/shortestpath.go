package route

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/graph"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// ShortestPaths computes a deterministic, load-aware static route for
// every flow of g over topology top. Flows are routed in descending
// bandwidth order (heavy flows get the straightest paths); each link's
// cost grows with the bandwidth already committed to it, which spreads
// traffic the way bandwidth-constrained NoC synthesis flows do. All
// routes use VC 0 of each link — the deadlock-removal algorithm is what
// later moves flows onto higher VCs.
func ShortestPaths(top *topology.Topology, g *traffic.Graph) (*Table, error) {
	return ShortestPathsWeighted(top, g, nil)
}

// ShortestPathsWeighted is ShortestPaths with per-link base costs (links
// absent from base default to 1). Topology synthesis uses this to keep
// through-traffic on its spanning backbone: backbone links cost 1 and
// chord links slightly more, so a chord is taken for the pair it directly
// connects but rarely mid-route — which is what keeps synthesized designs
// largely free of channel-dependency cycles, like the designs the paper's
// own synthesis tool produced.
func ShortestPathsWeighted(top *topology.Topology, g *traffic.Graph, base map[topology.LinkID]float64) (*Table, error) {
	sg := switchGraph(top)
	table := NewTable(g.NumFlows())
	load := make(map[topology.LinkID]float64, top.NumLinks())
	// Normalizing by total bandwidth keeps the load term a tie-breaker:
	// hop count dominates, congestion decides among equal-length paths.
	norm := g.TotalBandwidth()
	if norm <= 0 {
		norm = 1
	}
	baseCost := func(id topology.LinkID) float64 {
		if base == nil {
			return 1
		}
		if w, ok := base[id]; ok && w > 0 {
			return w
		}
		return 1
	}
	for _, fid := range g.FlowsSortedByBandwidth() {
		f := g.Flow(fid)
		srcSw, ok := top.SwitchOf(int(f.Src))
		if !ok {
			return nil, fmt.Errorf("route: core %d (flow %d) not attached: %w", f.Src, fid, nocerr.ErrInvalidInput)
		}
		dstSw, ok := top.SwitchOf(int(f.Dst))
		if !ok {
			return nil, fmt.Errorf("route: core %d (flow %d) not attached: %w", f.Dst, fid, nocerr.ErrInvalidInput)
		}
		if srcSw == dstSw {
			table.Set(fid, nil)
			continue
		}
		w := func(u, v int) float64 {
			id, ok := top.FindLink(topology.SwitchID(u), topology.SwitchID(v))
			if !ok {
				return 1e12 // defensive: switchGraph only has real links
			}
			return baseCost(id) + load[id]/norm
		}
		path := sg.DijkstraPath(int(srcSw), int(dstSw), w)
		if path == nil {
			return nil, fmt.Errorf("route: no path for flow %d from switch %d to %d: %w", fid, srcSw, dstSw, nocerr.ErrInvalidInput)
		}
		channels := make([]topology.Channel, 0, len(path)-1)
		for i := 0; i+1 < len(path); i++ {
			id, ok := top.FindLink(topology.SwitchID(path[i]), topology.SwitchID(path[i+1]))
			if !ok {
				return nil, fmt.Errorf("route: path uses missing link %d→%d: %w", path[i], path[i+1], nocerr.ErrInvalidInput)
			}
			channels = append(channels, topology.Chan(id, 0))
			load[id] += f.Bandwidth
		}
		table.Set(fid, channels)
	}
	return table, nil
}

// switchGraph projects the topology onto the generic digraph kernel.
// Faulted links are omitted, so every path search routes around them.
func switchGraph(top *topology.Topology) *graph.Digraph {
	sg := graph.New(top.NumSwitches())
	if n := top.NumSwitches(); n > 0 {
		sg.Ensure(n - 1)
	}
	for _, l := range top.Links() {
		if top.Faulted(l.ID) {
			continue
		}
		sg.AddEdge(int(l.From), int(l.To))
	}
	return sg
}

// Connected reports whether every flow of g can be routed on top at all
// (ignoring VCs); useful before attempting synthesis repairs.
func Connected(top *topology.Topology, g *traffic.Graph) bool {
	sg := switchGraph(top)
	for _, f := range g.Flows() {
		srcSw, ok1 := top.SwitchOf(int(f.Src))
		dstSw, ok2 := top.SwitchOf(int(f.Dst))
		if !ok1 || !ok2 {
			return false
		}
		if srcSw == dstSw {
			continue
		}
		if !sg.Reachable(int(srcSw), int(dstSw)) {
			return false
		}
	}
	return true
}
