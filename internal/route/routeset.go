package route

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// RouteSet holds, for every flow, an ordered list of candidate paths —
// the representation adaptive routing functions (turn models,
// minimal-adaptive, fault-tolerant reroute) produce. The deadlock-removal
// algorithm applies to a RouteSet unchanged through Flatten: every
// (flow, path) alternative becomes one pseudo-flow of an ordinary Table,
// so the channel dependency graph built from that table is exactly the
// union of the set's permitted channel transitions; a set with one path
// per flow flattens to a table with identical flow IDs, which is what
// pins the single-path case byte-identical to the classic pipeline.
//
// Path order is significant and deterministic: generators append in a
// fixed order, and Flatten/Unflatten preserve it.
type RouteSet struct {
	paths [][][]topology.Channel
}

// NewRouteSet returns a set sized for n flows, all initially empty.
func NewRouteSet(n int) *RouteSet {
	return &RouteSet{paths: make([][][]topology.Channel, n)}
}

// NumFlows returns the number of flow slots.
func (s *RouteSet) NumFlows() int { return len(s.paths) }

// Add appends one candidate path for a flow, growing the set if needed.
// Duplicate paths (identical channel sequences) are ignored.
func (s *RouteSet) Add(flowID int, channels []topology.Channel) {
	for len(s.paths) <= flowID {
		s.paths = append(s.paths, nil)
	}
	for _, p := range s.paths[flowID] {
		if channelsEqual(p, channels) {
			return
		}
	}
	s.paths[flowID] = append(s.paths[flowID], append([]topology.Channel(nil), channels...))
}

func channelsEqual(a, b []topology.Channel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NumPaths returns the number of candidate paths for a flow (0 if unset
// or out of range).
func (s *RouteSet) NumPaths(flowID int) int {
	if flowID < 0 || flowID >= len(s.paths) {
		return 0
	}
	return len(s.paths[flowID])
}

// TotalPaths returns the number of candidate paths across all flows.
func (s *RouteSet) TotalPaths() int {
	n := 0
	for _, ps := range s.paths {
		n += len(ps)
	}
	return n
}

// Paths returns deep copies of a flow's candidate paths in order.
func (s *RouteSet) Paths(flowID int) [][]topology.Channel {
	if flowID < 0 || flowID >= len(s.paths) {
		return nil
	}
	out := make([][]topology.Channel, len(s.paths[flowID]))
	for i, p := range s.paths[flowID] {
		out[i] = append([]topology.Channel(nil), p...)
	}
	return out
}

// Clone returns a deep copy of the set.
func (s *RouteSet) Clone() *RouteSet {
	c := NewRouteSet(len(s.paths))
	for f, ps := range s.paths {
		for _, p := range ps {
			c.paths[f] = append(c.paths[f], append([]topology.Channel(nil), p...))
		}
	}
	return c
}

// MaxLen returns the longest candidate path length in hops.
func (s *RouteSet) MaxLen() int {
	m := 0
	for _, ps := range s.paths {
		for _, p := range ps {
			if len(p) > m {
				m = len(p)
			}
		}
	}
	return m
}

// FromTable lifts a single-path route table into a RouteSet with exactly
// one candidate per flow (unset table slots stay empty).
func FromTable(tab *Table) *RouteSet {
	s := NewRouteSet(tab.NumFlows())
	for _, r := range tab.Routes() {
		s.Add(r.FlowID, r.Channels)
	}
	return s
}

// Single returns the set as a plain Table when every non-empty flow has
// exactly one candidate path, and reports whether that was the case.
func (s *RouteSet) Single() (*Table, bool) {
	tab := NewTable(len(s.paths))
	for f, ps := range s.paths {
		if len(ps) > 1 {
			return nil, false
		}
		if len(ps) == 1 {
			tab.Set(f, append([]topology.Channel(nil), ps[0]...))
		}
	}
	return tab, true
}

// Primary returns the first candidate path of every flow as a Table — a
// deterministic single-path projection of the set.
func (s *RouteSet) Primary() *Table {
	tab := NewTable(len(s.paths))
	for f, ps := range s.paths {
		if len(ps) > 0 {
			tab.Set(f, append([]topology.Channel(nil), ps[0]...))
		}
	}
	return tab
}

// AppendPath appends one candidate path for a flow without Add's
// duplicate filtering, growing the set if needed. It is the rebuild half
// of a flattened-table round trip: online reconfiguration reconstructs a
// set pseudo-flow by pseudo-flow from a rewritten table, and two
// candidates that the removal replay rewrote onto the same channel
// sequence must both survive so pseudo-flow identity stays aligned with
// the live CDG.
func (s *RouteSet) AppendPath(flowID int, channels []topology.Channel) {
	for len(s.paths) <= flowID {
		s.paths = append(s.paths, nil)
	}
	s.paths[flowID] = append(s.paths[flowID], append([]topology.Channel(nil), channels...))
}

// FlowsThrough returns, in ascending order, the IDs of every flow with
// at least one candidate path crossing the given physical link on any
// virtual channel. A fresh fault on that link displaces exactly these
// flows — they are the reroute set of an online reconfiguration.
func (s *RouteSet) FlowsThrough(link topology.LinkID) []int {
	var out []int
	for f, ps := range s.paths {
		for _, p := range ps {
			hit := false
			for _, c := range p {
				if c.Link == link {
					hit = true
					break
				}
			}
			if hit {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// PathRef identifies one candidate path: flow FlowID's Index-th path.
type PathRef struct {
	FlowID int
	Index  int
}

// Flatten expands the set into a Table of pseudo-flows, one per candidate
// path, in (flow, path-index) order, together with the pseudo-flow →
// path mapping. The channel dependency graph of the flattened table is
// the union of the set's permitted channel transitions, so the removal
// algorithm runs on it unchanged. A set with exactly one path per flow
// flattens to a table whose pseudo-flow IDs equal the real flow IDs.
func (s *RouteSet) Flatten() (*Table, []PathRef) {
	var refs []PathRef
	for f, ps := range s.paths {
		for i := range ps {
			refs = append(refs, PathRef{FlowID: f, Index: i})
		}
	}
	tab := NewTable(len(refs))
	for pseudo, ref := range refs {
		tab.Set(pseudo, append([]topology.Channel(nil), s.paths[ref.FlowID][ref.Index]...))
	}
	return tab, refs
}

// Unflatten rebuilds a RouteSet from a (possibly rewritten) flattened
// table and the mapping Flatten returned. Path identity and order are
// preserved; only the channel sequences come from the table.
func Unflatten(tab *Table, refs []PathRef, numFlows int) (*RouteSet, error) {
	s := NewRouteSet(numFlows)
	for pseudo, ref := range refs {
		r := tab.Route(pseudo)
		if r == nil {
			return nil, fmt.Errorf("route: pseudo-flow %d (flow %d path %d) missing from flattened table: %w",
				pseudo, ref.FlowID, ref.Index, nocerr.ErrInvalidInput)
		}
		for len(s.paths) <= ref.FlowID {
			s.paths = append(s.paths, nil)
		}
		if len(s.paths[ref.FlowID]) != ref.Index {
			return nil, fmt.Errorf("route: path refs out of order at pseudo-flow %d: %w", pseudo, nocerr.ErrInvalidInput)
		}
		s.paths[ref.FlowID] = append(s.paths[ref.FlowID], append([]topology.Channel(nil), r.Channels...))
	}
	return s, nil
}

// Validate checks the set against a topology and traffic graph: every
// flow has at least one path, every path is a contiguous switch walk from
// the flow's source switch to its destination switch over provisioned,
// non-faulted channels with no repeated physical link, no path visits the
// destination switch before its final hop, and no two transitions leave
// the same channel toward the same channel twice (which Add's dedup
// already guarantees at path granularity).
func (s *RouteSet) Validate(top *topology.Topology, g *traffic.Graph) error {
	for _, f := range g.Flows() {
		if f.ID >= len(s.paths) || len(s.paths[f.ID]) == 0 {
			return fmt.Errorf("route: flow %d has no candidate path: %w", f.ID, nocerr.ErrInvalidInput)
		}
		ps := s.paths[f.ID]
		srcSw, ok := top.SwitchOf(int(f.Src))
		if !ok {
			return fmt.Errorf("route: core %d not attached to any switch: %w", f.Src, nocerr.ErrInvalidInput)
		}
		dstSw, ok := top.SwitchOf(int(f.Dst))
		if !ok {
			return fmt.Errorf("route: core %d not attached to any switch: %w", f.Dst, nocerr.ErrInvalidInput)
		}
		for pi, p := range ps {
			if len(p) == 0 {
				if srcSw != dstSw {
					return fmt.Errorf("route: flow %d path %d empty but cores on different switches: %w", f.ID, pi, nocerr.ErrInvalidInput)
				}
				continue
			}
			cur := srcSw
			seen := make(map[topology.LinkID]bool, len(p))
			for i, c := range p {
				if !top.ValidChannel(c) {
					return fmt.Errorf("route: flow %d path %d hop %d uses invalid channel %v: %w", f.ID, pi, i, c, nocerr.ErrInvalidInput)
				}
				if top.FaultedChannel(c) {
					return fmt.Errorf("route: flow %d path %d hop %d crosses faulted link %d: %w", f.ID, pi, i, c.Link, nocerr.ErrInvalidInput)
				}
				l := top.Link(c.Link)
				if l.From != cur {
					return fmt.Errorf("route: flow %d path %d hop %d starts at switch %d, expected %d: %w", f.ID, pi, i, l.From, cur, nocerr.ErrInvalidInput)
				}
				if seen[c.Link] {
					return fmt.Errorf("route: flow %d path %d revisits physical link %d: %w", f.ID, pi, c.Link, nocerr.ErrInvalidInput)
				}
				seen[c.Link] = true
				cur = l.To
				if cur == dstSw && i != len(p)-1 {
					return fmt.Errorf("route: flow %d path %d passes through destination switch %d mid-route: %w", f.ID, pi, dstSw, nocerr.ErrInvalidInput)
				}
			}
			if cur != dstSw {
				return fmt.Errorf("route: flow %d path %d ends at switch %d, want %d: %w", f.ID, pi, cur, dstSw, nocerr.ErrInvalidInput)
			}
		}
	}
	return nil
}
