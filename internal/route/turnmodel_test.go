package route_test

import (
	"fmt"
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/traffic"
)

// allToAll builds a traffic graph with one core per switch and one flow
// per ordered pair — the exhaustive pattern for connectivity properties.
func allToAll(t *testing.T, n int) *traffic.Graph {
	t.Helper()
	g := traffic.NewGraph(fmt.Sprintf("all2all_%d", n))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				g.MustAddFlow(traffic.CoreID(s), traffic.CoreID(d), 10)
			}
		}
	}
	return g
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

var adaptiveModels = []route.TurnModel{
	route.WestFirst, route.NorthLast, route.NegativeFirst, route.OddEven,
}

// TestTurnModelsConnectedAndValid pins the connectivity property: on
// fault-free meshes of several shapes, every turn model routes every
// ordered pair with at least one valid minimal path.
func TestTurnModelsConnectedAndValid(t *testing.T) {
	shapes := [][2]int{{3, 3}, {4, 4}, {5, 3}, {2, 4}, {6, 6}}
	models := append([]route.TurnModel{route.DOR, route.MinimalAdaptive}, adaptiveModels...)
	for _, sh := range shapes {
		grid, err := regular.Mesh(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		g := allToAll(t, sh[0]*sh[1])
		for _, m := range models {
			set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), m, 0)
			if err != nil {
				t.Fatalf("mesh %dx%d %s: %v", sh[0], sh[1], m, err)
			}
			if err := set.Validate(grid.Topology, g); err != nil {
				t.Fatalf("mesh %dx%d %s: invalid set: %v", sh[0], sh[1], m, err)
			}
			// Every path must be minimal: no fallback should have fired on
			// a fault-free mesh. Core i is attached to switch i.
			for _, f := range g.Flows() {
				sx, sy := int(f.Src)%sh[0], int(f.Src)/sh[0]
				dx, dy := int(f.Dst)%sh[0], int(f.Dst)/sh[0]
				want := abs(sx-dx) + abs(sy-dy)
				for _, p := range set.Paths(f.ID) {
					if len(p) != want {
						t.Fatalf("mesh %dx%d %s flow %d: path len %d, want minimal %d",
							sh[0], sh[1], m, f.ID, len(p), want)
					}
				}
			}
		}
	}
}

// TestTurnModelCDGAcyclicByConstruction pins the defining property of the
// four turn models: the CDG over the union of permitted transitions is
// acyclic on a mesh with NO removal step — they are deadlock-free by
// construction. MinimalAdaptive is the counterpoint: fully adaptive
// minimal routing must produce a cyclic CDG on a 4x4 (or larger) mesh.
func TestTurnModelCDGAcyclicByConstruction(t *testing.T) {
	for _, sh := range [][2]int{{3, 3}, {4, 4}, {5, 5}, {6, 4}} {
		grid, err := regular.Mesh(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		g := allToAll(t, sh[0]*sh[1])
		for _, m := range adaptiveModels {
			set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), m, 8)
			if err != nil {
				t.Fatalf("%s on %dx%d: %v", m, sh[0], sh[1], err)
			}
			c, _, err := cdg.BuildSet(grid.Topology, set)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Acyclic() {
				t.Errorf("%s on %dx%d mesh: union CDG cyclic — turn model guarantee violated", m, sh[0], sh[1])
			}
		}
		set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.MinimalAdaptive, 8)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := cdg.BuildSet(grid.Topology, set)
		if err != nil {
			t.Fatal(err)
		}
		if sh[0] >= 4 && sh[1] >= 4 && c.Acyclic() {
			t.Errorf("min-adaptive on %dx%d mesh: CDG unexpectedly acyclic", sh[0], sh[1])
		}
	}
}

// TestGridRoutesAroundFaults faults links and checks the generated sets
// still connect every pair without touching the faulted links.
func TestGridRoutesAroundFaults(t *testing.T) {
	grid, err := regular.Mesh(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 25)
	for seed := int64(0); seed < 4; seed++ {
		ids, err := regular.SelectFaults(grid, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		top := grid.Topology.Clone()
		if err := top.Fault(ids...); err != nil {
			t.Fatal(err)
		}
		for _, m := range append([]route.TurnModel{route.MinimalAdaptive}, adaptiveModels...) {
			set, err := route.GridRoutes(top, g, grid.Spec(), m, 4)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m, err)
			}
			// Validate rejects faulted channels, so this covers avoidance.
			if err := set.Validate(top, g); err != nil {
				t.Fatalf("seed %d %s: %v", seed, m, err)
			}
		}
		// Deterministic DOR must refuse to route across a fault for at
		// least one pair when a fault lies on an XY path (it may succeed
		// for lucky fault placements, so only check it never silently
		// crosses a faulted link).
		if set, err := route.GridRoutes(top, g, grid.Spec(), route.DOR, 1); err == nil {
			if err := set.Validate(top, g); err != nil {
				t.Fatalf("seed %d dor: set invalid: %v", seed, err)
			}
		}
	}
}

// TestDORFaultHardError pins that DOR takes no fault escape: with
// all-to-all traffic every link lies on some flow's XY path, so faulting
// any single link must make DOR generation fail rather than silently
// detour.
func TestDORFaultHardError(t *testing.T) {
	grid, err := regular.Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 9)
	top := grid.Topology.Clone()
	if err := top.Fault(grid.Topology.Links()[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := route.GridRoutes(top, g, grid.Spec(), route.DOR, 1); err == nil {
		t.Fatal("DOR routed around a fault on an XY path — the no-escape contract is broken")
	}
}

// TestTurnModelDeterminism pins that generation is a pure function of
// its inputs: two runs produce identical sets.
func TestTurnModelDeterminism(t *testing.T) {
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 16)
	for _, m := range adaptiveModels {
		a, err := route.GridRoutes(grid.Topology, g, grid.Spec(), m, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := route.GridRoutes(grid.Topology, g, grid.Spec(), m, 4)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < g.NumFlows(); f++ {
			pa, pb := a.Paths(f), b.Paths(f)
			if len(pa) != len(pb) {
				t.Fatalf("%s flow %d: %d vs %d paths", m, f, len(pa), len(pb))
			}
			for i := range pa {
				if fmt.Sprint(pa[i]) != fmt.Sprint(pb[i]) {
					t.Fatalf("%s flow %d path %d differs", m, f, i)
				}
			}
		}
	}
}

// TestParseTurnModelRoundTrip checks names round-trip through the parser.
func TestParseTurnModelRoundTrip(t *testing.T) {
	for _, name := range route.TurnModelNames() {
		m, err := route.ParseTurnModel(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Errorf("round trip %q → %q", name, m.String())
		}
	}
	if _, err := route.ParseTurnModel("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
}

// TestFlattenSinglePathIdentity pins the flatten contract: a single-path
// set flattens to a table whose pseudo-flow IDs equal the flow IDs.
func TestFlattenSinglePathIdentity(t *testing.T) {
	grid, err := regular.Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 9)
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	set := route.FromTable(tab)
	flat, refs := set.Flatten()
	if flat.NumFlows() != g.NumFlows() {
		t.Fatalf("flattened %d pseudo-flows, want %d", flat.NumFlows(), g.NumFlows())
	}
	for i, ref := range refs {
		if ref.FlowID != i || ref.Index != 0 {
			t.Fatalf("ref %d = %+v, want identity", i, ref)
		}
		if fmt.Sprint(flat.Route(i).Channels) != fmt.Sprint(tab.Route(i).Channels) {
			t.Fatalf("flow %d channels differ", i)
		}
	}
	if single, ok := set.Single(); !ok || single.NumFlows() != tab.NumFlows() {
		t.Fatal("Single() lost the set")
	}
}

// TestGridRoutesDORMatchesRegular pins the two DOR implementations to
// each other: route.GridRoutes under the DOR model must produce exactly
// the channel sequences of regular.DORRoutes on mesh and torus — the
// claim that dor sweep cells match the classic single-path pipeline
// rests on the two XY walks (and their tie-breaks) staying in sync.
func TestGridRoutesDORMatchesRegular(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		var grid *regular.Grid
		var err error
		if wrap {
			grid, err = regular.Torus(4, 4)
		} else {
			grid, err = regular.Mesh(4, 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		g := allToAll(t, 16)
		tab, err := regular.DORRoutes(grid, g)
		if err != nil {
			t.Fatal(err)
		}
		set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.DOR, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range g.Flows() {
			ps := set.Paths(f.ID)
			if len(ps) != 1 {
				t.Fatalf("wrap=%v flow %d: %d DOR paths, want 1", wrap, f.ID, len(ps))
			}
			if fmt.Sprint(ps[0]) != fmt.Sprint(tab.Route(f.ID).Channels) {
				t.Fatalf("wrap=%v flow %d: DOR paths diverge:\n GridRoutes: %v\n DORRoutes:  %v",
					wrap, f.ID, ps[0], tab.Route(f.ID).Channels)
			}
		}
	}
}
