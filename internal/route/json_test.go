package route

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/topology"
)

func TestJSONRoundTrip(t *testing.T) {
	tab := NewTable(3)
	tab.Set(0, []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 2)})
	tab.Set(1, nil) // local route must survive the round trip
	tab.Set(2, []topology.Channel{topology.Chan(3, 1)})
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Routes()) != 3 {
		t.Fatalf("round trip lost routes: %d", len(got.Routes()))
	}
	r0 := got.Route(0)
	if r0.Len() != 2 || r0.Channels[1] != topology.Chan(1, 2) {
		t.Errorf("route 0 = %+v", r0)
	}
	if got.Route(1) == nil || got.Route(1).Len() != 0 {
		t.Error("local route lost")
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	cases := []string{
		`{`,
		`{"routes":[{"flow":-1,"channels":[]}]}`,
		`{"routes":[{"flow":0,"channels":[{"link":-1,"vc":0}]}]}`,
		`{"routes":[{"flow":0,"channels":[]},{"flow":0,"channels":[]}]}`,
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}
