package route

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/topology"
)

type jsonTable struct {
	Routes []jsonRoute `json:"routes"`
}

type jsonRoute struct {
	Flow     int           `json:"flow"`
	Channels []jsonChannel `json:"channels"`
}

type jsonChannel struct {
	Link int `json:"link"`
	VC   int `json:"vc"`
}

// MarshalJSON encodes the set routes in a stable schema. Unset slots are
// omitted; empty (local) routes are encoded with an empty channel list.
func (t *Table) MarshalJSON() ([]byte, error) {
	jt := jsonTable{}
	for _, r := range t.Routes() {
		jr := jsonRoute{Flow: r.FlowID, Channels: []jsonChannel{}}
		for _, ch := range r.Channels {
			jr.Channels = append(jr.Channels, jsonChannel{Link: int(ch.Link), VC: ch.VC})
		}
		jt.Routes = append(jt.Routes, jr)
	}
	return json.MarshalIndent(jt, "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("route: %w: %w", nocerr.ErrInvalidInput, err)
	}
	nt := NewTable(0)
	for _, jr := range jt.Routes {
		if jr.Flow < 0 {
			return fmt.Errorf("route: negative flow ID %d: %w", jr.Flow, nocerr.ErrInvalidInput)
		}
		if nt.Route(jr.Flow) != nil {
			return fmt.Errorf("route: duplicate route for flow %d: %w", jr.Flow, nocerr.ErrInvalidInput)
		}
		channels := make([]topology.Channel, 0, len(jr.Channels))
		for _, jc := range jr.Channels {
			if jc.Link < 0 || jc.VC < 0 {
				return fmt.Errorf("route: flow %d has negative link/vc: %w", jr.Flow, nocerr.ErrInvalidInput)
			}
			channels = append(channels, topology.Chan(topology.LinkID(jc.Link), jc.VC))
		}
		nt.Set(jr.Flow, channels)
	}
	*t = *nt
	return nil
}

// Write serializes the table as JSON to w.
func (t *Table) Write(w io.Writer) error {
	data, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Read parses a route table from JSON.
func Read(r io.Reader) (*Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	t := NewTable(0)
	if err := t.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return t, nil
}

type jsonSet struct {
	Flows []jsonSetFlow `json:"flows"`
}

type jsonSetFlow struct {
	Flow  int             `json:"flow"`
	Paths [][]jsonChannel `json:"paths"`
}

// MarshalJSON encodes the set with one entry per flow slot, candidate
// paths in order. Every slot is emitted — including empty ones — so the
// flow count round-trips exactly.
func (s *RouteSet) MarshalJSON() ([]byte, error) {
	js := jsonSet{Flows: []jsonSetFlow{}}
	for f, ps := range s.paths {
		jf := jsonSetFlow{Flow: f, Paths: [][]jsonChannel{}}
		for _, p := range ps {
			jp := []jsonChannel{}
			for _, ch := range p {
				jp = append(jp, jsonChannel{Link: int(ch.Link), VC: ch.VC})
			}
			jf.Paths = append(jf.Paths, jp)
		}
		js.Flows = append(js.Flows, jf)
	}
	return json.MarshalIndent(js, "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON. Duplicate
// candidate paths are preserved as written (AppendPath semantics), so a
// set survives the round trip path-for-path.
func (s *RouteSet) UnmarshalJSON(data []byte) error {
	var js jsonSet
	if err := json.Unmarshal(data, &js); err != nil {
		return fmt.Errorf("route: %w: %w", nocerr.ErrInvalidInput, err)
	}
	ns := NewRouteSet(0)
	seen := make(map[int]bool, len(js.Flows))
	for _, jf := range js.Flows {
		if jf.Flow < 0 {
			return fmt.Errorf("route: negative flow ID %d: %w", jf.Flow, nocerr.ErrInvalidInput)
		}
		if seen[jf.Flow] {
			return fmt.Errorf("route: duplicate flow %d in route set: %w", jf.Flow, nocerr.ErrInvalidInput)
		}
		seen[jf.Flow] = true
		for len(ns.paths) <= jf.Flow {
			ns.paths = append(ns.paths, nil)
		}
		for _, jp := range jf.Paths {
			channels := make([]topology.Channel, 0, len(jp))
			for _, jc := range jp {
				if jc.Link < 0 || jc.VC < 0 {
					return fmt.Errorf("route: flow %d has negative link/vc: %w", jf.Flow, nocerr.ErrInvalidInput)
				}
				channels = append(channels, topology.Chan(topology.LinkID(jc.Link), jc.VC))
			}
			ns.AppendPath(jf.Flow, channels)
		}
	}
	*s = *ns
	return nil
}

// Write serializes the set as JSON to w.
func (s *RouteSet) Write(w io.Writer) error {
	data, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadSet parses a route set from JSON.
func ReadSet(r io.Reader) (*RouteSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	s := NewRouteSet(0)
	if err := s.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return s, nil
}
