package route

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/topology"
)

type jsonTable struct {
	Routes []jsonRoute `json:"routes"`
}

type jsonRoute struct {
	Flow     int           `json:"flow"`
	Channels []jsonChannel `json:"channels"`
}

type jsonChannel struct {
	Link int `json:"link"`
	VC   int `json:"vc"`
}

// MarshalJSON encodes the set routes in a stable schema. Unset slots are
// omitted; empty (local) routes are encoded with an empty channel list.
func (t *Table) MarshalJSON() ([]byte, error) {
	jt := jsonTable{}
	for _, r := range t.Routes() {
		jr := jsonRoute{Flow: r.FlowID, Channels: []jsonChannel{}}
		for _, ch := range r.Channels {
			jr.Channels = append(jr.Channels, jsonChannel{Link: int(ch.Link), VC: ch.VC})
		}
		jt.Routes = append(jt.Routes, jr)
	}
	return json.MarshalIndent(jt, "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("route: %w: %w", nocerr.ErrInvalidInput, err)
	}
	nt := NewTable(0)
	for _, jr := range jt.Routes {
		if jr.Flow < 0 {
			return fmt.Errorf("route: negative flow ID %d: %w", jr.Flow, nocerr.ErrInvalidInput)
		}
		if nt.Route(jr.Flow) != nil {
			return fmt.Errorf("route: duplicate route for flow %d: %w", jr.Flow, nocerr.ErrInvalidInput)
		}
		channels := make([]topology.Channel, 0, len(jr.Channels))
		for _, jc := range jr.Channels {
			if jc.Link < 0 || jc.VC < 0 {
				return fmt.Errorf("route: flow %d has negative link/vc: %w", jr.Flow, nocerr.ErrInvalidInput)
			}
			channels = append(channels, topology.Chan(topology.LinkID(jc.Link), jc.VC))
		}
		nt.Set(jr.Flow, channels)
	}
	*t = *nt
	return nil
}

// Write serializes the table as JSON to w.
func (t *Table) Write(w io.Writer) error {
	data, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Read parses a route table from JSON.
func Read(r io.Reader) (*Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	t := NewTable(0)
	if err := t.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return t, nil
}
