package route_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// TestRegenerateFlowsMatchesGridRoutes pins the equivalence that makes
// incremental rerouting sound: regenerating any subset of flows yields
// path-for-path what a full GridRoutes run yields for those flows, on
// both clean and faulted grids.
func TestRegenerateFlowsMatchesGridRoutes(t *testing.T) {
	grid, err := regular.Mesh(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 25)
	ids, err := regular.SelectFaults(grid, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	faulted := grid.Topology.Clone()
	if err := faulted.Fault(ids...); err != nil {
		t.Fatal(err)
	}
	for _, top := range []*topology.Topology{grid.Topology, faulted} {
		for _, m := range append([]route.TurnModel{route.MinimalAdaptive}, adaptiveModels...) {
			full, err := route.GridRoutes(top, g, grid.Spec(), m, 4)
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			all := make([]int, g.NumFlows())
			for i := range all {
				all[i] = i
			}
			regen, err := route.RegenerateFlows(top, g, grid.Spec(), m, 4, all)
			if err != nil {
				t.Fatalf("%s: RegenerateFlows: %v", m, err)
			}
			for _, f := range all {
				want := full.Paths(f)
				got := regen[f]
				if len(got) == 0 && len(want) == 1 && len(want[0]) == 0 {
					continue // local flow: GridRoutes stores one empty path
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s flow %d: regenerated paths %v, want %v", m, f, got, want)
				}
			}
		}
	}
}

func TestRegenerateFlowsRejectsBadInput(t *testing.T) {
	grid, err := regular.Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 9)
	if _, err := route.RegenerateFlows(grid.Topology, g, grid.Spec(), route.OddEven, 4, []int{999}); !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Errorf("unknown flow: err = %v, want ErrInvalidInput", err)
	}
	bad := route.GridSpec{Cols: 2, Rows: 2}
	if _, err := route.RegenerateFlows(grid.Topology, g, bad, route.OddEven, 4, []int{0}); !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Errorf("mismatched grid: err = %v, want ErrInvalidInput", err)
	}
}

func TestFlowsThrough(t *testing.T) {
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 16)
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.OddEven, 4)
	if err != nil {
		t.Fatal(err)
	}
	for link := topology.LinkID(0); int(link) < grid.Topology.NumLinks(); link++ {
		got := set.FlowsThrough(link)
		// Brute-force reference over the public Paths accessor.
		var want []int
		for f := 0; f < set.NumFlows(); f++ {
		scan:
			for _, p := range set.Paths(f) {
				for _, c := range p {
					if c.Link == link {
						want = append(want, f)
						break scan
					}
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("link %d: FlowsThrough = %v, want %v", link, got, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("link %d: FlowsThrough not strictly ascending: %v", link, got)
			}
		}
	}
}

// TestAppendPathKeepsDuplicates pins that AppendPath bypasses Add's
// dedup — required so rebuilt sets stay aligned with pseudo-flow IDs
// even when a removal replay rewrites two candidates onto one sequence.
func TestAppendPathKeepsDuplicates(t *testing.T) {
	p := []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0)}
	s := route.NewRouteSet(1)
	s.Add(0, p)
	s.Add(0, p)
	if s.NumPaths(0) != 1 {
		t.Fatalf("Add deduped to %d paths, want 1", s.NumPaths(0))
	}
	s.AppendPath(0, p)
	if s.NumPaths(0) != 2 {
		t.Fatalf("AppendPath gave %d paths, want 2", s.NumPaths(0))
	}
	// Growth past the initial size, matching Add's behaviour.
	s.AppendPath(3, nil)
	if s.NumFlows() != 4 {
		t.Fatalf("NumFlows = %d after growing append, want 4", s.NumFlows())
	}
}

func TestRouteSetJSONRoundTrip(t *testing.T) {
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := allToAll(t, 16)
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), route.WestFirst, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A duplicate candidate, an empty (pathless) slot, and an empty local
	// path must all survive the round trip.
	set.AppendPath(0, set.Paths(0)[0])
	set.AppendPath(set.NumFlows()+1, nil)

	var buf bytes.Buffer
	if err := set.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := route.ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFlows() != set.NumFlows() {
		t.Fatalf("NumFlows = %d, want %d", got.NumFlows(), set.NumFlows())
	}
	for f := 0; f < set.NumFlows(); f++ {
		if !reflect.DeepEqual(got.Paths(f), set.Paths(f)) {
			t.Fatalf("flow %d: paths %v, want %v", f, got.Paths(f), set.Paths(f))
		}
	}
}

func TestReadSetRejectsBadJSON(t *testing.T) {
	cases := []string{
		`{"flows":[{"flow":-1,"paths":[]}]}`,
		`{"flows":[{"flow":0,"paths":[]},{"flow":0,"paths":[]}]}`,
		`{"flows":[{"flow":0,"paths":[[{"link":-2,"vc":0}]]}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := route.ReadSet(bytes.NewReader([]byte(c))); !errors.Is(err, nocerr.ErrInvalidInput) {
			t.Errorf("%s: err = %v, want ErrInvalidInput", c, err)
		}
	}
}
