package route

import (
	"testing"

	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// ringSetup builds the paper's Figure 1 ring with one core per switch and
// the four flows F1..F4 routed exactly as in the paper.
func ringSetup(t *testing.T) (*topology.Topology, *traffic.Graph, *Table) {
	t.Helper()
	top := topology.New("ring")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		if err := top.AttachCore(i, sw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%4))
	}
	g := traffic.NewGraph("ringflows")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	// F1: core0→core3 via L1,L2,L3; F2: core2→core0 via L3,L4;
	// F3: core3→core1 via L4,L1; F4: core0→core2 via L1,L2.
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	tab := NewTable(4)
	ch := func(ids ...int) []topology.Channel {
		out := make([]topology.Channel, len(ids))
		for i, id := range ids {
			out[i] = topology.Chan(topology.LinkID(id), 0)
		}
		return out
	}
	tab.Set(0, ch(0, 1, 2))
	tab.Set(1, ch(2, 3))
	tab.Set(2, ch(3, 0))
	tab.Set(3, ch(0, 1))
	return top, g, tab
}

func TestValidateAcceptsPaperRoutes(t *testing.T) {
	top, g, tab := ringSetup(t)
	if err := tab.Validate(top, g); err != nil {
		t.Errorf("paper routes rejected: %v", err)
	}
}

func TestValidateCatchesBrokenRoutes(t *testing.T) {
	top, g, tab := ringSetup(t)

	bad := tab.Clone()
	bad.Set(0, []topology.Channel{topology.Chan(0, 0), topology.Chan(2, 0)}) // gap at SW2
	if err := bad.Validate(top, g); err == nil {
		t.Error("discontiguous route accepted")
	}

	bad = tab.Clone()
	bad.Set(0, []topology.Channel{topology.Chan(0, 5)}) // VC 5 not provisioned
	if err := bad.Validate(top, g); err == nil {
		t.Error("unprovisioned VC accepted")
	}

	bad = tab.Clone()
	bad.Set(0, nil) // empty route but cores on different switches
	if err := bad.Validate(top, g); err == nil {
		t.Error("empty route across switches accepted")
	}

	bad = NewTable(2)
	bad.Set(0, tab.Route(0).Channels)
	if err := bad.Validate(top, g); err == nil {
		t.Error("missing route accepted")
	}
}

func TestValidateCatchesLinkRevisit(t *testing.T) {
	top := topology.New("t")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	top.MustAddLink(a, b)
	top.MustAddLink(b, a)
	top.AttachCore(0, a)
	top.AttachCore(1, a)
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 1)
	tab := NewTable(1)
	// a→b→a→b… reuses link 0: must be rejected even though it is contiguous.
	tab.Set(0, []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 0)})
	if err := tab.Validate(top, g); err != nil {
		t.Fatalf("legal round trip rejected: %v", err)
	}
	tab.Set(0, []topology.Channel{
		topology.Chan(0, 0), topology.Chan(1, 0), topology.Chan(0, 0), topology.Chan(1, 0),
	})
	if err := tab.Validate(top, g); err == nil {
		t.Error("link revisit accepted")
	}
}

func TestTableAccessors(t *testing.T) {
	_, _, tab := ringSetup(t)
	if tab.Route(99) != nil || tab.Route(-1) != nil {
		t.Error("out-of-range Route not nil")
	}
	if tab.MaxLen() != 3 {
		t.Errorf("MaxLen = %d, want 3", tab.MaxLen())
	}
	if got := tab.AvgLen(); got != 2.25 {
		t.Errorf("AvgLen = %f, want 2.25", got)
	}
	if got := len(tab.Routes()); got != 4 {
		t.Errorf("Routes count = %d", got)
	}
	// Set should grow the table.
	tab.Set(10, nil)
	if tab.NumFlows() != 11 {
		t.Errorf("NumFlows after grow = %d", tab.NumFlows())
	}
}

func TestChannelUsers(t *testing.T) {
	_, _, tab := ringSetup(t)
	users := tab.ChannelUsers()
	l1 := topology.Chan(0, 0)
	got := users[l1]
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("users of L1 = %v, want [0 2 3]", got)
	}
}

func TestLinkLoads(t *testing.T) {
	_, g, tab := ringSetup(t)
	loads := tab.LinkLoads(g)
	if loads[0] != 300 { // flows 0, 2, 3 each 100 MB/s over L1
		t.Errorf("load on L1 = %f, want 300", loads[0])
	}
}

func TestCloneIsDeep(t *testing.T) {
	_, _, tab := ringSetup(t)
	c := tab.Clone()
	c.Route(0).Channels[0] = topology.Chan(3, 0)
	if tab.Route(0).Channels[0] != topology.Chan(0, 0) {
		t.Error("clone shares channel storage")
	}
}

func TestRouteString(t *testing.T) {
	top, _, tab := ringSetup(t)
	if got := tab.Route(0).String(top); got != "L1 → L2 → L3" {
		t.Errorf("String = %q", got)
	}
	empty := &Route{FlowID: 9}
	if got := empty.String(top); got != "(local)" {
		t.Errorf("empty String = %q", got)
	}
}

func TestShortestPathsOnRing(t *testing.T) {
	top, g, _ := ringSetup(t)
	tab, err := ShortestPaths(top, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(top, g); err != nil {
		t.Errorf("computed routes invalid: %v", err)
	}
	// On a unidirectional ring there is exactly one path per pair, so the
	// routes must match the paper's.
	if got := tab.Route(0).Len(); got != 3 {
		t.Errorf("flow 0 route length = %d, want 3", got)
	}
	if got := tab.Route(1).Len(); got != 2 {
		t.Errorf("flow 1 route length = %d, want 2", got)
	}
}

func TestShortestPathsLocalFlow(t *testing.T) {
	top := topology.New("t")
	sw := top.AddSwitch("")
	top.AddSwitch("")
	top.AttachCore(0, sw)
	top.AttachCore(1, sw)
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 10)
	tab, err := ShortestPaths(top, g)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Route(0).Len() != 0 {
		t.Error("same-switch flow got a non-empty route")
	}
	if err := tab.Validate(top, g); err != nil {
		t.Error(err)
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	top := topology.New("t")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	top.MustAddLink(a, b) // no way back
	top.AttachCore(0, b)
	top.AttachCore(1, a)
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 10)
	if _, err := ShortestPaths(top, g); err == nil {
		t.Error("unroutable flow accepted")
	}
	if Connected(top, g) {
		t.Error("Connected = true for unroutable flow")
	}
}

func TestShortestPathsUnattachedCore(t *testing.T) {
	top := topology.New("t")
	top.AddSwitch("")
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 10)
	if _, err := ShortestPaths(top, g); err == nil {
		t.Error("unattached core accepted")
	}
	if Connected(top, g) {
		t.Error("Connected = true with unattached core")
	}
}

func TestShortestPathsLoadBalances(t *testing.T) {
	// Two equal-length parallel paths a→{b,c}→d; two heavy flows should
	// not both take the same middle switch.
	top := topology.New("t")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	c := top.AddSwitch("")
	d := top.AddSwitch("")
	top.MustAddLink(a, b)
	top.MustAddLink(b, d)
	top.MustAddLink(a, c)
	top.MustAddLink(c, d)
	top.AttachCore(0, a)
	top.AttachCore(1, d)
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 100)
	g.MustAddFlow(0, 1, 100)
	tab, err := ShortestPaths(top, g)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Route(0).Channels[0].Link
	second := tab.Route(1).Channels[0].Link
	if first == second {
		t.Errorf("both flows routed over link %d; expected load balancing", first)
	}
}

func TestShortestPathsDeterministic(t *testing.T) {
	top := topology.New("t")
	g := traffic.RandomKOut("r", 8, 2, 7)
	for i := 0; i < 4; i++ {
		top.AddSwitch("")
	}
	for i := 0; i < 8; i++ {
		top.AttachCore(i, topology.SwitchID(i%4))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				top.MustAddLink(topology.SwitchID(i), topology.SwitchID(j))
			}
		}
	}
	t1, err := ShortestPaths(top, g)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ShortestPaths(top, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumFlows(); i++ {
		r1, r2 := t1.Route(i), t2.Route(i)
		if r1.Len() != r2.Len() {
			t.Fatalf("flow %d nondeterministic length", i)
		}
		for h := range r1.Channels {
			if r1.Channels[h] != r2.Channels[h] {
				t.Fatalf("flow %d hop %d differs", i, h)
			}
		}
	}
}
