package route

import (
	"fmt"
	"sort"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// TurnModel names a routing function for 2D grids. The four classic turn
// models (Glass & Ni's west-first, north-last, negative-first and Chiu's
// odd-even) restrict which 90° turns a packet may take so the channel
// dependency graph over *all* permitted transitions is acyclic by
// construction on a mesh — they are the standard deadlock-avoidance
// comparison point the removal method competes with. MinimalAdaptive
// permits every minimal turn and is deliberately deadlock-prone: it is
// the "arbitrary route set" input the paper's removal method exists for.
// DOR is the deterministic dimension-ordered baseline lifted into the
// RouteSet representation.
type TurnModel int

const (
	// DOR routes X fully, then Y — one deterministic path per flow.
	DOR TurnModel = iota
	// WestFirst takes all westward hops first: turns into west (N→W,
	// S→W) are prohibited.
	WestFirst
	// NorthLast goes north only as the final leg: turns out of north
	// (N→E, N→W) are prohibited.
	NorthLast
	// NegativeFirst takes negative-direction (west/south) hops first:
	// positive-to-negative turns (N→W, E→S) are prohibited.
	NegativeFirst
	// OddEven applies Chiu's parity rules: E→N and E→S turns are
	// prohibited in even columns, N→W and S→W turns in odd columns.
	OddEven
	// MinimalAdaptive permits every minimal turn (fully adaptive,
	// minimal). Its union CDG is cyclic on any mesh large enough to turn
	// in — the adversarial input for the removal algorithm.
	MinimalAdaptive
)

var turnModelNames = map[TurnModel]string{
	DOR:             "dor",
	WestFirst:       "west-first",
	NorthLast:       "north-last",
	NegativeFirst:   "negative-first",
	OddEven:         "odd-even",
	MinimalAdaptive: "min-adaptive",
}

// String returns the canonical spelling used by CLI flags and reports.
func (m TurnModel) String() string {
	if s, ok := turnModelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("TurnModel(%d)", int(m))
}

// TurnModelNames returns the canonical names in flag-help order.
func TurnModelNames() []string {
	return []string{"dor", "west-first", "north-last", "negative-first", "odd-even", "min-adaptive"}
}

// ParseTurnModel resolves a canonical name (as printed by String) to its
// TurnModel; the empty string means DOR.
func ParseTurnModel(s string) (TurnModel, error) {
	switch s {
	case "", "dor":
		return DOR, nil
	case "west-first":
		return WestFirst, nil
	case "north-last":
		return NorthLast, nil
	case "negative-first":
		return NegativeFirst, nil
	case "odd-even":
		return OddEven, nil
	case "min-adaptive", "minimal-adaptive":
		return MinimalAdaptive, nil
	}
	return 0, fmt.Errorf("route: unknown turn model %q (valid: dor, west-first, north-last, negative-first, odd-even, min-adaptive): %w",
		s, nocerr.ErrInvalidInput)
}

// dir is a grid hop direction.
type dir int

const (
	dirNone dir = iota // injection: the packet has not moved yet
	dirE               // +x
	dirW               // -x
	dirN               // +y
	dirS               // -y
)

// permittedTurn reports whether the model allows a hop in direction `to`
// after arriving in direction `from` at grid column x (odd-even's rules
// depend on the turning node's column parity). 180° turns are always
// prohibited; injections (from == dirNone) are always permitted.
func (m TurnModel) permittedTurn(from, to dir, x int) bool {
	if from == dirNone {
		return true
	}
	if (from == dirE && to == dirW) || (from == dirW && to == dirE) ||
		(from == dirN && to == dirS) || (from == dirS && to == dirN) {
		return false
	}
	switch m {
	case WestFirst:
		return !((from == dirN || from == dirS) && to == dirW)
	case NorthLast:
		return !(from == dirN && (to == dirE || to == dirW))
	case NegativeFirst:
		return !((from == dirN && to == dirW) || (from == dirE && to == dirS))
	case OddEven:
		if x%2 == 0 { // even column: no turn out of east
			return !(from == dirE && (to == dirN || to == dirS))
		}
		// odd column: no turn into west
		return !((from == dirN || from == dirS) && to == dirW)
	default: // DOR handled separately; MinimalAdaptive permits all 90° turns
		return true
	}
}

// GridSpec describes the 2D grid layout the turn-model generators route
// on: switch (x, y) has ID y*Cols+x with one core per switch (the
// internal/regular convention). Wrap marks a torus; turn models keep
// their acyclicity guarantee only on the unwrapped mesh — on a torus the
// wrap-around dependencies reintroduce cycles, which is exactly the kind
// of configuration the removal algorithm repairs.
type GridSpec struct {
	Cols, Rows int
	Wrap       bool
}

func (gs GridSpec) switchAt(x, y int) topology.SwitchID {
	return topology.SwitchID(y*gs.Cols + x)
}

func (gs GridSpec) coord(sw topology.SwitchID) (int, int) {
	return int(sw) % gs.Cols, int(sw) / gs.Cols
}

// dimDist is the hop distance along one dimension of size n, honoring
// wrap-around only where the generated grid actually has wrap links
// (wrapped and n > 2, matching internal/regular's constructors).
func dimDist(a, b, n int, wrap bool) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap && n > 2 && n-d < d {
		d = n - d
	}
	return d
}

// dist is the minimal hop distance between two switches on the grid.
func (gs GridSpec) dist(a, b topology.SwitchID) int {
	ax, ay := gs.coord(a)
	bx, by := gs.coord(b)
	return dimDist(ax, bx, gs.Cols, gs.Wrap) + dimDist(ay, by, gs.Rows, gs.Wrap)
}

// hopDir classifies the grid direction of the link a→b. Wrap links move
// in the direction of their wrap (0 → cols-1 is a west move).
func (gs GridSpec) hopDir(a, b topology.SwitchID) dir {
	ax, ay := gs.coord(a)
	bx, by := gs.coord(b)
	switch {
	case ay == by && bx == ax+1:
		return dirE
	case ay == by && bx == ax-1:
		return dirW
	case ax == bx && by == ay+1:
		return dirN
	case ax == bx && by == ay-1:
		return dirS
	case ay == by && ax == 0 && bx == gs.Cols-1:
		return dirW
	case ay == by && ax == gs.Cols-1 && bx == 0:
		return dirE
	case ax == bx && ay == 0 && by == gs.Rows-1:
		return dirS
	default: // ax == bx && ay == gs.Rows-1 && by == 0
		return dirN
	}
}

// MaxDefaultPaths is the per-flow candidate-path cap GridRoutes applies
// when the caller passes maxPaths <= 0. Minimal path counts explode
// combinatorially with distance (C(14,7) = 3432 between opposite corners
// of an 8×8 mesh); a small diverse set is what real path-set routers
// provision, and it keeps the flattened pseudo-flow table — and with it
// the CDG — small.
const MaxDefaultPaths = 4

// GridRoutes generates a RouteSet for every flow of g on the grid
// topology top under the given turn model: up to maxPaths minimal paths
// per flow, each respecting the model's turn prohibitions and avoiding
// faulted links, enumerated in deterministic link-ID order. When faults
// leave a flow of an adaptive model with no permitted minimal path, the
// generator falls back to the deterministic shortest path over all
// non-faulted links ignoring the turn restrictions — a fault-driven
// escape route whose extra CDG dependencies the removal algorithm is
// expected to repair. DOR takes no escape: a fault on a flow's XY path
// is a hard error, per the documented deterministic-baseline contract.
// A flow whose endpoints are disconnected even by the escape search is
// an error.
func GridRoutes(top *topology.Topology, g *traffic.Graph, gs GridSpec, model TurnModel, maxPaths int) (*RouteSet, error) {
	if gs.Cols < 1 || gs.Rows < 1 || gs.Cols*gs.Rows != top.NumSwitches() {
		return nil, fmt.Errorf("route: grid %dx%d does not match topology with %d switches: %w",
			gs.Cols, gs.Rows, top.NumSwitches(), nocerr.ErrInvalidInput)
	}
	if maxPaths <= 0 {
		maxPaths = MaxDefaultPaths
	}
	adj := sortedAdjacency(top)
	set := NewRouteSet(g.NumFlows())
	for _, f := range g.Flows() {
		paths, err := flowPaths(top, g, gs, adj, model, maxPaths, f.ID)
		if err != nil {
			return nil, err
		}
		if paths == nil {
			set.Add(f.ID, nil) // local flow: cores share a switch
			continue
		}
		for _, p := range paths {
			set.Add(f.ID, p)
		}
	}
	return set, nil
}

// flowPaths computes one flow's candidate paths under the shared
// GridRoutes semantics: up to maxPaths minimal turn-model paths, BFS
// escape when faults exhaust them, DOR hard-failing on faults. A nil
// result with nil error means a local flow (src and dst share a switch);
// otherwise at least one path is returned.
func flowPaths(top *topology.Topology, g *traffic.Graph, gs GridSpec, adj [][]topology.LinkID, model TurnModel, maxPaths int, flowID int) ([][]topology.Channel, error) {
	f := g.Flow(flowID)
	src, ok := top.SwitchOf(int(f.Src))
	if !ok {
		return nil, fmt.Errorf("route: core %d (flow %d) not attached: %w", f.Src, f.ID, nocerr.ErrInvalidInput)
	}
	dst, ok := top.SwitchOf(int(f.Dst))
	if !ok {
		return nil, fmt.Errorf("route: core %d (flow %d) not attached: %w", f.Dst, f.ID, nocerr.ErrInvalidInput)
	}
	if src == dst {
		return nil, nil
	}
	var paths [][]topology.Channel
	if model == DOR {
		// No escape for DOR: the documented contract is that the
		// deterministic baseline cannot route around a fault, so a
		// fault on an XY path is a hard error, not a silent detour.
		p, err := dorPath(top, gs, src, dst)
		if err != nil {
			return nil, fmt.Errorf("route: flow %d (%d→%d) unroutable under %s: %w", f.ID, src, dst, model, err)
		}
		paths = [][]topology.Channel{p}
	} else {
		paths = enumerateMinimal(top, gs, adj, model, src, dst, maxPaths)
	}
	if len(paths) == 0 {
		// Fault escape: deterministic shortest path over every working
		// link, turn restrictions waived.
		p, err := bfsPath(top, adj, src, dst)
		if err != nil {
			return nil, fmt.Errorf("route: flow %d (%d→%d) unroutable under %s: %w", f.ID, src, dst, model, err)
		}
		paths = [][]topology.Channel{p}
	}
	return paths, nil
}

// RegenerateFlows recomputes candidate paths for just the given flows —
// the incremental half of GridRoutes, used by online reconfiguration to
// reroute only the flows a fresh link fault displaced. Semantics per
// flow are identical to GridRoutes (same enumeration order, same BFS
// escape, same DOR hard-error contract), so a full regeneration and a
// per-flow regeneration of every flow agree path-for-path. The result
// maps flow ID → candidate paths; a local flow maps to nil. Unknown flow
// IDs are an error.
func RegenerateFlows(top *topology.Topology, g *traffic.Graph, gs GridSpec, model TurnModel, maxPaths int, flows []int) (map[int][][]topology.Channel, error) {
	if gs.Cols < 1 || gs.Rows < 1 || gs.Cols*gs.Rows != top.NumSwitches() {
		return nil, fmt.Errorf("route: grid %dx%d does not match topology with %d switches: %w",
			gs.Cols, gs.Rows, top.NumSwitches(), nocerr.ErrInvalidInput)
	}
	if maxPaths <= 0 {
		maxPaths = MaxDefaultPaths
	}
	adj := sortedAdjacency(top)
	out := make(map[int][][]topology.Channel, len(flows))
	for _, id := range flows {
		if id < 0 || id >= g.NumFlows() {
			return nil, fmt.Errorf("route: unknown flow %d: %w", id, nocerr.ErrInvalidInput)
		}
		paths, err := flowPaths(top, g, gs, adj, model, maxPaths, id)
		if err != nil {
			return nil, err
		}
		out[id] = paths
	}
	return out, nil
}

// dorPath walks X then Y, taking the minimal direction per dimension
// (ties positive, matching internal/regular.DORRoutes), and fails if any
// hop's link is missing or faulted — deterministic DOR cannot route
// around a fault.
func dorPath(top *topology.Topology, gs GridSpec, src, dst topology.SwitchID) ([]topology.Channel, error) {
	var channels []topology.Channel
	cx, cy := gs.coord(src)
	dx, dy := gs.coord(dst)
	step := func(cur, target, n int) int {
		if !gs.Wrap || n <= 2 {
			if target > cur {
				return 1
			}
			return -1
		}
		fwd := ((target - cur) + n) % n
		if fwd <= n-fwd {
			return 1
		}
		return -1
	}
	hop := func(a, b topology.SwitchID) error {
		id, ok := top.FindLink(a, b)
		if !ok {
			return fmt.Errorf("route: missing link %d→%d: %w", a, b, nocerr.ErrInvalidInput)
		}
		if top.Faulted(id) {
			return fmt.Errorf("route: DOR path crosses faulted link %d: %w", id, nocerr.ErrInvalidInput)
		}
		channels = append(channels, topology.Chan(id, 0))
		return nil
	}
	for cx != dx {
		next := (cx + step(cx, dx, gs.Cols) + gs.Cols) % gs.Cols
		if err := hop(gs.switchAt(cx, cy), gs.switchAt(next, cy)); err != nil {
			return nil, err
		}
		cx = next
	}
	for cy != dy {
		next := (cy + step(cy, dy, gs.Rows) + gs.Rows) % gs.Rows
		if err := hop(gs.switchAt(cx, cy), gs.switchAt(cx, next)); err != nil {
			return nil, err
		}
		cy = next
	}
	return channels, nil
}

// sortedAdjacency returns each switch's working (non-faulted) out-links
// in ascending link-ID order, built once per GridRoutes call so the
// per-flow path searches do not re-copy and re-sort the same link lists
// on every node visit.
func sortedAdjacency(top *topology.Topology) [][]topology.LinkID {
	adj := make([][]topology.LinkID, top.NumSwitches())
	for sw := range adj {
		links := top.OutLinks(topology.SwitchID(sw))
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		working := links[:0]
		for _, id := range links {
			if !top.Faulted(id) {
				working = append(working, id)
			}
		}
		adj[sw] = working
	}
	return adj
}

// enumerateMinimal DFS-enumerates up to maxPaths minimal paths src→dst
// whose every turn the model permits and whose every link is working.
// Every hop strictly decreases the distance to dst, so the search space
// is a DAG and terminates; candidate hops are explored in ascending
// link-ID order (adj), making the enumeration (and its truncation) a
// pure function of the inputs.
func enumerateMinimal(top *topology.Topology, gs GridSpec, adj [][]topology.LinkID, model TurnModel, src, dst topology.SwitchID, maxPaths int) [][]topology.Channel {
	var out [][]topology.Channel
	var walk func(cur topology.SwitchID, came dir, prefix []topology.Channel)
	walk = func(cur topology.SwitchID, came dir, prefix []topology.Channel) {
		if len(out) >= maxPaths {
			return
		}
		if cur == dst {
			out = append(out, append([]topology.Channel(nil), prefix...))
			return
		}
		d := gs.dist(cur, dst)
		for _, id := range adj[cur] {
			next := top.Link(id).To
			if gs.dist(next, dst) != d-1 {
				continue
			}
			to := gs.hopDir(cur, next)
			if model != MinimalAdaptive && !model.permittedTurn(came, to, int(cur)%gs.Cols) {
				continue
			}
			walk(next, to, append(prefix, topology.Chan(id, 0)))
		}
	}
	walk(src, dirNone, nil)
	return out
}

// bfsPath is the deterministic fewest-hops path over non-faulted links,
// exploring neighbors in ascending link-ID order (adj).
func bfsPath(top *topology.Topology, adj [][]topology.LinkID, src, dst topology.SwitchID) ([]topology.Channel, error) {
	type hop struct {
		prev topology.SwitchID
		link topology.LinkID
	}
	parent := make(map[topology.SwitchID]hop)
	parent[src] = hop{prev: src}
	queue := []topology.SwitchID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		for _, id := range adj[cur] {
			next := top.Link(id).To
			if _, seen := parent[next]; seen {
				continue
			}
			parent[next] = hop{prev: cur, link: id}
			queue = append(queue, next)
		}
	}
	if _, ok := parent[dst]; !ok {
		return nil, fmt.Errorf("route: no working path %d→%d: %w", src, dst, nocerr.ErrInvalidInput)
	}
	var rev []topology.Channel
	for cur := dst; cur != src; cur = parent[cur].prev {
		rev = append(rev, topology.Chan(parent[cur].link, 0))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
