package route

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/topology"
)

// FuzzRead checks that arbitrary bytes never panic the route-table parser
// and that accepted tables round-trip.
func FuzzRead(f *testing.F) {
	tab := NewTable(2)
	tab.Set(0, []topology.Channel{topology.Chan(0, 0), topology.Chan(1, 1)})
	tab.Set(1, nil)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"routes":[]}`)
	f.Add(`{"routes":[{"flow":3,"channels":[{"link":1,"vc":0}]}]}`)
	f.Add(`][`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		if len(again.Routes()) != len(got.Routes()) {
			t.Fatal("round trip not stable")
		}
		for _, r := range got.Routes() {
			o := again.Route(r.FlowID)
			if o == nil || o.Len() != r.Len() {
				t.Fatal("route lost in round trip")
			}
		}
	})
}
