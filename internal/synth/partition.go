// Package synth generates application-specific NoC topologies from a
// communication graph, standing in for the floorplan-aware synthesis tool
// the paper uses to produce its input designs (reference [9], Murali et
// al., ICCAD 2006). The paper's removal algorithm treats synthesis as a
// black box — it only needs *a* custom irregular topology with fixed
// routes — so this substitute focuses on the two properties that drive
// the evaluation's shape: traffic-driven core clustering (switch count is
// the sweep variable of Figures 8–9) and degree-budgeted irregular link
// insertion (sparse tree-like fabrics at low switch counts, chordal
// fabrics at high ones).
package synth

import (
	"math/rand"
	"sort"

	"github.com/nocdr/nocdr/internal/traffic"
)

// partition assigns every core to one of nParts clusters, balancing
// cluster sizes while keeping heavily communicating cores together.
// Greedy seeding by descending traffic volume is followed by
// Kernighan–Lin-style single-move refinement. Deterministic for a fixed
// seed.
func partition(g *traffic.Graph, nParts int, seed int64) [][]int {
	n := g.NumCores()
	if nParts >= n {
		// One core per cluster (extra clusters stay empty and are dropped).
		parts := make([][]int, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, []int{i})
		}
		return parts
	}
	rng := rand.New(rand.NewSource(seed))
	cap := (n + nParts - 1) / nParts

	// Symmetric affinity matrix.
	aff := make([][]float64, n)
	for i := range aff {
		aff[i] = make([]float64, n)
	}
	for _, f := range g.Flows() {
		aff[f.Src][f.Dst] += f.Bandwidth
		aff[f.Dst][f.Src] += f.Bandwidth
	}

	// Order cores by total traffic, heaviest first.
	volume := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			volume[i] += aff[i][j]
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if volume[order[a]] != volume[order[b]] {
			return volume[order[a]] > volume[order[b]]
		}
		return order[a] < order[b]
	})

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	size := make([]int, nParts)
	gainTo := func(core, part int) float64 {
		total := 0.0
		for other := 0; other < n; other++ {
			if assign[other] == part {
				total += aff[core][other]
			}
		}
		return total
	}
	// Seed every cluster with one core first (the nParts heaviest), so a
	// request for S switches always yields S non-empty clusters; then fill
	// greedily by affinity.
	for p := 0; p < nParts && p < len(order); p++ {
		assign[order[p]] = p
		size[p] = 1
	}
	for _, core := range order[nParts:] {
		best, bestGain := -1, -1.0
		for p := 0; p < nParts; p++ {
			if size[p] >= cap {
				continue
			}
			gain := gainTo(core, p)
			// Light size penalty keeps early heavy cores from piling up.
			gain -= 0.01 * volume[core] * float64(size[p])
			if best == -1 || gain > bestGain {
				best, bestGain = p, gain
			}
		}
		assign[core] = best
		size[best]++
	}

	// Refinement: move single cores to the cluster with the highest
	// affinity gain while capacity allows. A few passes suffice; the rng
	// only shuffles the scan order to avoid pathological sweep artefacts.
	cores := make([]int, n)
	for i := range cores {
		cores[i] = i
	}
	for pass := 0; pass < 4; pass++ {
		rng.Shuffle(len(cores), func(i, j int) { cores[i], cores[j] = cores[j], cores[i] })
		moved := false
		for _, core := range cores {
			cur := assign[core]
			if size[cur] == 1 {
				continue // never empty a cluster: the switch count is a contract
			}
			curGain := gainTo(core, cur) - aff[core][core]
			best, bestGain := cur, curGain
			for p := 0; p < nParts; p++ {
				if p == cur || size[p] >= cap {
					continue
				}
				if gain := gainTo(core, p); gain > bestGain {
					best, bestGain = p, gain
				}
			}
			if best != cur {
				size[cur]--
				size[best]++
				assign[core] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	parts := make([][]int, nParts)
	for core, p := range assign {
		parts[p] = append(parts[p], core)
	}
	// Drop empty clusters (possible when refinement empties one).
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			sort.Ints(p)
			out = append(out, p)
		}
	}
	return out
}

// interClusterTraffic sums flow bandwidth between clusters given the
// per-core cluster assignment.
func interClusterTraffic(g *traffic.Graph, assign []int, nParts int) [][]float64 {
	m := make([][]float64, nParts)
	for i := range m {
		m[i] = make([]float64, nParts)
	}
	for _, f := range g.Flows() {
		a, b := assign[f.Src], assign[f.Dst]
		if a != b {
			m[a][b] += f.Bandwidth
		}
	}
	return m
}
