package synth

import (
	"testing"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

func TestSynthesizeBasics(t *testing.T) {
	g := traffic.D26Media()
	res, err := Synthesize(g, Options{SwitchCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology.NumSwitches() != 8 {
		t.Errorf("switches = %d, want 8", res.Topology.NumSwitches())
	}
	if err := res.Topology.Validate(); err != nil {
		t.Error(err)
	}
	if err := res.Routes.Validate(res.Topology, g); err != nil {
		t.Error(err)
	}
	// Every core attached exactly once.
	if got := len(res.Topology.Cores()); got != g.NumCores() {
		t.Errorf("attached cores = %d, want %d", got, g.NumCores())
	}
	// Fresh synthesis provisions exactly one VC per link.
	if res.Topology.ExtraVCs() != 0 {
		t.Errorf("fresh topology has %d extra VCs", res.Topology.ExtraVCs())
	}
}

func TestSynthesizeAllBenchmarksAllSizes(t *testing.T) {
	for _, g := range traffic.AllBenchmarks() {
		for _, s := range []int{2, 5, 14, 25} {
			if s > g.NumCores() {
				continue
			}
			res, err := Synthesize(g, Options{SwitchCount: s})
			if err != nil {
				t.Fatalf("%s @ %d switches: %v", g.Name, s, err)
			}
			if err := res.Routes.Validate(res.Topology, g); err != nil {
				t.Errorf("%s @ %d switches: %v", g.Name, s, err)
			}
		}
	}
}

func TestSynthesizeSingleSwitch(t *testing.T) {
	g := traffic.D26Media()
	res, err := Synthesize(g, Options{SwitchCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology.NumLinks() != 0 {
		t.Errorf("single-switch design has %d links", res.Topology.NumLinks())
	}
	for _, r := range res.Routes.Routes() {
		if r.Len() != 0 {
			t.Fatalf("flow %d has non-local route on single switch", r.FlowID)
		}
	}
}

func TestSynthesizeOneCorePerSwitch(t *testing.T) {
	g := traffic.D36(4)
	res, err := Synthesize(g, Options{SwitchCount: 36})
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology.NumSwitches() != 36 {
		t.Errorf("switches = %d, want 36", res.Topology.NumSwitches())
	}
	for _, sw := range res.Topology.Switches() {
		if n := len(res.Topology.CoresAt(sw.ID)); n != 1 {
			t.Errorf("switch %d holds %d cores, want 1", sw.ID, n)
		}
	}
}

func TestSwitchCountAboveCores(t *testing.T) {
	g := traffic.D26Media()
	res, err := Synthesize(g, Options{SwitchCount: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Empty clusters are dropped: switch count collapses to core count.
	if res.Topology.NumSwitches() != 26 {
		t.Errorf("switches = %d, want 26", res.Topology.NumSwitches())
	}
}

func TestSynthesizeRejectsBadInput(t *testing.T) {
	g := traffic.D26Media()
	if _, err := Synthesize(g, Options{SwitchCount: 0}); err == nil {
		t.Error("zero switch count accepted")
	}
	empty := traffic.NewGraph("empty")
	if _, err := Synthesize(empty, Options{SwitchCount: 2}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	g := traffic.D36(8)
	a, err := Synthesize(g, Options{SwitchCount: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(g, Options{SwitchCount: 14})
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology.NumLinks() != b.Topology.NumLinks() {
		t.Fatal("nondeterministic link count")
	}
	for _, l := range a.Topology.Links() {
		lb := b.Topology.Link(l.ID)
		if l.From != lb.From || l.To != lb.To {
			t.Fatalf("link %d differs between runs", l.ID)
		}
	}
	for i := 0; i < g.NumFlows(); i++ {
		ra, rb := a.Routes.Route(i), b.Routes.Route(i)
		if ra.Len() != rb.Len() {
			t.Fatalf("flow %d route differs", i)
		}
		for h := range ra.Channels {
			if ra.Channels[h] != rb.Channels[h] {
				t.Fatalf("flow %d hop %d differs", i, h)
			}
		}
	}
}

func TestNeighborBudgetRespectedByChords(t *testing.T) {
	g := traffic.D36(8) // dense traffic wants many chords
	budget := 4
	res, err := Synthesize(g, Options{SwitchCount: 12, MaxNeighbors: budget})
	if err != nil {
		t.Fatal(err)
	}
	// The backbone (11 bidirectional links for 12 switches) may exceed
	// the budget at hub switches; chords may not push anyone far above.
	// Count distinct neighbors per switch.
	neighbors := make(map[topology.SwitchID]map[topology.SwitchID]bool)
	for _, l := range res.Topology.Links() {
		if neighbors[l.From] == nil {
			neighbors[l.From] = map[topology.SwitchID]bool{}
		}
		neighbors[l.From][l.To] = true
	}
	// The spanning tree can concentrate at most nSw-1 edges on one hub,
	// but chord insertion must stop at the budget: verify that switches
	// at or above budget got no chord beyond what the tree forced.
	over := 0
	for _, m := range neighbors {
		if len(m) > budget {
			over++
		}
	}
	// With 12 switches and heavy uniform traffic the tree rarely makes a
	// big hub; allow a couple of tree-forced exceptions but no free-for-all.
	if over > 3 {
		t.Errorf("%d switches exceed the neighbor budget %d", over, budget)
	}
}

func TestPartitionBalance(t *testing.T) {
	g := traffic.D36(6)
	parts := partition(g, 6, 1)
	if len(parts) != 6 {
		t.Fatalf("got %d parts", len(parts))
	}
	cap := (g.NumCores() + 5) / 6
	seen := map[int]bool{}
	for _, p := range parts {
		if len(p) == 0 || len(p) > cap {
			t.Errorf("cluster size %d violates cap %d", len(p), cap)
		}
		for _, c := range p {
			if seen[c] {
				t.Errorf("core %d in two clusters", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != g.NumCores() {
		t.Errorf("%d cores assigned, want %d", len(seen), g.NumCores())
	}
}

func TestPartitionKeepsTalkersTogether(t *testing.T) {
	// Two 4-core cliques with heavy internal traffic and one weak
	// cross-flow: a 2-way partition must recover the cliques.
	g := traffic.NewGraph("cliques")
	for i := 0; i < 8; i++ {
		g.AddCore("")
	}
	clique := func(base int) {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i != j {
					g.MustAddFlow(traffic.CoreID(base+i), traffic.CoreID(base+j), 100)
				}
			}
		}
	}
	clique(0)
	clique(4)
	g.MustAddFlow(0, 4, 1)
	parts := partition(g, 2, 1)
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	for _, p := range parts {
		if len(p) != 4 {
			t.Fatalf("unbalanced parts: %v", parts)
		}
		base := p[0] / 4 * 4
		for _, c := range p {
			if c/4*4 != base {
				t.Errorf("cliques split: %v", parts)
			}
		}
	}
}

func TestLowSwitchCountsTendAcyclic(t *testing.T) {
	// The paper's headline observation (Figure 8): most synthesized
	// topologies need zero extra VCs because their CDGs are already
	// acyclic. Check that at least some small D26_media designs are
	// deadlock-free as built.
	g := traffic.D26Media()
	acyclic := 0
	for _, s := range []int{2, 3, 4, 5} {
		res, err := Synthesize(g, Options{SwitchCount: s})
		if err != nil {
			t.Fatal(err)
		}
		tab := res.Routes
		free := isAcyclic(t, res.Topology, tab)
		if free {
			acyclic++
		}
	}
	if acyclic == 0 {
		t.Error("no small D26_media design is deadlock-free; Figure 8's zero-overhead region is unreachable")
	}
}

// isAcyclic is a self-contained CDG cycle check (independent of the cdg
// package, so a synth test failure cannot be masked by a cdg bug).
func isAcyclic(t *testing.T, top *topology.Topology, tab *route.Table) bool {
	t.Helper()
	type ch = topology.Channel
	succ := map[ch]map[ch]bool{}
	for _, r := range tab.Routes() {
		for i := 0; i+1 < len(r.Channels); i++ {
			if succ[r.Channels[i]] == nil {
				succ[r.Channels[i]] = map[ch]bool{}
			}
			succ[r.Channels[i]][r.Channels[i+1]] = true
		}
	}
	state := map[ch]int{} // 0 unvisited, 1 in stack, 2 done
	var dfs func(c ch) bool
	dfs = func(c ch) bool {
		state[c] = 1
		for n := range succ[c] {
			if state[n] == 1 {
				return false
			}
			if state[n] == 0 && !dfs(n) {
				return false
			}
		}
		state[c] = 2
		return true
	}
	for c := range succ {
		if state[c] == 0 && !dfs(c) {
			return false
		}
	}
	return true
}
