package synth

import (
	"context"
	"fmt"
	"sort"

	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Options configures Synthesize. The zero value of every field except
// SwitchCount picks a sensible default.
type Options struct {
	// SwitchCount is the number of switches to build (the sweep variable
	// of the paper's Figures 8 and 9). Required, >= 1.
	SwitchCount int
	// MaxNeighbors bounds the number of distinct neighbor switches per
	// switch (bidirectional degree budget), reflecting the link-count
	// constraints of reference [21]. Spanning-tree links ignore the
	// budget so connectivity is always guaranteed. 0 means 4.
	MaxNeighbors int
	// Seed drives the (purely tie-breaking) randomness of partition
	// refinement. 0 means 1.
	Seed int64
}

func (o Options) maxNeighbors() int {
	if o.MaxNeighbors <= 0 {
		return 4
	}
	return o.MaxNeighbors
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Result is a synthesized design: the custom topology (cores attached)
// and a fixed shortest-path route for every flow — exactly the inputs the
// paper's removal algorithm takes.
type Result struct {
	Topology *topology.Topology
	Routes   *route.Table
}

// Synthesize builds an application-specific topology for the given
// communication graph:
//
//  1. cluster cores onto SwitchCount switches by traffic affinity;
//  2. connect the switches with a traffic-weighted spanning backbone
//     (bidirectional), guaranteeing all-pairs connectivity;
//  3. add direct bidirectional links between the heaviest-communicating
//     switch pairs while the per-switch neighbor budget allows;
//  4. route every flow with deterministic load-aware shortest paths.
//
// The output is deterministic for fixed inputs.
func Synthesize(g *traffic.Graph, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), g, opts)
}

// SynthesizeContext is Synthesize with cooperative cancellation, checked
// between the partition, link-construction and routing phases.
func SynthesizeContext(ctx context.Context, g *traffic.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.SwitchCount < 1 {
		return nil, fmt.Errorf("synth: switch count %d must be >= 1: %w", opts.SwitchCount, nocerr.ErrInvalidInput)
	}
	if g.NumCores() == 0 {
		return nil, fmt.Errorf("synth: communication graph has no cores: %w", nocerr.ErrInvalidInput)
	}
	if err := canceled(ctx); err != nil {
		return nil, err
	}

	parts := partition(g, opts.SwitchCount, opts.seed())
	top := topology.New(fmt.Sprintf("%s_s%d", g.Name, opts.SwitchCount))
	assign := make([]int, g.NumCores())
	for p, cores := range parts {
		sw := top.AddSwitch("")
		for _, core := range cores {
			if err := top.AttachCore(core, sw); err != nil {
				return nil, err
			}
			assign[core] = p
		}
	}
	nSw := top.NumSwitches()
	if nSw == 1 {
		// Single switch: every flow is local; no links, no deadlock.
		tab, err := route.ShortestPaths(top, g)
		if err != nil {
			return nil, err
		}
		return &Result{Topology: top, Routes: tab}, nil
	}

	ict := interClusterTraffic(g, assign, nSw)

	// Symmetric pair weights for the backbone and chord selection.
	type pair struct {
		a, b int
		w    float64
	}
	var pairs []pair
	for a := 0; a < nSw; a++ {
		for b := a + 1; b < nSw; b++ {
			pairs = append(pairs, pair{a: a, b: b, w: ict[a][b] + ict[b][a]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	// chordCost marks non-backbone links: through-traffic should prefer
	// the spanning backbone (whose shortest-path routes are up/down-style
	// and create no dependency cycles), taking a chord mainly for the
	// switch pair it directly serves. 1.3 < 2 keeps direct chord hops
	// cheaper than any two-hop detour.
	const chordWeight = 1.3
	chordCost := make(map[topology.LinkID]float64)
	neighbors := make([]int, nSw)
	connect := func(a, b int, chord bool) error {
		ab, ba, err := top.AddBidi(topology.SwitchID(a), topology.SwitchID(b))
		if err != nil {
			return err
		}
		if chord {
			chordCost[ab] = chordWeight
			chordCost[ba] = chordWeight
		}
		neighbors[a]++
		neighbors[b]++
		return nil
	}

	// Maximum-weight spanning backbone (Kruskal over descending weights).
	comp := make([]int, nSw)
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	added := 0
	for _, pr := range pairs {
		if added == nSw-1 {
			break
		}
		ra, rb := find(pr.a), find(pr.b)
		if ra == rb {
			continue
		}
		if err := connect(pr.a, pr.b, false); err != nil {
			return nil, err
		}
		comp[ra] = rb
		added++
	}

	// Chords: heaviest pairs first, within the neighbor budget.
	budget := opts.maxNeighbors()
	for _, pr := range pairs {
		if pr.w == 0 {
			break
		}
		if _, dup := top.FindLink(topology.SwitchID(pr.a), topology.SwitchID(pr.b)); dup {
			continue
		}
		if neighbors[pr.a] >= budget || neighbors[pr.b] >= budget {
			continue
		}
		if err := connect(pr.a, pr.b, true); err != nil {
			return nil, err
		}
	}

	if err := canceled(ctx); err != nil {
		return nil, err
	}
	tab, err := route.ShortestPathsWeighted(top, g, chordCost)
	if err != nil {
		return nil, err
	}
	if err := tab.Validate(top, g); err != nil {
		return nil, fmt.Errorf("synth: generated routes invalid: %w", err)
	}
	return &Result{Topology: top, Routes: tab}, nil
}

// canceled folds a done context into the sentinel scheme; see
// nocerr.ErrCanceled.
func canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", nocerr.ErrCanceled, err)
	}
	return nil
}
