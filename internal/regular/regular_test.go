package regular

import (
	"testing"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

func TestMeshShape(t *testing.T) {
	g, err := Mesh(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.NumSwitches() != 12 {
		t.Errorf("switches = %d, want 12", g.Topology.NumSwitches())
	}
	// 2*( (4-1)*3 + (3-1)*4 ) = 2*(9+8) = 34 links.
	if g.Topology.NumLinks() != 34 {
		t.Errorf("links = %d, want 34", g.Topology.NumLinks())
	}
	if err := g.Topology.Validate(); err != nil {
		t.Error(err)
	}
	x, y := g.Coord(g.SwitchAt(3, 2))
	if x != 3 || y != 2 {
		t.Error("coordinate round trip broken")
	}
}

func TestTorusShape(t *testing.T) {
	g, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Full torus: every switch has degree 4 (bidirectional) → 2*2*16 = 64.
	if g.Topology.NumLinks() != 64 {
		t.Errorf("links = %d, want 64", g.Topology.NumLinks())
	}
	for _, sw := range g.Topology.Switches() {
		if d := g.Topology.Degree(sw.ID); d != 8 {
			t.Errorf("switch %d degree %d, want 8 (4 in + 4 out)", sw.ID, d)
		}
	}
}

func TestTorusDim2NoDuplicateWrap(t *testing.T) {
	g, err := Torus(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Topology.Validate(); err != nil {
		t.Errorf("2-wide torus invalid (duplicate wrap links?): %v", err)
	}
}

func TestGridTooSmall(t *testing.T) {
	if _, err := Mesh(1, 1); err == nil {
		t.Error("1x1 mesh accepted")
	}
	if _, err := Ring(2, false); err == nil {
		t.Error("2-ring accepted")
	}
}

func TestRing(t *testing.T) {
	uni, err := Ring(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Topology.NumLinks() != 5 {
		t.Errorf("unidirectional ring links = %d, want 5", uni.Topology.NumLinks())
	}
	bidi, err := Ring(5, true)
	if err != nil {
		t.Fatal(err)
	}
	if bidi.Topology.NumLinks() != 10 {
		t.Errorf("bidirectional ring links = %d, want 10", bidi.Topology.NumLinks())
	}
}

func TestUniformTraffic(t *testing.T) {
	g, err := UniformTraffic(8, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumFlows() != 8 {
		t.Errorf("flows = %d, want 8", g.NumFlows())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := UniformTraffic(8, 8, 50); err == nil {
		t.Error("stride == n accepted (self-flows)")
	}
}

func TestXYOnMeshIsDeadlockFree(t *testing.T) {
	// The textbook result: XY routing on a mesh has an acyclic CDG, so
	// the removal algorithm must be a no-op.
	g, err := Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tg := traffic.RandomKOut("mesh-traffic", 16, 4, 11)
	tab, err := DORRoutes(g, tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(g.Topology, tg); err != nil {
		t.Fatal(err)
	}
	c, err := cdg.Build(g.Topology, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acyclic() {
		t.Fatal("XY on mesh produced a cyclic CDG")
	}
	res, err := core.Remove(g.Topology, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InitialAcyclic || res.AddedVCs != 0 {
		t.Errorf("removal not a no-op on mesh: %+v", res)
	}
}

func TestDORTorusIsCyclicAndRepairable(t *testing.T) {
	// The dateline problem: minimal DOR on a torus rides the wrap links
	// and closes dependency rings in both dimensions. The removal
	// algorithm must repair it with a modest number of VCs.
	g, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Stride-5 permutation traffic (1 right, 1 up after wrap arithmetic)
	// pushes flows across both datelines.
	tg, err := UniformTraffic(16, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := DORRoutes(g, tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(g.Topology, tg); err != nil {
		t.Fatal(err)
	}
	c, err := cdg.Build(g.Topology, tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.Acyclic() {
		t.Skip("this permutation did not close a wrap cycle; torus stress below covers it")
	}
	res, err := core.Remove(g.Topology, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedVCs == 0 {
		t.Error("cyclic torus repaired for free?")
	}
	// A dateline fix needs on the order of one extra VC per wrapped row/
	// column actually used, far fewer than one per link.
	if res.AddedVCs > g.Topology.NumLinks()/2 {
		t.Errorf("removal added %d VCs on %d links; expected a dateline-like handful",
			res.AddedVCs, g.Topology.NumLinks())
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestRingAllToNeighborPlusTwo(t *testing.T) {
	// Unidirectional ring with stride-2 traffic: every flow crosses two
	// links, the CDG is one big cycle, and removal must fix it.
	g, err := Ring(6, false)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := UniformTraffic(6, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	// DOR on a 1-row grid walks the X dimension with wrap.
	tab, err := DORRoutes(g, tg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cdg.Build(g.Topology, tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.Acyclic() {
		t.Fatal("stride-2 on a unidirectional ring must be cyclic")
	}
	res, err := core.Remove(g.Topology, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestRepairedTorusSurvivesSaturation(t *testing.T) {
	// End-to-end: torus + DOR + removal, then saturate in the simulator.
	g, err := Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := UniformTraffic(9, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := DORRoutes(g, tg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Remove(g.Topology, tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := simulate(res, tg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatal("repaired torus deadlocked")
	}
	if st.DeliveredPackets == 0 {
		t.Error("repaired torus delivered nothing")
	}
}

func simulate(res *core.Result, tg *traffic.Graph) (*wormhole.Stats, error) {
	sim, err := wormhole.New(res.Topology, tg, res.Routes, wormhole.Config{
		MaxCycles:   20000,
		LoadFactor:  1.0,
		BufferDepth: 2,
		Seed:        5,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// TestDORUnreachableCore ensures routing reports unattached cores.
func TestDORUnreachableCore(t *testing.T) {
	g, err := Mesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg := traffic.NewGraph("bad")
	for i := 0; i < 6; i++ {
		tg.AddCore("")
	}
	tg.MustAddFlow(0, 5, 1) // core 5 has no switch on a 4-switch mesh
	if _, err := DORRoutes(g, tg); err == nil {
		t.Error("unattached core accepted")
	}
}
