package regular

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/graph"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// Spec projects the grid onto the coordinate description the turn-model
// route generators consume.
func (g *Grid) Spec() route.GridSpec {
	return route.GridSpec{Cols: g.Cols, Rows: g.Rows, Wrap: g.Wrap}
}

// SelectFaults picks n distinct links to fail, seeded and deterministic,
// such that the surviving switch graph stays strongly connected — every
// core can still reach every other, so the scenario tests rerouting, not
// partition handling. Candidates are visited in a splitmix64-shuffled
// order derived from seed; a candidate that would disconnect the network
// is skipped. It fails when fewer than n links can be removed safely.
//
// The returned IDs are in selection order; callers typically pass them
// straight to Topology.Fault.
func SelectFaults(g *Grid, n int, seed int64) ([]topology.LinkID, error) {
	top := g.Topology
	if n < 0 {
		return nil, fmt.Errorf("regular: negative fault count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if n >= top.NumLinks() {
		return nil, fmt.Errorf("regular: cannot fault %d of %d links", n, top.NumLinks())
	}
	order := shuffledLinks(top.NumLinks(), uint64(seed)*0x9e3779b97f4a7c15+0x1234567)
	faulted := make(map[topology.LinkID]bool, n)
	var picked []topology.LinkID
	for _, id := range order {
		if len(picked) == n {
			break
		}
		if top.Faulted(id) {
			continue // already down before selection started
		}
		faulted[id] = true
		if stronglyConnected(top, faulted) {
			picked = append(picked, id)
		} else {
			delete(faulted, id)
		}
	}
	if len(picked) < n {
		return nil, fmt.Errorf("regular: only %d of %d requested faults keep %s connected",
			len(picked), n, top.Name)
	}
	return picked, nil
}

// shuffledLinks returns 0..n-1 permuted by a seeded Fisher-Yates over a
// splitmix64 stream.
func shuffledLinks(n int, state uint64) []topology.LinkID {
	out := make([]topology.LinkID, n)
	for i := range out {
		out[i] = topology.LinkID(i)
	}
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// stronglyConnected reports whether the switch graph minus the faulted
// (and already-masked) links is strongly connected.
func stronglyConnected(top *topology.Topology, extraFaults map[topology.LinkID]bool) bool {
	n := top.NumSwitches()
	if n <= 1 {
		return true
	}
	sg := graph.New(n)
	sg.Ensure(n - 1)
	for _, l := range top.Links() {
		if top.Faulted(l.ID) || extraFaults[l.ID] {
			continue
		}
		sg.AddEdge(int(l.From), int(l.To))
	}
	rev := sg.Reverse()
	for v := 1; v < n; v++ {
		if !sg.Reachable(0, v) || !rev.Reachable(0, v) {
			return false
		}
	}
	return true
}
