// Package regular generates the classic regular NoC topologies — 2D
// meshes, 2D tori and rings — together with dimension-ordered (XY)
// routing. The paper's method "can be applied to any NoC topology and
// routing function"; this package supplies the regular end of that
// spectrum and the canonical stress case: dimension-ordered routing on a
// torus is deadlock-prone through its wrap-around links (the textbook
// dateline problem), and the removal algorithm must repair it with a
// dateline-like sprinkling of extra VCs.
//
// Every generator attaches core i to switch i, so a traffic graph with
// one core per switch plugs straight in.
package regular

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Grid describes a generated 2D topology: switch (x, y) has ID y*Cols+x.
type Grid struct {
	Topology *topology.Topology
	Cols     int
	Rows     int
	Wrap     bool // torus if true
}

// SwitchAt returns the switch ID at grid coordinate (x, y).
func (g *Grid) SwitchAt(x, y int) topology.SwitchID {
	return topology.SwitchID(y*g.Cols + x)
}

// Coord returns the grid coordinate of a switch ID.
func (g *Grid) Coord(sw topology.SwitchID) (x, y int) {
	return int(sw) % g.Cols, int(sw) / g.Cols
}

// Mesh builds a cols×rows bidirectional 2D mesh with one core per switch.
func Mesh(cols, rows int) (*Grid, error) {
	return grid(cols, rows, false)
}

// Torus builds a cols×rows bidirectional 2D torus (mesh plus wrap-around
// links) with one core per switch. For cols or rows of 2 the wrap link
// would duplicate the mesh link, so those dimensions stay unwrapped.
func Torus(cols, rows int) (*Grid, error) {
	return grid(cols, rows, true)
}

func grid(cols, rows int, wrap bool) (*Grid, error) {
	if cols < 2 || rows < 1 {
		return nil, fmt.Errorf("regular: grid %dx%d too small", cols, rows)
	}
	top := topology.New(fmt.Sprintf("%s_%dx%d", kind(wrap), cols, rows))
	g := &Grid{Topology: top, Cols: cols, Rows: rows, Wrap: wrap}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			sw := top.AddSwitch(fmt.Sprintf("s%d_%d", x, y))
			if err := top.AttachCore(int(sw), sw); err != nil {
				return nil, err
			}
		}
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x+1 < cols {
				if _, _, err := top.AddBidi(g.SwitchAt(x, y), g.SwitchAt(x+1, y)); err != nil {
					return nil, err
				}
			} else if wrap && cols > 2 {
				if _, _, err := top.AddBidi(g.SwitchAt(x, y), g.SwitchAt(0, y)); err != nil {
					return nil, err
				}
			}
		}
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if y+1 < rows {
				if _, _, err := top.AddBidi(g.SwitchAt(x, y), g.SwitchAt(x, y+1)); err != nil {
					return nil, err
				}
			} else if wrap && rows > 2 {
				if _, _, err := top.AddBidi(g.SwitchAt(x, y), g.SwitchAt(x, 0)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

func kind(wrap bool) string {
	if wrap {
		return "torus"
	}
	return "mesh"
}

// Ring builds an n-switch ring with one core per switch; unidirectional
// rings are the minimal deadlock-prone topology (the paper's Figure 1).
func Ring(n int, bidirectional bool) (*Grid, error) {
	if n < 3 {
		return nil, fmt.Errorf("regular: ring of %d switches too small", n)
	}
	top := topology.New(fmt.Sprintf("ring_%d", n))
	for i := 0; i < n; i++ {
		sw := top.AddSwitch("")
		if err := top.AttachCore(i, sw); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		next := topology.SwitchID((i + 1) % n)
		if bidirectional {
			if _, _, err := top.AddBidi(topology.SwitchID(i), next); err != nil {
				return nil, err
			}
		} else {
			if _, err := top.AddLink(topology.SwitchID(i), next); err != nil {
				return nil, err
			}
		}
	}
	return &Grid{Topology: top, Cols: n, Rows: 1, Wrap: true}, nil
}

// DORRoutes computes dimension-ordered (X then Y) routes for every flow:
// on a mesh this is the textbook deadlock-free XY routing; on a torus
// each dimension takes the minimal direction (ties go positive), crossing
// the wrap-around link when shorter — the configuration whose CDG cycles
// the removal algorithm exists to break.
func DORRoutes(g *Grid, tg *traffic.Graph) (*route.Table, error) {
	tab := route.NewTable(tg.NumFlows())
	for _, f := range tg.Flows() {
		src, ok := g.Topology.SwitchOf(int(f.Src))
		if !ok {
			return nil, fmt.Errorf("regular: core %d not attached", f.Src)
		}
		dst, ok := g.Topology.SwitchOf(int(f.Dst))
		if !ok {
			return nil, fmt.Errorf("regular: core %d not attached", f.Dst)
		}
		var channels []topology.Channel
		cx, cy := g.Coord(src)
		dx, dy := g.Coord(dst)
		// X dimension first.
		for cx != dx {
			step := dirStep(cx, dx, g.Cols, g.Wrap)
			next := (cx + step + g.Cols) % g.Cols
			id, ok := g.Topology.FindLink(g.SwitchAt(cx, cy), g.SwitchAt(next, cy))
			if !ok {
				return nil, fmt.Errorf("regular: missing X link (%d,%d)→(%d,%d)", cx, cy, next, cy)
			}
			if g.Topology.Faulted(id) {
				return nil, fmt.Errorf("regular: DOR route for flow %d crosses faulted link %d (deterministic DOR cannot route around faults; use an adaptive routing)", f.ID, id)
			}
			channels = append(channels, topology.Chan(id, 0))
			cx = next
		}
		// Then Y.
		for cy != dy {
			step := dirStep(cy, dy, g.Rows, g.Wrap)
			next := (cy + step + g.Rows) % g.Rows
			id, ok := g.Topology.FindLink(g.SwitchAt(cx, cy), g.SwitchAt(cx, next))
			if !ok {
				return nil, fmt.Errorf("regular: missing Y link (%d,%d)→(%d,%d)", cx, cy, cx, next)
			}
			if g.Topology.Faulted(id) {
				return nil, fmt.Errorf("regular: DOR route for flow %d crosses faulted link %d (deterministic DOR cannot route around faults; use an adaptive routing)", f.ID, id)
			}
			channels = append(channels, topology.Chan(id, 0))
			cy = next
		}
		tab.Set(f.ID, channels)
	}
	return tab, nil
}

// dirStep returns +1 or −1: the minimal-distance direction from cur to
// dst along a dimension of size n, wrapping only when the topology wraps
// (and the dimension is large enough to have wrap links). Ties go +1.
func dirStep(cur, dst, n int, wrap bool) int {
	if !wrap || n <= 2 {
		if dst > cur {
			return 1
		}
		return -1
	}
	fwd := ((dst - cur) + n) % n
	bwd := n - fwd
	if fwd <= bwd {
		return 1
	}
	return -1
}

// UniformTraffic builds a one-core-per-switch traffic graph where every
// core sends one flow to the core `stride` switches ahead (mod n) — the
// classic permutation workload that exercises every wrap link of a ring
// or torus dimension.
func UniformTraffic(n, stride int, bandwidth float64) (*traffic.Graph, error) {
	if n < 2 || stride%n == 0 {
		return nil, fmt.Errorf("regular: bad uniform traffic n=%d stride=%d", n, stride)
	}
	g := traffic.NewGraph(fmt.Sprintf("uniform_n%d_s%d", n, stride))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for i := 0; i < n; i++ {
		g.MustAddFlow(traffic.CoreID(i), traffic.CoreID((i+stride)%n), bandwidth)
	}
	return g, nil
}
