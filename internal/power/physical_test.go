package power

import (
	"testing"

	"github.com/nocdr/nocdr/internal/topology"
)

func TestPhysicalShapeExpansion(t *testing.T) {
	s := SwitchShape{InVCs: []int{3, 1}, OutVCs: []int{2}}
	ps := physicalShape(s)
	if len(ps.InVCs) != 4 || len(ps.OutVCs) != 2 {
		t.Fatalf("expanded shape = %+v", ps)
	}
	for _, v := range append(ps.InVCs, ps.OutVCs...) {
		if v != 1 {
			t.Fatal("expanded ports must be single-VC")
		}
	}
}

func TestPhysicalEqualsVirtualAtOneVC(t *testing.T) {
	// With one VC everywhere the two realizations describe the same
	// hardware, so the area must match exactly.
	top, _, _ := smallNoC()
	p := DefaultParams()
	virt := NoCArea(p, top)
	phys := NoCAreaPhysical(p, top)
	if virt.TotalUM2 != phys.TotalUM2 {
		t.Errorf("1-VC areas differ: %.0f vs %.0f", virt.TotalUM2, phys.TotalUM2)
	}
}

func TestPhysicalChannelsCostMoreThanVCs(t *testing.T) {
	// The reason the paper prefers VCs when the architecture has them:
	// the same extra channels cost more area as parallel physical links
	// (extra crossbar ports and wires) than as VCs (extra buffers only).
	top, g, tab := smallNoC()
	top.AddVC(0)
	top.AddVC(0)
	top.AddVC(1)
	p := DefaultParams()
	virt := NoCArea(p, top)
	phys := NoCAreaPhysical(p, top)
	if phys.TotalUM2 <= virt.TotalUM2 {
		t.Errorf("physical channels (%.0f) not pricier than VCs (%.0f)",
			phys.TotalUM2, virt.TotalUM2)
	}
	vp, err := NoCPower(p, top, g, tab)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NoCPowerPhysical(p, top, g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if pp.LeakageMW <= vp.LeakageMW {
		t.Errorf("physical leakage (%.2f) not above VC leakage (%.2f)",
			pp.LeakageMW, vp.LeakageMW)
	}
	if pp.TotalMW <= 0 {
		t.Error("non-positive physical power")
	}
}

func TestPhysicalPowerErrorPaths(t *testing.T) {
	top, g, tab := smallNoC()
	p := DefaultParams()
	p.FlitWidthBits = 0
	if _, err := NoCPowerPhysical(p, top, g, tab); err == nil {
		t.Error("invalid params accepted")
	}
	bad := tab.Clone()
	bad.Set(0, []topology.Channel{topology.Chan(0, 9)})
	if _, err := NoCPowerPhysical(DefaultParams(), top, g, bad); err == nil {
		t.Error("unprovisioned channel accepted")
	}
}
