package power

import (
	"math"
	"testing"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// smallNoC builds a 3-switch line with a core at each end and one routed
// flow across it.
func smallNoC() (*topology.Topology, *traffic.Graph, *route.Table) {
	top := topology.New("line")
	a := top.AddSwitch("")
	b := top.AddSwitch("")
	c := top.AddSwitch("")
	l0 := top.MustAddLink(a, b)
	l1 := top.MustAddLink(b, c)
	top.AttachCore(0, a)
	top.AttachCore(1, c)
	g := traffic.NewGraph("t")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 100)
	tab := route.NewTable(1)
	tab.Set(0, []topology.Channel{topology.Chan(l0, 0), topology.Chan(l1, 0)})
	return top, g, tab
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.FlitWidthBits = 0
	if p.Validate() == nil {
		t.Error("zero flit width accepted")
	}
	p = DefaultParams()
	p.LinkLengthMM = -1
	if p.Validate() == nil {
		t.Error("negative link length accepted")
	}
}

func TestSwitchAreaGrowsWithVCs(t *testing.T) {
	p := DefaultParams()
	base := SwitchShape{InVCs: []int{1, 1, 1}, OutVCs: []int{1, 1, 1}}
	more := SwitchShape{InVCs: []int{3, 3, 3}, OutVCs: []int{3, 3, 3}}
	a1 := SwitchAreaUM2(p, base)
	a2 := SwitchAreaUM2(p, more)
	if a2 <= a1 {
		t.Errorf("area did not grow with VCs: %f vs %f", a1, a2)
	}
	// Buffers dominate: tripling VCs should grow area substantially
	// (the effect behind the paper's 66% figure), but less than 3x
	// because the crossbar and port overheads are VC-independent.
	if a2 < 1.8*a1 || a2 > 3*a1 {
		t.Errorf("tripled VCs changed area by %fx; expected buffer-dominated growth", a2/a1)
	}
}

func TestNoCAreaSumsSwitches(t *testing.T) {
	top, _, _ := smallNoC()
	rep := NoCArea(DefaultParams(), top)
	if len(rep.PerSwitch) != 3 {
		t.Fatalf("PerSwitch has %d entries", len(rep.PerSwitch))
	}
	sum := 0.0
	for _, a := range rep.PerSwitch {
		sum += a
	}
	if math.Abs(sum-rep.SwitchUM2) > 1e-6 || rep.TotalUM2 != rep.SwitchUM2 {
		t.Error("area report inconsistent")
	}
	if rep.TotalUM2 <= 0 {
		t.Error("non-positive area")
	}
}

func TestNoCPowerBasics(t *testing.T) {
	top, g, tab := smallNoC()
	rep, err := NoCPower(DefaultParams(), top, g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DynamicMW <= 0 || rep.LeakageMW <= 0 {
		t.Errorf("power components must be positive: %+v", rep)
	}
	if math.Abs(rep.TotalMW-rep.DynamicMW-rep.LeakageMW) > 1e-9 {
		t.Error("total != dynamic + leakage")
	}
	// At typical SoC loads dynamic power must dominate, which is what
	// keeps the paper's power delta (8.6%) far below its area delta (66%).
	if rep.DynamicMW < rep.LeakageMW {
		t.Errorf("leakage (%f) exceeds dynamic (%f) at 100 MB/s", rep.LeakageMW, rep.DynamicMW)
	}
}

func TestPowerScalesWithBandwidth(t *testing.T) {
	top, g, tab := smallNoC()
	p := DefaultParams()
	rep1, err := NoCPower(p, top, g, tab)
	if err != nil {
		t.Fatal(err)
	}
	// Double the flow bandwidth: dynamic power must double, leakage not.
	g2 := traffic.NewGraph("t2")
	g2.AddCore("")
	g2.AddCore("")
	g2.MustAddFlow(0, 1, 200)
	rep2, err := NoCPower(p, top, g2, tab)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep2.DynamicMW-2*rep1.DynamicMW) > 1e-9 {
		t.Errorf("dynamic power not linear in bandwidth: %f vs %f", rep2.DynamicMW, rep1.DynamicMW)
	}
	if rep2.LeakageMW != rep1.LeakageMW {
		t.Error("leakage changed with bandwidth")
	}
}

func TestLeakageGrowsWithVCs(t *testing.T) {
	top, g, tab := smallNoC()
	p := DefaultParams()
	before, err := NoCPower(p, top, g, tab)
	if err != nil {
		t.Fatal(err)
	}
	top.AddVC(0)
	top.AddVC(0)
	top.AddVC(1)
	after, err := NoCPower(p, top, g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if after.LeakageMW <= before.LeakageMW {
		t.Error("leakage did not grow with added VCs")
	}
	if after.DynamicMW <= before.DynamicMW {
		t.Error("dynamic power should grow slightly with VC mux load")
	}
	// The relative total increase should be modest — the paper reports
	// the removal method's total overhead below 5% for a few added VCs.
	if RelativeOverhead(after.TotalMW, before.TotalMW) > 0.25 {
		t.Errorf("adding 3 VCs grew power by %.1f%%; model overweights VCs",
			100*RelativeOverhead(after.TotalMW, before.TotalMW))
	}
}

func TestNoCPowerErrorPaths(t *testing.T) {
	top, g, tab := smallNoC()
	p := DefaultParams()
	p.FlitWidthBits = 0
	if _, err := NoCPower(p, top, g, tab); err == nil {
		t.Error("invalid params accepted")
	}
	bad := route.NewTable(1)
	if _, err := NoCPower(DefaultParams(), top, g, bad); err == nil {
		t.Error("missing route accepted")
	}
	bad2 := tab.Clone()
	bad2.Set(0, []topology.Channel{topology.Chan(0, 7)})
	if _, err := NoCPower(DefaultParams(), top, g, bad2); err == nil {
		t.Error("unprovisioned channel accepted")
	}
}

func TestMM2(t *testing.T) {
	if MM2(2.5e6) != 2.5 {
		t.Error("MM2 conversion wrong")
	}
}

func TestRelativeOverhead(t *testing.T) {
	if RelativeOverhead(110, 100) != 0.1 {
		t.Error("RelativeOverhead wrong")
	}
	if !math.IsInf(RelativeOverhead(1, 0), 1) {
		t.Error("zero base not guarded")
	}
}

func TestShapesIncludeCorePorts(t *testing.T) {
	top, _, _ := smallNoC()
	ss := shapes(top)
	// Switch 0 has 1 out-link, 0 in-links, 1 core → 1 in port (injection)
	// + 1... InVCs: links in (0) + cores (1) = 1; OutVCs: links out (1) +
	// cores (1) = 2.
	if len(ss[0].InVCs) != 1 || len(ss[0].OutVCs) != 2 {
		t.Errorf("switch 0 shape = %+v", ss[0])
	}
	// Middle switch: 1 in, 1 out, no cores.
	if len(ss[1].InVCs) != 1 || len(ss[1].OutVCs) != 1 {
		t.Errorf("switch 1 shape = %+v", ss[1])
	}
}
