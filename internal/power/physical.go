package power

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// The paper notes the removal algorithm "is also possible to add physical
// channels if the NoC architecture does not support VCs": the CDG
// mathematics is identical, only the hardware realization of the extra
// channels differs. This file prices that realization: every channel
// beyond a link's first becomes a parallel physical link with its own
// wire bundle, its own switch input/output port and its own buffer — no
// VC allocator or per-port VC muxing, but more crossbar and more wires.

// physicalShape expands every multi-VC port into that many single-VC
// ports, which is exactly what a VC-less architecture must build.
func physicalShape(s SwitchShape) SwitchShape {
	out := SwitchShape{ID: s.ID}
	for _, v := range s.InVCs {
		for i := 0; i < v; i++ {
			out.InVCs = append(out.InVCs, 1)
		}
	}
	for _, v := range s.OutVCs {
		for i := 0; i < v; i++ {
			out.OutVCs = append(out.OutVCs, 1)
		}
	}
	return out
}

// NoCAreaPhysical returns the switch area of the topology when every
// extra channel is implemented as a parallel physical link instead of a
// virtual channel.
func NoCAreaPhysical(p Params, top *topology.Topology) AreaReport {
	var rep AreaReport
	for _, s := range shapes(top) {
		a := SwitchAreaUM2(p, physicalShape(s))
		rep.PerSwitch = append(rep.PerSwitch, a)
		rep.SwitchUM2 += a
	}
	rep.TotalUM2 = rep.SwitchUM2
	return rep
}

// NoCPowerPhysical evaluates total NoC power under the physical-channel
// realization: per-hop buffer energy has no VC-mux scaling (each port has
// one buffer), but every provisioned channel pays its own wire leakage.
func NoCPowerPhysical(p Params, top *topology.Topology, g *traffic.Graph, tab *route.Table) (PowerReport, error) {
	if err := p.Validate(); err != nil {
		return PowerReport{}, err
	}
	var rep PowerReport
	for _, f := range g.Flows() {
		r := tab.Route(f.ID)
		if r == nil {
			return PowerReport{}, errNoRoute(f.ID)
		}
		bitsPerSec := f.Bandwidth * 8e6
		for _, ch := range r.Channels {
			if !top.ValidChannel(ch) {
				return PowerReport{}, errBadChannel(f.ID, ch)
			}
			perBit := p.EBufWrite + p.EBufRead + p.EXbar + p.EArb +
				p.ELinkPerMM*p.LinkLengthMM
			rep.DynamicMW += bitsPerSec * perBit * 1e-9
		}
		perBitNI := p.EBufWrite + p.EBufRead + p.EXbar
		rep.DynamicMW += 2 * bitsPerSec * perBitNI * 1e-9
	}
	for _, s := range shapes(top) {
		ps := physicalShape(s)
		bufBits := 0
		for _, v := range ps.InVCs {
			bufBits += v * p.BufferDepthFlits * p.FlitWidthBits
		}
		nIn, nOut := len(ps.InVCs), len(ps.OutVCs)
		rep.LeakageMW += float64(bufBits) * p.LeakPerBufBit
		rep.LeakageMW += float64(nIn*nOut*p.FlitWidthBits) * p.LeakPerXbarBit
		rep.LeakageMW += float64(nIn*nOut) * p.LeakPerArbPort
	}
	// Every channel is its own wire bundle.
	rep.LeakageMW += float64(top.TotalVCs()) * p.LinkLengthMM * p.LeakPerLinkMM *
		float64(p.FlitWidthBits)
	rep.TotalMW = rep.DynamicMW + rep.LeakageMW
	return rep, nil
}

func errNoRoute(flow int) error {
	return fmt.Errorf("power: flow %d has no route", flow)
}

func errBadChannel(flow int, ch topology.Channel) error {
	return fmt.Errorf("power: flow %d uses unprovisioned channel %v", flow, ch)
}
