// Package power provides analytic area and power models for NoC switches
// and links, standing in for the ORION 2.0 models the paper cites ([20]).
// The constants below describe a generic 65 nm-class implementation with
// register-file input buffers; they are not calibrated to any foundry.
// Every experiment in the paper that uses these models is *relative*
// (resource ordering vs. deadlock removal vs. no removal, all evaluated
// under the same model), so the comparison shapes survive any monotone
// recalibration: area and leakage grow with buffered VCs, dynamic power
// follows traffic.
//
// Model structure, mirroring ORION 2.0's decomposition:
//
//	switch area  = input buffers + crossbar + VC/switch allocators
//	switch power = dynamic (per-bit energies × traffic) + leakage (∝ area)
//	link power   = per-bit·mm wire energy × traffic + wire leakage
package power

import (
	"fmt"
	"math"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Params holds the technology and microarchitecture parameters. Use
// DefaultParams and tweak fields as needed.
type Params struct {
	FlitWidthBits    int     // data path width
	BufferDepthFlits int     // FIFO depth per VC
	LinkLengthMM     float64 // average physical link length

	// Area constants (µm²).
	BufBitAreaUM2  float64 // per buffered bit (register + mux overhead)
	XbarBitAreaUM2 float64 // per crosspoint bit
	ArbPortAreaUM2 float64 // per arbiter request port
	PortFixedUM2   float64 // per-port fixed overhead (pipeline regs, ctrl)

	// Dynamic energy constants (pJ/bit).
	EBufWrite  float64
	EBufRead   float64
	EXbar      float64
	EArb       float64
	ELinkPerMM float64

	// Leakage constants (mW).
	LeakPerBufBit  float64
	LeakPerXbarBit float64
	LeakPerArbPort float64
	LeakPerLinkMM  float64

	// VCLoadFactor models the extra buffer mux/clock energy per
	// additional VC on a port (fraction per VC beyond the first).
	VCLoadFactor float64
}

// DefaultParams returns the 65 nm-class defaults used throughout the
// experiments: 32-bit flits, 8-flit FIFOs, 2 mm links. Buffers dominate
// switch area (as in ORION's register-file routers), which is what makes
// the VC count the decisive area lever in the paper's comparison.
func DefaultParams() Params {
	return Params{
		FlitWidthBits:    32,
		BufferDepthFlits: 8,
		LinkLengthMM:     2.0,

		BufBitAreaUM2:  34.0,
		XbarBitAreaUM2: 2.2,
		ArbPortAreaUM2: 60.0,
		PortFixedUM2:   450.0,

		EBufWrite:  0.60,
		EBufRead:   0.52,
		EXbar:      0.72,
		EArb:       0.07,
		ELinkPerMM: 0.90,

		LeakPerBufBit:  0.0019,
		LeakPerXbarBit: 0.0002,
		LeakPerArbPort: 0.004,
		LeakPerLinkMM:  0.012,

		VCLoadFactor: 0.05,
	}
}

// Validate rejects nonsensical parameter sets.
func (p Params) Validate() error {
	if p.FlitWidthBits < 1 || p.BufferDepthFlits < 1 {
		return fmt.Errorf("power: flit width %d / buffer depth %d must be >= 1",
			p.FlitWidthBits, p.BufferDepthFlits)
	}
	if p.LinkLengthMM <= 0 {
		return fmt.Errorf("power: link length %f must be > 0", p.LinkLengthMM)
	}
	return nil
}

// SwitchShape describes one switch as the model sees it: the VC count of
// every input and output port. Core (NI) ports always carry one VC.
type SwitchShape struct {
	ID     topology.SwitchID
	InVCs  []int // one entry per input port (links, then attached cores)
	OutVCs []int // one entry per output port (links, then attached cores)
}

// shapes derives every switch's port/VC shape from the topology.
func shapes(top *topology.Topology) []SwitchShape {
	out := make([]SwitchShape, 0, top.NumSwitches())
	for _, sw := range top.Switches() {
		s := SwitchShape{ID: sw.ID}
		for _, lid := range top.InLinks(sw.ID) {
			s.InVCs = append(s.InVCs, top.Link(lid).VCs)
		}
		for _, lid := range top.OutLinks(sw.ID) {
			s.OutVCs = append(s.OutVCs, top.Link(lid).VCs)
		}
		for range top.CoresAt(sw.ID) {
			s.InVCs = append(s.InVCs, 1)   // injection port
			s.OutVCs = append(s.OutVCs, 1) // ejection port
		}
		out = append(out, s)
	}
	return out
}

// SwitchAreaUM2 returns the area of one switch in µm².
func SwitchAreaUM2(p Params, s SwitchShape) float64 {
	bufBits := 0
	totalInVCs := 0
	for _, v := range s.InVCs {
		bufBits += v * p.BufferDepthFlits * p.FlitWidthBits
		totalInVCs += v
	}
	totalOutVCs := 0
	for _, v := range s.OutVCs {
		totalOutVCs += v
	}
	nIn, nOut := len(s.InVCs), len(s.OutVCs)
	area := float64(bufBits) * p.BufBitAreaUM2
	area += float64(nIn*nOut*p.FlitWidthBits) * p.XbarBitAreaUM2
	// VC allocator: each output VC arbitrates among all input VCs;
	// switch allocator: each output port arbitrates among input ports.
	area += float64(totalOutVCs*totalInVCs) * p.ArbPortAreaUM2 / 8
	area += float64(nOut*nIn) * p.ArbPortAreaUM2
	area += float64(nIn+nOut) * p.PortFixedUM2
	return area
}

// AreaReport breaks NoC area into switch and link contributions (µm²).
type AreaReport struct {
	SwitchUM2 float64
	TotalUM2  float64
	PerSwitch []float64
}

// NoCArea returns the total switch area of the topology. (Wires are not
// counted as area; they live in routing channels.)
func NoCArea(p Params, top *topology.Topology) AreaReport {
	var rep AreaReport
	for _, s := range shapes(top) {
		a := SwitchAreaUM2(p, s)
		rep.PerSwitch = append(rep.PerSwitch, a)
		rep.SwitchUM2 += a
	}
	rep.TotalUM2 = rep.SwitchUM2
	return rep
}

// PowerReport breaks NoC power into dynamic and leakage parts (mW).
type PowerReport struct {
	DynamicMW float64
	LeakageMW float64
	TotalMW   float64
}

// NoCPower evaluates total NoC power for a routed workload: dynamic power
// from every flow's bandwidth crossing its route's switches and links,
// plus leakage proportional to the provisioned hardware. Bandwidths are
// MB/s.
func NoCPower(p Params, top *topology.Topology, g *traffic.Graph, tab *route.Table) (PowerReport, error) {
	if err := p.Validate(); err != nil {
		return PowerReport{}, err
	}
	var rep PowerReport

	// Dynamic: per-hop energy depends mildly on the VC count of the
	// traversed link's input port (wider buffer muxes).
	for _, f := range g.Flows() {
		r := tab.Route(f.ID)
		if r == nil {
			return PowerReport{}, fmt.Errorf("power: flow %d has no route", f.ID)
		}
		bitsPerSec := f.Bandwidth * 8e6
		for _, ch := range r.Channels {
			if !top.ValidChannel(ch) {
				return PowerReport{}, fmt.Errorf("power: flow %d uses unprovisioned channel %v", f.ID, ch)
			}
			vcs := top.Link(ch.Link).VCs
			bufScale := 1 + p.VCLoadFactor*float64(vcs-1)
			perBit := (p.EBufWrite+p.EBufRead)*bufScale + p.EXbar + p.EArb +
				p.ELinkPerMM*p.LinkLengthMM
			rep.DynamicMW += bitsPerSec * perBit * 1e-9
		}
		// Injection and ejection each cross one buffer + crossbar.
		perBitNI := p.EBufWrite + p.EBufRead + p.EXbar
		rep.DynamicMW += 2 * bitsPerSec * perBitNI * 1e-9
	}

	// Leakage: buffers, crossbar, arbiters per switch; wires per link.
	for _, s := range shapes(top) {
		bufBits, totalInVCs, totalOutVCs := 0, 0, 0
		for _, v := range s.InVCs {
			bufBits += v * p.BufferDepthFlits * p.FlitWidthBits
			totalInVCs += v
		}
		for _, v := range s.OutVCs {
			totalOutVCs += v
		}
		nIn, nOut := len(s.InVCs), len(s.OutVCs)
		rep.LeakageMW += float64(bufBits) * p.LeakPerBufBit
		rep.LeakageMW += float64(nIn*nOut*p.FlitWidthBits) * p.LeakPerXbarBit
		rep.LeakageMW += float64(totalOutVCs*totalInVCs+nIn*nOut) * p.LeakPerArbPort
	}
	rep.LeakageMW += float64(top.NumLinks()) * p.LinkLengthMM * p.LeakPerLinkMM *
		float64(p.FlitWidthBits)

	rep.TotalMW = rep.DynamicMW + rep.LeakageMW
	return rep, nil
}

// MM2 converts µm² to mm² for reporting.
func MM2(um2 float64) float64 { return um2 / 1e6 }

// RelativeOverhead returns (x−base)/base, guarding against a zero base.
func RelativeOverhead(x, base float64) float64 {
	if base == 0 {
		return math.Inf(1)
	}
	return (x - base) / base
}
