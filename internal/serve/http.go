package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	nocdr "github.com/nocdr/nocdr"
	"github.com/nocdr/nocdr/internal/certify"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/nocerr"
)

// Handler mounts the v1 API on a fresh mux. Mutating routes sit behind
// the fleet bearer guard (a no-op when Options.AuthToken is empty);
// reads stay open so dashboards and probes need no credentials.
func (s *Server) Handler() http.Handler {
	guard := func(h http.HandlerFunc) http.Handler {
		return fabric.RequireBearer(s.opts.AuthToken, h)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("POST /v1/remove", guard(s.handleRemove))
	mux.Handle("POST /v1/sweep", guard(s.handleSweep))
	mux.Handle("POST /v1/simulate", guard(s.handleSimulate))
	mux.Handle("POST /v1/reconfigure", guard(s.handleReconfigure))
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/certificate", s.handleJobCertificate)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.Handle("POST /v1/jobs/{id}/cancel", guard(s.handleJobCancel))
	mux.Handle("POST /v1/workers/register", guard(s.handleWorkerRegister))
	mux.Handle("POST /v1/workers/{id}/heartbeat", guard(s.handleWorkerHeartbeat))
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.Handle("POST /v1/cache/seed", guard(s.handleCacheSeed))
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheEntry)
	return mux
}

// handleHealthz is the liveness document: compatibility key "status"
// plus role, uptime and fleet size, so a probe distinguishes a
// coordinator from its workers without extra round-trips.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"role":      s.opts.Role,
		"uptime_ms": time.Since(s.started).Milliseconds(),
		"workers":   s.registry.Count(),
	})
}

// handleWorkerRegister admits (or refreshes) a fleet worker and answers
// with the heartbeat contract it must honor.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: worker url is required", nocerr.ErrInvalidInput))
		return
	}
	wk := s.registry.Register(req.URL)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":                    wk.ID,
		"heartbeat_interval_ms": s.registry.HeartbeatInterval().Milliseconds(),
		"ttl_ms":                s.registry.TTL().Milliseconds(),
	})
}

// handleWorkerHeartbeat refreshes a worker's liveness; 404 tells a
// retired worker to re-register.
func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.Heartbeat(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: worker %q (retired or never registered)", nocerr.ErrNotFound, id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	live := s.registry.Live()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers": live,
		"count":   len(live),
		"retired": s.registry.Retired(),
	})
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	st := s.opts.Cache.Stats() // nil-safe: zero counters when disabled
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  s.opts.Cache != nil,
		"stats":    st,
		"hit_rate": st.HitRate(),
	})
}

// handleCacheSeed accepts a batch of warm cache entries from a peer —
// the coordinator shipping its hits ahead of a shard dispatch, or a
// worker pushing fresh results home. Entries land via Cache.Seed, which
// stores without echoing back upstream, so propagation never loops. An
// instance running without a cache answers 409: the peer should stop
// shipping rather than retry.
func (s *Server) handleCacheSeed(w http.ResponseWriter, r *http.Request) {
	if s.opts.Cache == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("%w: this instance runs without a result cache", nocerr.ErrInvalidInput))
		return
	}
	var req struct {
		Entries []fabric.CacheEntry `json:"entries"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	stored := 0
	for _, e := range req.Entries {
		if e.Key == "" || len(e.Value) == 0 {
			continue
		}
		s.opts.Cache.Seed(e.Key, e.Value)
		stored++
	}
	writeJSON(w, http.StatusOK, map[string]any{"stored": stored})
}

// handleCacheEntry serves one raw cache value by key — the pull half of
// propagation, used by workers whose local tiers miss.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.opts.Cache == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: this instance runs without a result cache", nocerr.ErrNotFound))
		return
	}
	v, ok := s.opts.Cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: cache entry %q", nocerr.ErrNotFound, key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(v)
}

// removeRequest is the POST /v1/remove body: the design to repair plus
// the removal policy.
type removeRequest struct {
	Topology *nocdr.Topology   `json:"topology"`
	Routes   *nocdr.RouteTable `json:"routes"`
	Options  struct {
		VCLimit       int    `json:"vc_limit"`
		MaxIterations int    `json:"max_iterations"`
		Policy        string `json:"policy"`    // "", "best", "forward", "backward"
		Selection     string `json:"selection"` // "", "smallest", "first"
		FullRebuild   bool   `json:"full_rebuild"`
		// NoCache forces recomputation, refreshing (never consulting)
		// the result cache. It does not participate in the cache key.
		NoCache bool `json:"no_cache"`
	} `json:"options"`
}

// removeResult is a finished remove job's result document.
type removeResult struct {
	DeadlockFree   bool              `json:"deadlock_free"`
	InitialAcyclic bool              `json:"initial_acyclic"`
	AddedVCs       int               `json:"added_vcs"`
	Iterations     int               `json:"iterations"`
	Topology       *nocdr.Topology   `json:"topology"`
	Routes         *nocdr.RouteTable `json:"routes"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Topology == nil || req.Routes == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: topology and routes are required", nocerr.ErrInvalidInput))
		return
	}
	opts := []nocdr.Option{
		nocdr.WithVCLimit(req.Options.VCLimit),
		nocdr.WithMaxIterations(req.Options.MaxIterations),
		nocdr.WithFullRebuild(req.Options.FullRebuild),
	}
	switch req.Options.Policy {
	case "", "best":
		opts = append(opts, nocdr.WithPolicy(nocdr.BestOfBoth))
	case "forward":
		opts = append(opts, nocdr.WithPolicy(nocdr.ForwardOnly))
	case "backward":
		opts = append(opts, nocdr.WithPolicy(nocdr.BackwardOnly))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown policy %q", nocerr.ErrInvalidInput, req.Options.Policy))
		return
	}
	switch req.Options.Selection {
	case "", "smallest":
		opts = append(opts, nocdr.WithSelection(nocdr.SmallestFirst))
	case "first":
		opts = append(opts, nocdr.WithSelection(nocdr.FirstFound))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown selection %q", nocerr.ErrInvalidInput, req.Options.Selection))
		return
	}
	// The cache key spans every semantic input; the bypass flag must
	// address the same entry it refreshes, so it is zeroed out.
	keyReq := req
	keyReq.Options.NoCache = false
	s.enqueue(w, "remove", func(ctx context.Context, j *Job) (any, error) {
		return s.cachedResult(j, "serve/remove", keyReq, req.Options.NoCache, func() (any, error) {
			sess := s.session(j, opts...)
			res, err := sess.RemoveDeadlocks(ctx, req.Topology, req.Routes)
			if err != nil {
				return nil, err
			}
			free, err := sess.DeadlockFree(res.Topology, res.Routes)
			if err != nil {
				return nil, err
			}
			return removeResult{
				DeadlockFree:   free,
				InitialAcyclic: res.InitialAcyclic,
				AddedVCs:       res.AddedVCs,
				Iterations:     res.Iterations,
				Topology:       res.Topology,
				Routes:         res.Routes,
			}, nil
		})
	})
}

// sweepRequest is the POST /v1/sweep body.
type sweepRequest struct {
	Grid nocdr.SweepGrid `json:"grid"`
	// Seeds/Loads are top-level aliases for grid.seeds/grid.loads,
	// mirroring the CLI's -seeds/-loads flags; values inside the grid
	// win when both are present.
	Seeds    []int64         `json:"seeds"`
	Loads    []float64       `json:"loads"`
	Simulate bool            `json:"simulate"`
	Sim      nocdr.SimParams `json:"sim"`
	// Certify adds the independent-checker verification stage to every
	// cell (the nocexp sweep -certify flag).
	Certify bool `json:"certify"`
	// Parallel overrides the server's per-sweep runner worker count.
	Parallel int `json:"parallel"`
	// Options carries the per-cell removal policy, so a sharded
	// coordinator can forward its full configuration and keep shard
	// results byte-identical to a local run.
	Options struct {
		VCLimit     int    `json:"vc_limit"`
		FullRebuild bool   `json:"full_rebuild"`
		Policy      string `json:"policy"` // "", "best", "forward", "backward"
		// NoCache forces recomputation of every cell, refreshing (never
		// consulting) the per-cell result cache.
		NoCache bool `json:"no_cache"`
	} `json:"options"`
}

// parseShard resolves the ?shard=i/n query filter of /v1/sweep. An empty
// spec means unsharded.
func parseShard(spec string) (index, count int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	i, n, ok := strings.Cut(spec, "/")
	if ok {
		index, err = strconv.Atoi(i)
		if err == nil {
			count, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil || count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("%w: malformed shard filter %q (want i/n with 0 <= i < n)", nocerr.ErrInvalidInput, spec)
	}
	return index, count, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Grid.Seeds) == 0 {
		req.Grid.Seeds = req.Seeds
	}
	if len(req.Grid.Loads) == 0 {
		req.Grid.Loads = req.Loads
	}
	if err := req.Grid.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	shardIndex, shardCount, err := parseShard(r.URL.Query().Get("shard"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	extra := []nocdr.Option{
		nocdr.WithVCLimit(req.Options.VCLimit),
		nocdr.WithFullRebuild(req.Options.FullRebuild),
	}
	switch req.Options.Policy {
	case "", "best":
		extra = append(extra, nocdr.WithPolicy(nocdr.BestOfBoth))
	case "forward":
		extra = append(extra, nocdr.WithPolicy(nocdr.ForwardOnly))
	case "backward":
		extra = append(extra, nocdr.WithPolicy(nocdr.BackwardOnly))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown policy %q", nocerr.ErrInvalidInput, req.Options.Policy))
		return
	}
	if req.Parallel > 0 {
		extra = append(extra, nocdr.WithParallel(req.Parallel))
	}
	s.enqueue(w, "sweep", func(ctx context.Context, j *Job) (any, error) {
		sess := s.session(j, extra...)
		// A canceled sweep still returns its partial report; runJob
		// stores it alongside the canceled state.
		return sess.Sweep(ctx, req.Grid, nocdr.SweepOptions{
			Simulate:   req.Simulate,
			Sim:        req.Sim,
			Certify:    req.Certify,
			ShardIndex: shardIndex,
			ShardCount: shardCount,
			NoCache:    req.Options.NoCache,
		})
	})
}

// simulateRequest is the POST /v1/simulate body.
type simulateRequest struct {
	Topology *nocdr.Topology     `json:"topology"`
	Traffic  *nocdr.TrafficGraph `json:"traffic"`
	Routes   *nocdr.RouteTable   `json:"routes"`
	Config   struct {
		MaxCycles      int64   `json:"max_cycles"`
		LoadFactor     float64 `json:"load_factor"`
		PacketsPerFlow int     `json:"packets_per_flow"`
		BufferDepth    int     `json:"buffer_depth"`
		Seed           int64   `json:"seed"`
		EpochCycles    int64   `json:"epoch_cycles"`
		// Seeds/Loads are the batch axes, named after the CLI's
		// -seeds/-loads flags. When either is set the job runs the
		// lockstep batch engine over the Seeds × Loads cross product and
		// the result document is the batch shape (a "variants" array);
		// the singular seed/load_factor fields remain the accepted
		// single-value spelling and seed every lane that does not
		// override them.
		Seeds []int64   `json:"seeds"`
		Loads []float64 `json:"loads"`
	} `json:"config"`
	Options struct {
		// NoCache forces recomputation, refreshing (never consulting)
		// the result cache.
		NoCache bool `json:"no_cache"`
	} `json:"options"`
}

// simulateResult is a finished simulate job's result document.
type simulateResult struct {
	Cycles           int64   `json:"cycles"`
	InjectedPackets  int64   `json:"injected_packets"`
	DeliveredPackets int64   `json:"delivered_packets"`
	DeliveredFlits   int64   `json:"delivered_flits"`
	AvgLatency       float64 `json:"avg_latency"`
	MaxLatency       int64   `json:"max_latency"`
	Throughput       float64 `json:"throughput_flits_per_cycle"`
	Deadlocked       bool    `json:"deadlocked"`
	DeadlockCycle    int64   `json:"deadlock_cycle,omitempty"`
	Drained          bool    `json:"drained"`
}

func toSimulateResult(st *nocdr.SimStats) simulateResult {
	return simulateResult{
		Cycles:           st.Cycles,
		InjectedPackets:  st.InjectedPackets,
		DeliveredPackets: st.DeliveredPackets,
		DeliveredFlits:   st.DeliveredFlits,
		AvgLatency:       st.AvgLatency(),
		MaxLatency:       st.LatencyMax,
		Throughput:       st.ThroughputFlitsPerCycle(),
		Deadlocked:       st.Deadlocked,
		DeadlockCycle:    st.DeadlockCycle,
		Drained:          st.Drained,
	}
}

// variantResult is one lane of a batched simulate job: the normalized
// (seed, load) tag plus the standard result document.
type variantResult struct {
	Seed int64   `json:"seed"`
	Load float64 `json:"load"`
	simulateResult
}

// batchSimulateResult is a finished batched simulate job's result
// document: one entry per lane in Seeds × Loads order (seed-major).
type batchSimulateResult struct {
	Variants []variantResult `json:"variants"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Topology == nil || req.Traffic == nil || req.Routes == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: topology, traffic and routes are required", nocerr.ErrInvalidInput))
		return
	}
	cfg := nocdr.SimConfig{
		MaxCycles:      req.Config.MaxCycles,
		LoadFactor:     req.Config.LoadFactor,
		PacketsPerFlow: req.Config.PacketsPerFlow,
		BufferDepth:    req.Config.BufferDepth,
		Seed:           req.Config.Seed,
		EpochCycles:    req.Config.EpochCycles,
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 100000
	}
	keyReq := req
	keyReq.Options.NoCache = false
	if len(req.Config.Seeds) > 0 || len(req.Config.Loads) > 0 {
		spec := nocdr.SimSpec{Seeds: req.Config.Seeds, Loads: req.Config.Loads, Base: cfg}
		s.enqueue(w, "simulate", func(ctx context.Context, j *Job) (any, error) {
			return s.cachedResult(j, "serve/simulate", keyReq, req.Options.NoCache, func() (any, error) {
				bs, err := s.session(j).SimulateBatch(ctx, req.Topology, req.Traffic, req.Routes, spec)
				if err != nil {
					return nil, err
				}
				out := batchSimulateResult{Variants: make([]variantResult, len(bs.Variants))}
				for i, v := range bs.Variants {
					out.Variants[i] = variantResult{Seed: v.Seed, Load: v.Load, simulateResult: toSimulateResult(v.Stats)}
				}
				return out, nil
			})
		})
		return
	}
	s.enqueue(w, "simulate", func(ctx context.Context, j *Job) (any, error) {
		return s.cachedResult(j, "serve/simulate", keyReq, req.Options.NoCache, func() (any, error) {
			st, err := s.session(j).Simulate(ctx, req.Topology, req.Traffic, req.Routes, cfg)
			if err != nil {
				return nil, err
			}
			return toSimulateResult(st), nil
		})
	})
}

// reconfigureRequest is the POST /v1/reconfigure body: a removed design
// bundle (the `nocexp design` artifact) plus the link faults to apply in
// order.
type reconfigureRequest struct {
	Design  *nocdr.ReconfigDesign `json:"design"`
	Faults  []int                 `json:"faults"`
	Options struct {
		VCLimit       int    `json:"vc_limit"`
		MaxIterations int    `json:"max_iterations"`
		Policy        string `json:"policy"`    // "", "best", "forward", "backward"
		Selection     string `json:"selection"` // "", "smallest", "first"
		SkipSim       bool   `json:"skip_sim"`
		SimCycles     int64  `json:"sim_cycles"`
	} `json:"options"`
}

// reconfigureResult is a finished reconfigure job's result document: the
// evolved design plus one delta per committed fault event.
type reconfigureResult struct {
	VCsAdded int                    `json:"vcs_added"`
	Deltas   []*nocdr.ReconfigDelta `json:"deltas"`
	Design   *nocdr.ReconfigDesign  `json:"design"`
}

func (s *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	var req reconfigureRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Design == nil || len(req.Faults) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: design and at least one fault are required", nocerr.ErrInvalidInput))
		return
	}
	opts := []nocdr.Option{
		nocdr.WithVCLimit(req.Options.VCLimit),
		nocdr.WithMaxIterations(req.Options.MaxIterations),
	}
	switch req.Options.Policy {
	case "", "best":
		opts = append(opts, nocdr.WithPolicy(nocdr.BestOfBoth))
	case "forward":
		opts = append(opts, nocdr.WithPolicy(nocdr.ForwardOnly))
	case "backward":
		opts = append(opts, nocdr.WithPolicy(nocdr.BackwardOnly))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown policy %q", nocerr.ErrInvalidInput, req.Options.Policy))
		return
	}
	switch req.Options.Selection {
	case "", "smallest":
		opts = append(opts, nocdr.WithSelection(nocdr.SmallestFirst))
	case "first":
		opts = append(opts, nocdr.WithSelection(nocdr.FirstFound))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown selection %q", nocerr.ErrInvalidInput, req.Options.Selection))
		return
	}
	faults := make([]nocdr.LinkID, 0, len(req.Faults))
	for _, f := range req.Faults {
		faults = append(faults, nocdr.LinkID(f))
	}
	ropts := nocdr.ReconfigOptions{SkipSim: req.Options.SkipSim, SimCycles: req.Options.SimCycles}
	s.enqueue(w, "reconfigure", func(ctx context.Context, j *Job) (any, error) {
		res, err := s.session(j, opts...).Reconfigure(ctx, req.Design, faults, ropts)
		if err != nil {
			return nil, err
		}
		vcs := 0
		for _, d := range res.Deltas {
			vcs += d.VCsAdded
		}
		return reconfigureResult{
			VCsAdded: vcs,
			Deltas:   res.Deltas,
			Design:   res.Design,
		}, nil
	})
}

// enqueue submits the job and answers 202 with its ID and links. A full
// backlog is load, not failure: the client is told when to come back.
func (s *Server) enqueue(w http.ResponseWriter, kind string, run func(ctx context.Context, j *Job) (any, error)) {
	j, err := s.submit(kind, run)
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": j.ID,
		"links": map[string]string{
			"self":   "/v1/jobs/" + j.ID,
			"events": "/v1/jobs/" + j.ID + "/events",
			"cancel": "/v1/jobs/" + j.ID + "/cancel",
		},
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.statuses()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobCertificate re-checks a finished remove or reconfigure job's
// output design through the independent checker (internal/certify) and
// answers with the machine-checkable certificate: a topological order of
// the rebuilt channel-dependency graph as the acyclicity witness. The
// certificate is derived on demand from the stored result document, so
// cached and recomputed jobs certify identically.
func (s *Server) handleJobCertificate(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st := j.snapshot()
	if st.Kind != "remove" && st.Kind != "reconfigure" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: certificates are issued for remove and reconfigure jobs, not %q", nocerr.ErrInvalidInput, st.Kind))
		return
	}
	if st.State != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("%w: job %s is %s; a certificate requires a completed job", nocerr.ErrInvalidInput, st.ID, st.State))
		return
	}
	// The result document is either the typed struct (computed this
	// process) or the decoded canonical cache bytes; re-marshaling
	// normalizes both to the same JSON, from which the design bundle is
	// carved: reconfigure results carry it whole under "design", remove
	// results as sibling "topology"/"routes" fields.
	doc, err := json.Marshal(st.Result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var envelope struct {
		Design   json.RawMessage `json:"design"`
		Topology json.RawMessage `json:"topology"`
		Routes   json.RawMessage `json:"routes"`
	}
	if err := json.Unmarshal(doc, &envelope); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	designJSON := []byte(envelope.Design)
	if len(designJSON) == 0 || string(designJSON) == "null" {
		designJSON, err = json.Marshal(struct {
			Topology json.RawMessage `json:"topology"`
			Routes   json.RawMessage `json:"routes"`
		}{envelope.Topology, envelope.Routes})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	cert, err := certify.Check(designJSON, "post")
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("certify: %w", err))
		return
	}
	if err := certify.Validate(cert, designJSON); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("certify: witness validation failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, cert)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.cancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// ssePingInterval is how often an idle event stream emits a comment
// frame. Pings keep intermediaries from timing the connection out and
// let streaming clients (runner.Sharded) run an idle watchdog that is
// strictly longer, so a healthy-but-quiet job never trips it. A var so
// tests can shorten the quiet period.
var ssePingInterval = 15 * time.Second

// handleJobEvents streams the job's event feed as Server-Sent Events:
// the full buffer is replayed first, then live events as they are
// emitted, then one terminal "state" event, and the stream closes.
// Quiet stretches carry ": ping" comments every ssePingInterval.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ping := time.NewTicker(ssePingInterval)
	defer ping.Stop()

	next := 0
	for {
		j.mu.Lock()
		events := j.events[next:]
		state := j.state
		wake := j.wake
		j.mu.Unlock()

		for _, ev := range events {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, ev.Data)
		}
		next += len(events)
		if len(events) > 0 {
			flusher.Flush()
		}
		if state.terminal() {
			data, _ := json.Marshal(j.snapshot())
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-ping.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// decode reads a bounded JSON body: oversized bodies are answered 413
// (the limit is Options.MaxBodyBytes), malformed ones 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w: request body exceeds %d bytes", nocerr.ErrInvalidInput, mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", nocerr.ErrInvalidInput, err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
