package serve

// Fabric conformance suite for the HTTP layer: whole-job result caching
// with singleflight collapsing, the worker registry lifecycle, bearer
// auth on every mutating route, and the request hardening paths (413
// body limit, 429 backpressure).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nocdr/nocdr/internal/fabric"
)

// resultBytes canonicalizes a terminal job's result document for
// byte-comparison across jobs.
func resultBytes(t *testing.T, st JobStatus) []byte {
	t.Helper()
	if st.State != StateDone {
		t.Fatalf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// cacheStats fetches GET /v1/cache.
func cacheStats(t *testing.T, base string) fabric.Stats {
	t.Helper()
	var doc struct {
		Enabled bool         `json:"enabled"`
		Stats   fabric.Stats `json:"stats"`
	}
	if code := getJSON(t, base+"/v1/cache", &doc); code != http.StatusOK {
		t.Fatalf("GET /v1/cache: status %d", code)
	}
	if !doc.Enabled {
		t.Fatal("cache endpoint reports disabled on a cache-enabled server")
	}
	return doc.Stats
}

// TestFabricCachedRemoveByteIdentical submits the same remove job
// twice: the second must be served from the cache (cached:true) with a
// result document byte-identical to the cold run, and a no_cache bypass
// must recompute yet still produce the same bytes.
func TestFabricCachedRemoveByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Cache: fabric.NewCache(fabric.CacheOptions{})})
	topo, _, routes := ringDesign(t)
	body := map[string]any{"topology": topo, "routes": routes}

	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/remove", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit cold: status %d", code)
	}
	cold := waitTerminal(t, ts.URL, sub.ID)
	if cold.Cached {
		t.Fatal("cold run reported cached:true")
	}
	want := resultBytes(t, cold)

	if code := postJSON(t, ts.URL+"/v1/remove", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit warm: status %d", code)
	}
	warm := waitTerminal(t, ts.URL, sub.ID)
	if !warm.Cached {
		t.Fatal("identical resubmission was not served from the cache")
	}
	if got := resultBytes(t, warm); !bytes.Equal(want, got) {
		t.Fatalf("cached result differs from cold:\ncold:\n%s\ncached:\n%s", want, got)
	}

	bypass := map[string]any{"topology": topo, "routes": routes, "options": map[string]any{"no_cache": true}}
	if code := postJSON(t, ts.URL+"/v1/remove", bypass, &sub); code != http.StatusAccepted {
		t.Fatalf("submit bypass: status %d", code)
	}
	fresh := waitTerminal(t, ts.URL, sub.ID)
	if fresh.Cached {
		t.Fatal("no_cache submission reported cached:true")
	}
	if got := resultBytes(t, fresh); !bytes.Equal(want, got) {
		t.Fatalf("no_cache result differs from cold:\ncold:\n%s\nbypass:\n%s", want, got)
	}
}

// TestFabricCachedSimulateByteIdentical extends the whole-job cache
// check to /v1/simulate, whose result document embeds batch variants.
func TestFabricCachedSimulateByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Cache: fabric.NewCache(fabric.CacheOptions{})})
	topo, traffic, routes := ringDesign(t)
	body := map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{"max_cycles": 2000, "seeds": []int64{0, 1}},
	}
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit cold: status %d", code)
	}
	want := resultBytes(t, waitTerminal(t, ts.URL, sub.ID))

	if code := postJSON(t, ts.URL+"/v1/simulate", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit warm: status %d", code)
	}
	warm := waitTerminal(t, ts.URL, sub.ID)
	if !warm.Cached {
		t.Fatal("identical simulate resubmission was not served from the cache")
	}
	if got := resultBytes(t, warm); !bytes.Equal(want, got) {
		t.Fatalf("cached simulate result differs:\ncold:\n%s\ncached:\n%s", want, got)
	}
}

// TestFabricSweepCellCache pins the per-cell cache wiring: a second
// identical sweep job must answer every cell from the cache and produce
// a byte-identical report document.
func TestFabricSweepCellCache(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, SweepParallel: 2, Cache: fabric.NewCache(fabric.CacheOptions{})})
	body := map[string]any{
		"grid":  map[string]any{"benchmarks": []string{"mesh:3"}, "switches": []int{9}},
		"seeds": []int64{0, 1},
	}
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit cold sweep: status %d", code)
	}
	want := resultBytes(t, waitTerminal(t, ts.URL, sub.ID))
	before := cacheStats(t, ts.URL)

	if code := postJSON(t, ts.URL+"/v1/sweep", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit warm sweep: status %d", code)
	}
	if got := resultBytes(t, waitTerminal(t, ts.URL, sub.ID)); !bytes.Equal(want, got) {
		t.Fatalf("cache-served sweep differs:\ncold:\n%s\ncached:\n%s", want, got)
	}
	after := cacheStats(t, ts.URL)
	if hits := after.Hits - before.Hits; hits < 2 {
		t.Fatalf("warm sweep hit the cache %d time(s), want >= 2 (one per cell)", hits)
	}
}

// TestFabricConcurrentSubmissionsCollapse fires identical jobs
// concurrently: however they interleave, the computation must run once
// (misses stays at 1) and every other submission must be answered from
// the flight or the cache, byte-identically.
func TestFabricConcurrentSubmissionsCollapse(t *testing.T) {
	const n = 6
	_, ts := newTestServer(t, Options{Workers: n, Cache: fabric.NewCache(fabric.CacheOptions{})})
	topo, _, routes := ringDesign(t)
	body := map[string]any{"topology": topo, "routes": routes}

	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sub submitResponse
			if code := postJSON(t, ts.URL+"/v1/remove", body, &sub); code != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, code)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var want []byte
	uncached := 0
	for _, id := range ids {
		st := waitTerminal(t, ts.URL, id)
		got := resultBytes(t, st)
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("concurrent submissions diverged:\n%s\nvs\n%s", want, got)
		}
		if !st.Cached {
			uncached++
		}
	}
	if uncached != 1 {
		t.Fatalf("%d of %d concurrent submissions computed, want exactly 1", uncached, n)
	}
	st := cacheStats(t, ts.URL)
	if st.Misses != 1 {
		t.Fatalf("cache misses = %d after %d identical submissions, want 1 (stats %+v)", st.Misses, n, st)
	}
	if st.Hits+st.Collapsed != n-1 {
		t.Fatalf("hits(%d) + collapsed(%d) = %d, want %d", st.Hits, st.Collapsed, st.Hits+st.Collapsed, n-1)
	}
}

// TestFabricWorkerRegistryLifecycle drives the registry over HTTP:
// register → listed; heartbeat → refreshed; silence past the missed-
// heartbeat budget → retired (listed gone, heartbeat 404); re-register
// → fresh identity.
func TestFabricWorkerRegistryLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, HeartbeatInterval: 20 * time.Millisecond, MissedBudget: 2})

	var reg struct {
		ID                  string `json:"id"`
		HeartbeatIntervalMS int64  `json:"heartbeat_interval_ms"`
		TTLMS               int64  `json:"ttl_ms"`
	}
	if code := postJSON(t, ts.URL+"/v1/workers/register", map[string]string{"url": "http://w1.example"}, &reg); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if reg.ID == "" || reg.HeartbeatIntervalMS != 20 || reg.TTLMS != 40 {
		t.Fatalf("register contract: %+v", reg)
	}
	var listed struct {
		Workers []fabric.Worker `json:"workers"`
		Count   int             `json:"count"`
		Retired uint64          `json:"retired"`
	}
	if code := getJSON(t, ts.URL+"/v1/workers", &listed); code != http.StatusOK || listed.Count != 1 {
		t.Fatalf("workers after register: %d %+v", code, listed)
	}
	if listed.Workers[0].ID != reg.ID || listed.Workers[0].URL != "http://w1.example" {
		t.Fatalf("listed worker: %+v", listed.Workers[0])
	}

	hb := func() int {
		resp, err := http.Post(ts.URL+"/v1/workers/"+reg.ID+"/heartbeat", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := hb(); code != http.StatusNoContent {
		t.Fatalf("heartbeat: status %d", code)
	}

	// Fall silent past the TTL: the worker must age out.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/workers", &listed); code != http.StatusOK {
			t.Fatalf("workers poll: status %d", code)
		}
		if listed.Count == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never retired: %+v", listed)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if listed.Retired != 1 {
		t.Fatalf("retired counter = %d, want 1", listed.Retired)
	}
	if code := hb(); code != http.StatusNotFound {
		t.Fatalf("heartbeat after retirement: status %d, want 404", code)
	}

	// Re-registration after retirement is a fresh join, not a resurrection.
	old := reg.ID
	if code := postJSON(t, ts.URL+"/v1/workers/register", map[string]string{"url": "http://w1.example"}, &reg); code != http.StatusOK {
		t.Fatalf("re-register: status %d", code)
	}
	if reg.ID == old {
		t.Fatalf("retired worker re-registered under its old identity %s", old)
	}
}

// TestFabricAuthGuardsMutatingRoutes table-drives the bearer guard:
// every mutating route must reject missing and wrong tokens with 401
// (and the WWW-Authenticate challenge) and accept the right one; every
// read route must stay open.
func TestFabricAuthGuardsMutatingRoutes(t *testing.T) {
	const token = "fleet-secret"
	_, ts := newTestServer(t, Options{Workers: 1, AuthToken: token})

	post := func(path, auth string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	mutating := []string{
		"/v1/remove",
		"/v1/sweep",
		"/v1/simulate",
		"/v1/reconfigure",
		"/v1/jobs/j-999/cancel",
		"/v1/workers/register",
		"/v1/workers/w-1/heartbeat",
		"/v1/cache/seed",
	}
	for _, path := range mutating {
		for _, auth := range []string{"", "Bearer wrong", "Basic abc"} {
			resp := post(path, auth)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("POST %s with auth %q: status %d, want 401", path, auth, resp.StatusCode)
			}
			if ch := resp.Header.Get("WWW-Authenticate"); !strings.Contains(ch, "Bearer") {
				t.Fatalf("POST %s: missing bearer challenge, got %q", path, ch)
			}
		}
		if resp := post(path, "Bearer "+token); resp.StatusCode == http.StatusUnauthorized {
			t.Fatalf("POST %s with the fleet token: still 401", path)
		}
	}

	for _, path := range []string{"/healthz", "/v1/jobs", "/v1/workers", "/v1/cache", "/v1/cache/some-key"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnauthorized {
			t.Fatalf("GET %s demanded credentials; reads must stay open", path)
		}
	}
}

// TestFabricBodyLimit pins the request-size guard: a body past
// MaxBodyBytes must bounce with 413, not feed the decoder.
func TestFabricBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxBodyBytes: 512})
	big := fmt.Sprintf(`{"pad": %q}`, strings.Repeat("x", 2048))
	resp, err := http.Post(ts.URL+"/v1/remove", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// A body under the limit still decodes (and fails validation, not
	// the size guard).
	resp, err = http.Post(ts.URL+"/v1/remove", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("small invalid body: status %d, want 400", resp.StatusCode)
	}
}

// TestFabricQueueFull429 pins HTTP backpressure: with the pool busy and
// the queue full, a submission answers 429 with a Retry-After hint.
func TestFabricQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	t.Cleanup(s.Cancel)
	topo, traffic, routes := foreverDesign(t)
	body := map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{"max_cycles": int64(1) << 40},
	}
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit occupant: status %d", code)
	}
	// Wait until the occupant leaves the queue for the worker slot, so
	// the next submission deterministically fills the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("occupant never started: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/v1/simulate", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit queued: status %d", code)
	}

	data, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 answer missing Retry-After")
	}
}
