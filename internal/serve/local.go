package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/nocdr/nocdr/internal/nocerr"
)

// LocalCluster starts n job Servers, each behind its own loopback HTTP
// listener, and returns their base URLs plus a shutdown function — the
// single-machine backing for `nocexp sweep -shard-local N` and for
// in-process sharded-sweep tests. Every worker gets the same Options;
// size SweepParallel so n workers together match the machine (e.g.
// NumCPU/n) rather than oversubscribing it. Shutdown cancels in-flight
// jobs, closes the listeners, and drains the pools.
func LocalCluster(n int, opts Options) (urls []string, shutdown func(), err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("%w: local cluster size %d", nocerr.ErrInvalidInput, n)
	}
	servers := make([]*Server, 0, n)
	https := make([]*http.Server, 0, n)
	shutdown = func() {
		// Cancel before Shutdown: SSE handlers only end when their job
		// goes terminal (see cmd/nocdr's serve shutdown ordering).
		for _, s := range servers {
			s.Cancel()
		}
		for _, hs := range https {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = hs.Shutdown(ctx)
			cancel()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		srv := New(opts)
		hs := &http.Server{Handler: srv.Handler()}
		servers = append(servers, srv)
		https = append(https, hs)
		go func() { _ = hs.Serve(l) }()
		urls = append(urls, "http://"+l.Addr().String())
	}
	return urls, shutdown, nil
}
