package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	nocdr "github.com/nocdr/nocdr"
)

// TestSimulateBatchJob pins the batch request/response shape of
// /v1/simulate: config.seeds/config.loads arrays (the CLI flag names)
// select the lockstep batch engine and the result document becomes a
// seed-major variants array, each entry carrying its normalized tag plus
// the standard single-run fields.
func TestSimulateBatchJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	topo, traffic, routes := foreverDesign(t)

	var sub submitResponse
	code := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{
			"max_cycles": int64(2000),
			"seeds":      []int64{1, 2},
			"loads":      []float64{0.3, 0.9},
		},
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit batch sim: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("batch sim state %s error %q", st.State, st.Error)
	}
	data, _ := json.Marshal(st.Result)
	var out struct {
		Variants []struct {
			Seed      int64   `json:"seed"`
			Load      float64 `json:"load"`
			Cycles    int64   `json:"cycles"`
			Delivered int64   `json:"delivered_packets"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		seed int64
		load float64
	}{{1, 0.3}, {1, 0.9}, {2, 0.3}, {2, 0.9}}
	if len(out.Variants) != len(want) {
		t.Fatalf("got %d variants, want %d: %s", len(out.Variants), len(want), data)
	}
	for i, v := range out.Variants {
		if v.Seed != want[i].seed || v.Load != want[i].load {
			t.Errorf("variant %d tagged (%d, %v), want (%d, %v)", i, v.Seed, v.Load, want[i].seed, want[i].load)
		}
		if v.Cycles != 2000 || v.Delivered == 0 {
			t.Errorf("variant %d ran %d cycles, delivered %d", i, v.Cycles, v.Delivered)
		}
	}
}

// TestSimulateSingleShapeUnchanged pins backward compatibility: a request
// with only the singular seed/load_factor fields must keep the original
// flat result document — no variants array.
func TestSimulateSingleShapeUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	topo, traffic, routes := foreverDesign(t)

	var sub submitResponse
	code := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{
			"max_cycles": int64(2000), "load_factor": 0.5, "seed": int64(7),
		},
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit sim: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("sim state %s error %q", st.State, st.Error)
	}
	data, _ := json.Marshal(st.Result)
	var out map[string]json.RawMessage
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if _, hasVariants := out["variants"]; hasVariants {
		t.Fatalf("single-value request produced batch shape: %s", data)
	}
	if _, ok := out["delivered_packets"]; !ok {
		t.Fatalf("single result document missing delivered_packets: %s", data)
	}
}

// TestSweepLoadsAliases pins the /v1/sweep seeds/loads handling: the
// top-level aliases fold into the grid, and a grid with a Loads axis on
// a simulated sweep yields per-cell load_sweep points and report-level
// curves.
func TestSweepLoadsAliases(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, SweepParallel: 2})
	var sub submitResponse
	code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid": map[string]any{
			"benchmarks":    []string{"torus:4:transpose"},
			"switch_counts": []int{8},
		},
		"seeds":    []int64{1, 2},
		"loads":    []float64{0.2, 0.8},
		"simulate": true,
		"sim":      map[string]any{"cycles": int64(2000), "load": 0.5},
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit sweep: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("sweep state %s error %q", st.State, st.Error)
	}
	data, _ := json.Marshal(st.Result)
	var rep nocdr.SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("sweep results %d, want 2 (aliased seeds axis)", len(rep.Results))
	}
	for i, res := range rep.Results {
		if res.Sim == nil || len(res.Sim.LoadSweep) != 2 {
			t.Fatalf("cell %d missing load-sweep points: %+v", i, res.Sim)
		}
	}
	if len(rep.Curves) != 1 || len(rep.Curves[0].Points) != 2 {
		t.Fatalf("expected one 2-point design curve, got %+v", rep.Curves)
	}

	// Bad aliased loads must be rejected at submission time.
	if code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid":  map[string]any{"benchmarks": []string{"torus:4:transpose"}},
		"loads": []float64{1.5},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range aliased load accepted: status %d", code)
	}
}
