package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	nocdr "github.com/nocdr/nocdr"
	"github.com/nocdr/nocdr/internal/regular"
)

// ringDesign builds the paper's Figure 1 four-switch ring with its four
// cyclic flows — the canonical removable-deadlock workload — and returns
// its JSON-marshaled pieces.
func ringDesign(t *testing.T) (topoJSON, trafficJSON, routesJSON json.RawMessage) {
	t.Helper()
	top := nocdr.NewTopology("figure1")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		if err := top.AttachCore(i, sw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(nocdr.SwitchID(i), nocdr.SwitchID((i+1)%4))
	}
	g := nocdr.NewTraffic("figure1-flows")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	routes := nocdr.NewRouteTable(4)
	ch := func(ids ...int) []nocdr.Channel {
		out := make([]nocdr.Channel, len(ids))
		for i, id := range ids {
			out[i] = nocdr.Chan(nocdr.LinkID(id), 0)
		}
		return out
	}
	routes.Set(0, ch(0, 1, 2))
	routes.Set(1, ch(2, 3))
	routes.Set(2, ch(3, 0))
	routes.Set(3, ch(0, 1))

	mustJSON := func(v json.Marshaler) json.RawMessage {
		data, err := v.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	return mustJSON(top), mustJSON(g), mustJSON(routes)
}

// newTestServer starts a Server over httptest and tears both down with
// the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts a JSON body and decodes the JSON answer.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches a JSON document.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls a job until it leaves the running states.
func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

type submitResponse struct {
	ID string `json:"id"`
}

// foreverDesign builds a 2-switch acyclic design (one link, one flow)
// whose open-loop saturation simulation neither deadlocks nor drains —
// it runs until its cycle horizon or a cancellation, whichever first.
func foreverDesign(t *testing.T) (topoJSON, trafficJSON, routesJSON json.RawMessage) {
	t.Helper()
	top := nocdr.NewTopology("forever")
	s0 := top.AddSwitch("")
	s1 := top.AddSwitch("")
	if err := top.AttachCore(0, s0); err != nil {
		t.Fatal(err)
	}
	if err := top.AttachCore(1, s1); err != nil {
		t.Fatal(err)
	}
	top.MustAddLink(s0, s1)
	g := nocdr.NewTraffic("forever-flows")
	g.AddCore("")
	g.AddCore("")
	g.MustAddFlow(0, 1, 100)
	routes := nocdr.NewRouteTable(1)
	routes.Set(0, []nocdr.Channel{nocdr.Chan(0, 0)})
	mustJSON := func(v json.Marshaler) json.RawMessage {
		data, err := v.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	return mustJSON(top), mustJSON(g), mustJSON(routes)
}

// submitForeverSim submits the non-terminating simulation job.
func submitForeverSim(t *testing.T, base string) string {
	t.Helper()
	topo, traffic, routes := foreverDesign(t)
	var sub submitResponse
	code := postJSON(t, base+"/v1/simulate", map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{"max_cycles": int64(4_000_000_000), "load_factor": 1.0},
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit forever sim: status %d", code)
	}
	return sub.ID
}

// waitState polls until the job reaches want, failing fast if it lands
// on a different terminal state instead.
func waitState(t *testing.T, base, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, base+"/v1/jobs/"+id, &st)
		if st.State == want {
			return
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached terminal state %s (error %q) while waiting for %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRemoveJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	topo, _, routes := ringDesign(t)

	var sub submitResponse
	code := postJSON(t, ts.URL+"/v1/remove", map[string]any{
		"topology": topo, "routes": routes,
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/remove: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q), want done", st.State, st.Error)
	}
	res, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var rr removeResult
	if err := json.Unmarshal(res, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.DeadlockFree {
		t.Fatal("remove job result is not deadlock-free")
	}
	if rr.AddedVCs < 1 || rr.Iterations < 1 {
		t.Fatalf("expected at least one break, got vcs=%d iters=%d", rr.AddedVCs, rr.Iterations)
	}
	if st.Events == 0 {
		t.Fatal("expected progress events (cycle_broken/vc_added), got none")
	}
}

func TestRemoveRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code := postJSON(t, ts.URL+"/v1/remove", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty body accepted: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/remove", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

// TestConcurrentJobs is the acceptance pin: >= 8 jobs in flight at once
// against one server, all finishing deadlock-free, race-clean under
// -race.
func TestConcurrentJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 8, SweepParallel: 2})
	topo, traffic, routes := ringDesign(t)

	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sub submitResponse
			var code int
			switch i % 3 {
			case 0:
				code = postJSON(t, ts.URL+"/v1/remove", map[string]any{
					"topology": topo, "routes": routes,
				}, &sub)
			case 1:
				code = postJSON(t, ts.URL+"/v1/simulate", map[string]any{
					"topology": topo, "traffic": traffic, "routes": routes,
					"config": map[string]any{"max_cycles": 3000, "load_factor": 0.3, "epoch_cycles": 500},
				}, &sub)
			case 2:
				code = postJSON(t, ts.URL+"/v1/sweep", map[string]any{
					"grid": map[string]any{
						"benchmarks":    []string{"D26_media"},
						"switch_counts": []int{8},
						"policies":      []string{"smallest"},
						"seeds":         []int64{0},
					},
				}, &sub)
			}
			if code != http.StatusAccepted {
				t.Errorf("job %d: submit status %d", i, code)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, id := range ids {
		st := waitTerminal(t, ts.URL, id)
		if st.State != StateDone {
			t.Errorf("job %d (%s): state %s error %q", i, id, st.State, st.Error)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	id := submitForeverSim(t, ts.URL)
	waitState(t, ts.URL, id, StateRunning)
	if code := postJSON(t, ts.URL+"/v1/jobs/"+id+"/cancel", nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel: status %d", code)
	}
	st := waitTerminal(t, ts.URL, id)
	if st.State != StateCanceled {
		t.Fatalf("state %s after cancel, want canceled", st.State)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Fatalf("error %q does not mention cancellation", st.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	topo, _, routes := ringDesign(t)

	// Occupy the single worker with a never-ending job, then queue
	// another and cancel it before it starts.
	blocker := submitForeverSim(t, ts.URL)
	waitState(t, ts.URL, blocker, StateRunning)
	var queued submitResponse
	postJSON(t, ts.URL+"/v1/remove", map[string]any{"topology": topo, "routes": routes}, &queued)

	if code := postJSON(t, ts.URL+"/v1/jobs/"+queued.ID+"/cancel", nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel queued: status %d", code)
	}
	st := waitTerminal(t, ts.URL, queued.ID)
	if st.State != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}
	// Unblock the worker so Cleanup's Close does not wait on a 4e9-cycle
	// simulation.
	if _, err := s.cancelJob(blocker); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts.URL, blocker)
}

// TestEventsSSE streams a remove job's feed and checks replay order and
// the terminal state event.
func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	topo, _, routes := ringDesign(t)

	var sub submitResponse
	postJSON(t, ts.URL+"/v1/remove", map[string]any{"topology": topo, "routes": routes}, &sub)
	waitTerminal(t, ts.URL, sub.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var kinds []string
	var sawState bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if k, ok := strings.CutPrefix(line, "event: "); ok {
			kinds = append(kinds, k)
			if k == "state" {
				sawState = true
			}
		}
	}
	if !sawState {
		t.Fatalf("no terminal state event in stream: %v", kinds)
	}
	var broke, added bool
	for _, k := range kinds {
		broke = broke || k == "cycle_broken"
		added = added || k == "vc_added"
	}
	if !broke || !added {
		t.Fatalf("expected cycle_broken and vc_added events, got %v", kinds)
	}
}

func TestSweepJobReportShape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, SweepParallel: 2})
	var sub submitResponse
	code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid": map[string]any{
			"benchmarks":    []string{"D26_media"},
			"switch_counts": []int{8, 11},
		},
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit sweep: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("sweep state %s error %q", st.State, st.Error)
	}
	data, _ := json.Marshal(st.Result)
	var rep nocdr.SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("sweep results %d, want 2", len(rep.Results))
	}
	if st.Events < 2 {
		t.Fatalf("expected >= 2 sweep_cell events, got %d", st.Events)
	}
	// Unknown benchmark specs must be rejected at submission, not
	// deferred to the job.
	if code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid": map[string]any{"benchmarks": []string{"no_such_bench"}},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid grid accepted: status %d", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var hz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, hz)
	}
	if hz["role"] != "coordinator" {
		t.Fatalf("healthz role %v, want coordinator", hz["role"])
	}
	if _, ok := hz["uptime_ms"]; !ok {
		t.Fatalf("healthz missing uptime_ms: %v", hz)
	}
	if _, ok := hz["workers"]; !ok {
		t.Fatalf("healthz missing workers: %v", hz)
	}
}

// TestQueueOverflow pins the backpressure path behind the HTTP 429.
func TestQueueOverflow(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	block := make(chan struct{})
	defer close(block) // before Close in LIFO order, so the pool drains
	started := make(chan struct{})
	blocked := func(ctx context.Context, j *Job) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
		return nil, nil
	}
	// Occupy the worker and wait until it has actually popped the job
	// off the queue, then fill the single queue slot.
	if _, err := s.submit("test", blocked); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	if _, err := s.submit("test", blocked); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	// Worker busy, queue full: the next submission must bounce.
	_, err := s.submit("test", blocked)
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("expected queue-full error, got %v", err)
	}
}

// TestSweepJobAdaptiveRouting pins that /v1/sweep accepts the routing
// and fault axes: a faulted odd-even mesh cell with the simulation stage
// must come back verified (zero post-removal deadlocks) with the routing
// echoed in the report.
func TestSweepJobAdaptiveRouting(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	var sub struct {
		ID string `json:"id"`
	}
	code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid": map[string]any{
			"benchmarks": []string{"mesh:4"},
			"routings":   []string{"odd-even", "min-adaptive"},
			"faults":     2,
			"max_paths":  4,
		},
		"simulate": true,
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit adaptive sweep: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("sweep state %s error %q", st.State, st.Error)
	}
	data, _ := json.Marshal(st.Result)
	var rep nocdr.SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("sweep results %d, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("cell %+v failed: %s", r.Job, r.Error)
		}
		if r.Routing == "" || r.Faults != 2 {
			t.Errorf("cell lost its routing/fault axes: %+v", r.Job)
		}
		if r.Sim == nil || r.Sim.PostDeadlock {
			t.Errorf("cell %+v: missing or failed verification stage", r.Job)
		}
	}
	// An unknown routing must be rejected at submission time.
	if code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid": map[string]any{"benchmarks": []string{"mesh:4"}, "routings": []string{"zig-zag"}},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown routing accepted with status %d", code)
	}
}

// TestSweepShardFilter pins the server side of the sharded backend: a
// ?shard=i/n submission evaluates only the cells the stable hash assigns
// to shard i, the shards partition the grid exactly, and a malformed or
// out-of-range filter is rejected at submission.
func TestSweepShardFilter(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, SweepParallel: 2})
	grid := map[string]any{
		"benchmarks":    []string{"D26_media"},
		"switch_counts": []int{8, 11, 14, 20},
	}
	const shards = 2
	seen := map[string]int{}
	total := 0
	for i := 0; i < shards; i++ {
		var sub submitResponse
		code := postJSON(t, fmt.Sprintf("%s/v1/sweep?shard=%d/%d", ts.URL, i, shards), map[string]any{"grid": grid}, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit shard %d: status %d", i, code)
		}
		st := waitTerminal(t, ts.URL, sub.ID)
		if st.State != StateDone {
			t.Fatalf("shard %d state %s error %q", i, st.State, st.Error)
		}
		data, _ := json.Marshal(st.Result)
		var rep nocdr.SweepReport
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			seen[r.Job.Key()]++
		}
		total += len(rep.Results)
	}
	if total != 4 {
		t.Fatalf("shards hold %d cells together, want the grid's 4", total)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("cell %q appeared in %d shards", k, n)
		}
	}
	for _, bad := range []string{"x", "2/2", "-1/2", "1", "1/0", "1/2/3"} {
		if code := postJSON(t, ts.URL+"/v1/sweep?shard="+bad, map[string]any{"grid": grid}, nil); code != http.StatusBadRequest {
			t.Errorf("shard filter %q accepted with status %d", bad, code)
		}
	}
}

// reconfigDesignJSON builds a removed 4x4 odd-even mesh design bundle
// (all-to-all traffic) plus two safe sequential faults for it.
func reconfigDesignJSON(t *testing.T) (json.RawMessage, []int) {
	t.Helper()
	tr := nocdr.NewTraffic("all2all_16")
	for i := 0; i < 16; i++ {
		tr.AddCore("")
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				tr.MustAddFlow(nocdr.CoreID(s), nocdr.CoreID(d), 10)
			}
		}
	}
	sess := nocdr.NewSession(nocdr.WithMaxPaths(2))
	d, err := sess.NewReconfigDesign(context.Background(), 4, 4, false, "odd-even", tr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := regular.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := regular.SelectFaults(grid, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ints := make([]int, len(faults))
	for i, f := range faults {
		ints[i] = int(f)
	}
	return data, ints
}

// TestReconfigureJobLifecycle submits a two-fault reconfigure job and
// checks the result document (evolved design + one delta per event) and
// the reconfig_stage/reconfig_delta entries in the SSE feed.
func TestReconfigureJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	design, faults := reconfigDesignJSON(t)

	var sub submitResponse
	code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{
		"design":  design,
		"faults":  faults,
		"options": map[string]any{"skip_sim": true},
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/reconfigure: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q), want done", st.State, st.Error)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var rr reconfigureResult
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Deltas) != len(faults) {
		t.Fatalf("deltas %d, want %d", len(rr.Deltas), len(faults))
	}
	if rr.VCsAdded < 0 {
		t.Fatalf("vcs_added %d < 0", rr.VCsAdded)
	}
	for i, d := range rr.Deltas {
		if !d.Acyclic || d.Fault != faults[i] {
			t.Fatalf("delta %d: %+v", i, d)
		}
	}
	if rr.Design == nil {
		t.Fatal("result is missing the evolved design")
	}
	if err := rr.Design.Verify(); err != nil {
		t.Fatalf("evolved design invalid: %v", err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if k, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			kinds[k]++
		}
	}
	// Each fault walks rerouting → replaying → simulating (skipped here)
	// → committed, then reports its delta.
	if kinds["reconfig_stage"] < 3*len(faults) {
		t.Fatalf("reconfig_stage events %d, want >= %d (kinds %v)", kinds["reconfig_stage"], 3*len(faults), kinds)
	}
	if kinds["reconfig_delta"] != len(faults) {
		t.Fatalf("reconfig_delta events %d, want %d (kinds %v)", kinds["reconfig_delta"], len(faults), kinds)
	}
}

// TestReconfigureRejectsBadInput pins the submission-time error surface.
func TestReconfigureRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	design, faults := reconfigDesignJSON(t)
	if code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty body accepted: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{"design": design}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing faults accepted: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{
		"design": design, "faults": faults,
		"options": map[string]any{"policy": "sideways"},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown policy accepted: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{
		"design": design, "faults": faults,
		"options": map[string]any{"selection": "loudest"},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown selection accepted: status %d", code)
	}
	// A fault the design cannot survive (out of range) fails the job, not
	// the submission — it is a runtime property of the design.
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{
		"design": design, "faults": []int{99999},
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("out-of-range fault rejected at submission: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateFailed {
		t.Fatalf("job state %s, want failed", st.State)
	}
}

// TestLocalCluster smokes the in-process worker cluster: every worker
// answers /healthz, and shutdown is idempotent enough to call once.
func TestLocalCluster(t *testing.T) {
	urls, shutdown, err := LocalCluster(3, Options{Workers: 1, SweepParallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if len(urls) != 3 {
		t.Fatalf("got %d workers, want 3", len(urls))
	}
	for _, u := range urls {
		var health map[string]any
		if code := getJSON(t, u+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
			t.Fatalf("worker %s unhealthy: %d %v", u, code, health)
		}
	}
	if _, _, err := LocalCluster(0, Options{}); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
}
