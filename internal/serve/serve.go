// Package serve is the HTTP/JSON face of the library: a small job
// service that accepts deadlock-removal, sweep and simulation requests,
// executes them concurrently on a shared worker pool, and makes their
// progress observable — by polling GET /v1/jobs/{id} or by streaming the
// Session event feed over Server-Sent Events. It exists for the
// deployment story the related reconfiguration literature (DBR, Remote
// Control) argues for: long-running removal jobs must be observable and
// interruptible, not fire-and-forget library calls.
//
// API (all bodies JSON):
//
//	POST /v1/remove            topology+routes (+options)    → {"id": ...}
//	POST /v1/sweep             grid (+simulate/parallel/sim) → {"id": ...}
//	POST /v1/simulate          topology+traffic+routes+config→ {"id": ...}
//	POST /v1/reconfigure       design bundle+faults (+options)→ {"id": ...}
//	GET  /v1/jobs              all job statuses
//	GET  /v1/jobs/{id}         one job's status (+result when done)
//	GET  /v1/jobs/{id}/events  Server-Sent Events progress stream
//	POST /v1/jobs/{id}/cancel  cooperative cancellation
//	POST /v1/workers/register  fleet join: {"url": ...} → id + heartbeat contract
//	POST /v1/workers/{id}/heartbeat  fleet liveness (404 once retired)
//	GET  /v1/workers           live worker registry
//	GET  /v1/cache             result-cache counters
//	POST /v1/cache/seed        accept warm cache entries: {"entries": [...]}
//	GET  /v1/cache/{key}       one raw cache value (404 on miss)
//	GET  /healthz              liveness: status, role, uptime, worker count
//
// With Options.AuthToken set, every mutating endpoint (the POSTs above)
// requires `Authorization: Bearer <token>`; reads stay open. A full job
// backlog answers 429 with a Retry-After derived from queue pressure
// rather than failing the request permanently.
//
// Concurrency model: submissions enqueue a job and return immediately
// with its ID; a fixed pool of workers (Options.Workers) executes jobs,
// each under its own cancelable context derived from the server's.
// Sweep jobs additionally fan their grid out onto the experiment
// runner's own pool (Session.WithParallel), so one sweep job can use
// many cores while the job pool bounds how many requests run at once.
// Everything is race-clean: job state is guarded by one mutex per job
// plus a server-level registry mutex (pinned by -race tests).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	nocdr "github.com/nocdr/nocdr"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/nocerr"
)

// Options configures a Server.
type Options struct {
	// Workers is the job pool size — how many jobs execute at once.
	// Default max(8, NumCPU).
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs;
	// submissions beyond it are rejected with 429 + Retry-After.
	// Default 1024.
	QueueDepth int
	// SweepParallel is the per-sweep runner worker count. Default
	// NumCPU.
	SweepParallel int
	// MaxRetainedJobs bounds the registry: once more jobs than this
	// exist, the oldest *terminal* jobs (with their result documents
	// and event buffers) are evicted on each new submission, so a
	// long-running server holds steady-state memory. Queued and
	// running jobs are never evicted. Default 512.
	MaxRetainedJobs int
	// MaxBodyBytes bounds request bodies; larger submissions are
	// answered 413. Default 32 MiB.
	MaxBodyBytes int64
	// Cache, when non-nil, content-addresses job results: /v1/remove and
	// /v1/simulate jobs whose semantic inputs hash to a stored entry are
	// answered from it (status carries cached:true), concurrent
	// identical submissions collapse to one execution, and sweep jobs
	// consult it per cell. GET /v1/cache exposes the counters.
	Cache *fabric.Cache
	// AuthToken guards every mutating endpoint behind shared bearer
	// auth ("" = open). Reads (job status, events, healthz, worker
	// list, cache stats) stay open.
	AuthToken string
	// Role is what /healthz reports this instance as: "coordinator"
	// (default) or "worker" (an instance that joined a fleet).
	Role string
	// HeartbeatInterval/MissedBudget parameterize the worker registry
	// (defaults fabric.DefaultHeartbeatInterval/DefaultMissedBudget).
	HeartbeatInterval time.Duration
	MissedBudget      int
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = max(8, runtime.NumCPU())
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 1024
	}
	if o.SweepParallel < 1 {
		o.SweepParallel = runtime.NumCPU()
	}
	if o.MaxRetainedJobs < 1 {
		o.MaxRetainedJobs = 512
	}
	if o.MaxBodyBytes < 1 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.Role == "" {
		o.Role = "coordinator"
	}
	return o
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether no further state transition can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// event is one buffered progress entry: a dense sequence number, the
// event kind, and its JSON payload (encoded once, at emission).
type event struct {
	Seq  int             `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Job is one submitted unit of work. All fields behind mu; readers take
// snapshots.
type Job struct {
	ID      string
	Kind    string // "remove" | "sweep" | "simulate"
	run     func(ctx context.Context, j *Job) (any, error)
	cancel  context.CancelFunc
	created time.Time

	mu       sync.Mutex
	state    State
	events   []event
	wake     chan struct{} // closed+replaced on every append/state change
	result   any
	errMsg   string
	cached   bool
	started  time.Time
	finished time.Time
}

// setCached marks the job's result as served from the result cache.
func (j *Job) setCached() {
	j.mu.Lock()
	j.cached = true
	j.mu.Unlock()
}

// emit appends one progress event and wakes streamers. Payload must be
// JSON-marshalable; failures are folded into an error event rather than
// dropped silently.
func (j *Job) emit(kind string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data, _ = json.Marshal(map[string]string{"marshal_error": err.Error()})
	}
	j.mu.Lock()
	j.events = append(j.events, event{Seq: len(j.events), Kind: kind, Data: data})
	j.broadcastLocked()
	j.mu.Unlock()
}

// broadcastLocked wakes every goroutine waiting on the job; callers hold
// mu.
func (j *Job) broadcastLocked() {
	close(j.wake)
	j.wake = make(chan struct{})
}

// snapshot returns the job's status plus the current event count under
// one lock acquisition.
func (j *Job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Kind:   j.Kind,
		State:  j.state,
		Events: len(j.events),
		Error:  j.errMsg,
		Cached: j.cached,
	}
	if j.state.terminal() {
		st.Result = j.result
	}
	if len(j.events) > 0 {
		last := j.events[len(j.events)-1]
		st.LastEvent = &last
	}
	return st
}

// JobStatus is the GET /v1/jobs/{id} document.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  State  `json:"state"`
	Events int    `json:"events"`
	// LastEvent is the most recent progress event, for cheap polling
	// without the SSE stream.
	LastEvent *event `json:"last_event,omitempty"`
	Error     string `json:"error,omitempty"`
	// Cached marks a result served from the content-addressed cache
	// (byte-identical to a recomputation) rather than computed.
	Cached bool `json:"cached,omitempty"`
	// Result is the job's outcome document, present once terminal.
	Result any `json:"result,omitempty"`
}

// Server owns the job registry and the worker pool. Create with New,
// mount Handler on an http.Server, and Close on shutdown.
type Server struct {
	opts     Options
	baseCtx  context.Context
	stop     context.CancelFunc
	registry *fabric.Registry
	started  time.Time

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int

	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a Server's worker pool. The pool runs until Close.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		baseCtx: ctx,
		stop:    cancel,
		registry: fabric.NewRegistry(fabric.RegistryOptions{
			HeartbeatInterval: opts.HeartbeatInterval,
			MissedBudget:      opts.MissedBudget,
		}),
		started: time.Now(),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, opts.QueueDepth),
	}
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Cancel cancels every running job's context (and fails queued jobs
// fast once a worker pops them) without tearing the pool down. Call it
// before http.Server.Shutdown: SSE streams only end when their job goes
// terminal, so canceling first lets Shutdown's handler-drain complete
// instead of riding out its timeout.
func (s *Server) Cancel() {
	s.stop()
}

// Close cancels every job's context, stops accepting work, and waits for
// the workers to drain. The Handler must not receive further requests
// after Close.
func (s *Server) Close() {
	s.stop()
	close(s.queue)
	s.wg.Wait()
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through its lifecycle.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while still in the queue: nothing to run.
		j.mu.Unlock()
		cancel()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.broadcastLocked()
	j.mu.Unlock()

	result, err := j.run(ctx, j)
	cancel()

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
	case nocerrIsCanceled(err):
		j.state = StateCanceled
		j.errMsg = err.Error()
		// A canceled job may still carry a partial result (sweeps do).
		j.result = result
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.broadcastLocked()
	j.mu.Unlock()
}

// nocerrIsCanceled reports whether err is a cooperative cancellation.
func nocerrIsCanceled(err error) bool {
	return err != nil && (errors.Is(err, nocerr.ErrCanceled) || errors.Is(err, context.Canceled))
}

// submit registers and enqueues a job built around run, evicting the
// oldest terminal jobs beyond the retention cap.
func (s *Server) submit(kind string, run func(ctx context.Context, j *Job) (any, error)) (*Job, error) {
	s.mu.Lock()
	s.evictLocked()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.seq),
		Kind:    kind,
		run:     run,
		created: time.Now(),
		state:   StateQueued,
		wake:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	select {
	case s.queue <- j:
		return j, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.ID)
		// Remove this job's own ID — another submission may have
		// appended behind us, so truncating the tail would evict the
		// wrong entry.
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == j.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: job queue full (%d pending)", s.opts.QueueDepth)
	}
}

// evictLocked drops the oldest terminal jobs until the registry is
// below the retention cap; the caller holds s.mu.
func (s *Server) evictLocked() {
	if len(s.order) < s.opts.MaxRetainedJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.opts.MaxRetainedJobs + 1
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state.terminal()
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// retryAfterSeconds turns job-table pressure into the 429 Retry-After
// hint: roughly how many seconds until the pool has chewed through the
// current backlog, assuming each worker clears about two queued jobs a
// second. A near-empty queue says "come back in a second"; a deep one
// scales up, capped at 30s so a client never parks itself for minutes
// on a queue that drains in seconds.
func (s *Server) retryAfterSeconds() int {
	per := 2 * s.opts.Workers
	secs := (len(s.queue) + per - 1) / per
	return min(max(secs, 1), 30)
}

// job looks a job up by ID.
func (s *Server) job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: job %q", nocerr.ErrNotFound, id)
	}
	return j, nil
}

// cancelJob requests cooperative cancellation: a queued job flips to
// canceled immediately, a running one has its context canceled and
// reaches a terminal state when its cancellation check fires.
func (s *Server) cancelJob(id string) (*Job, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.state = StateCanceled
		j.errMsg = nocerr.ErrCanceled.Error()
		j.broadcastLocked()
	case j.state == StateRunning && j.cancel != nil:
		j.cancel()
	}
	j.mu.Unlock()
	return j, nil
}

// statuses snapshots every job in creation order.
func (s *Server) statuses() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// session builds the per-job Session: every nocdr Event is forwarded to
// the job's buffered feed under the job's own mutex, so any number of
// SSE streamers and pollers can observe it race-free.
func (s *Server) session(j *Job, extra ...nocdr.Option) *nocdr.Session {
	opts := []nocdr.Option{
		nocdr.WithParallel(s.opts.SweepParallel),
		nocdr.WithProgress(func(e nocdr.Event) {
			j.emit(e.Kind.String(), eventPayload(e))
		}),
	}
	if s.opts.Cache != nil {
		// Sweep jobs consult the server's result cache per cell.
		opts = append(opts, nocdr.WithResultCache(s.opts.Cache))
	}
	opts = append(opts, extra...)
	return nocdr.NewSession(opts...)
}

// cachedResult runs compute under the server's whole-job result cache:
// the job's semantic inputs (kind + parts, hashed content-addressed)
// either hit a stored document, collapse onto an identical in-flight
// computation, or compute cold and store. Both the cold and the cached
// path decode the stored canonical bytes, so the result document a
// client reads is byte-identical either way. With no cache configured,
// compute runs directly.
func (s *Server) cachedResult(j *Job, kind string, parts any, noCache bool, compute func() (any, error)) (any, error) {
	if s.opts.Cache == nil {
		return compute()
	}
	data, cached, err := s.opts.Cache.Do(fabric.Key(kind, parts), noCache, func() ([]byte, error) {
		res, err := compute()
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		return nil, err
	}
	if cached {
		j.setCached()
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("serve: corrupt cached result: %w", err)
	}
	return doc, nil
}

// eventPayload shapes a nocdr.Event for the wire.
func eventPayload(e nocdr.Event) any {
	switch e.Kind {
	case nocdr.EventCycleBroken:
		chans := make([]map[string]int, 0, len(e.Break.NewChannels))
		for _, ch := range e.Break.NewChannels {
			chans = append(chans, map[string]int{"link": int(ch.Link), "vc": ch.VC})
		}
		return map[string]any{
			"iteration":    e.Iteration,
			"direction":    e.Break.Direction.String(),
			"edge_pos":     e.Break.EdgePos,
			"cost":         e.Break.Cost,
			"cycle_len":    len(e.Break.Cycle),
			"new_channels": chans,
			"reroutes":     e.Break.Reroutes,
		}
	case nocdr.EventVCAdded:
		return map[string]any{
			"iteration": e.Iteration,
			"link":      int(e.Channel.Link),
			"vc":        e.Channel.VC,
		}
	case nocdr.EventSweepCell:
		return map[string]any{
			"index": e.CellIndex,
			"total": e.CellTotal,
			"cell":  e.Cell,
		}
	case nocdr.EventSimEpoch:
		return e.Epoch
	case nocdr.EventShardAssigned:
		return map[string]any{
			"shard":  e.Shard,
			"shards": e.ShardTotal,
			"worker": e.Worker,
		}
	case nocdr.EventWorkerRetry:
		return map[string]any{
			"shard":  e.Shard,
			"worker": e.Worker,
			"error":  e.WorkerErr,
		}
	case nocdr.EventReconfigStage:
		return map[string]any{
			"stage": e.Stage,
			"fault": int(e.Fault),
		}
	case nocdr.EventReconfigDelta:
		return map[string]any{
			"fault": int(e.Fault),
			"delta": e.Delta,
		}
	}
	return nil
}
