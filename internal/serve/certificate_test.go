package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/nocdr/nocdr/internal/certify"
	"github.com/nocdr/nocdr/internal/fabric"
)

// TestJobCertificateRemove submits a remove job and fetches its
// certificate: the independent checker re-derives the CDG from the
// result document's topology + routes and witnesses acyclicity.
func TestJobCertificateRemove(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	topo, _, routes := ringDesign(t)
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/remove", map[string]any{
		"topology": topo, "routes": routes,
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("POST /v1/remove: status %d", code)
	}
	if st := waitTerminal(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}

	var cert certify.Certificate
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/certificate", &cert); code != http.StatusOK {
		t.Fatalf("GET certificate: status %d", code)
	}
	if !cert.Acyclic {
		t.Fatal("removed design certified cyclic")
	}
	if len(cert.TopoOrder) == 0 || len(cert.TopoOrder) != cert.Channels {
		t.Fatalf("witness covers %d of %d channels", len(cert.TopoOrder), cert.Channels)
	}
	if cert.Salt != certify.Salt || cert.CheckerVersion != certify.Version {
		t.Fatalf("checker identity %q v%d", cert.Salt, cert.CheckerVersion)
	}
	if cert.DesignSHA256 == "" || cert.Dependencies == 0 {
		t.Fatalf("certificate incomplete: %+v", cert)
	}
}

// TestJobCertificateReconfigure certifies the evolved design of a
// committed reconfigure job: the bundle under the result's "design" key
// is certified whole, faulted links excluded from the rebuilt CDG.
func TestJobCertificateReconfigure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	design, faults := reconfigDesignJSON(t)
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/reconfigure", map[string]any{
		"design": design, "faults": faults,
		"options": map[string]any{"skip_sim": true},
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("POST /v1/reconfigure: status %d", code)
	}
	if st := waitTerminal(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}

	var cert certify.Certificate
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/certificate", &cert); code != http.StatusOK {
		t.Fatalf("GET certificate: status %d", code)
	}
	if !cert.Acyclic || len(cert.TopoOrder) != cert.Channels {
		t.Fatalf("evolved design certificate %+v", cert)
	}
}

// TestJobCertificateRejects pins the endpoint's refusals: unknown jobs
// 404, non-design job kinds 400, and unfinished jobs 409.
func TestJobCertificateRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/certificate", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}

	// A simulate job never certifies, finished or not.
	topo, traffic, routes := ringDesign(t)
	var sim submitResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{"max_cycles": int64(100)},
	}, &sim); code != http.StatusAccepted {
		t.Fatalf("submit simulate: status %d", code)
	}
	waitTerminal(t, ts.URL, sim.ID)
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sim.ID+"/certificate", nil); code != http.StatusBadRequest {
		t.Fatalf("simulate job certificate: status %d", code)
	}

	// An in-flight remove job answers 409 until it completes. The forever
	// simulation occupies the single worker, so the remove stays queued.
	blocker := submitForeverSim(t, ts.URL)
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/remove", map[string]any{
		"topology": topo, "routes": routes,
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit remove: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/certificate", nil); code != http.StatusConflict {
		t.Fatalf("queued job certificate: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs/"+blocker+"/cancel", nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel blocker: status %d", code)
	}
	if st := waitTerminal(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("remove job state %s (error %q)", st.State, st.Error)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/certificate", nil); code != http.StatusOK {
		t.Fatalf("finished job certificate: status %d", code)
	}
}

// TestSweepCertifyField pins the wire plumbing of the sweep request's
// "certify" flag: every cell of the answered report carries an agreeing
// certify leg.
func TestSweepCertifyField(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, SweepParallel: 2})
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"grid": map[string]any{
			"benchmarks": []string{"mesh:3x3"},
			"switches":   []int{9},
			"policies":   []string{"smallest"},
		},
		"seeds":   []int64{0},
		"certify": true,
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweep: status %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("sweep state %s (error %q)", st.State, st.Error)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			Certify *struct {
				Salt  string `json:"salt"`
				Agree bool   `json:"agree"`
			} `json:"certify"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("empty sweep report")
	}
	for i, r := range rep.Results {
		if r.Certify == nil || !r.Certify.Agree || r.Certify.Salt != certify.Salt {
			t.Fatalf("cell %d certify leg %+v", i, r.Certify)
		}
	}
}

// TestJobCertificateCachedResult pins that a cache-served remove job
// certifies identically to its computed twin: the certificate is derived
// from the canonical result bytes either way.
func TestJobCertificateCachedResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Cache: fabric.NewCache(fabric.CacheOptions{})})
	topo, _, routes := ringDesign(t)
	submit := func() JobStatus {
		var sub submitResponse
		if code := postJSON(t, ts.URL+"/v1/remove", map[string]any{
			"topology": topo, "routes": routes,
		}, &sub); code != http.StatusAccepted {
			t.Fatalf("POST /v1/remove: status %d", code)
		}
		st := waitTerminal(t, ts.URL, sub.ID)
		if st.State != StateDone {
			t.Fatalf("job state %s (error %q)", st.State, st.Error)
		}
		return st
	}
	cold := submit()
	warm := submit()
	if !warm.Cached {
		t.Fatal("second identical remove job was not cache-served")
	}
	var certCold, certWarm certify.Certificate
	if code := getJSON(t, ts.URL+"/v1/jobs/"+cold.ID+"/certificate", &certCold); code != http.StatusOK {
		t.Fatalf("cold certificate: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+warm.ID+"/certificate", &certWarm); code != http.StatusOK {
		t.Fatalf("warm certificate: status %d", code)
	}
	if certCold.DesignSHA256 != certWarm.DesignSHA256 || !certWarm.Acyclic {
		t.Fatalf("cached job certified differently: cold %s warm %s",
			certCold.DesignSHA256, certWarm.DesignSHA256)
	}
}
