package serve

// Cache-propagation endpoints, pressure-derived backpressure hints, and
// the SSE keepalive: the serve-side half of fabric phase 2.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/nocdr/nocdr/internal/fabric"
)

// TestCacheSeedAndFetch pins the propagation wire: a seed batch lands in
// the cache (invalid entries skipped, not fatal), and GET /v1/cache/{key}
// answers the raw stored bytes.
func TestCacheSeedAndFetch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Cache: fabric.NewCache(fabric.CacheOptions{})})

	seed := map[string]any{"entries": []map[string]any{
		{"key": "k1", "value": map[string]int{"v": 1}},
		{"key": "", "value": 7}, // no key: skipped
		{"key": "k2"},           // no value: skipped
	}}
	var out struct {
		Stored int `json:"stored"`
	}
	if code := postJSON(t, ts.URL+"/v1/cache/seed", seed, &out); code != http.StatusOK {
		t.Fatalf("seed: status %d", code)
	}
	if out.Stored != 1 {
		t.Fatalf("seed stored %d entries, want 1 (invalid ones skipped)", out.Stored)
	}

	resp, err := http.Get(ts.URL + "/v1/cache/k1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch seeded key: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("fetch content type %q", ct)
	}
	if string(body) != `{"v":1}` {
		t.Fatalf("fetched bytes %q, want the raw seeded value", body)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch absent key: status %d, want 404", resp.StatusCode)
	}
}

// TestCacheSeedWithoutCache409 pins the no-cache answer: a peer shipping
// entries to an instance running cacheless gets a definitive 409, not an
// invitation to retry.
func TestCacheSeedWithoutCache409(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	seed := map[string]any{"entries": []map[string]any{{"key": "k", "value": 1}}}
	var out map[string]any
	if code := postJSON(t, ts.URL+"/v1/cache/seed", seed, &out); code != http.StatusConflict {
		t.Fatalf("seed without a cache: status %d, want 409", code)
	}
	resp, err := http.Get(ts.URL + "/v1/cache/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch without a cache: status %d, want 404", resp.StatusCode)
	}
}

// TestRetryAfterScalesWithPressure unit-tests the 429 hint derivation:
// seconds grow with the queued backlog per pool worker, floored at 1 and
// capped at 30.
func TestRetryAfterScalesWithPressure(t *testing.T) {
	s := &Server{opts: Options{Workers: 4}.withDefaults(), queue: make(chan *Job, 1024)}
	cases := []struct{ queued, want int }{
		{0, 1}, {1, 1}, {8, 1}, {9, 2}, {80, 10}, {640, 30},
	}
	for _, c := range cases {
		for len(s.queue) > 0 {
			<-s.queue
		}
		for i := 0; i < c.queued; i++ {
			s.queue <- nil
		}
		if got := s.retryAfterSeconds(); got != c.want {
			t.Fatalf("retryAfterSeconds with %d queued / %d workers = %d, want %d",
				c.queued, s.opts.Workers, got, c.want)
		}
	}
}

// TestFabricQueueFullDrainAdmits is the backpressure regression: fill
// the job table (429 with a usable Retry-After), drain it, and the
// retried submission must be admitted — a full table is load, not a
// permanent failure.
func TestFabricQueueFullDrainAdmits(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	t.Cleanup(s.Cancel)
	topo, traffic, routes := foreverDesign(t)
	body := map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{"max_cycles": int64(1) << 40},
	}
	var occupant, filler, sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", body, &occupant); code != http.StatusAccepted {
		t.Fatalf("submit occupant: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+occupant.ID, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("occupant never started: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/v1/simulate", body, &filler); code != http.StatusAccepted {
		t.Fatalf("submit filler: status %d", code)
	}

	data, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("429 Retry-After %q, want whole seconds in [1,30]", resp.Header.Get("Retry-After"))
	}

	// Drain: cancel the occupant so the filler takes the worker slot and
	// the queue empties; the retried submission must then be admitted.
	var canceled JobStatus
	if code := postJSON(t, ts.URL+"/v1/jobs/"+occupant.ID+"/cancel", nil, &canceled); code != http.StatusAccepted {
		t.Fatalf("cancel occupant: status %d", code)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if code := postJSON(t, ts.URL+"/v1/simulate", body, &sub); code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drained job table never admitted the retried submission")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobEventsPing pins the SSE keepalive: a quiet running job's event
// stream carries ": ping" comment frames, and the stream still closes
// with the terminal state event.
func TestJobEventsPing(t *testing.T) {
	old := ssePingInterval
	ssePingInterval = 20 * time.Millisecond
	t.Cleanup(func() { ssePingInterval = old })

	s, ts := newTestServer(t, Options{Workers: 1})
	t.Cleanup(s.Cancel)
	topo, traffic, routes := foreverDesign(t)
	body := map[string]any{
		"topology": topo, "traffic": traffic, "routes": routes,
		"config": map[string]any{"max_cycles": int64(1) << 40},
	}
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	watchdog := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer watchdog.Stop()

	pings := 0
	sawState := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ":") {
			if pings++; pings == 2 {
				// Two keepalives observed; end the job so the stream closes.
				var st JobStatus
				if code := postJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/cancel", nil, &st); code != http.StatusAccepted {
					t.Fatalf("cancel: status %d", code)
				}
			}
		}
		if strings.HasPrefix(line, "event: state") {
			sawState = true
		}
	}
	if pings < 2 {
		t.Fatalf("saw %d keepalive ping(s), want >= 2", pings)
	}
	if !sawState {
		t.Fatal("stream ended without the terminal state event")
	}
}
