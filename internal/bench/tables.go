package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteSweepTable renders a Figure 8/9-style sweep as an aligned text
// table matching the paper's axes: switch count vs. number of VCs for
// both methods.
func WriteSweepTable(w io.Writer, title string, points []SweepPoint) error {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "switches\tlinks\tmax route\tremoval VCs\tordering VCs\tbreaks\truntime")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			p.SwitchCount, p.Links, p.MaxRouteLen, p.RemovalVCs, p.OrderingVCs,
			p.RemovalBreaks, p.RemovalTime.Round(10e3))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteSweepCSV renders a sweep as CSV for plotting.
func WriteSweepCSV(w io.Writer, points []SweepPoint) error {
	if _, err := fmt.Fprintln(w, "switch_count,links,max_route,removal_vcs,ordering_vcs,removal_breaks,removal_ns"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d\n",
			p.SwitchCount, p.Links, p.MaxRouteLen, p.RemovalVCs, p.OrderingVCs,
			p.RemovalBreaks, p.RemovalTime.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}

// WritePowerTable renders Figure 10 plus the area columns as a text table.
// The "norm power" column is the paper's plotted quantity (removal = 1.0).
func WritePowerTable(w io.Writer, title string, rows []PowerRow) error {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tremoval VCs\tordering VCs\tremoval mW\tordering mW\tnorm power\tremoval mm2\tordering mm2\tarea saving")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.3f\t%.3f\t%.3f\t%.0f%%\n",
			r.Benchmark, r.RemovalVCs, r.OrderingVCs,
			r.RemovalMW, r.OrderingMW, r.NormalizedOrderingPower(),
			r.RemovalMM2, r.OrderingMM2, 100*(1-r.RemovalMM2/r.OrderingMM2))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WritePowerCSV renders the power comparison as CSV.
func WritePowerCSV(w io.Writer, rows []PowerRow) error {
	if _, err := fmt.Fprintln(w, "benchmark,removal_vcs,ordering_vcs,noremoval_mw,removal_mw,ordering_mw,noremoval_mm2,removal_mm2,ordering_mm2"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.3f,%.3f,%.3f,%.4f,%.4f,%.4f\n",
			r.Benchmark, r.RemovalVCs, r.OrderingVCs,
			r.NoRemovalMW, r.RemovalMW, r.OrderingMW,
			r.NoRemovalMM2, r.RemovalMM2, r.OrderingMM2); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders the Section 5 scalar claims next to the paper's
// reported values.
func WriteSummary(w io.Writer, s Summary) error {
	fmt.Fprintln(w, "Section 5 scalar claims (paper → measured)")
	fmt.Fprintln(w, "------------------------------------------")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "avg VC reduction vs resource ordering\t88%%\t%.0f%%\n", 100*s.AvgVCReduction)
	fmt.Fprintf(tw, "avg area saving vs resource ordering\t66%%\t%.0f%%\n", 100*s.AvgAreaSaving)
	fmt.Fprintf(tw, "avg power saving vs resource ordering\t8.6%%\t%.1f%%\n", 100*s.AvgPowerSaving)
	fmt.Fprintf(tw, "avg power overhead vs no removal\t<5%%\t%.1f%% (max %.1f%%)\n",
		100*s.AvgPowerOverheadVsNoRemoval, 100*s.MaxPowerOverheadVsNoRemoval)
	fmt.Fprintf(tw, "avg area overhead vs no removal\t<5%%\t%.1f%% (max %.1f%%)\n",
		100*s.AvgAreaOverheadVsNoRemoval, 100*s.MaxAreaOverheadVsNoRemoval)
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteDemoTable renders the simulation validation rows.
func WriteDemoTable(w io.Writer, demos []DeadlockDemo) error {
	fmt.Fprintln(w, "Simulation validation (wormhole, saturation load)")
	fmt.Fprintln(w, "-------------------------------------------------")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tswitches\tcyclic CDG\tdeadlock before\tdeadlock after\tdelivered after\tavg latency")
	for _, d := range demos {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%d\t%.1f\n",
			d.Benchmark, d.SwitchCount, d.CyclicBefore, d.DeadlockBefore,
			d.DeadlockAfter, d.DeliveredAfter, d.AvgLatencyAfter)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
