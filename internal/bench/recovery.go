package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// RecoveryRow compares the paper's design-time deadlock removal against
// DISHA-style runtime recovery on the same workload — the comparison the
// paper's positioning implies but never runs. Both simulate the same
// traffic at saturation; removal runs the repaired design, recovery runs
// the original deadlock-prone design with the recovery lane enabled.
type RecoveryRow struct {
	Workload string

	RemovalVCs        int
	RemovalFlits      int64
	RemovalAvgLatency float64

	Recoveries         int64
	RecoveryFlits      int64
	RecoveryAvgLatency float64
}

// Speedup is removal throughput over recovery throughput.
func (r RecoveryRow) Speedup() float64 {
	if r.RecoveryFlits == 0 {
		return 0
	}
	return float64(r.RemovalFlits) / float64(r.RecoveryFlits)
}

// CompareRecovery runs the removal-vs-recovery comparison for one routed
// workload at saturation.
func CompareRecovery(name string, top *topology.Topology, g *traffic.Graph,
	tab *route.Table, cycles int64) (*RecoveryRow, error) {

	row := &RecoveryRow{Workload: name}
	base := wormhole.Config{MaxCycles: cycles, LoadFactor: 1.0, Seed: 7, BufferDepth: 2}

	recCfg := base
	recCfg.Recovery = true
	sim, err := wormhole.New(top, g, tab, recCfg)
	if err != nil {
		return nil, err
	}
	recSt, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if recSt.Deadlocked {
		return nil, fmt.Errorf("bench: recovery run still deadlocked on %s", name)
	}
	row.Recoveries = recSt.Recoveries
	row.RecoveryFlits = recSt.DeliveredFlits
	row.RecoveryAvgLatency = recSt.AvgLatency()

	rm, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		return nil, err
	}
	sim, err = wormhole.New(rm.Topology, g, rm.Routes, base)
	if err != nil {
		return nil, err
	}
	rmSt, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if rmSt.Deadlocked {
		return nil, fmt.Errorf("bench: removal run deadlocked on %s", name)
	}
	row.RemovalVCs = rm.AddedVCs
	row.RemovalFlits = rmSt.DeliveredFlits
	row.RemovalAvgLatency = rmSt.AvgLatency()
	return row, nil
}

// WriteRecoveryTable renders the removal-vs-recovery comparison.
func WriteRecoveryTable(w io.Writer, rows []RecoveryRow) error {
	title := "Extension: design-time removal vs DISHA-style runtime recovery (saturation)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tremoval VCs\tremoval flits\tremoval lat\trecoveries\trecovery flits\trecovery lat\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%d\t%d\t%.0f\t%.2fx\n",
			r.Workload, r.RemovalVCs, r.RemovalFlits, r.RemovalAvgLatency,
			r.Recoveries, r.RecoveryFlits, r.RecoveryAvgLatency, r.Speedup())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
