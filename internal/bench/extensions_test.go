package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareMethods(t *testing.T) {
	rows, err := CompareMethods(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// Synthesized topologies are bidirectional: up*/down* must apply.
		if !r.UpDownOK {
			t.Errorf("%s: up*/down* unroutable on a bidirectional design", r.Benchmark)
		}
		// Turn prohibition never shortens routes.
		if r.UpDownAvgLen < r.ShortestAvgLen {
			t.Errorf("%s: up*/down* avg %.2f below shortest %.2f",
				r.Benchmark, r.UpDownAvgLen, r.ShortestAvgLen)
		}
		// Removal must stay far below ordering whenever ordering pays.
		if r.OrderingVCs > 4 && r.RemovalVCs*2 > r.OrderingVCs {
			t.Errorf("%s: removal %d VCs vs ordering %d", r.Benchmark, r.RemovalVCs, r.OrderingVCs)
		}
		if r.RouteInflation() < 0 {
			t.Errorf("%s: negative route inflation", r.Benchmark)
		}
	}
}

func TestCompareRecoveryRing(t *testing.T) {
	top, g, tab, err := RingWorkload()
	if err != nil {
		t.Fatal(err)
	}
	row, err := CompareRecovery("ring", top, g, tab, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if row.Recoveries == 0 {
		t.Error("saturated ring triggered no recoveries")
	}
	if row.RemovalFlits <= row.RecoveryFlits {
		t.Errorf("removal (%d flits) did not beat recovery (%d flits)",
			row.RemovalFlits, row.RecoveryFlits)
	}
	if row.Speedup() <= 1 {
		t.Errorf("speedup = %.2f, want > 1", row.Speedup())
	}
}

func TestExtensionTableWriters(t *testing.T) {
	var buf bytes.Buffer
	rows := []MethodRow{
		{Benchmark: "a", ShortestAvgLen: 2, RemovalVCs: 1, OrderingVCs: 9, UpDownOK: true, UpDownAvgLen: 2.5},
		{Benchmark: "b", ShortestAvgLen: 2, RemovalVCs: 0, OrderingVCs: 3}, // unroutable up/down
	}
	if err := WriteMethodsTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unroutable") || !strings.Contains(out, "+25%") {
		t.Errorf("methods table missing fields:\n%s", out)
	}

	buf.Reset()
	rrows := []RecoveryRow{{Workload: "w", RemovalFlits: 200, RecoveryFlits: 100, Recoveries: 3}}
	if err := WriteRecoveryTable(&buf, rrows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.00x") {
		t.Errorf("recovery table missing speedup:\n%s", buf.String())
	}
}

func TestRecoveryRowSpeedupZeroGuard(t *testing.T) {
	r := RecoveryRow{RemovalFlits: 10}
	if r.Speedup() != 0 {
		t.Error("zero recovery flits should yield speedup 0")
	}
}
