package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/updown"
)

// MethodRow compares the three deadlock-freedom strategies the paper
// discusses on one synthesized design: the removal algorithm (minimal
// VCs, shortest routes), resource ordering (many VCs, shortest routes),
// and up*/down* turn prohibition (zero VCs, inflated routes). The paper
// argues removal dominates; this table quantifies each method's currency.
type MethodRow struct {
	Benchmark string

	// ShortestAvgLen is the unconstrained shortest-path average route
	// length, which removal and ordering preserve.
	ShortestAvgLen float64

	RemovalVCs  int
	OrderingVCs int

	// UpDownAvgLen/MaxLen are the turn-prohibited route statistics; the
	// overhead currency of up*/down* is hops, not VCs.
	UpDownAvgLen float64
	UpDownMaxLen int
	// UpDownOK is false when the topology cannot be routed under
	// up*/down* at all (one-way links).
	UpDownOK bool
}

// RouteInflation is the relative route-length increase up*/down* pays.
func (r MethodRow) RouteInflation() float64 {
	if r.ShortestAvgLen == 0 {
		return 0
	}
	return r.UpDownAvgLen/r.ShortestAvgLen - 1
}

// CompareMethods evaluates all three strategies for every benchmark at
// the given switch count.
func CompareMethods(switchCount int) ([]MethodRow, error) {
	var rows []MethodRow
	for _, g := range traffic.AllBenchmarks() {
		des, err := synth.Synthesize(g, synth.Options{SwitchCount: switchCount})
		if err != nil {
			return nil, err
		}
		rm, err := core.Remove(des.Topology, des.Routes, core.Options{})
		if err != nil {
			return nil, err
		}
		ro, err := ordering.Apply(des.Topology, des.Routes, ordering.HopIndex)
		if err != nil {
			return nil, err
		}
		row := MethodRow{
			Benchmark:      g.Name,
			ShortestAvgLen: des.Routes.AvgLen(),
			RemovalVCs:     rm.AddedVCs,
			OrderingVCs:    ro.AddedVCs,
		}
		ud, err := updown.Apply(des.Topology, g)
		if err == nil {
			row.UpDownOK = true
			row.UpDownAvgLen = ud.Routes.AvgLen()
			row.UpDownMaxLen = ud.Routes.MaxLen()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteMethodsTable renders the three-way method comparison.
func WriteMethodsTable(w io.Writer, rows []MethodRow) error {
	title := "Extension: removal vs resource ordering vs up*/down* turn prohibition (14 switches)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tshortest avg len\tremoval VCs\tordering VCs\tup/down avg len\tup/down inflation")
	for _, r := range rows {
		ud := "unroutable"
		infl := "-"
		if r.UpDownOK {
			ud = fmt.Sprintf("%.2f", r.UpDownAvgLen)
			infl = fmt.Sprintf("+%.0f%%", 100*r.RouteInflation())
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%d\t%s\t%s\n",
			r.Benchmark, r.ShortestAvgLen, r.RemovalVCs, r.OrderingVCs, ud, infl)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
