package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/traffic"
)

func TestFigure8Shape(t *testing.T) {
	points, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig8SwitchCounts) {
		t.Fatalf("got %d points, want %d", len(points), len(Fig8SwitchCounts))
	}
	// Paper's headline for D26_media: "for most topologies the overhead
	// [of the removal algorithm] is zero".
	zero := 0
	for _, p := range points {
		if p.RemovalVCs == 0 {
			zero++
		}
		if p.RemovalVCs > p.OrderingVCs && p.OrderingVCs > 0 {
			t.Errorf("s=%d: removal (%d) worse than ordering (%d)",
				p.SwitchCount, p.RemovalVCs, p.OrderingVCs)
		}
	}
	if zero < len(points)/2 {
		t.Errorf("only %d/%d D26_media points are zero-overhead; paper says most", zero, len(points))
	}
	// The ordering overhead must grow substantially across the sweep.
	if points[len(points)-1].OrderingVCs <= points[0].OrderingVCs {
		t.Error("ordering overhead does not grow with switch count")
	}
}

func TestFigure9Shape(t *testing.T) {
	points, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig9SwitchCounts) {
		t.Fatalf("got %d points, want %d", len(points), len(Fig9SwitchCounts))
	}
	for _, p := range points {
		// Figure 9's message: removal stays far below resource ordering on
		// the dense benchmark at every switch count.
		if p.OrderingVCs > 0 && float64(p.RemovalVCs) > 0.5*float64(p.OrderingVCs) {
			t.Errorf("s=%d: removal %d vs ordering %d — not a large reduction",
				p.SwitchCount, p.RemovalVCs, p.OrderingVCs)
		}
	}
	last := points[len(points)-1]
	if last.OrderingVCs < 50 {
		t.Errorf("D36_8 ordering overhead at %d switches = %d; paper shows >100",
			last.SwitchCount, last.OrderingVCs)
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 benchmarks", len(rows))
	}
	for _, r := range rows {
		if r.NormalizedOrderingPower() < 1.0 {
			t.Errorf("%s: ordering power below removal (%.3f); Figure 10 shows >= 1",
				r.Benchmark, r.NormalizedOrderingPower())
		}
		if r.RemovalMM2 > r.OrderingMM2 {
			t.Errorf("%s: removal area exceeds ordering area", r.Benchmark)
		}
		if r.RemovalMW < r.NoRemovalMW {
			t.Errorf("%s: removal power below the no-removal baseline", r.Benchmark)
		}
	}
}

func TestSummaryMatchesPaperBands(t *testing.T) {
	rows, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	var sweeps [][]SweepPoint
	for _, g := range traffic.AllBenchmarks() {
		sweep, err := VCSweep(g, []int{8, 14, 20})
		if err != nil {
			t.Fatal(err)
		}
		sweeps = append(sweeps, sweep)
	}
	s := Summarize(rows, sweeps...)
	// The reproduction bands: shapes must land near the paper's numbers.
	if s.AvgVCReduction < 0.7 {
		t.Errorf("avg VC reduction = %.0f%%; paper reports 88%%", 100*s.AvgVCReduction)
	}
	if s.AvgAreaSaving < 0.3 {
		t.Errorf("avg area saving = %.0f%%; paper reports 66%%", 100*s.AvgAreaSaving)
	}
	if s.AvgPowerSaving <= 0 || s.AvgPowerSaving > 0.5 {
		t.Errorf("avg power saving = %.1f%%; paper reports 8.6%%", 100*s.AvgPowerSaving)
	}
	if s.AvgPowerOverheadVsNoRemoval > 0.05 {
		t.Errorf("avg power overhead vs no removal = %.1f%%; paper reports <5%%",
			100*s.AvgPowerOverheadVsNoRemoval)
	}
	if s.AvgAreaOverheadVsNoRemoval > 0.05 {
		t.Errorf("avg area overhead vs no removal = %.1f%%; paper reports <5%%",
			100*s.AvgAreaOverheadVsNoRemoval)
	}
}

func TestRunDeadlockDemoRing(t *testing.T) {
	// A small dense benchmark at few switches: before/after simulation
	// must never deadlock after removal.
	demo, err := RunDeadlockDemo(traffic.D36(8), 8, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if demo.DeadlockAfter {
		t.Error("deadlock after removal in simulation")
	}
	if demo.CyclicBefore && !demo.DeadlockBefore {
		t.Log("cyclic CDG did not deadlock within horizon (possible but unusual at saturation)")
	}
	if !demo.CyclicBefore && demo.DeadlockBefore {
		t.Error("acyclic design deadlocked: simulator or CDG is wrong")
	}
	if demo.DeliveredAfter == 0 {
		t.Error("nothing delivered after removal")
	}
}

func TestTableWriters(t *testing.T) {
	points, err := VCSweep(traffic.D26Media(), []int{5, 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepTable(&buf, "Figure 8", points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "removal VCs") {
		t.Error("sweep table missing header")
	}
	buf.Reset()
	if err := WriteSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(points)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(points)+1)
	}

	rows, err := PowerComparison(8)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WritePowerTable(&buf, "Figure 10", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "norm power") {
		t.Error("power table missing header")
	}
	buf.Reset()
	if err := WritePowerCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "benchmark,") {
		t.Error("power CSV missing header")
	}

	buf.Reset()
	if err := WriteSummary(&buf, Summarize(rows)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "88%") {
		t.Error("summary missing paper reference value")
	}

	buf.Reset()
	demo := DeadlockDemo{Benchmark: "x", SwitchCount: 4}
	if err := WriteDemoTable(&buf, []DeadlockDemo{demo}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deadlock before") {
		t.Error("demo table missing header")
	}
}

func TestVCSweepSkipsOversizedCounts(t *testing.T) {
	points, err := VCSweep(traffic.D26Media(), []int{5, 999})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Errorf("oversized switch count not skipped: %d points", len(points))
	}
}
