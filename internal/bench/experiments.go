// Package bench regenerates the paper's evaluation: Figure 8 (VC overhead
// vs. switch count on D26_media), Figure 9 (same on D36_8), Figure 10
// (normalized power across six benchmarks at 14 switches), and the
// scalar claims of Section 5 (average VC reduction, area saving, power
// saving, overhead vs. a no-removal design, runtime). Each experiment is
// a plain function returning rows, plus table writers for human-readable
// output; bench_test.go at the repository root wires them into testing.B
// benchmarks, and cmd/nocexp prints them.
package bench

import (
	"fmt"
	"time"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/power"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// Fig8SwitchCounts is the switch-count sweep of Figure 8 (x-axis 5–25).
var Fig8SwitchCounts = []int{5, 8, 11, 14, 17, 20, 23, 25}

// Fig9SwitchCounts is the switch-count sweep of Figure 9 (x-axis 10–35).
var Fig9SwitchCounts = []int{10, 14, 18, 22, 26, 30, 35}

// Fig10SwitchCount is the design point of Figure 10 ("topologies with 14
// switches").
const Fig10SwitchCount = 14

// SweepPoint is one x-position of Figure 8 or 9: the number of VCs each
// method adds on the topology synthesized for SwitchCount switches.
type SweepPoint struct {
	SwitchCount int
	Links       int
	MaxRouteLen int
	// RemovalVCs is the solid line: VCs added by the paper's algorithm.
	RemovalVCs int
	// OrderingVCs is the dotted line: VCs added by resource ordering.
	OrderingVCs int
	// RemovalBreaks is the number of CDG cycles broken.
	RemovalBreaks int
	// RemovalTime is the wall time of the removal pass.
	RemovalTime time.Duration
}

// VCSweep regenerates a Figure 8/9-style curve for one benchmark: for
// each switch count it synthesizes an application-specific topology,
// runs the deadlock-removal algorithm and the resource-ordering baseline
// on identical inputs, and reports both VC overheads. It is the serial
// convenience wrapper around the runner package's per-point evaluation;
// large grids go through runner.Run instead.
func VCSweep(g *traffic.Graph, switchCounts []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, s := range switchCounts {
		if s > g.NumCores() {
			continue // cannot have more switches than cores
		}
		p, err := runner.Evaluate(g, s, runner.EvalOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		out = append(out, SweepPoint{
			SwitchCount:   s,
			Links:         p.Links,
			MaxRouteLen:   p.MaxRouteLen,
			RemovalVCs:    p.RemovalVCs,
			OrderingVCs:   p.OrderingVCs,
			RemovalBreaks: p.Breaks,
			RemovalTime:   p.RemovalTime,
		})
	}
	return out, nil
}

// Figure8 runs the D26_media sweep of Figure 8.
func Figure8() ([]SweepPoint, error) {
	return VCSweep(traffic.D26Media(), Fig8SwitchCounts)
}

// Figure9 runs the D36_8 sweep of Figure 9.
func Figure9() ([]SweepPoint, error) {
	return VCSweep(traffic.D36(8), Fig9SwitchCounts)
}

// PowerRow is one benchmark bar group of Figure 10 plus the area numbers
// behind the paper's 66% claim and the no-removal baseline behind the
// <5% overhead claim.
type PowerRow struct {
	Benchmark string

	// Power (mW) for: the unmodified design (deadlocks not removed), the
	// removal algorithm's design, and the resource-ordering design.
	NoRemovalMW float64
	RemovalMW   float64
	OrderingMW  float64

	// Area (mm²) for the same three designs.
	NoRemovalMM2 float64
	RemovalMM2   float64
	OrderingMM2  float64

	// VCs added by each method.
	RemovalVCs  int
	OrderingVCs int
}

// NormalizedOrderingPower is Figure 10's y-value: ordering power relative
// to the removal algorithm's (removal = 1.0).
func (r PowerRow) NormalizedOrderingPower() float64 {
	if r.RemovalMW == 0 {
		return 0
	}
	return r.OrderingMW / r.RemovalMW
}

// Figure10 evaluates power and area for every benchmark at the paper's
// 14-switch design point under the shared ORION-style model.
func Figure10() ([]PowerRow, error) {
	return PowerComparison(Fig10SwitchCount)
}

// PowerComparison is Figure 10 generalized to any switch count.
func PowerComparison(switchCount int) ([]PowerRow, error) {
	params := power.DefaultParams()
	var rows []PowerRow
	for _, g := range traffic.AllBenchmarks() {
		des, err := synth.Synthesize(g, synth.Options{SwitchCount: switchCount})
		if err != nil {
			return nil, fmt.Errorf("bench: synthesize %s: %w", g.Name, err)
		}
		rm, err := core.Remove(des.Topology, des.Routes, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: remove %s: %w", g.Name, err)
		}
		ro, err := ordering.Apply(des.Topology, des.Routes, ordering.HopIndex)
		if err != nil {
			return nil, fmt.Errorf("bench: ordering %s: %w", g.Name, err)
		}
		row := PowerRow{
			Benchmark:   g.Name,
			RemovalVCs:  rm.AddedVCs,
			OrderingVCs: ro.AddedVCs,
		}
		// The ordering design's hardware provisions every link with the
		// full class-layer set (see ordering.Result.UniformTopology);
		// removal provisions only the channels it added.
		roHW := ro.UniformTopology()
		base, err := power.NoCPower(params, des.Topology, g, des.Routes)
		if err != nil {
			return nil, err
		}
		rmP, err := power.NoCPower(params, rm.Topology, g, rm.Routes)
		if err != nil {
			return nil, err
		}
		roP, err := power.NoCPower(params, roHW, g, ro.Routes)
		if err != nil {
			return nil, err
		}
		row.NoRemovalMW = base.TotalMW
		row.RemovalMW = rmP.TotalMW
		row.OrderingMW = roP.TotalMW
		row.NoRemovalMM2 = power.MM2(power.NoCArea(params, des.Topology).TotalUM2)
		row.RemovalMM2 = power.MM2(power.NoCArea(params, rm.Topology).TotalUM2)
		row.OrderingMM2 = power.MM2(power.NoCArea(params, roHW).TotalUM2)
		rows = append(rows, row)
	}
	return rows, nil
}

// Summary aggregates the paper's Section 5 scalar claims.
type Summary struct {
	// AvgVCReduction is the mean of 1 − removalVCs/orderingVCs across all
	// benchmark sweeps (the paper reports 88% on average).
	AvgVCReduction float64
	// AvgAreaSaving is the mean of 1 − removalArea/orderingArea at the
	// Figure 10 design point (paper: 66%).
	AvgAreaSaving float64
	// AvgPowerSaving is the mean of 1 − removalPower/orderingPower at the
	// Figure 10 design point (paper: 8.6%).
	AvgPowerSaving float64
	// AvgPowerOverheadVsNoRemoval is the mean removal power overhead
	// relative to the unmodified (deadlock-prone) design (paper: below
	// 5%); Max* are the worst single benchmarks.
	AvgPowerOverheadVsNoRemoval float64
	MaxPowerOverheadVsNoRemoval float64
	// AvgAreaOverheadVsNoRemoval is the analogous area overhead
	// (paper: below 5%).
	AvgAreaOverheadVsNoRemoval float64
	MaxAreaOverheadVsNoRemoval float64
}

// Summarize computes the Summary from a power comparison and one or more
// VC sweeps.
func Summarize(rows []PowerRow, sweeps ...[]SweepPoint) Summary {
	var sum Summary
	n := 0
	for _, sweep := range sweeps {
		for _, p := range sweep {
			if p.OrderingVCs == 0 {
				continue // both methods free: no reduction to speak of
			}
			sum.AvgVCReduction += 1 - float64(p.RemovalVCs)/float64(p.OrderingVCs)
			n++
		}
	}
	if n > 0 {
		sum.AvgVCReduction /= float64(n)
	}
	for _, r := range rows {
		sum.AvgAreaSaving += 1 - r.RemovalMM2/r.OrderingMM2
		sum.AvgPowerSaving += 1 - r.RemovalMW/r.OrderingMW
		po := power.RelativeOverhead(r.RemovalMW, r.NoRemovalMW)
		ao := power.RelativeOverhead(r.RemovalMM2, r.NoRemovalMM2)
		sum.AvgPowerOverheadVsNoRemoval += po
		sum.AvgAreaOverheadVsNoRemoval += ao
		if po > sum.MaxPowerOverheadVsNoRemoval {
			sum.MaxPowerOverheadVsNoRemoval = po
		}
		if ao > sum.MaxAreaOverheadVsNoRemoval {
			sum.MaxAreaOverheadVsNoRemoval = ao
		}
	}
	if len(rows) > 0 {
		sum.AvgAreaSaving /= float64(len(rows))
		sum.AvgPowerSaving /= float64(len(rows))
		sum.AvgPowerOverheadVsNoRemoval /= float64(len(rows))
		sum.AvgAreaOverheadVsNoRemoval /= float64(len(rows))
	}
	return sum
}

// DeadlockDemo runs the simulation validation (beyond the paper's own
// evaluation): the synthesized design is simulated at saturation before
// and after removal. Pre-removal deadlock is only *possible* when the
// CDG is cyclic; post-removal deadlock must never happen.
type DeadlockDemo struct {
	Benchmark       string
	SwitchCount     int
	CyclicBefore    bool
	DeadlockBefore  bool
	DeadlockAfter   bool
	DeliveredAfter  int64
	AvgLatencyAfter float64
}

// RunDeadlockDemo simulates one benchmark design at saturation before and
// after deadlock removal. Buffers are kept shallow (2 flits) so cyclic
// waits form within a reasonable horizon when the CDG permits them.
func RunDeadlockDemo(g *traffic.Graph, switchCount int, cycles int64) (*DeadlockDemo, error) {
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: switchCount})
	if err != nil {
		return nil, err
	}
	return runDemo(g.Name, switchCount, des.Topology, g, des.Routes, cycles)
}

// RingWorkload builds the paper's Figure 1 design: the four-switch ring,
// its four cores/flows, and the paper's routes — the canonical cyclic-CDG
// workload used by demos and the extension studies.
func RingWorkload() (*topology.Topology, *traffic.Graph, *route.Table, error) {
	top := topology.New("fig1_ring")
	for i := 0; i < 4; i++ {
		sw := top.AddSwitch("")
		if err := top.AttachCore(i, sw); err != nil {
			return nil, nil, nil, err
		}
	}
	for i := 0; i < 4; i++ {
		top.MustAddLink(topology.SwitchID(i), topology.SwitchID((i+1)%4))
	}
	g := traffic.NewGraph("fig1_ring")
	for i := 0; i < 4; i++ {
		g.AddCore("")
	}
	g.MustAddFlow(0, 3, 100)
	g.MustAddFlow(2, 0, 100)
	g.MustAddFlow(3, 1, 100)
	g.MustAddFlow(0, 2, 100)
	tab := route.NewTable(4)
	ch := func(ids ...int) []topology.Channel {
		out := make([]topology.Channel, len(ids))
		for i, id := range ids {
			out[i] = topology.Chan(topology.LinkID(id), 0)
		}
		return out
	}
	tab.Set(0, ch(0, 1, 2))
	tab.Set(1, ch(2, 3))
	tab.Set(2, ch(3, 0))
	tab.Set(3, ch(0, 1))
	return top, g, tab, nil
}

// RunRingDemo runs the demo on the paper's own Figure 1 ring — the
// canonical design whose cyclic CDG deadlocks almost immediately.
func RunRingDemo(cycles int64) (*DeadlockDemo, error) {
	top, g, tab, err := RingWorkload()
	if err != nil {
		return nil, err
	}
	return runDemo("fig1_ring", 4, top, g, tab, cycles)
}

func runDemo(name string, switchCount int, top *topology.Topology, g *traffic.Graph,
	tab *route.Table, cycles int64) (*DeadlockDemo, error) {

	free, err := core.DeadlockFree(top, tab)
	if err != nil {
		return nil, err
	}
	demo := &DeadlockDemo{
		Benchmark:    name,
		SwitchCount:  switchCount,
		CyclicBefore: !free,
	}
	cfg := wormhole.Config{MaxCycles: cycles, LoadFactor: 1.0, Seed: 1, BufferDepth: 2}
	simBefore, err := wormhole.New(top, g, tab, cfg)
	if err != nil {
		return nil, err
	}
	stBefore, err := simBefore.Run()
	if err != nil {
		return nil, err
	}
	demo.DeadlockBefore = stBefore.Deadlocked

	rm, err := core.Remove(top, tab, core.Options{})
	if err != nil {
		return nil, err
	}
	simAfter, err := wormhole.New(rm.Topology, g, rm.Routes, cfg)
	if err != nil {
		return nil, err
	}
	stAfter, err := simAfter.Run()
	if err != nil {
		return nil, err
	}
	demo.DeadlockAfter = stAfter.Deadlocked
	demo.DeliveredAfter = stAfter.DeliveredPackets
	demo.AvgLatencyAfter = stAfter.AvgLatency()
	return demo, nil
}
