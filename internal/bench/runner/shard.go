// Sharding primitives of the distributed sweep backend: a stable cell
// key, a deterministic cell→shard assignment, and the merge stage that
// reassembles per-shard reports into the exact report a single-process
// run would have produced. The invariant the conformance and fuzz suites
// pin: for ANY partition of a grid's cells into shard reports,
// MergeShards yields byte-identical JSON to RunContext on the whole grid.

package runner

import (
	"fmt"
	"hash/fnv"

	"github.com/nocdr/nocdr/internal/nocerr"
)

// DefaultShardCount is the number of shards a sharded sweep is cut into
// when the dispatcher does not override it. It is a fixed constant — NOT
// derived from the worker count — so the cell→shard assignment never
// changes when workers join, leave, or die; shards are the unit handed
// out to (and requeued between) workers.
const DefaultShardCount = 32

// Key is the canonical identity of a grid cell: every axis that
// distinguishes one job from another, joined in a fixed order. Two jobs
// with equal keys are the same cell and evaluate to the same result.
func (j Job) Key() string {
	return fmt.Sprintf("%s|%d|%s|%d|%s|%d", j.Benchmark, j.SwitchCount, j.Routing, j.Faults, j.Policy, j.Seed)
}

// ShardOf deterministically assigns a cell to one of shards buckets: the
// 64-bit FNV-1a hash of its Key, reduced mod shards. The hash depends
// only on the cell's identity — never on worker count, scheduling, or
// enumeration order — so every participant (coordinator, workers,
// re-runs) computes the identical assignment.
func ShardOf(j Job, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(j.Key()))
	return int(h.Sum64() % uint64(shards))
}

// MergeShards reassembles per-shard reports into the report RunContext
// would have produced over the whole grid: results land in Grid.Jobs
// order regardless of which shard carried them or in what order shards
// (or cells within a shard) arrive. Cells present in no shard report are
// marked canceled — a merged report is structurally complete even when
// shards went missing — and the merged report is marked canceled whenever
// any input shard was, or any cell is missing. A result for a cell the
// grid does not contain (or a duplicate beyond the grid's multiplicity)
// is an ErrInvalidInput: shard reports must partition the grid.
func MergeShards(grid Grid, shards ...*Report) (*Report, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	grid = grid.normalized()
	jobs := grid.Jobs()
	// Slot queue per key: duplicate axis entries yield identical cells, so
	// equal keys are filled first-come into successive slots.
	slots := make(map[string][]int, len(jobs))
	for i, j := range jobs {
		k := j.Key()
		slots[k] = append(slots[k], i)
	}
	results := make([]Result, len(jobs))
	filled := make([]bool, len(jobs))
	canceled := false
	for _, sr := range shards {
		if sr == nil {
			continue
		}
		if sr.Canceled {
			canceled = true
		}
		for _, res := range sr.Results {
			k := res.Job.Key()
			free := slots[k]
			if len(free) == 0 {
				return nil, fmt.Errorf("%w: shard result for unknown or duplicated cell %q", nocerr.ErrInvalidInput, k)
			}
			i := free[0]
			slots[k] = free[1:]
			results[i] = res
			filled[i] = true
		}
	}
	for i := range results {
		if !filled[i] {
			results[i] = Result{Job: jobs[i], Canceled: true}
			canceled = true
		}
	}
	rep := &Report{Grid: grid, Canceled: canceled, Results: results}
	// Shard reports never carry curves; the merged report aggregates
	// them from the reassembled results, exactly as an unsharded
	// RunContext would.
	rep.Curves = BuildCurves(rep)
	return rep, nil
}
