package runner

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestGroupedSweepBuildsEachDesignOnce is the cache-effectiveness counter
// test: an 8-seed grid must build every design exactly once, because the
// seeds axis varies only the injection process for deterministic
// benchmarks. Seeded random traffic and faulted presets genuinely differ
// per seed, so those designs build once per seed.
func TestGroupedSweepBuildsEachDesignOnce(t *testing.T) {
	builds := map[string]int{}
	designBuildHook = func(j Job) { builds[j.Key()]++ }
	defer func() { designBuildHook = nil }()

	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	grid := Grid{
		Benchmarks:   []string{"transpose:16", "mesh:3"},
		SwitchCounts: []int{8},
		Seeds:        seeds,
	}
	if _, err := Run(grid, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := len(builds); got != 2 {
		t.Fatalf("8-seed grid built %d designs, want 2 (one per benchmark): %v", got, builds)
	}
	for k, n := range builds {
		if n != 1 {
			t.Errorf("design %q built %d times, want 1", k, n)
		}
	}

	// Seed-dependent designs must NOT be collapsed across seeds.
	builds = map[string]int{}
	seeded := Grid{
		Benchmarks:   []string{"rand:12x2"},
		SwitchCounts: []int{8},
		Seeds:        []int64{1, 2, 3},
	}
	if _, err := Run(seeded, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := len(builds); got != 3 {
		t.Fatalf("3-seed rand grid built %d designs, want 3: %v", got, builds)
	}
}

// TestGroupedSweepMatchesPerCell is the scheduler-level differential: on
// a simulated multi-seed sweep, every cell of the grouped run must be
// deeply equal to an independent per-cell runJob of the same job — the
// oracle path that builds its own design and simulator per cell.
func TestGroupedSweepMatchesPerCell(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"torus:4:transpose", "D26_media"},
		SwitchCounts: []int{8},
		Routings:     []string{"dor", "odd-even"},
		Seeds:        []int64{0, 1, 2},
	}
	opts := Options{
		Parallel: 4,
		Simulate: true,
		Sim:      SimParams{Cycles: 3000, Load: 0.8},
	}
	rep, err := Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	jobs := grid.Jobs()
	if len(rep.Results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(rep.Results), len(jobs))
	}
	normalized := grid.normalized()
	cellOpts := opts
	cellOpts.maxPaths = normalized.MaxPaths
	for i, job := range jobs {
		want := runJob(context.Background(), job, cellOpts)
		got := rep.Results[i]
		// Wall-clock differs by construction; everything serialized must
		// not.
		want.RemovalTime, got.RemovalTime = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell %d (%s) diverges from per-cell oracle:\n got %+v\nwant %+v", i, job.Key(), got, want)
		}
	}
}

// TestLoadSweepPointsAndCurves runs a small grid with a Loads axis and
// checks the per-cell LoadSweep points and the report-level curves: a
// monotone load axis, one curve per design aggregating all seeds, and a
// canonical measurement unchanged by the extra lanes.
func TestLoadSweepPointsAndCurves(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"torus:4:transpose"},
		SwitchCounts: []int{8},
		Seeds:        []int64{1, 2},
		Loads:        []float64{0.9, 0.1, 0.5, 0.9}, // unsorted + duplicate on purpose
	}
	opts := Options{Simulate: true, Sim: SimParams{Cycles: 3000, Load: 0.8}}
	rep, err := Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Grid.Loads, []float64{0.1, 0.5, 0.9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("normalized Loads = %v, want %v", got, want)
	}
	for i, res := range rep.Results {
		if res.Sim == nil {
			t.Fatalf("result %d has no sim", i)
		}
		if got := len(res.Sim.LoadSweep); got != 3 {
			t.Fatalf("result %d has %d sweep points, want 3", i, got)
		}
		for j, lp := range res.Sim.LoadSweep {
			if lp.Load != rep.Grid.Loads[j] {
				t.Errorf("result %d point %d at load %v, want %v", i, j, lp.Load, rep.Grid.Loads[j])
			}
		}
	}
	if len(rep.Curves) != 1 {
		t.Fatalf("got %d curves, want 1 (one per design): %+v", len(rep.Curves), rep.Curves)
	}
	c := rep.Curves[0]
	if c.Benchmark != "torus:4:transpose" || len(c.Points) != 3 {
		t.Fatalf("unexpected curve shape: %+v", c)
	}
	for j, p := range c.Points {
		if p.Seeds != 2 {
			t.Errorf("point %d aggregated %d seeds, want 2", j, p.Seeds)
		}
		if j > 0 && p.Load <= c.Points[j-1].Load {
			t.Errorf("curve load axis not strictly ascending at %d: %v", j, p.Load)
		}
	}

	// The canonical measurement must be identical to the same sweep
	// without a Loads axis.
	plain := grid
	plain.Loads = nil
	prep, err := Run(plain, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Curves) != 0 {
		t.Fatalf("plain sweep grew curves: %+v", prep.Curves)
	}
	for i := range prep.Results {
		got, want := *rep.Results[i].Sim, *prep.Results[i].Sim
		got.LoadSweep = nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell %d canonical measurement changed by Loads axis:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestGridValidateLoads pins the Loads-axis validation.
func TestGridValidateLoads(t *testing.T) {
	base := Grid{Benchmarks: []string{"transpose:16"}, SwitchCounts: []int{8}}
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		g := base
		g.Loads = []float64{bad}
		if err := g.Validate(); err == nil {
			t.Errorf("load %v validated, want error", bad)
		}
	}
	g := base
	g.Loads = []float64{0.5, 1.0}
	if err := g.Validate(); err != nil {
		t.Errorf("valid loads rejected: %v", err)
	}
}

// synthetic curve helper.
func curve(points ...[3]float64) []CurvePoint {
	out := make([]CurvePoint, len(points))
	for i, p := range points {
		out[i] = CurvePoint{Load: p[0], AvgLatency: p[1], Throughput: p[2], Seeds: 1}
	}
	return out
}

// TestExtractSaturation pins the knee-detection criteria on synthetic
// monotone curves.
func TestExtractSaturation(t *testing.T) {
	cases := []struct {
		name   string
		points []CurvePoint
		want   float64
	}{
		{"empty", nil, 0},
		{"single point", curve([3]float64{0.5, 10, 1}), 0},
		{"linear never saturates", curve(
			[3]float64{0.2, 10, 0.2}, [3]float64{0.4, 11, 0.4}, [3]float64{0.6, 12, 0.6}, [3]float64{0.8, 13, 0.8}), 0},
		{"latency knee at 0.6", curve(
			[3]float64{0.2, 10, 0.2}, [3]float64{0.4, 15, 0.4}, [3]float64{0.6, 40, 0.6}, [3]float64{0.8, 90, 0.8}), 0.6},
		{"throughput flattens at 0.8", curve(
			[3]float64{0.2, 10, 0.2}, [3]float64{0.4, 12, 0.4}, [3]float64{0.6, 14, 0.6}, [3]float64{0.8, 16, 0.604}), 0.8},
	}
	for _, tc := range cases {
		if got := ExtractSaturation(tc.points); got != tc.want {
			t.Errorf("%s: saturation %v, want %v", tc.name, got, tc.want)
		}
	}
	// Any deadlock wins immediately, even at the first point.
	pts := curve([3]float64{0.2, 10, 0.2}, [3]float64{0.4, 11, 0.4})
	pts[0].Deadlocks = 1
	if got := ExtractSaturation(pts); got != 0.2 {
		t.Errorf("deadlock knee: got %v, want 0.2", got)
	}
}
