package runner

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// WriteTable renders a sweep report as an aligned text table, one row per
// job in grid order, followed by a one-line total.
func WriteTable(w io.Writer, rep *Report) error {
	title := fmt.Sprintf("Sweep: %d benchmarks × %d switch counts × %d policies × %d seeds",
		len(rep.Grid.Benchmarks), len(rep.Grid.SwitchCounts), len(rep.Grid.Policies), len(rep.Grid.Seeds))
	if len(rep.Grid.Routings) > 0 {
		title += fmt.Sprintf(" × %d routings", len(rep.Grid.Routings))
	}
	if rep.Grid.Faults > 0 {
		title += fmt.Sprintf(", %d link faults per cell", rep.Grid.Faults)
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	simulated, routed := false, false
	for _, r := range rep.Results {
		if r.Sim != nil {
			simulated = true
		}
		if r.Routing != "" || r.Faults > 0 {
			routed = true
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "benchmark\tswitches\tpolicy\tseed"
	if routed {
		header += "\trouting\tfaults"
	}
	header += "\tlinks\tremoval VCs\tordering VCs\tbreaks\truntime\tstatus"
	if simulated {
		header += "\tsim"
	}
	fmt.Fprintln(tw, header)
	var total time.Duration
	errors, canceled := 0, 0
	for _, r := range rep.Results {
		status := "ok"
		switch {
		case r.Error != "":
			status = "ERROR: " + r.Error
			errors++
		case r.Canceled:
			status = "canceled"
			canceled++
		case r.Skipped:
			status = "skipped"
		case r.InitialAcyclic:
			status = "already acyclic"
		}
		total += r.RemovalTime
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d",
			r.Benchmark, r.SwitchCount, r.Policy, r.Seed)
		if routed {
			routing := r.Routing
			if routing == "" {
				routing = "-"
			}
			fmt.Fprintf(tw, "\t%s\t%d", routing, r.Faults)
		}
		fmt.Fprintf(tw, "\t%d\t%d\t%d\t%d\t%s\t%s",
			r.Links, r.RemovalVCs, r.OrderingVCs, r.Breaks,
			r.RemovalTime.Round(10*time.Microsecond), status)
		if simulated {
			sim := "-"
			if r.Sim != nil {
				sim = r.Sim.summary()
			}
			fmt.Fprintf(tw, "\t%s", sim)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	note := ""
	if canceled > 0 {
		note = fmt.Sprintf(" (%d canceled — partial sweep)", canceled)
	}
	_, err := fmt.Fprintf(w, "\n%d jobs, %d errors, total removal time %v%s\n",
		len(rep.Results), errors, total.Round(time.Millisecond), note)
	return err
}
