// Content-addressed result caching for the sweep engine. A cell's cache
// key is the fabric hash of every semantic input of its evaluation — the
// job identity plus the option fields that change its result — so equal
// keys imply byte-identical results and any engine change (via the
// fabric salt) disjoints the whole key space at once.

package runner

import (
	"github.com/nocdr/nocdr/internal/fabric"
)

// CellCache is the result-cache contract the sweep engine consults: Get
// returns the cached canonical JSON encoding of a cell's Result, Put
// stores one. Implementations must be safe for concurrent use;
// fabric.Cache satisfies the interface.
type CellCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// cellKeyParts is the canonical input set of one cell evaluation. Every
// field that can change the cell's Result participates; scheduling knobs
// (Parallel, Progress, shard assignment) deliberately do not — the same
// cell computed anywhere must hit the same address.
type cellKeyParts struct {
	Job         Job       `json:"job"`
	Policy      int       `json:"policy"`
	VCLimit     int       `json:"vc_limit"`
	FullRebuild bool      `json:"full_rebuild"`
	Simulate    bool      `json:"simulate"`
	Sim         SimParams `json:"sim"`
	MaxPaths    int       `json:"max_paths"`
	Loads       []float64 `json:"loads,omitempty"`
	// Certify participates with omitempty so uncertified runs keep their
	// pre-existing addresses; certified and uncertified evaluations of
	// the same cell are distinct results and never alias.
	Certify bool `json:"certify,omitempty"`
}

// CellKey is the content address of one grid cell's evaluation under the
// given options and measurement loads. Simulation parameters are
// normalized to their effective values (so explicit defaults and zero
// values address the same entry) and dropped entirely when the run does
// not simulate, where they cannot influence the result.
func CellKey(j Job, opts Options, loads []float64) string {
	p := cellKeyParts{
		Job:         j,
		Policy:      int(opts.Policy),
		VCLimit:     opts.VCLimit,
		FullRebuild: opts.FullRebuild,
		Simulate:    opts.Simulate,
		MaxPaths:    opts.maxPaths,
		Certify:     opts.Certify,
	}
	if opts.Simulate {
		p.Sim = opts.Sim.withDefaults()
		p.Loads = loads
	}
	return fabric.Key("sweep-cell", p)
}
