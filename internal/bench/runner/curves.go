package runner

import "sort"

// LoadPoint is one cell's post-removal measurement at one injection
// load: the raw material of the per-design saturation curves.
type LoadPoint struct {
	Load       float64 `json:"load"`
	Deadlock   bool    `json:"deadlock,omitempty"`
	Delivered  int64   `json:"delivered"`
	AvgLatency float64 `json:"avg_latency"`
	P50        int64   `json:"p50_latency"`
	P95        int64   `json:"p95_latency"`
	P99        int64   `json:"p99_latency"`
	Throughput float64 `json:"throughput_flits_per_cycle"`
}

// CurvePoint is one load of a design's aggregated curve: means over the
// contributing seeds for latency and throughput, worst case over seeds
// for the tail percentiles, and the count of lanes that deadlocked.
type CurvePoint struct {
	Load float64 `json:"load"`
	// Seeds is how many cells contributed to this point.
	Seeds int `json:"seeds"`
	// Deadlocks counts contributing cells whose measurement run
	// deadlocked at this load.
	Deadlocks  int     `json:"deadlocks,omitempty"`
	AvgLatency float64 `json:"avg_latency"`
	// P95/P99 are the worst tail over the contributing seeds.
	P95        int64   `json:"p95_latency"`
	P99        int64   `json:"p99_latency"`
	Throughput float64 `json:"throughput_flits_per_cycle"`
}

// DesignCurve is one design's load-sweep curve: its identifying axes, the
// aggregated points ascending by load, and the estimated saturation load.
type DesignCurve struct {
	Benchmark   string       `json:"benchmark"`
	SwitchCount int          `json:"switch_count"`
	Routing     string       `json:"routing,omitempty"`
	Faults      int          `json:"faults,omitempty"`
	Policy      string       `json:"policy"`
	Points      []CurvePoint `json:"points"`
	// SaturationLoad is the estimated knee of the curve (see
	// ExtractSaturation); 0 means the design never saturates within the
	// swept axis.
	SaturationLoad float64 `json:"saturation_load,omitempty"`
}

// curveKey identifies a curve: the design axes without the seed, so the
// seeds column aggregates into one curve per design.
type curveKey struct {
	benchmark string
	switches  int
	routing   string
	faults    int
	policy    string
}

// BuildCurves aggregates the report's per-cell LoadSweep points into one
// curve per design, in first-appearance order over the results. It is a
// pure function of the result slots, so serial, parallel and
// shard-merged reports produce identical curves. Returns nil when no
// cell carries load-sweep data.
func BuildCurves(rep *Report) []DesignCurve {
	type acc struct {
		curve  DesignCurve
		byLoad map[float64]*CurvePoint
	}
	byKey := map[curveKey]*acc{}
	var order []*acc
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Sim == nil || len(res.Sim.LoadSweep) == 0 {
			continue
		}
		k := curveKey{res.Benchmark, res.SwitchCount, res.Routing, res.Faults, res.Policy}
		a, ok := byKey[k]
		if !ok {
			a = &acc{
				curve: DesignCurve{
					Benchmark:   res.Benchmark,
					SwitchCount: res.SwitchCount,
					Routing:     res.Routing,
					Faults:      res.Faults,
					Policy:      res.Policy,
				},
				byLoad: map[float64]*CurvePoint{},
			}
			byKey[k] = a
			order = append(order, a)
		}
		for _, lp := range res.Sim.LoadSweep {
			p, ok := a.byLoad[lp.Load]
			if !ok {
				p = &CurvePoint{Load: lp.Load}
				a.byLoad[lp.Load] = p
			}
			p.Seeds++
			if lp.Deadlock {
				p.Deadlocks++
			}
			// Accumulate sums; the finalize pass divides.
			p.AvgLatency += lp.AvgLatency
			p.Throughput += lp.Throughput
			p.P95 = max(p.P95, lp.P95)
			p.P99 = max(p.P99, lp.P99)
		}
	}
	if len(order) == 0 {
		return nil
	}
	curves := make([]DesignCurve, 0, len(order))
	for _, a := range order {
		loads := make([]float64, 0, len(a.byLoad))
		for l := range a.byLoad {
			loads = append(loads, l)
		}
		sort.Float64s(loads)
		for _, l := range loads {
			p := *a.byLoad[l]
			p.AvgLatency /= float64(p.Seeds)
			p.Throughput /= float64(p.Seeds)
			a.curve.Points = append(a.curve.Points, p)
		}
		a.curve.SaturationLoad = ExtractSaturation(a.curve.Points)
		curves = append(curves, a.curve)
	}
	return curves
}

// Saturation-knee thresholds: a load saturates the design when its mean
// latency exceeds latencyKneeFactor × the curve's lowest-load latency, or
// when the marginal throughput gained per unit load drops below
// slopeKneeFraction of the curve's initial throughput-per-load slope (the
// accepted-traffic curve going flat), or — trivially — when any lane
// deadlocks at that load.
const (
	latencyKneeFactor = 3.0
	slopeKneeFraction = 0.05
)

// ExtractSaturation estimates the saturation load of an aggregated curve:
// the smallest swept load at which the design is saturated under any of
// the three knee criteria. The points must be ascending by load
// (BuildCurves guarantees it). Returns 0 when the design never saturates
// within the axis — including on empty or single-point curves, which
// carry no slope information.
func ExtractSaturation(points []CurvePoint) float64 {
	if len(points) == 0 {
		return 0
	}
	baseLatency := points[0].AvgLatency
	baseSlope := 0.0
	if points[0].Load > 0 {
		baseSlope = points[0].Throughput / points[0].Load
	}
	for i, p := range points {
		if p.Deadlocks > 0 {
			return p.Load
		}
		if i > 0 && baseLatency > 0 && p.AvgLatency > latencyKneeFactor*baseLatency {
			return p.Load
		}
		if i > 0 && baseSlope > 0 {
			dLoad := p.Load - points[i-1].Load
			if dLoad > 0 {
				slope := (p.Throughput - points[i-1].Throughput) / dLoad
				if slope < slopeKneeFraction*baseSlope {
					return p.Load
				}
			}
		}
	}
	return 0
}
