// The sharded sweep dispatcher: the coordinator side of the distributed
// backend. It cuts the grid into DefaultShardCount shards (ShardOf),
// hands shards to remote `nocdr serve` workers over the /v1/sweep job
// API, follows each job's SSE event stream to its terminal state (status
// polling is the degrade path), requeues shards whose worker dies
// mid-flight, drains partial results on cancellation, and merges the
// shard reports into a report byte-identical to a single-process run.

package runner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/nocdr/nocdr/internal/certify"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/nocerr"
)

// Sharded fans a sweep grid out across `nocdr serve` workers. The zero
// value plus a Workers list is ready to use:
//
//	rep, err := (&runner.Sharded{Workers: []string{"http://a:8080", "http://b:8080"}}).
//		RunContext(ctx, grid, opts)
//
// Determinism contract: the merged report is byte-identical to
// RunContext's output on the same grid and options, for any worker
// count, any scheduling order, and any pattern of worker failures the
// retry budget absorbs — cells are assigned to shards by a stable hash
// of their identity, every cell is evaluated by the same deterministic
// pipeline wherever it lands, and results are merged into pre-assigned
// slots.
type Sharded struct {
	// Workers are the base URLs of running `nocdr serve` instances
	// (scheme://host:port, no trailing slash required).
	Workers []string
	// Source, when non-nil, supplies live worker membership on top of the
	// static Workers list: its snapshot is admitted at start, and whenever
	// Updates signals, URLs never seen before join the fleet mid-run and
	// immediately start taking unowned shards. A URL retired for failures
	// is not re-admitted within the run, even if the source still lists
	// it. fabric.Watcher implements the contract.
	Source WorkerSource
	// JoinGrace bounds how long a run with a Source waits for a worker
	// to join while shards are pending and none are live (default 30s);
	// past it the run fails like an all-workers-dead run.
	JoinGrace time.Duration
	// AuthToken is the fleet bearer token attached to every worker call
	// ("" = open fleet).
	AuthToken string
	// Shards overrides DefaultShardCount. The shard count — not the
	// worker count — is the granularity of assignment, load balancing
	// and requeue, so it may exceed the worker count freely.
	Shards int
	// Client is the HTTP client; nil uses a plain &http.Client{} (no
	// global timeout — sweep jobs are long-lived and their SSE streams
	// stay open for the life of a shard; cancellation flows through the
	// run context instead). TLS fleets pass a client built from
	// fabric.HTTPClient(fabric.ClientTLS(...), 0).
	Client *http.Client
	// DisableStream skips the SSE subscription and drives every shard by
	// status polling alone — the degrade path, forced (tests, proxies
	// that buffer event streams).
	DisableStream bool
	// PollInterval is the job-status polling period on the degrade path
	// (default 25ms).
	PollInterval time.Duration
	// Retries is the attempt budget per shard across all workers
	// (default 3): a shard failing that many times fails the run with an
	// error wrapping nocerr.ErrWorker.
	Retries int
	// WorkerParallel overrides each worker's per-sweep runner pool size
	// (0 keeps the worker's own default).
	WorkerParallel int
	// DrainTimeout bounds how long a canceled run waits for workers to
	// surrender partial shard reports (default 10s).
	DrainTimeout time.Duration
	// OnAssign, when non-nil, observes every shard→worker assignment
	// (including reassignments after a failure).
	OnAssign func(shard, shards int, worker string)
	// OnRetry, when non-nil, observes every shard requeue: the shard,
	// the worker that failed it, and the failure.
	OnRetry func(shard int, worker string, err error)
}

func (d *Sharded) client() *http.Client {
	if d.Client != nil {
		return d.Client
	}
	return &http.Client{}
}

func (d *Sharded) pollInterval() time.Duration {
	if d.PollInterval > 0 {
		return d.PollInterval
	}
	return 25 * time.Millisecond
}

func (d *Sharded) drainTimeout() time.Duration {
	if d.DrainTimeout > 0 {
		return d.DrainTimeout
	}
	return 10 * time.Second
}

func (d *Sharded) joinGrace() time.Duration {
	if d.JoinGrace > 0 {
		return d.JoinGrace
	}
	return 30 * time.Second
}

// WorkerSource supplies live worker membership to the sharded
// dispatcher. WorkerURLs snapshots the current set; Updates signals that
// it changed (re-read WorkerURLs after receiving). The fabric package's
// Watcher, polling a coordinator's registry, is the canonical
// implementation.
type WorkerSource interface {
	WorkerURLs() []string
	Updates() <-chan struct{}
}

// shardRequest is the client side of serve's POST /v1/sweep body; field
// names mirror the server's request schema.
type shardRequest struct {
	Grid     Grid      `json:"grid"`
	Simulate bool      `json:"simulate"`
	Sim      SimParams `json:"sim"`
	Certify  bool      `json:"certify,omitempty"`
	Parallel int       `json:"parallel,omitempty"`
	Options  struct {
		VCLimit     int    `json:"vc_limit"`
		FullRebuild bool   `json:"full_rebuild"`
		Policy      string `json:"policy"`
		NoCache     bool   `json:"no_cache,omitempty"`
	} `json:"options"`
}

// wireStatus is the slice of serve's job-status document the dispatcher
// reads while polling.
type wireStatus struct {
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// policyWire maps the direction policy to serve's wire spelling.
func policyWire(p core.DirectionPolicy) string {
	switch p {
	case core.ForwardOnly:
		return "forward"
	case core.BackwardOnly:
		return "backward"
	default:
		return "best"
	}
}

// outcome is one finished (or failed) shard attempt.
type outcome struct {
	shard  int
	worker int
	rep    *Report
	err    error
	// dead marks the worker unusable: transport failures and unparseable
	// responses retire it; the shard requeues to the survivors.
	dead bool
}

// RunContext executes the grid across the dispatcher's workers and
// returns the merged report. Cancellation mirrors RunContext's serial
// contract: in-flight shard jobs are canceled on their workers, their
// partial results drained, unrun cells marked canceled, and the partial
// report returned with a nil error. Worker failures beyond the retry
// budget — or the death of every worker — fail the run with an error
// wrapping nocerr.ErrWorker.
func (d *Sharded) RunContext(ctx context.Context, grid Grid, opts Options) (*Report, error) {
	if len(d.Workers) == 0 && d.Source == nil {
		return nil, fmt.Errorf("%w: sharded sweep needs at least one worker URL", nocerr.ErrInvalidInput)
	}
	if opts.ShardCount != 0 {
		return nil, fmt.Errorf("%w: cannot nest a shard filter inside a sharded dispatch", nocerr.ErrInvalidInput)
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	grid = grid.normalized()
	opts.maxPaths = grid.MaxPaths
	shards := d.Shards
	if shards <= 0 {
		shards = DefaultShardCount
	}
	jobs := grid.Jobs()
	shardJobs := make([][]int, shards)
	for i, j := range jobs {
		s := ShardOf(j, shards)
		shardJobs[s] = append(shardJobs[s], i)
	}

	// Coordinator-side cache pre-pass, at shard granularity: a shard
	// every cell of which is cached is served locally and never
	// dispatched (its results enter the merge as one extra pseudo-shard
	// report — MergeShards accepts any partition). Shards with even one
	// cold cell dispatch whole, because a worker answers with all its
	// cells and the merge rejects duplicates — but their warm cells are
	// collected and seeded into the assigned worker's cache ahead of the
	// submit, so a dispatched partially-warm shard recomputes only its
	// cold cells. Every cell is probed (not stop-at-first-miss): the
	// misses are the price of knowing which entries to ship.
	var (
		pending      []int
		cacheRep     *Report
		cachedShards = make([]bool, shards)
		warm         map[int][]fabric.CacheEntry
	)
	for s := 0; s < shards; s++ {
		if len(shardJobs[s]) == 0 {
			continue
		}
		hits := make([]Result, 0, len(shardJobs[s]))
		var entries []fabric.CacheEntry
		if opts.CellCache != nil && !opts.NoCache {
			for _, i := range shardJobs[s] {
				key := CellKey(jobs[i], opts, grid.Loads)
				data, ok := opts.CellCache.Get(key)
				if !ok {
					continue
				}
				var r Result
				if err := json.Unmarshal(data, &r); err != nil || r.Job != jobs[i] {
					continue
				}
				// Same poisoned-salt guard as the local pre-pass: a stored
				// certificate from a different checker build voids the hit
				// (and, at shard granularity, that cell re-runs remotely).
				if opts.Certify && (r.Certify == nil || r.Certify.Salt != certify.Salt) {
					continue
				}
				hits = append(hits, r)
				entries = append(entries, fabric.CacheEntry{Key: key, Value: data})
			}
		}
		if len(hits) == len(shardJobs[s]) && len(hits) > 0 {
			cachedShards[s] = true
			if cacheRep == nil {
				cacheRep = &Report{Grid: grid}
			}
			cacheRep.Results = append(cacheRep.Results, hits...)
		} else {
			pending = append(pending, s)
			if len(entries) > 0 {
				if warm == nil {
					warm = make(map[int][]fabric.CacheEntry)
				}
				warm[s] = entries
			}
		}
	}
	if len(pending) > 0 && len(d.Workers) == 0 && d.Source != nil && len(d.Source.WorkerURLs()) == 0 && d.JoinGrace == 0 {
		// Fail fast rather than idle a full default grace when the fleet
		// is empty at start and the caller didn't opt into waiting.
		return nil, fmt.Errorf("%w: %d shard(s) to run and no live workers registered", nocerr.ErrWorker, len(pending))
	}
	retries := d.Retries
	if retries <= 0 {
		retries = 3
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One goroutine per worker, fed one shard at a time over its own
	// channel; all scheduling state lives in this goroutine. Workers can
	// be admitted mid-run (spawn is only called from this goroutine), so
	// the fleet is a growing slice rather than a fixed array.
	type remote struct {
		url  string
		feed chan int
	}
	var (
		wg      sync.WaitGroup
		done    = make(chan outcome)
		fleet   []*remote
		known   = make(map[string]bool)
		free    []int
		updates <-chan struct{}
	)
	spawn := func(url string) {
		if url == "" || known[url] {
			return
		}
		known[url] = true
		w := &remote{url: url, feed: make(chan int)}
		wi := len(fleet)
		fleet = append(fleet, w)
		free = append(free, wi)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range w.feed {
				rep, dead, err := d.runShard(cctx, w.url, grid, shard, shards, warm[shard], opts)
				done <- outcome{shard: shard, worker: wi, rep: rep, err: err, dead: dead}
			}
		}()
	}
	for _, u := range d.Workers {
		spawn(u)
	}
	if d.Source != nil {
		for _, u := range d.Source.WorkerURLs() {
			spawn(u)
		}
		updates = d.Source.Updates()
	}

	// Global slot indices per cell key, consumed as progress callbacks
	// fire so OnResult reports the same indices a local run would.
	var slotOf map[string][]int
	if opts.OnResult != nil {
		slotOf = make(map[string][]int, len(jobs))
		for i, j := range jobs {
			k := j.Key()
			slotOf[k] = append(slotOf[k], i)
		}
	}

	var (
		reports     []*Report
		attempts    = make([]int, shards)
		inflight    int
		fatal       error
		interrupted bool
		progressed  int
	)
	noteResults := func(rep *Report) {
		for i := range rep.Results {
			res := rep.Results[i]
			progressed++
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "sweep %d/%d: %s\n", progressed, len(jobs), res.oneLine())
			}
			if opts.OnResult != nil {
				k := res.Job.Key()
				if slots := slotOf[k]; len(slots) > 0 {
					slotOf[k] = slots[1:]
					opts.OnResult(slots[0], len(jobs), res)
				}
			}
		}
	}
	if cacheRep != nil {
		// Cache-served shards complete up front, before any dispatch.
		noteResults(cacheRep)
		reports = append(reports, cacheRep)
	}
	ctxDone := ctx.Done()

	for {
		// Hand pending shards to free workers while the run is healthy.
		for len(pending) > 0 && len(free) > 0 && fatal == nil && !interrupted {
			w := free[len(free)-1]
			free = free[:len(free)-1]
			shard := pending[0]
			pending = pending[1:]
			if d.OnAssign != nil {
				d.OnAssign(shard, shards, fleet[w].url)
			}
			fleet[w].feed <- shard
			inflight++
		}
		if inflight == 0 {
			if len(pending) == 0 || fatal != nil || interrupted {
				break
			}
			// Shards remain but every admitted worker has been retired.
			if updates == nil {
				fatal = fmt.Errorf("%w: %d shard(s) unassigned and no workers left alive", nocerr.ErrWorker, len(pending))
				break
			}
			// Live-membership mode: wait (bounded) for a join instead of
			// failing — a fresh worker registering with the coordinator
			// picks the unowned shards up.
			select {
			case _, ok := <-updates:
				if !ok {
					// The source terminated (watcher closed): no join can
					// ever arrive, so fail like a source-less empty fleet.
					updates = nil
					continue
				}
				for _, u := range d.Source.WorkerURLs() {
					spawn(u)
				}
			case <-time.After(d.joinGrace()):
				fatal = fmt.Errorf("%w: %d shard(s) unassigned and no worker joined within %v", nocerr.ErrWorker, len(pending), d.joinGrace())
			case <-ctxDone:
				interrupted = true
				ctxDone = nil
			}
			continue
		}
		select {
		case o := <-done:
			inflight--
			// A dead worker never returns to the free list; liveness IS
			// membership in free or an in-flight shard.
			if !o.dead {
				free = append(free, o.worker)
			}
			switch {
			case o.err == nil:
				if o.rep != nil {
					reports = append(reports, o.rep)
					if o.rep.Canceled {
						interrupted = true
					}
					noteResults(o.rep)
				}
			case cctx.Err() != nil:
				// Failure raced the cancellation: keep any partial result
				// and let the drain finish.
				interrupted = true
				if o.rep != nil {
					reports = append(reports, o.rep)
				}
			default:
				attempts[o.shard]++
				if d.OnRetry != nil {
					d.OnRetry(o.shard, fleet[o.worker].url, o.err)
				}
				if attempts[o.shard] >= retries {
					fatal = fmt.Errorf("%w: shard %d/%d failed after %d attempt(s): %v",
						nocerr.ErrWorker, o.shard, shards, attempts[o.shard], o.err)
					cancel()
				} else {
					pending = append(pending, o.shard)
				}
			}
		case _, ok := <-updates:
			if !ok {
				// Closed source: keep running with the workers already
				// admitted, but stop selecting on the dead channel.
				updates = nil
				continue
			}
			// Mid-run membership change: admit workers never seen before;
			// the assignment loop hands them pending shards immediately.
			for _, u := range d.Source.WorkerURLs() {
				spawn(u)
			}
		case <-ctxDone:
			// Stop assigning; in-flight shards drain cooperatively
			// through runShard's cancellation path. Nil the channel so a
			// closed Done cannot spin this loop.
			interrupted = true
			ctxDone = nil
		}
	}
	for _, w := range fleet {
		close(w.feed)
	}
	wg.Wait()

	if fatal != nil {
		return nil, fatal
	}
	rep, err := MergeShards(grid, reports...)
	if err != nil {
		return nil, err
	}
	if interrupted && ctx.Err() != nil {
		rep.Canceled = true
	}
	if opts.CellCache != nil {
		// Feed the coordinator cache from the merged report: every clean
		// cell a worker computed this run (cache-served shards already
		// hold these exact bytes and are skipped). rep.Results is in
		// jobs order, so index i is cell jobs[i].
		for i := range rep.Results {
			r := rep.Results[i]
			if cachedShards[ShardOf(jobs[i], shards)] || r.Error != "" || r.Canceled {
				continue
			}
			if data, err := json.Marshal(r); err == nil {
				opts.CellCache.Put(CellKey(jobs[i], opts, grid.Loads), data)
			}
		}
	}
	return rep, nil
}

// maxBackpressure bounds how many 429 rounds one shard submission rides
// out before the attempt is surrendered to the retry budget.
const maxBackpressure = 20

// streamIdleTimeout closes an SSE subscription that has gone silent: the
// server pings every ssePingInterval, so a stream this quiet means the
// peer is gone without having closed the connection. The dispatcher then
// degrades to status polling, whose per-request failures detect death.
const streamIdleTimeout = 60 * time.Second

// waiter is a reusable timer for the dispatcher's wait loops: one
// runtime timer serves every iteration, where time.After would allocate
// a fresh timer per 25ms tick and leak each until expiry.
type waiter struct{ t *time.Timer }

// sleep blocks for dur or until ctx is done (returning ctx's error).
func (w *waiter) sleep(ctx context.Context, dur time.Duration) error {
	if w.t == nil {
		w.t = time.NewTimer(dur)
	} else {
		w.t.Reset(dur)
	}
	select {
	case <-w.t.C:
		return nil
	case <-ctx.Done():
		if !w.t.Stop() {
			// The timer fired while we were leaving the select; drain the
			// channel so the next Reset starts clean.
			select {
			case <-w.t.C:
			default:
			}
		}
		return ctx.Err()
	}
}

func (w *waiter) stop() {
	if w.t != nil {
		w.t.Stop()
	}
}

// backpressureError is a worker's 429 submit answer: the job table is
// full but the worker is healthy; after carries its Retry-After
// guidance.
type backpressureError struct{ after time.Duration }

func (e *backpressureError) Error() string {
	return fmt.Sprintf("job table full (retry after %v)", e.after)
}

// parseRetryAfter reads a Retry-After header as whole seconds, clamped
// to [1s, 30s]; anything unparseable gets the old fixed 1s.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 1 {
		return time.Second
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// runShard submits one shard to a worker and follows its job to a
// terminal state: first over the job's SSE event stream (zero status
// polls on the happy path), falling back to polling when the stream is
// unavailable or drops. A 429 submit answer is backpressure, not
// failure — the worker's Retry-After is honored and the submit retried
// without retiring anyone. A failed or malformed submission gets one
// immediate resubmission, and a failed status poll one immediate
// re-poll, before the worker is declared dead (dead=true retires the
// worker; the coordinator requeues the shard elsewhere). On cancellation
// the worker-side job is canceled and its partial report drained.
func (d *Sharded) runShard(ctx context.Context, worker string, grid Grid, shard, shards int, seed []fabric.CacheEntry, opts Options) (rep *Report, dead bool, err error) {
	req := shardRequest{
		Grid:     grid,
		Simulate: opts.Simulate,
		Sim:      opts.Sim,
		Certify:  opts.Certify,
		Parallel: d.WorkerParallel,
	}
	req.Options.VCLimit = opts.VCLimit
	req.Options.FullRebuild = opts.FullRebuild
	req.Options.Policy = policyWire(opts.Policy)
	req.Options.NoCache = opts.NoCache
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}

	wait := &waiter{}
	defer wait.stop()

	// Warm hand-off: ship the coordinator's cached cells for this shard
	// before submitting, so the worker's own cache pre-pass answers them
	// without computing. Best-effort — a worker without a cache (409) or
	// a failed POST just computes those cells cold.
	if len(seed) > 0 {
		_ = fabric.SeedEntries(ctx, worker, d.AuthToken, d.client(), seed)
	}

	id, err := d.submitBackoff(ctx, worker, shard, shards, body, wait)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, fmt.Errorf("%w: %w", nocerr.ErrCanceled, ctx.Err())
		}
		return nil, true, fmt.Errorf("worker %s: submit shard %d/%d: %w", worker, shard, shards, err)
	}

	var st *wireStatus
	if !d.DisableStream {
		st = d.streamTerminal(ctx, worker, id)
	}
	if st == nil && ctx.Err() != nil {
		return d.drain(worker, id)
	}
	// Degrade path: the stream was unavailable (older worker, buffering
	// proxy) or dropped mid-job. The job is unaffected server-side, so
	// fall back to status polling.
	pollFailures := 0
	for st == nil {
		cur, err := d.jobStatus(ctx, worker, id)
		if err != nil {
			if ctx.Err() != nil {
				return d.drain(worker, id)
			}
			// Absorb one poll hiccup (the job keeps running server-side);
			// two consecutive failures retire the worker.
			if pollFailures++; pollFailures > 1 {
				return nil, true, fmt.Errorf("worker %s: poll shard %d/%d: %w", worker, shard, shards, err)
			}
			if wait.sleep(ctx, d.pollInterval()) != nil {
				return d.drain(worker, id)
			}
			continue
		}
		pollFailures = 0
		switch cur.State {
		case "done", "failed", "canceled":
			st = cur
		default:
			if wait.sleep(ctx, d.pollInterval()) != nil {
				return d.drain(worker, id)
			}
		}
	}
	switch st.State {
	case "done":
		rep, err := decodeShardReport(st.Result)
		if err != nil {
			return nil, true, fmt.Errorf("worker %s: shard %d/%d result: %w", worker, shard, shards, err)
		}
		return rep, false, nil
	case "failed":
		return nil, false, fmt.Errorf("worker %s: shard %d/%d failed: %s", worker, shard, shards, st.Error)
	default: // canceled
		// Canceled server-side (shutdown, operator): whatever partial
		// result exists still merges; missing cells surface as
		// canceled slots.
		rep, _ := decodeShardReport(st.Result)
		if rep != nil {
			rep.Canceled = true
		}
		return rep, false, nil
	}
}

// submitBackoff submits the shard, absorbing backpressure and transient
// hiccups: a 429 answer waits out the worker's Retry-After and resubmits
// (the worker is healthy, just full — up to maxBackpressure rounds),
// while any other failure gets one immediate retry before giving up.
func (d *Sharded) submitBackoff(ctx context.Context, worker string, shard, shards int, body []byte, wait *waiter) (string, error) {
	retried := false
	backpressured := 0
	for {
		id, err := d.submit(ctx, worker, shard, shards, body)
		var full *backpressureError
		switch {
		case err == nil:
			return id, nil
		case ctx.Err() != nil:
			return "", err
		case errors.As(err, &full):
			if backpressured++; backpressured > maxBackpressure {
				return "", err
			}
			if werr := wait.sleep(ctx, full.after); werr != nil {
				return "", err
			}
		case !retried:
			retried = true
		default:
			return "", err
		}
	}
}

// streamTerminal subscribes to the job's SSE event feed and blocks until
// the terminal `state` event arrives, returning its status document. A
// nil return means the stream was unavailable or dropped — the caller
// degrades to status polling; the job is unaffected server-side. An idle
// watchdog closes streams silent past streamIdleTimeout (the server
// pings idle streams, so that much silence means a dead peer).
func (d *Sharded) streamTerminal(ctx context.Context, worker, id string) *wireStatus {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(worker, "/")+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil
	}
	req.Header.Set("Accept", "text/event-stream")
	fabric.SetAuth(req, d.AuthToken)
	resp, err := d.client().Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil
	}
	dog := time.AfterFunc(streamIdleTimeout, func() { resp.Body.Close() })
	defer dog.Stop()

	var event string
	var data bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	// Terminal state events embed the full shard report; size the line
	// budget like the job API's own body budget.
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		dog.Reset(streamIdleTimeout)
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event.
			if event == "state" && data.Len() > 0 {
				var st wireStatus
				if json.Unmarshal(data.Bytes(), &st) == nil {
					switch st.State {
					case "done", "failed", "canceled":
						return &st
					}
				}
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		}
		// id: lines and ": ping" comments need no handling.
	}
	return nil
}

// drain is the cancellation path of runShard: cancel the worker-side job
// and poll (off the run context, bounded by DrainTimeout) until it goes
// terminal, so the partial shard report is not lost. A worker that
// cannot be drained simply contributes nothing — its cells merge as
// canceled slots.
func (d *Sharded) drain(worker, id string) (*Report, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d.drainTimeout())
	defer cancel()
	creq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/jobs/"+id+"/cancel", nil)
	if err != nil {
		return nil, false, nil
	}
	fabric.SetAuth(creq, d.AuthToken)
	if resp, err := d.client().Do(creq); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	wait := &waiter{}
	defer wait.stop()
	for {
		st, err := d.jobStatus(ctx, worker, id)
		if err != nil {
			return nil, false, nil
		}
		switch st.State {
		case "done", "failed", "canceled":
			rep, _ := decodeShardReport(st.Result)
			if rep != nil && st.State != "done" {
				rep.Canceled = true
			}
			return rep, false, nil
		}
		if wait.sleep(ctx, d.pollInterval()) != nil {
			return nil, false, nil
		}
	}
}

// submit POSTs the shard's sweep request and returns the accepted job ID.
func (d *Sharded) submit(ctx context.Context, worker string, shard, shards int, body []byte) (string, error) {
	url := fmt.Sprintf("%s/v1/sweep?shard=%d/%d", strings.TrimSuffix(worker, "/"), shard, shards)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	fabric.SetAuth(req, d.AuthToken)
	resp, err := d.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return "", &backpressureError{after: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &accepted); err != nil || accepted.ID == "" {
		return "", fmt.Errorf("malformed submit response %q", truncateBody(data))
	}
	return accepted.ID, nil
}

// jobStatus fetches one job-status document.
func (d *Sharded) jobStatus(ctx context.Context, worker, id string) (*wireStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(worker, "/")+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	fabric.SetAuth(req, d.AuthToken)
	resp, err := d.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, truncateBody(data))
	}
	var st wireStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("malformed status response %q", truncateBody(data))
	}
	return &st, nil
}

// decodeShardReport parses a sweep job's result document.
func decodeShardReport(raw json.RawMessage) (*Report, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("malformed report %q", truncateBody(raw))
	}
	return &rep, nil
}

// truncateBody keeps error messages readable when a worker answers with
// a large or binary body.
func truncateBody(b []byte) string {
	const keep = 160
	if len(b) <= keep {
		return string(b)
	}
	return string(b[:keep]) + "…"
}
