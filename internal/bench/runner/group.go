package runner

import (
	"context"

	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
)

// groupKey identifies a design: every job with the same key builds the
// same topology, routes, removal and ordering, so the grouped scheduler
// evaluates the design once and fans only the simulation stage out
// across the member cells. The seed participates only when the design
// itself is seed-dependent (seeded random traffic, seeded fault
// scenarios); otherwise the seeds axis varies just the injection
// process and the whole seed column shares one build.
type groupKey struct {
	benchmark string
	switches  int
	routing   string
	faults    int
	policy    string
	seeded    bool
	seed      int64
}

// designDependsOnSeed reports whether the job's design (not just its
// injection process) varies with the seed: rand: specs synthesize a
// seeded traffic graph, and faulted preset cells mask a seeded link
// selection.
func designDependsOnSeed(job Job) bool {
	if _, ok := parsePreset(job.Benchmark); ok {
		return job.Faults > 0
	}
	return randSpec.MatchString(job.Benchmark)
}

func keyOf(job Job) groupKey {
	k := groupKey{
		benchmark: job.Benchmark,
		switches:  job.SwitchCount,
		routing:   job.Routing,
		faults:    job.Faults,
		policy:    job.Policy,
	}
	if designDependsOnSeed(job) {
		k.seeded, k.seed = true, job.Seed
	}
	return k
}

// groupJobs partitions job indices into design groups, in first-appearance
// order. Seeds are the innermost Jobs axis, so on a full grid each group
// is a contiguous run of cells; shard-filtered job lists group the same
// way with fewer members. Indices marked in skip (cells already served
// from the result cache) join no group; a nil skip takes every cell.
func groupJobs(jobs []Job, skip []bool) [][]int {
	byKey := map[groupKey]int{}
	var groups [][]int
	for i, j := range jobs {
		if skip != nil && skip[i] {
			continue
		}
		k := keyOf(j)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// designBuildHook, when non-nil, observes every design construction the
// grouped scheduler performs (one call per group). The cache-effectiveness
// tests hook it to assert an N-seed grid builds each design exactly once.
var designBuildHook func(Job)

// runGroup evaluates one design group: the design is built once from the
// group's first member and the simulation stage runs as a lockstep batch
// across the members' derived seeds (times the measurement loads, when a
// load sweep is configured). Every failure mode mirrors runJob exactly —
// each member's Result must be byte-identical to an independent runJob of
// that cell, which the conformance tests pin differentially.
func runGroup(ctx context.Context, jobs []Job, members []int, results []Result, opts Options, loads []float64, laneParallel int) {
	job0 := jobs[members[0]]
	emit := func(mk func(Job) Result) {
		for _, i := range members {
			results[i] = mk(jobs[i])
		}
	}

	policy, err := ParsePolicy(job0.Policy)
	if err != nil {
		emit(func(j Job) Result { return Result{Job: j, Error: err.Error()} })
		return
	}
	evalOpts := EvalOptions{
		Selection:   policy,
		Policy:      opts.Policy,
		VCLimit:     opts.VCLimit,
		FullRebuild: opts.FullRebuild,
		MaxPaths:    opts.maxPaths,
	}

	if hook := designBuildHook; hook != nil {
		hook(job0)
	}

	var de *designEval
	var cores int
	failAll := func(err error) {
		emit(func(j Job) Result {
			r := Result{Job: j, Cores: cores}
			return r.fail(err)
		})
	}
	if preset, ok := parsePreset(job0.Benchmark); ok {
		grid, g, err := preset.build()
		if err != nil {
			emit(func(j Job) Result { return Result{Job: j, Error: err.Error()} })
			return
		}
		cores = g.NumCores()
		model, err := route.ParseTurnModel(job0.Routing)
		if err != nil {
			failAll(err)
			return
		}
		if job0.Faults > 0 {
			// Seeded per-cell fault scenario — the group key carries the
			// seed for faulted cells, so job0's seed is every member's.
			ids, err := regular.SelectFaults(grid, job0.Faults, job0.Seed)
			if err != nil {
				failAll(err)
				return
			}
			if err := grid.Topology.Fault(ids...); err != nil {
				failAll(err)
				return
			}
		}
		if model == route.DOR && job0.Faults == 0 {
			de, err = buildRegular(ctx, grid, g, evalOpts)
		} else {
			de, err = buildAdaptive(ctx, grid, g, model, evalOpts)
		}
		if err != nil {
			failAll(err)
			return
		}
	} else {
		g, err := resolveBenchmark(job0.Benchmark, job0.Seed)
		if err != nil {
			emit(func(j Job) Result { return Result{Job: j, Error: err.Error()} })
			return
		}
		cores = g.NumCores()
		if job0.SwitchCount > cores {
			emit(func(j Job) Result { return Result{Job: j, Cores: cores, Skipped: true} })
			return
		}
		de, err = buildSynth(ctx, g, job0.SwitchCount, evalOpts)
		if err != nil {
			failAll(err)
			return
		}
	}

	// The certification, like the removal, is design-level: the checker
	// runs once per group and only the agreement check (which consults
	// each member's simulation) is derived per cell — byte-identical to
	// an independent runJob of every member.
	var ce *certEval
	if opts.Certify {
		ce = de.certify()
	}

	base := Result{Cores: cores}
	base.Links = de.point.Links
	base.MaxRouteLen = de.point.MaxRouteLen
	base.InitialAcyclic = de.point.InitialAcyclic
	base.RemovalVCs = de.point.RemovalVCs
	base.OrderingVCs = de.point.OrderingVCs
	base.Breaks = de.point.Breaks
	base.Paths = de.point.Paths
	// The removal ran once for the whole group; every member reports its
	// wall-clock (timings are progress-only and never serialized).
	base.RemovalTime = de.point.RemovalTime

	if !opts.Simulate {
		emit(func(j Job) Result {
			r := base
			r.Job = j
			if ce != nil {
				r.Certify = ce.withSim(nil)
			}
			return r
		})
		return
	}

	// Derive the per-cell simulation seeds from the job seeds so the
	// seeds axis varies the injection process even on deterministic
	// benchmarks — the same derivation runJob uses.
	seeds := make([]int64, len(members))
	for k, i := range members {
		seeds[k] = opts.Sim.Seed + jobs[i].Seed + 1
	}
	sims, err := de.simEvalBatch(ctx, opts.Sim, seeds, loads, laneParallel)
	if err != nil {
		failAll(err)
		return
	}
	for k, i := range members {
		r := base
		r.Job = jobs[i]
		r.Sim = sims[k]
		if ce != nil {
			r.Certify = ce.withSim(sims[k])
		}
		results[i] = r
	}
}
