// The certified-checker verification stage: the second of the three
// independent legs every sweep cell can carry. Leg one is structural
// (the removal engine's own acyclicity claim), leg three is empirical
// (the wormhole simulator's witness workloads, Options.Simulate); this
// file wires leg two — the emitted design re-checked from first
// principles by internal/certify, which shares no code with the engine.
// A cell's three legs must agree; any disagreement is recorded on the
// result, and the CLI gate turns it into a non-zero exit.

package runner

import (
	"encoding/json"
	"fmt"

	"github.com/nocdr/nocdr/internal/certify"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// CertResult is the certified-checker leg of one cell: the independent
// checker's verdicts on the pre- and post-removal designs, the salt that
// produced them (the cache-poisoning guard), and the three-leg agreement
// verdict. Checker failures fold into Agree/Mismatch so one bad cell
// cannot sink a sweep.
type CertResult struct {
	// Salt is the checker build that issued these verdicts
	// (certify.Salt); cached cells whose stored salt differs are
	// re-certified, never reused.
	Salt string `json:"salt"`
	// PreAcyclic is the checker's verdict on the pre-removal design;
	// PreCycleLen is the counterexample witness length when cyclic.
	PreAcyclic  bool `json:"pre_acyclic"`
	PreCycleLen int  `json:"pre_cycle_len,omitempty"`
	// PostAcyclic is the checker's verdict on the post-removal design.
	PostAcyclic bool `json:"post_acyclic"`
	// PostSHA256 binds the post-removal verdict to the exact design
	// bytes the checker saw.
	PostSHA256 string `json:"post_sha256,omitempty"`
	// Agree is the three-leg agreement verdict: structural and certified
	// legs match, the post design certifies acyclic with a validated
	// witness, and — when the cell simulated — the empirical leg
	// concurs (certified-cyclic pre design deadlocks under its witness
	// workload, certified-acyclic post design does not).
	Agree    bool   `json:"agree"`
	Mismatch string `json:"mismatch,omitempty"`
}

// certEval is one design group's certification, computed once per
// design: the certificates depend only on the built design, while the
// final Agree verdict also consults each member cell's simulation.
type certEval struct {
	salt        string
	err         string
	preAcyclic  bool
	preCycleLen int
	postAcyclic bool
	postSHA     string
	// structural leg, for the agreement check.
	initialAcyclic bool
}

// certify runs the independent checker on the group's pre- and
// post-removal designs. Checker errors are folded into the eval — the
// cell records the disagreement instead of failing.
func (de *designEval) certify() *certEval {
	ce := &certEval{salt: certify.Salt, initialAcyclic: de.initialAcyclic}
	pre, err := checkDesign(de.preTop, de.preTab, de.preSet, "pre")
	if err != nil {
		ce.err = fmt.Sprintf("pre design: %v", err)
		return ce
	}
	ce.preAcyclic = pre.Acyclic
	ce.preCycleLen = len(pre.Cycle)
	post, err := checkDesign(de.postTop, de.postTab, de.postSet, "post")
	if err != nil {
		ce.err = fmt.Sprintf("post design: %v", err)
		return ce
	}
	ce.postAcyclic = post.Acyclic
	ce.postSHA = post.DesignSHA256
	return ce
}

// withSim derives the member-facing CertResult: the design-level
// verdicts plus the agreement check against this cell's simulation
// outcome (nil when the cell did not simulate).
func (ce *certEval) withSim(sim *SimResult) *CertResult {
	c := &CertResult{
		Salt:        ce.salt,
		PreAcyclic:  ce.preAcyclic,
		PreCycleLen: ce.preCycleLen,
		PostAcyclic: ce.postAcyclic,
		PostSHA256:  ce.postSHA,
	}
	switch {
	case ce.err != "":
		c.Mismatch = ce.err
	case ce.preAcyclic != ce.initialAcyclic:
		c.Mismatch = fmt.Sprintf("pre design: checker says acyclic=%v, removal says %v",
			ce.preAcyclic, ce.initialAcyclic)
	case !ce.postAcyclic:
		c.Mismatch = "post design: checker found a dependency cycle after removal"
	case sim != nil && sim.PreRan && !ce.preAcyclic && !sim.PreDeadlock:
		c.Mismatch = "pre design: certified cycle witness did not deadlock in simulation"
	case sim != nil && sim.PostDeadlock:
		c.Mismatch = "post design: simulation deadlocked on a certified-acyclic design"
	default:
		c.Agree = true
	}
	return c
}

// checkDesign renders the (topology, routes) pair as the design-bundle
// JSON the checker reads — exactly one of tab/set is non-nil — and
// certifies it with a validated witness.
func checkDesign(top *topology.Topology, tab *route.Table, set *route.RouteSet, mode string) (*certify.Certificate, error) {
	topRaw, err := json.Marshal(top)
	if err != nil {
		return nil, err
	}
	var routesRaw []byte
	if set != nil {
		routesRaw, err = json.Marshal(set)
	} else {
		routesRaw, err = json.Marshal(tab)
	}
	if err != nil {
		return nil, err
	}
	doc, err := json.Marshal(struct {
		Topology json.RawMessage `json:"topology"`
		Routes   json.RawMessage `json:"routes"`
	}{topRaw, routesRaw})
	if err != nil {
		return nil, err
	}
	cert, err := certify.Check(doc, mode)
	if err != nil {
		return nil, err
	}
	// The witness must survive its own independent validation before the
	// verdict is trusted.
	if err := certify.Validate(cert, doc); err != nil {
		return nil, err
	}
	return cert, nil
}
