package runner

import (
	"fmt"
	"time"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/traffic"
)

// EvalOptions configures one grid-point evaluation.
type EvalOptions struct {
	Selection   core.CycleSelection
	Policy      core.DirectionPolicy
	FullRebuild bool
}

// Point is the outcome of evaluating one (traffic graph, switch count)
// design: the synthesized design's shape, the removal algorithm's cost,
// and the resource-ordering baseline's cost on identical inputs. It is
// the unit both the sweep engine and the figure reproductions build on.
type Point struct {
	Links          int
	MaxRouteLen    int
	InitialAcyclic bool
	RemovalVCs     int
	OrderingVCs    int
	Breaks         int
	RemovalTime    time.Duration
}

// Evaluate synthesizes an application-specific topology for the graph at
// the given switch count, runs deadlock removal and the resource-ordering
// baseline, and reports both VC overheads.
func Evaluate(g *traffic.Graph, switchCount int, opts EvalOptions) (Point, error) {
	var p Point
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: switchCount})
	if err != nil {
		return p, fmt.Errorf("runner: synthesize %s @ %d: %w", g.Name, switchCount, err)
	}
	start := time.Now()
	rm, err := core.Remove(des.Topology, des.Routes, core.Options{
		Selection:   opts.Selection,
		Policy:      opts.Policy,
		FullRebuild: opts.FullRebuild,
	})
	if err != nil {
		return p, fmt.Errorf("runner: remove %s @ %d: %w", g.Name, switchCount, err)
	}
	p.RemovalTime = time.Since(start)
	ro, err := ordering.Apply(des.Topology, des.Routes, ordering.HopIndex)
	if err != nil {
		return p, fmt.Errorf("runner: ordering %s @ %d: %w", g.Name, switchCount, err)
	}
	p.Links = des.Topology.NumLinks()
	p.MaxRouteLen = des.Routes.MaxLen()
	p.InitialAcyclic = rm.InitialAcyclic
	p.RemovalVCs = rm.AddedVCs
	p.OrderingVCs = ro.AddedVCs
	p.Breaks = rm.Iterations
	return p, nil
}
