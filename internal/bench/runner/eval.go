package runner

import (
	"context"
	"fmt"
	"time"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// EvalOptions configures one grid-point evaluation.
type EvalOptions struct {
	Selection   core.CycleSelection
	Policy      core.DirectionPolicy
	VCLimit     int
	FullRebuild bool
	// Simulate runs the flit-level verification stage (see SimEval) on
	// the evaluated design, filling Point.Sim.
	Simulate bool
	// Sim parameterizes the simulations when Simulate is set.
	Sim SimParams
}

// Point is the outcome of evaluating one (traffic graph, switch count)
// design: the synthesized design's shape, the removal algorithm's cost,
// and the resource-ordering baseline's cost on identical inputs. It is
// the unit both the sweep engine and the figure reproductions build on.
type Point struct {
	Links          int
	MaxRouteLen    int
	InitialAcyclic bool
	RemovalVCs     int
	OrderingVCs    int
	Breaks         int
	RemovalTime    time.Duration
	// Sim holds the flit-level verification outcome (nil unless
	// EvalOptions.Simulate was set).
	Sim *SimResult
}

// Evaluate synthesizes an application-specific topology for the graph at
// the given switch count, runs deadlock removal and the resource-ordering
// baseline, and reports both VC overheads — plus, with opts.Simulate, the
// flit-level verification of the pre- and post-removal designs.
func Evaluate(g *traffic.Graph, switchCount int, opts EvalOptions) (Point, error) {
	return EvaluateContext(context.Background(), g, switchCount, opts)
}

// EvaluateContext is Evaluate with cooperative cancellation threaded
// through synthesis, removal and the simulation stage.
func EvaluateContext(ctx context.Context, g *traffic.Graph, switchCount int, opts EvalOptions) (Point, error) {
	var p Point
	des, err := synth.SynthesizeContext(ctx, g, synth.Options{SwitchCount: switchCount})
	if err != nil {
		return p, fmt.Errorf("runner: synthesize %s @ %d: %w", g.Name, switchCount, err)
	}
	return finishEval(ctx, g, des.Topology, des.Routes, opts, fmt.Sprintf("%s @ %d", g.Name, switchCount))
}

// EvaluateRegular evaluates a regular-topology preset: a mesh or torus
// with dimension-ordered routes, the configuration whose wrap-around
// dependencies are the textbook dateline deadlock. The removal algorithm
// and the ordering baseline run on the DOR routes directly — there is no
// synthesis step, so the preset carries its own switch count.
func EvaluateRegular(grid *regular.Grid, g *traffic.Graph, opts EvalOptions) (Point, error) {
	return EvaluateRegularContext(context.Background(), grid, g, opts)
}

// EvaluateRegularContext is EvaluateRegular with cooperative
// cancellation.
func EvaluateRegularContext(ctx context.Context, grid *regular.Grid, g *traffic.Graph, opts EvalOptions) (Point, error) {
	var p Point
	tab, err := regular.DORRoutes(grid, g)
	if err != nil {
		return p, fmt.Errorf("runner: DOR routes for %s: %w", grid.Topology.Name, err)
	}
	return finishEval(ctx, g, grid.Topology, tab, opts, grid.Topology.Name)
}

// finishEval runs removal, the ordering baseline, and the optional
// simulation stage on a fully routed design.
func finishEval(ctx context.Context, g *traffic.Graph, top *topology.Topology, tab *route.Table, opts EvalOptions, label string) (Point, error) {
	var p Point
	start := time.Now()
	rm, err := core.RemoveContext(ctx, top, tab, core.Options{
		Selection:   opts.Selection,
		Policy:      opts.Policy,
		VCLimit:     opts.VCLimit,
		FullRebuild: opts.FullRebuild,
	})
	if err != nil {
		return p, fmt.Errorf("runner: remove %s: %w", label, err)
	}
	p.RemovalTime = time.Since(start)
	ro, err := ordering.Apply(top, tab, ordering.HopIndex)
	if err != nil {
		return p, fmt.Errorf("runner: ordering %s: %w", label, err)
	}
	p.Links = top.NumLinks()
	p.MaxRouteLen = tab.MaxLen()
	p.InitialAcyclic = rm.InitialAcyclic
	p.RemovalVCs = rm.AddedVCs
	p.OrderingVCs = ro.AddedVCs
	p.Breaks = rm.Iterations
	if opts.Simulate {
		sim, err := SimEvalContext(ctx, g, top, tab, rm.InitialAcyclic, rm.Topology, rm.Routes, opts.Sim)
		if err != nil {
			return p, err
		}
		p.Sim = sim
	}
	return p, nil
}
