// Package runner is the concurrent sweep/experiment engine: it fans a
// (benchmark × switch-count × selection-policy × seed) job grid out across
// a worker pool, evaluates the deadlock-removal algorithm and the
// resource-ordering baseline on every point, and aggregates results into a
// deterministic, order-independent report. The same grid run serially or
// with any worker count produces byte-identical JSON — each job is
// self-contained and results are written to a pre-assigned slot, so
// scheduling order never leaks into the output.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/nocdr/nocdr/internal/certify"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Grid spans the experiment space. Zero-valued fields fall back to the
// paper's defaults (all six benchmarks, the Figure 10 family of switch
// counts, the paper's smallest-first selection, seed 0).
type Grid struct {
	// Benchmarks are benchmark specs. Synthesized specs (the switch-count
	// axis applies):
	//
	//	<name>                a paper benchmark from traffic.BenchmarkNames
	//	rand:<cores>x<fanout> seeded random k-out traffic
	//	transpose:<cores>     matrix-transpose permutation (square count)
	//	bitrev:<cores>        bit-reversal permutation (power of two)
	//	hotspot:<cores>x<h>   h shared hotspot targets
	//
	// Regular-topology presets carry their own topology and
	// dimension-ordered routes, so they ignore the switch-count axis and
	// run once per (policy, seed):
	//
	//	mesh:<cols>x<rows>:<pattern>
	//	torus:<cols>x<rows>:<pattern>
	//
	// with <pattern> one of transpose, bitrev, hotspot, uniform. The
	// torus presets are the textbook dateline stress: DOR routes cross
	// the wrap-around links, so the initial CDG is cyclic.
	Benchmarks []string `json:"benchmarks"`
	// SwitchCounts is the synthesis sweep axis (Figures 8 and 9).
	SwitchCounts []int `json:"switch_counts"`
	// Policies are cycle-selection policies: "smallest" or "first".
	Policies []string `json:"policies"`
	// Seeds instantiate random benchmark specs; named benchmarks are
	// deterministic, so for them every seed reproduces the same design.
	Seeds []int64 `json:"seeds"`
	// Routings is the routing-function axis for regular-topology presets:
	// "dor" (default), the turn models "west-first", "north-last",
	// "negative-first", "odd-even", or "min-adaptive". Synthesized
	// benchmarks always use load-aware shortest paths and do not cross
	// with this axis. Empty means dor only, and keeps reports in the
	// pre-routing JSON shape.
	Routings []string `json:"routings,omitempty"`
	// Faults masks this many links per regular-topology preset cell,
	// selected deterministically from the cell's seed such that the
	// surviving network stays connected; routes regenerate around the
	// faults. Synthesized benchmarks ignore it. Deterministic DOR cannot
	// route around faults, so a dor cell errors whenever a fault lands
	// on one of its XY paths — pair faults with an adaptive routing.
	Faults int `json:"faults,omitempty"`
	// MaxPaths caps candidate paths per flow for adaptive routings
	// (0 = route.MaxDefaultPaths).
	MaxPaths int `json:"max_paths,omitempty"`
	// Loads is the measurement load-sweep axis, values in (0, 1]. When
	// set (and the run simulates), every cell additionally measures the
	// post-removal design at each load, the per-cell points land in
	// SimResult.LoadSweep, and the report gains per-design
	// latency/throughput curves with a saturation estimate. It does not
	// change the cell's canonical measurement at Sim.Load, so reports
	// stay byte-identical when Loads is unset. The axis is normalized
	// sorted ascending and deduplicated.
	Loads []float64 `json:"loads,omitempty"`
}

// DefaultSwitchCounts is the default sweep axis: the Figure 10 design
// point bracketed by the shared x-positions of Figures 8 and 9.
var DefaultSwitchCounts = []int{8, 11, 14, 20}

func (g Grid) normalized() Grid {
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = traffic.BenchmarkNames()
	}
	if len(g.SwitchCounts) == 0 {
		g.SwitchCounts = DefaultSwitchCounts
	}
	if len(g.Policies) == 0 {
		g.Policies = []string{"smallest"}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{0}
	}
	if len(g.Loads) > 0 {
		ls := append([]float64(nil), g.Loads...)
		sort.Float64s(ls)
		dst := ls[:1]
		for _, l := range ls[1:] {
			if l != dst[len(dst)-1] {
				dst = append(dst, l)
			}
		}
		g.Loads = dst
	}
	return g
}

// Jobs enumerates the grid's cross product in deterministic order:
// benchmark-major, then switch count, routing, policy, seed.
// Regular-topology presets pin their own switch count, so they cross
// only with routings, policies and seeds; synthesized benchmarks do not
// cross with the routing axis (their routing is always shortest-path).
func (g Grid) Jobs() []Job {
	g = g.normalized()
	routings := g.Routings
	if len(routings) == 0 {
		routings = []string{""}
	}
	out := make([]Job, 0, len(g.Benchmarks)*len(g.SwitchCounts)*len(routings)*len(g.Policies)*len(g.Seeds))
	for _, b := range g.Benchmarks {
		counts := g.SwitchCounts
		rts := []string{""}
		faults := 0
		if p, ok := parsePreset(b); ok {
			counts = []int{p.cols * p.rows}
			rts = routings
			faults = g.Faults
		}
		for _, s := range counts {
			for _, rt := range rts {
				for _, p := range g.Policies {
					for _, seed := range g.Seeds {
						out = append(out, Job{Benchmark: b, SwitchCount: s, Routing: rt, Faults: faults, Policy: p, Seed: seed})
					}
				}
			}
		}
	}
	return out
}

// Validate resolves every benchmark spec and policy name, failing fast on
// typos before any work is scheduled.
func (g Grid) Validate() error {
	n := g.normalized()
	for _, b := range n.Benchmarks {
		if p, ok := parsePreset(b); ok {
			if _, _, err := p.build(); err != nil {
				return err
			}
			continue
		}
		if _, err := resolveBenchmark(b, 0); err != nil {
			return err
		}
	}
	for _, p := range n.Policies {
		if _, err := ParsePolicy(p); err != nil {
			return err
		}
	}
	for _, r := range n.Routings {
		if _, err := route.ParseTurnModel(r); err != nil {
			return err
		}
	}
	if n.Faults < 0 {
		return fmt.Errorf("runner: negative fault count %d", n.Faults)
	}
	if n.MaxPaths < 0 {
		return fmt.Errorf("runner: negative max-paths %d", n.MaxPaths)
	}
	for _, l := range n.Loads {
		// Positive-form check so NaN fails too.
		if !(l > 0 && l <= 1) {
			return fmt.Errorf("runner: sweep load %v out of range (0, 1]", l)
		}
	}
	if len(n.SwitchCounts) == 0 {
		return fmt.Errorf("runner: empty switch-count axis")
	}
	for _, s := range n.SwitchCounts {
		if s < 1 {
			return fmt.Errorf("runner: switch count %d out of range", s)
		}
	}
	return nil
}

// Job is one point of the grid.
type Job struct {
	Benchmark   string `json:"benchmark"`
	SwitchCount int    `json:"switch_count"`
	// Routing is the preset's routing function ("" = dor for presets,
	// shortest-path for synthesized benchmarks).
	Routing string `json:"routing,omitempty"`
	// Faults is the number of seeded link faults masked for this cell.
	Faults int    `json:"faults,omitempty"`
	Policy string `json:"policy"`
	Seed   int64  `json:"seed"`
}

// Result is one evaluated job. Wall-clock timings are carried for
// progress/summary output but excluded from JSON so reports are
// byte-identical across serial and parallel runs.
type Result struct {
	Job
	// Skipped means the switch count exceeds the benchmark's core count
	// (the sweep convention of Figures 8 and 9).
	Skipped bool `json:"skipped,omitempty"`
	// Canceled means the sweep's context was done before this job could
	// complete: either it was never scheduled, or its removal/simulation
	// returned through a cooperative cancellation check.
	Canceled bool `json:"canceled,omitempty"`
	// Error carries a per-job failure without aborting the sweep.
	Error string `json:"error,omitempty"`

	Cores          int  `json:"cores,omitempty"`
	Links          int  `json:"links,omitempty"`
	MaxRouteLen    int  `json:"max_route_len,omitempty"`
	InitialAcyclic bool `json:"initial_acyclic,omitempty"`
	RemovalVCs     int  `json:"removal_vcs"`
	OrderingVCs    int  `json:"ordering_vcs"`
	Breaks         int  `json:"breaks"`
	// Paths is the total candidate-path count of an adaptive cell's route
	// set (0 for single-path cells, where it adds no information).
	Paths int `json:"paths,omitempty"`

	// Sim is the flit-level verification outcome (only with
	// Options.Simulate).
	Sim *SimResult `json:"sim,omitempty"`

	// Certify is the independent-checker verification outcome (only
	// with Options.Certify): the certified leg's verdicts and the
	// three-leg agreement flag.
	Certify *CertResult `json:"certify,omitempty"`

	RemovalTime time.Duration `json:"-"`
}

// Report is a completed sweep: the normalized grid plus one result per
// job, in Grid.Jobs order regardless of scheduling. A canceled sweep
// still yields a structurally complete report — every job slot is
// present, with unfinished ones marked canceled.
type Report struct {
	Grid Grid `json:"grid"`
	// Canceled marks a partial report: the run's context was done before
	// every job completed.
	Canceled bool     `json:"canceled,omitempty"`
	Results  []Result `json:"results"`
	// Curves are the per-design load-sweep curves aggregated from the
	// results' LoadSweep points (only when Grid.Loads was set on a
	// simulated run). Shard reports omit them; MergeShards recomputes
	// them over the reassembled results, so serial, parallel and sharded
	// full reports agree byte for byte.
	Curves []DesignCurve `json:"curves,omitempty"`
}

// WriteJSON writes the report as indented JSON. The output is a pure
// function of the grid and the algorithm — timings and worker scheduling
// never appear in it.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Options configures a sweep run.
type Options struct {
	// Parallel is the worker count; values below 2 run serially.
	Parallel int
	// Policy is the break-direction rule applied to every cell's
	// removal (zero value is the paper's BestOfBoth). The grid's
	// Policies axis selects the *cycle-selection* rule per cell; this
	// field is the orthogonal direction rule.
	Policy core.DirectionPolicy
	// VCLimit caps the VCs each cell's removal may add (0 = unlimited);
	// cells that would exceed it fail with their error recorded.
	VCLimit int
	// FullRebuild routes every Remove through the rebuild-per-iteration
	// path (for baseline comparisons).
	FullRebuild bool
	// Simulate adds the flit-level verification stage to every job: a
	// negative-control simulation of the pre-removal design and a
	// measurement simulation of the post-removal design (see SimEval).
	Simulate bool
	// Sim parameterizes the simulations; the per-job seed is derived from
	// the job's seed on top of these.
	Sim SimParams
	// Certify adds the independent-checker verification stage to every
	// job: the pre- and post-removal designs are re-checked from first
	// principles by internal/certify and the three-leg agreement verdict
	// lands in Result.Certify.
	Certify bool
	// Progress, when non-nil, receives one line per completed job.
	Progress io.Writer
	// OnResult, when non-nil, receives every completed job's slot index,
	// the total job count, and the result — the sweep's event feed.
	// Calls are serialized under the same mutex as Progress, but may be
	// issued from any worker goroutine.
	OnResult func(index, total int, res Result)

	// CellCache, when non-nil, is consulted before evaluating any cell
	// and fed after: a hit whose stored Result matches the cell's identity
	// is used verbatim (it is byte-identical to a recomputation by the
	// cache-key contract), and every cleanly computed cell is stored back.
	// Errored and canceled cells are never cached.
	CellCache CellCache
	// NoCache skips cache lookups while still storing fresh results —
	// a forced recomputation that refreshes the cache rather than
	// bypassing it entirely.
	NoCache bool

	// ShardIndex/ShardCount restrict the run to the grid cells ShardOf
	// assigns to shard ShardIndex of ShardCount (the worker side of the
	// sharded sweep backend). ShardCount 0 runs the whole grid. A sharded
	// report's Results hold only the owned cells, still in Grid.Jobs
	// order; MergeShards reassembles the full report.
	ShardIndex int
	ShardCount int

	// maxPaths carries Grid.MaxPaths to the per-job evaluation.
	maxPaths int
}

// Run executes every job of the grid and returns the aggregated report.
// Job failures are recorded per-result; Run itself only fails on an
// invalid grid.
func Run(grid Grid, opts Options) (*Report, error) {
	return RunContext(context.Background(), grid, opts)
}

// RunContext is Run with cooperative cancellation. When ctx is done, no
// further jobs are scheduled, in-flight jobs return through the removal
// and simulation cancellation checks, and the report comes back valid
// but partial: Report.Canceled is set and every unfinished job slot is
// marked canceled. RunContext itself still returns a nil error in that
// case — the caller decides whether a partial sweep is a failure.
func RunContext(ctx context.Context, grid Grid, opts Options) (*Report, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if opts.ShardCount < 0 || (opts.ShardCount > 0 && (opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount)) {
		return nil, fmt.Errorf("%w: shard %d/%d out of range", nocerr.ErrInvalidInput, opts.ShardIndex, opts.ShardCount)
	}
	grid = grid.normalized()
	opts.maxPaths = grid.MaxPaths
	jobs := grid.Jobs()
	if opts.ShardCount > 0 {
		owned := make([]Job, 0, len(jobs))
		for _, j := range jobs {
			if ShardOf(j, opts.ShardCount) == opts.ShardIndex {
				owned = append(owned, j)
			}
		}
		jobs = owned
	}
	results := make([]Result, len(jobs))
	scheduled := make([]bool, len(jobs))

	// Result-cache pre-pass: cells whose content address already holds a
	// clean result are filled in place and never scheduled. The stored
	// bytes are the canonical Result encoding, so a cache-served report
	// is byte-identical to a cold one.
	var cached []bool
	if opts.CellCache != nil && !opts.NoCache {
		cached = make([]bool, len(jobs))
		for i, j := range jobs {
			data, ok := opts.CellCache.Get(CellKey(j, opts, grid.Loads))
			if !ok {
				continue
			}
			var r Result
			if err := json.Unmarshal(data, &r); err != nil || r.Job != j {
				continue
			}
			// Certified runs never reuse a certificate issued by a
			// different checker build: a hit whose stored salt does not
			// match the running checker (possible when the cache
			// persisted across a checker change without an engine-salt
			// bump) is treated as a miss and the cell re-certifies.
			if opts.Certify && (r.Certify == nil || r.Certify.Salt != certify.Salt) {
				continue
			}
			results[i] = r
			scheduled[i] = true
			cached[i] = true
		}
	}

	// Cells differing only in seed (and, with Grid.Loads, measurement
	// load) share their entire design build; the scheduler's unit of
	// work is therefore the design group, not the cell. Each group
	// builds its design exactly once and fans the per-cell simulations
	// out as one lockstep batch. Cache-served cells join no group.
	groups := groupJobs(jobs, cached)

	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	// Split the worker budget between group-level and lane-level
	// parallelism: with fewer groups than workers, the leftover cores go
	// to each group's batched lanes.
	laneParallel := 1
	if workers > 0 && opts.Parallel/workers > 1 {
		laneParallel = opts.Parallel / workers
	}

	var (
		wg       sync.WaitGroup
		progress sync.Mutex
		done     int
	)
	// Cache-served cells complete the moment the run starts: their
	// progress lines and OnResult events fire up front, before any
	// worker is spawned, so observers see every cell exactly once.
	if opts.Progress != nil || opts.OnResult != nil {
		for i := range jobs {
			if cached == nil || !cached[i] {
				continue
			}
			done++
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "sweep %d/%d: %s (cached)\n", done, len(jobs), results[i].oneLine())
			}
			if opts.OnResult != nil {
				opts.OnResult(i, len(jobs), results[i])
			}
		}
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range idx {
				members := groups[gi]
				runGroup(ctx, jobs, members, results, opts, grid.Loads, laneParallel)
				if opts.CellCache != nil {
					// Store every clean member under its content address;
					// failures and cancellations must re-run next time.
					for _, i := range members {
						if r := results[i]; r.Error == "" && !r.Canceled {
							if data, err := json.Marshal(r); err == nil {
								opts.CellCache.Put(CellKey(jobs[i], opts, grid.Loads), data)
							}
						}
					}
				}
				if opts.Progress != nil || opts.OnResult != nil {
					// Counter increment and callbacks share the mutex so
					// the n/total labels stay monotonic on the stream and
					// OnResult observers never run concurrently.
					progress.Lock()
					for _, i := range members {
						done++
						if opts.Progress != nil {
							fmt.Fprintf(opts.Progress, "sweep %d/%d: %s\n", done, len(jobs), results[i].oneLine())
						}
						if opts.OnResult != nil {
							opts.OnResult(i, len(jobs), results[i])
						}
					}
					progress.Unlock()
				}
			}
		}()
	}
feed:
	for gi := range groups {
		select {
		case idx <- gi:
			for _, i := range groups[gi] {
				scheduled[i] = true
			}
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	rep := &Report{Grid: grid, Results: results}
	if ctx.Err() != nil {
		rep.Canceled = true
		for i := range results {
			if !scheduled[i] {
				results[i] = Result{Job: jobs[i], Canceled: true}
			}
		}
	}
	if opts.ShardCount == 0 {
		rep.Curves = BuildCurves(rep)
	}
	return rep, nil
}

// runJob evaluates one grid point in isolation — the per-cell oracle the
// grouped scheduler is differentially pinned against (each cell of a
// grouped sweep must be byte-identical to an independent runJob). All
// failure modes are folded into the result so one bad point cannot sink a
// long sweep; a cancellation surfacing from the evaluation marks the
// result canceled rather than errored.
func runJob(ctx context.Context, job Job, opts Options) Result {
	res := Result{Job: job}
	policy, err := ParsePolicy(job.Policy)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	evalOpts := EvalOptions{
		Selection:   policy,
		Policy:      opts.Policy,
		VCLimit:     opts.VCLimit,
		FullRebuild: opts.FullRebuild,
		Simulate:    opts.Simulate,
		Sim:         opts.Sim,
		Certify:     opts.Certify,
		MaxPaths:    opts.maxPaths,
	}
	// Derive the simulation seed from the job seed so the seeds axis
	// varies the injection process even on deterministic benchmarks.
	evalOpts.Sim.Seed = opts.Sim.Seed + job.Seed + 1

	var p Point
	if preset, ok := parsePreset(job.Benchmark); ok {
		grid, g, err := preset.build()
		if err != nil {
			res.Error = err.Error()
			return res
		}
		res.Cores = g.NumCores()
		model, err := route.ParseTurnModel(job.Routing)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		if job.Faults > 0 {
			// Seeded per-cell fault scenario: mask links, keep the network
			// connected, and let the routing regenerate around them.
			ids, err := regular.SelectFaults(grid, job.Faults, job.Seed)
			if err != nil {
				res.Error = err.Error()
				return res
			}
			if err := grid.Topology.Fault(ids...); err != nil {
				res.Error = err.Error()
				return res
			}
		}
		if model == route.DOR && job.Faults == 0 {
			// The classic single-path pipeline, byte-identical to
			// pre-routing-axis sweeps.
			p, err = EvaluateRegularContext(ctx, grid, g, evalOpts)
		} else {
			p, err = EvaluateAdaptiveContext(ctx, grid, g, model, evalOpts)
		}
		if err != nil {
			return res.fail(err)
		}
	} else {
		g, err := resolveBenchmark(job.Benchmark, job.Seed)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		res.Cores = g.NumCores()
		if job.SwitchCount > g.NumCores() {
			res.Skipped = true
			return res
		}
		p, err = EvaluateContext(ctx, g, job.SwitchCount, evalOpts)
		if err != nil {
			return res.fail(err)
		}
	}
	res.Links = p.Links
	res.MaxRouteLen = p.MaxRouteLen
	res.InitialAcyclic = p.InitialAcyclic
	res.RemovalVCs = p.RemovalVCs
	res.OrderingVCs = p.OrderingVCs
	res.Breaks = p.Breaks
	res.Paths = p.Paths
	res.Sim = p.Sim
	res.Certify = p.Cert
	res.RemovalTime = p.RemovalTime
	return res
}

// fail folds an evaluation error into the result: cancellations mark the
// slot canceled (so partial reports stay deterministic — no context error
// strings leak into the JSON), everything else is a per-job error.
func (r Result) fail(err error) Result {
	if errors.Is(err, nocerr.ErrCanceled) {
		r.Canceled = true
		return r
	}
	r.Error = err.Error()
	return r
}

func (r Result) oneLine() string {
	id := fmt.Sprintf("%s@%d/%s/seed%d", r.Benchmark, r.SwitchCount, r.Policy, r.Seed)
	if r.Routing != "" {
		id += "/" + r.Routing
	}
	if r.Faults > 0 {
		id += fmt.Sprintf("/f%d", r.Faults)
	}
	switch {
	case r.Error != "":
		return id + " ERROR " + r.Error
	case r.Canceled:
		return id + " canceled"
	case r.Skipped:
		return id + " skipped (switches > cores)"
	default:
		line := fmt.Sprintf("%s removal=%d ordering=%d breaks=%d in %v",
			id, r.RemovalVCs, r.OrderingVCs, r.Breaks, r.RemovalTime.Round(time.Microsecond))
		if r.Sim != nil {
			line += " sim:" + r.Sim.summary()
		}
		if r.Certify != nil {
			if r.Certify.Agree {
				line += " cert:agree"
			} else {
				line += " cert:DISAGREE"
			}
		}
		return line
	}
}

// summary renders the verification verdict compactly for progress lines
// and tables: the negative control's outcome (did the witness workload
// deadlock the unprotected design?), the post-removal verdict, and the
// post-removal tail latency.
func (s *SimResult) summary() string {
	pre := "pre=acyclic"
	if s.PreRan {
		pre = "pre=survived"
		if s.PreDeadlock {
			pre = "pre=deadlock"
		}
	}
	post := "post=ok"
	if s.PostDeadlock {
		post = "post=DEADLOCK"
	}
	return fmt.Sprintf("%s %s p95=%d", pre, post, s.PostP95)
}

// ParsePolicy maps a policy spec to the core selection constant.
func ParsePolicy(s string) (core.CycleSelection, error) {
	switch s {
	case "", "smallest":
		return core.SmallestFirst, nil
	case "first":
		return core.FirstFound, nil
	}
	return 0, fmt.Errorf("runner: unknown selection policy %q (valid: smallest, first)", s)
}

var (
	randSpec    = regexp.MustCompile(`^rand:(\d+)x(\d+)$`)
	patternSpec = regexp.MustCompile(`^(transpose|bitrev):(\d+)$`)
	hotspotSpec = regexp.MustCompile(`^hotspot:(\d+)(?:x(\d+))?$`)
	presetSpec  = regexp.MustCompile(`^(mesh|torus):(\d+)(?:x(\d+))?(?::(transpose|bitrev|hotspot|uniform))?$`)
)

// resolveBenchmark turns a synthesized benchmark spec into a traffic
// graph: a paper benchmark by name, "rand:<cores>x<fanout>" seeded by the
// job's seed, or one of the deterministic adversarial patterns
// (transpose:<n>, bitrev:<n>, hotspot:<n>x<h>).
func resolveBenchmark(spec string, seed int64) (*traffic.Graph, error) {
	if m := randSpec.FindStringSubmatch(spec); m != nil {
		cores, _ := strconv.Atoi(m[1])
		fanout, _ := strconv.Atoi(m[2])
		if cores < 2 || fanout < 1 || fanout >= cores {
			return nil, fmt.Errorf("runner: rand spec %q out of range (need 2 ≤ cores, 1 ≤ fanout < cores)", spec)
		}
		name := fmt.Sprintf("%s#%d", spec, seed)
		return traffic.RandomKOut(name, cores, fanout, seed), nil
	}
	if m := patternSpec.FindStringSubmatch(spec); m != nil {
		n, _ := strconv.Atoi(m[2])
		if m[1] == "transpose" {
			return traffic.Transpose(n)
		}
		return traffic.BitReversal(n)
	}
	if m := hotspotSpec.FindStringSubmatch(spec); m != nil {
		n, _ := strconv.Atoi(m[1])
		h := max(1, n/8)
		if m[2] != "" {
			h, _ = strconv.Atoi(m[2])
		}
		return traffic.Hotspot(n, h)
	}
	return traffic.ByName(spec)
}

// preset is a parsed regular-topology benchmark spec.
type preset struct {
	wrap    bool // torus if true
	cols    int
	rows    int
	pattern string
}

// parsePreset recognizes mesh:/torus: specs. "mesh:<n>" is shorthand for
// the square uniform grid "mesh:<n>x<n>:uniform"; an omitted pattern
// defaults to uniform.
func parsePreset(spec string) (preset, bool) {
	m := presetSpec.FindStringSubmatch(spec)
	if m == nil {
		return preset{}, false
	}
	cols, _ := strconv.Atoi(m[2])
	rows := cols
	if m[3] != "" {
		rows, _ = strconv.Atoi(m[3])
	}
	pattern := m[4]
	if pattern == "" {
		pattern = "uniform"
	}
	return preset{wrap: m[1] == "torus", cols: cols, rows: rows, pattern: pattern}, true
}

// build materializes the preset's grid topology and traffic pattern.
func (p preset) build() (*regular.Grid, *traffic.Graph, error) {
	var grid *regular.Grid
	var err error
	if p.wrap {
		grid, err = regular.Torus(p.cols, p.rows)
	} else {
		grid, err = regular.Mesh(p.cols, p.rows)
	}
	if err != nil {
		return nil, nil, err
	}
	n := p.cols * p.rows
	var g *traffic.Graph
	if p.pattern == "uniform" {
		g, err = regular.UniformTraffic(n, n/2, 100)
	} else {
		// The non-uniform patterns share their construction (and the
		// hotspot default fan-in) with the synthesized specs.
		if p.pattern == "transpose" && p.cols != p.rows {
			return nil, nil, fmt.Errorf("runner: transpose preset needs a square grid, got %dx%d", p.cols, p.rows)
		}
		g, err = resolveBenchmark(fmt.Sprintf("%s:%d", p.pattern, n), 0)
	}
	if err != nil {
		return nil, nil, err
	}
	return grid, g, nil
}
