package runner

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/nocdr/nocdr/internal/traffic"
)

// TestParallelMatchesSerialJSON is the determinism-under-concurrency
// check of the sweep engine: the full six-benchmark grid run serially and
// with a pool of workers must serialize to byte-identical JSON. Run under
// -race (as CI does) this also shakes out data races in the fan-out.
func TestParallelMatchesSerialJSON(t *testing.T) {
	grid := Grid{
		Benchmarks:   traffic.BenchmarkNames(),
		SwitchCounts: []int{8, 11, 14, 20},
		Policies:     []string{"smallest", "first"},
	}
	serial, err := Run(grid, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(grid, Options{Parallel: 2 * runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serial and parallel sweeps differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, r := range serial.Results {
		if r.Error != "" {
			t.Errorf("job %s@%d failed: %s", r.Benchmark, r.SwitchCount, r.Error)
		}
	}
}

// TestRunRepeatedRunsIdentical pins run-to-run determinism with the same
// worker count — the property the experiment layer inherits from the
// deterministic removal algorithm.
func TestRunRepeatedRunsIdentical(t *testing.T) {
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8, 14}}
	var first bytes.Buffer
	for i := 0; i < 3; i++ {
		rep, err := Run(grid, Options{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf
			continue
		}
		if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}

// TestFullRebuildMatchesIncrementalSweep runs the same grid through both
// Remove paths: the reported VC counts and break counts must agree.
func TestFullRebuildMatchesIncrementalSweep(t *testing.T) {
	grid := Grid{
		Benchmarks:   traffic.BenchmarkNames(),
		SwitchCounts: []int{10, 14},
	}
	inc, err := Run(grid, Options{Parallel: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(grid, Options{Parallel: runtime.NumCPU(), FullRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc.Results {
		a, b := inc.Results[i], full.Results[i]
		if a.RemovalVCs != b.RemovalVCs || a.Breaks != b.Breaks || a.OrderingVCs != b.OrderingVCs {
			t.Errorf("%s@%d: incremental removal=%d/breaks=%d, full rebuild removal=%d/breaks=%d",
				a.Benchmark, a.SwitchCount, a.RemovalVCs, a.Breaks, b.RemovalVCs, b.Breaks)
		}
	}
}

func TestGridJobsOrderAndDefaults(t *testing.T) {
	jobs := Grid{}.Jobs()
	want := len(traffic.BenchmarkNames()) * len(DefaultSwitchCounts)
	if len(jobs) != want {
		t.Fatalf("default grid has %d jobs, want %d", len(jobs), want)
	}
	if jobs[0].Benchmark != "D26_media" || jobs[0].SwitchCount != DefaultSwitchCounts[0] {
		t.Errorf("unexpected first job %+v", jobs[0])
	}
	g := Grid{Benchmarks: []string{"a", "b"}, SwitchCounts: []int{1, 2}, Policies: []string{"p"}, Seeds: []int64{0, 1}}
	jobs = g.Jobs()
	if len(jobs) != 8 {
		t.Fatalf("cross product has %d jobs, want 8", len(jobs))
	}
	// Benchmark-major, then switch count, then seed.
	if jobs[1].Seed != 1 || jobs[2].SwitchCount != 2 || jobs[4].Benchmark != "b" {
		t.Errorf("unexpected job order: %+v", jobs[:5])
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{Benchmarks: []string{"nope"}}).Validate(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := (Grid{Policies: []string{"loudest"}}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (Grid{SwitchCounts: []int{0}}).Validate(); err == nil {
		t.Error("zero switch count accepted")
	}
	if err := (Grid{Benchmarks: []string{"rand:8x3"}, SwitchCounts: []int{4}}).Validate(); err != nil {
		t.Errorf("rand spec rejected: %v", err)
	}
	if err := (Grid{Benchmarks: []string{"rand:2x5"}}).Validate(); err == nil {
		t.Error("out-of-range rand spec accepted")
	}
}

// TestRandomSpecSweep exercises the scenario axis beyond the paper's six
// benchmarks: random k-out graphs instantiated per seed.
func TestRandomSpecSweep(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"rand:24x4"},
		SwitchCounts: []int{8, 12},
		Seeds:        []int64{1, 2, 3},
	}
	rep, err := Run(grid, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	distinct := false
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("job %+v failed: %s", r.Job, r.Error)
		}
		if r.RemovalVCs != rep.Results[0].RemovalVCs {
			distinct = true
		}
	}
	_ = distinct // seeds may coincide in cost; the point is they all ran
}

// TestSimulatedSweepVerifiesRemoval is the verification sweep in miniature:
// flit-level simulation on paper benchmarks plus a torus preset whose DOR
// routes are deadlock-prone. Post-removal deadlocks must never occur; the
// torus negative control must actually deadlock.
func TestSimulatedSweepVerifiesRemoval(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"D26_media", "D36_8", "torus:4x4:uniform"},
		SwitchCounts: []int{8},
	}
	rep, err := Run(grid, Options{Parallel: runtime.NumCPU(), Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	preDeadlocks := 0
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("job %+v failed: %s", r.Job, r.Error)
		}
		if r.Skipped {
			continue
		}
		if r.Sim == nil {
			t.Fatalf("job %+v: Simulate set but no sim result", r.Job)
		}
		if r.Sim.PostDeadlock {
			t.Errorf("job %+v: deadlock AFTER removal — the paper's guarantee is violated", r.Job)
		}
		if r.InitialAcyclic && r.Sim.PreRan {
			t.Errorf("job %+v: negative control ran on an acyclic design", r.Job)
		}
		if !r.InitialAcyclic && !r.Sim.PreRan {
			t.Errorf("job %+v: cyclic design skipped its negative control", r.Job)
		}
		if r.Sim.PreRan && !r.Sim.PreDeadlock {
			t.Errorf("job %+v: witness workload did not deadlock the cyclic design", r.Job)
		}
		if r.Sim.PreRan && r.Sim.WitnessFlows == 0 {
			t.Errorf("job %+v: witness ran with no saturated flows", r.Job)
		}
		if r.Sim.PreDeadlock {
			preDeadlocks++
		}
		if r.Sim.PostDelivered == 0 {
			t.Errorf("job %+v: post-removal simulation delivered nothing", r.Job)
		}
	}
	if preDeadlocks == 0 {
		t.Error("no negative-control deadlock in the whole sweep; the verification has no teeth")
	}
	// The torus preset pins its own switch count (cols*rows), once per
	// policy×seed.
	last := rep.Results[len(rep.Results)-1]
	if last.Benchmark != "torus:4x4:uniform" || last.SwitchCount != 16 {
		t.Errorf("torus preset job malformed: %+v", last.Job)
	}
	if last.InitialAcyclic {
		t.Error("torus DOR routes reported acyclic; the dateline hazard is gone?")
	}
}

// TestWitnessSaturatesRegardlessOfLoad pins that a sub-saturation
// -sim-load does not de-fang the negative control: the witness runs
// always drive the cycle-inducing flows at load 1.
func TestWitnessSaturatesRegardlessOfLoad(t *testing.T) {
	grid := Grid{Benchmarks: []string{"torus:4x4:uniform"}}
	rep, err := Run(grid, Options{Simulate: true, Sim: SimParams{Load: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	if !r.Sim.PreRan || !r.Sim.PreDeadlock {
		t.Errorf("witness at -sim-load 0.2 did not deadlock the cyclic torus: %+v", r.Sim)
	}
	if r.Sim.PostDeadlock {
		t.Error("post-removal deadlock")
	}
}

// TestSimulatedSweepDeterministic pins byte-identical JSON for simulated
// sweeps across worker counts, extending the engine's core determinism
// guarantee to the new stage.
func TestSimulatedSweepDeterministic(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"D26_media", "mesh:3x3:hotspot"},
		SwitchCounts: []int{8},
		Seeds:        []int64{0, 1},
	}
	opts := Options{Simulate: true, Sim: SimParams{Cycles: 5000}}
	optsSerial, optsParallel := opts, opts
	optsSerial.Parallel = 1
	optsParallel.Parallel = 2 * runtime.NumCPU()
	serial, err := Run(grid, optsSerial)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(grid, optsParallel)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serial and parallel simulated sweeps differ:\n%s\n%s", a.String(), b.String())
	}
}

// TestPatternSpecs resolves the adversarial pattern grammar.
func TestPatternSpecs(t *testing.T) {
	for spec, cores := range map[string]int{
		"transpose:16": 16,
		"bitrev:32":    32,
		"hotspot:24x3": 24,
		"hotspot:24":   24,
	} {
		g, err := resolveBenchmark(spec, 0)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if g.NumCores() != cores {
			t.Errorf("%s: %d cores, want %d", spec, g.NumCores(), cores)
		}
	}
	for _, bad := range []string{"transpose:15", "transpose:16x4", "bitrev:12", "bitrev:8x2", "hotspot:2x2", "mesh:1x1:uniform", "torus:4x4:nope"} {
		if err := (Grid{Benchmarks: []string{bad}, SwitchCounts: []int{4}}).Validate(); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if err := (Grid{Benchmarks: []string{"mesh:4x4:transpose", "torus:8x4:bitrev"}, SwitchCounts: []int{4}}).Validate(); err != nil {
		t.Errorf("valid presets rejected: %v", err)
	}
}

// TestPresetJobsPinSwitchCount checks that mesh/torus presets ignore the
// switch-count axis.
func TestPresetJobsPinSwitchCount(t *testing.T) {
	g := Grid{
		Benchmarks:   []string{"D26_media", "torus:4x4:uniform"},
		SwitchCounts: []int{8, 14},
		Seeds:        []int64{0, 1},
	}
	jobs := g.Jobs()
	// D26: 2 switch counts × 2 seeds; torus: 1 pinned count × 2 seeds.
	if len(jobs) != 6 {
		t.Fatalf("got %d jobs, want 6", len(jobs))
	}
	for _, j := range jobs[4:] {
		if j.SwitchCount != 16 {
			t.Errorf("preset job has switch count %d, want 16", j.SwitchCount)
		}
	}
}

// TestSkippedAndProgress covers the switches-exceed-cores convention and
// the progress stream.
func TestSkippedAndProgress(t *testing.T) {
	var progress strings.Builder
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{14, 99}}
	rep, err := Run(grid, Options{Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[1].Skipped {
		t.Error("99-switch job on a 26-core benchmark not skipped")
	}
	if got := strings.Count(progress.String(), "\n"); got != 2 {
		t.Errorf("progress stream has %d lines, want 2:\n%s", got, progress.String())
	}
}

// TestRunContextMidSweepCancel cancels the sweep from its own event feed
// after the first completed cell: the run must drain promptly and return
// a valid partial report — canceled flag set, completed cells intact,
// unscheduled cells marked canceled with their job identity preserved.
func TestRunContextMidSweepCancel(t *testing.T) {
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{5, 6, 7, 8, 9, 10, 11, 12}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	rep, err := RunContext(ctx, grid, Options{
		Parallel: 1,
		OnResult: func(i, total int, res Result) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("report not marked canceled")
	}
	var done, canceled int
	for i, r := range rep.Results {
		if r.Benchmark != "D26_media" {
			t.Fatalf("slot %d lost its job identity: %q", i, r.Benchmark)
		}
		if r.Canceled {
			canceled++
		} else {
			done++
		}
	}
	if done == 0 || canceled == 0 {
		t.Fatalf("expected a mix of completed and canceled cells, got done=%d canceled=%d", done, canceled)
	}
}

// TestRunContextCompleteRunNotCanceled pins that an uninterrupted run
// never carries cancellation markers (so serial/parallel byte-identical
// JSON is unaffected by the context plumbing).
func TestRunContextCompleteRunNotCanceled(t *testing.T) {
	rep, err := RunContext(context.Background(), Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canceled {
		t.Fatal("complete run marked canceled")
	}
	for _, r := range rep.Results {
		if r.Canceled {
			t.Fatal("complete run has canceled cells")
		}
	}
}

// TestAdaptiveFaultedSweepVerifies drives the routing and fault axes end
// to end: turn-model and fully-adaptive cells on a faulted mesh preset,
// with the flit-level verification stage. The paper's claim under test:
// whatever route set the scenario produces, removal leaves a design with
// zero simulated deadlocks.
func TestAdaptiveFaultedSweepVerifies(t *testing.T) {
	grid := Grid{
		Benchmarks: []string{"D26_media", "mesh:4"},
		Routings:   []string{"odd-even", "min-adaptive"},
		Faults:     2,
		MaxPaths:   4,
		Seeds:      []int64{0, 1},
	}
	jobs := grid.Jobs()
	// D26 (synthesized: no routing axis): switch counts × 2 seeds; the
	// mesh preset crosses with both routings × 2 seeds.
	for _, j := range jobs {
		if j.Benchmark == "D26_media" && (j.Routing != "" || j.Faults != 0) {
			t.Fatalf("synthesized benchmark crossed with the routing axis: %+v", j)
		}
		if j.Benchmark == "mesh:4" && (j.Routing == "" || j.Faults != 2) {
			t.Fatalf("preset job missing routing/faults: %+v", j)
		}
	}

	rep, err := Run(grid, Options{Parallel: runtime.NumCPU(), Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := 0
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("job %+v failed: %s", r.Job, r.Error)
		}
		if r.Skipped || r.Routing == "" {
			continue
		}
		adaptive++
		if r.Paths == 0 {
			t.Errorf("job %+v: adaptive cell reports no candidate paths", r.Job)
		}
		if r.Sim == nil {
			t.Fatalf("job %+v: Simulate set but no sim result", r.Job)
		}
		if r.Sim.PostDeadlock {
			t.Errorf("job %+v: deadlock AFTER removal on an adaptive faulted cell", r.Job)
		}
		if r.Sim.PostDelivered == 0 {
			t.Errorf("job %+v: post-removal simulation delivered nothing", r.Job)
		}
		if !r.InitialAcyclic && !r.Sim.PreRan {
			t.Errorf("job %+v: cyclic union CDG skipped its negative control", r.Job)
		}
		if r.Routing == "odd-even" && r.Faults == 0 {
			t.Errorf("job %+v: fault axis lost", r.Job)
		}
	}
	if adaptive != 4 {
		t.Fatalf("%d adaptive cells ran, want 4", adaptive)
	}

	// The whole report must survive a JSON round trip with the new axes
	// intact.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"routing": "odd-even"`) &&
		!strings.Contains(buf.String(), `"routing":"odd-even"`) {
		t.Error("routing axis missing from the JSON report")
	}
}

// TestGridValidateRoutingAxis pins validation of the new grid fields.
func TestGridValidateRoutingAxis(t *testing.T) {
	if err := (Grid{Benchmarks: []string{"mesh:4"}, Routings: []string{"zig-zag"}}).Validate(); err == nil {
		t.Error("unknown routing accepted")
	}
	if err := (Grid{Benchmarks: []string{"mesh:4"}, Faults: -1}).Validate(); err == nil {
		t.Error("negative fault count accepted")
	}
	if err := (Grid{Benchmarks: []string{"mesh:4"}, MaxPaths: -2}).Validate(); err == nil {
		t.Error("negative max-paths accepted")
	}
	if err := (Grid{Benchmarks: []string{"mesh:4"}, Routings: []string{"west-first", "min-adaptive"}, Faults: 2}).Validate(); err != nil {
		t.Errorf("valid adaptive grid rejected: %v", err)
	}
}
