package runner

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"github.com/nocdr/nocdr/internal/traffic"
)

// TestParallelMatchesSerialJSON is the determinism-under-concurrency
// check of the sweep engine: the full six-benchmark grid run serially and
// with a pool of workers must serialize to byte-identical JSON. Run under
// -race (as CI does) this also shakes out data races in the fan-out.
func TestParallelMatchesSerialJSON(t *testing.T) {
	grid := Grid{
		Benchmarks:   traffic.BenchmarkNames(),
		SwitchCounts: []int{8, 11, 14, 20},
		Policies:     []string{"smallest", "first"},
	}
	serial, err := Run(grid, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(grid, Options{Parallel: 2 * runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serial and parallel sweeps differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, r := range serial.Results {
		if r.Error != "" {
			t.Errorf("job %s@%d failed: %s", r.Benchmark, r.SwitchCount, r.Error)
		}
	}
}

// TestRunRepeatedRunsIdentical pins run-to-run determinism with the same
// worker count — the property the experiment layer inherits from the
// deterministic removal algorithm.
func TestRunRepeatedRunsIdentical(t *testing.T) {
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8, 14}}
	var first bytes.Buffer
	for i := 0; i < 3; i++ {
		rep, err := Run(grid, Options{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf
			continue
		}
		if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}

// TestFullRebuildMatchesIncrementalSweep runs the same grid through both
// Remove paths: the reported VC counts and break counts must agree.
func TestFullRebuildMatchesIncrementalSweep(t *testing.T) {
	grid := Grid{
		Benchmarks:   traffic.BenchmarkNames(),
		SwitchCounts: []int{10, 14},
	}
	inc, err := Run(grid, Options{Parallel: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(grid, Options{Parallel: runtime.NumCPU(), FullRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc.Results {
		a, b := inc.Results[i], full.Results[i]
		if a.RemovalVCs != b.RemovalVCs || a.Breaks != b.Breaks || a.OrderingVCs != b.OrderingVCs {
			t.Errorf("%s@%d: incremental removal=%d/breaks=%d, full rebuild removal=%d/breaks=%d",
				a.Benchmark, a.SwitchCount, a.RemovalVCs, a.Breaks, b.RemovalVCs, b.Breaks)
		}
	}
}

func TestGridJobsOrderAndDefaults(t *testing.T) {
	jobs := Grid{}.Jobs()
	want := len(traffic.BenchmarkNames()) * len(DefaultSwitchCounts)
	if len(jobs) != want {
		t.Fatalf("default grid has %d jobs, want %d", len(jobs), want)
	}
	if jobs[0].Benchmark != "D26_media" || jobs[0].SwitchCount != DefaultSwitchCounts[0] {
		t.Errorf("unexpected first job %+v", jobs[0])
	}
	g := Grid{Benchmarks: []string{"a", "b"}, SwitchCounts: []int{1, 2}, Policies: []string{"p"}, Seeds: []int64{0, 1}}
	jobs = g.Jobs()
	if len(jobs) != 8 {
		t.Fatalf("cross product has %d jobs, want 8", len(jobs))
	}
	// Benchmark-major, then switch count, then seed.
	if jobs[1].Seed != 1 || jobs[2].SwitchCount != 2 || jobs[4].Benchmark != "b" {
		t.Errorf("unexpected job order: %+v", jobs[:5])
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{Benchmarks: []string{"nope"}}).Validate(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := (Grid{Policies: []string{"loudest"}}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (Grid{SwitchCounts: []int{0}}).Validate(); err == nil {
		t.Error("zero switch count accepted")
	}
	if err := (Grid{Benchmarks: []string{"rand:8x3"}, SwitchCounts: []int{4}}).Validate(); err != nil {
		t.Errorf("rand spec rejected: %v", err)
	}
	if err := (Grid{Benchmarks: []string{"rand:2x5"}}).Validate(); err == nil {
		t.Error("out-of-range rand spec accepted")
	}
}

// TestRandomSpecSweep exercises the scenario axis beyond the paper's six
// benchmarks: random k-out graphs instantiated per seed.
func TestRandomSpecSweep(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"rand:24x4"},
		SwitchCounts: []int{8, 12},
		Seeds:        []int64{1, 2, 3},
	}
	rep, err := Run(grid, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	distinct := false
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("job %+v failed: %s", r.Job, r.Error)
		}
		if r.RemovalVCs != rep.Results[0].RemovalVCs {
			distinct = true
		}
	}
	_ = distinct // seeds may coincide in cost; the point is they all ran
}

// TestSkippedAndProgress covers the switches-exceed-cores convention and
// the progress stream.
func TestSkippedAndProgress(t *testing.T) {
	var progress strings.Builder
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{14, 99}}
	rep, err := Run(grid, Options{Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[1].Skipped {
		t.Error("99-switch job on a 26-core benchmark not skipped")
	}
	if got := strings.Count(progress.String(), "\n"); got != 2 {
		t.Errorf("progress stream has %d lines, want 2:\n%s", got, progress.String())
	}
}
