package runner_test

// Conformance and chaos suite of the sharded sweep backend: real serve
// workers behind httptest listeners, driven by the Sharded dispatcher.
// The invariant under test everywhere: whatever the worker count,
// completion order, or failure pattern, the merged report is
// byte-identical to the single-process run — or, under cancellation, a
// valid partial report marked canceled.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/serve"
)

// startWorkers brings up n serve workers, optionally wrapping each
// handler, and tears them down with the test.
func startWorkers(t testing.TB, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Options{Workers: 2, SweepParallel: 2})
		var h http.Handler = srv.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(func() {
			srv.Cancel()
			ts.Close()
			srv.Close()
		})
		urls[i] = ts.URL
	}
	return urls
}

// jitter delays every request by a pseudo-random few milliseconds so
// shard completion order is shuffled across runs and workers.
func jitter(seed int64) func(int, http.Handler) http.Handler {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			d := time.Duration(rng.Intn(4)) * time.Millisecond
			mu.Unlock()
			time.Sleep(d)
			h.ServeHTTP(w, r)
		})
	}
}

// conformanceGrid is the scaled-down deep-sweep surface: mesh and torus
// presets, three routing functions, seeded link faults, two seeds.
func conformanceGrid() runner.Grid {
	return runner.Grid{
		Benchmarks: []string{"mesh:4", "torus:4x4:transpose", "mesh:3x3:hotspot"},
		Routings:   []string{"west-first", "odd-even", "min-adaptive"},
		Faults:     1,
		Seeds:      []int64{0, 1},
	}
}

func reportBytes(t testing.TB, rep *runner.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedMatchesSerial is the conformance suite's centerpiece: the
// deep-sweep-shaped grid, sharded over 1..4 real HTTP workers with
// jittered completion order, must serialize byte-identically to the
// serial in-process run.
func TestShardedMatchesSerial(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)
	for _, r := range serial.Results {
		if r.Error != "" {
			t.Fatalf("serial cell %q failed: %s", r.Job.Key(), r.Error)
		}
	}
	for workers := 1; workers <= 4; workers++ {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			urls := startWorkers(t, workers, jitter(int64(workers)))
			sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
			rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := reportBytes(t, rep); !bytes.Equal(want, got) {
				t.Fatalf("sharded report over %d workers differs from serial:\nserial:\n%s\nsharded:\n%s",
					workers, want, got)
			}
		})
	}
}

// TestShardedSimulatedMatchesSerial extends conformance to the
// flit-level verification stage: Simulate plus SimParams must forward to
// the workers intact, down to the derived per-cell simulation seeds.
func TestShardedSimulatedMatchesSerial(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"torus:4x4:uniform"}, Seeds: []int64{0, 1}}
	opts := runner.Options{Simulate: true, Sim: runner.SimParams{Cycles: 4000, Seed: 5}}
	serial, err := runner.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)
	if !bytes.Contains(want, []byte(`"pre_deadlock": true`)) {
		t.Fatal("serial negative control did not deadlock; the conformance check has no teeth")
	}
	urls := startWorkers(t, 2, nil)
	sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
	rep, err := sh.RunContext(context.Background(), grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("sharded simulated report differs from serial:\nserial:\n%s\nsharded:\n%s", want, got)
	}
}

// TestShardedOptionsForwarded pins that the removal configuration
// (policy, full rebuild) reaches the workers: a forward-only full-rebuild
// sharded run must match the identically configured local run, not the
// default-policy one.
func TestShardedOptionsForwarded(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"torus:4x4:uniform"}, Seeds: []int64{0}}
	opts := runner.Options{Policy: core.ForwardOnly, FullRebuild: true}
	serial, err := runner.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	urls := startWorkers(t, 2, nil)
	sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
	rep, err := sh.RunContext(context.Background(), grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, serial), reportBytes(t, rep)) {
		t.Fatal("sharded run with forwarded options differs from the identically configured local run")
	}
}

// TestShardedWorkerDeathRequeues kills one of three workers mid-grid —
// the server stops answering between polls — and requires the surviving
// workers to absorb its shards with the final report still
// byte-identical to serial.
func TestShardedWorkerDeathRequeues(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	// Worker 0 serves its first sweep submission and first status poll,
	// then aborts every further connection.
	var requests atomic.Int32
	wrap := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/jobs/") && requests.Add(1) > 1 {
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	}
	urls := startWorkers(t, 3, wrap)
	var retries atomic.Int32
	sh := &runner.Sharded{
		Workers:      urls,
		PollInterval: 5 * time.Millisecond,
		OnRetry:      func(shard int, worker string, err error) { retries.Add(1) },
	}
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if retries.Load() == 0 {
		t.Fatal("worker death produced no requeue; the chaos did not bite")
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("report after worker death differs from serial:\nserial:\n%s\nsharded:\n%s", want, got)
	}
}

// TestShardedSurvivesTransientPollFailure pins that one dropped status
// poll does not retire a worker: with a single worker whose connection
// hiccups exactly once mid-poll, the run must still complete — the job
// keeps running server-side and the re-poll finds it.
func TestShardedSurvivesTransientPollFailure(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8, 14}}
	serial, err := runner.Run(grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dropped atomic.Bool
	wrap := func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/jobs/") && dropped.CompareAndSwap(false, true) {
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	}
	urls := startWorkers(t, 1, wrap)
	sh := &runner.Sharded{Workers: urls, PollInterval: 2 * time.Millisecond}
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatalf("one dropped poll killed the run: %v", err)
	}
	if !dropped.Load() {
		t.Fatal("the chaos never fired")
	}
	if !bytes.Equal(reportBytes(t, serial), reportBytes(t, rep)) {
		t.Fatal("report after a transient poll failure differs from serial")
	}
}

// TestShardedCancelMidSweep cancels the run context after the first
// shard lands: the dispatcher must drain and return a valid partial
// report — canceled flag set, completed cells intact, missing cells
// marked canceled with their identity preserved.
func TestShardedCancelMidSweep(t *testing.T) {
	grid := conformanceGrid()
	urls := startWorkers(t, 2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
	rep, err := sh.RunContext(ctx, grid, runner.Options{
		OnResult: func(i, total int, res runner.Result) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("partial report not marked canceled")
	}
	data := reportBytes(t, rep)
	if !bytes.Contains(data, []byte(`"canceled": true`)) {
		t.Fatal(`partial report JSON missing "canceled": true`)
	}
	var done, canceled int
	for i, r := range rep.Results {
		if r.Benchmark == "" {
			t.Fatalf("slot %d lost its job identity", i)
		}
		if r.Canceled {
			canceled++
		} else {
			done++
		}
	}
	if done == 0 || canceled == 0 {
		t.Fatalf("expected a mix of completed and canceled cells, got done=%d canceled=%d", done, canceled)
	}
}

// TestShardedCorruptWorker pins the malformed-response contract: a
// worker answering garbage (at submit or at poll) is retried, then the
// run fails with a typed nocerr error — never a panic, never a mangled
// report.
func TestShardedCorruptWorker(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8}}
	cases := map[string]http.HandlerFunc{
		"corrupt-submit": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id": "job-1"`) // truncated JSON
		},
		"corrupt-poll": func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				w.WriteHeader(http.StatusAccepted)
				fmt.Fprint(w, `{"id": "job-1"}`)
				return
			}
			fmt.Fprint(w, `{"state": "done", "result": {"results": [`) // truncated
		},
	}
	for name, handler := range cases {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(handler)
			defer ts.Close()
			sh := &runner.Sharded{Workers: []string{ts.URL}, PollInterval: time.Millisecond}
			_, err := sh.RunContext(context.Background(), grid, runner.Options{})
			if err == nil {
				t.Fatal("corrupt worker produced no error")
			}
			if !errors.Is(err, nocerr.ErrWorker) {
				t.Fatalf("error not typed nocerr.ErrWorker: %v", err)
			}
		})
	}
}

// TestShardedRetryBudgetExhausted drives a worker that always fails its
// jobs (without dying) into the per-shard retry cap.
func TestShardedRetryBudgetExhausted(t *testing.T) {
	// A healthy transport whose every sweep job reports "failed".
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id": "job-1"}`)
			return
		}
		fmt.Fprint(w, `{"state": "failed", "error": "synthetic"}`)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	var retries atomic.Int32
	sh := &runner.Sharded{
		Workers:      []string{ts.URL},
		PollInterval: time.Millisecond,
		Retries:      2,
		OnRetry:      func(int, string, error) { retries.Add(1) },
	}
	_, err := sh.RunContext(context.Background(), runner.Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8}}, runner.Options{})
	if !errors.Is(err, nocerr.ErrWorker) {
		t.Fatalf("expected nocerr.ErrWorker after retry exhaustion, got %v", err)
	}
	if retries.Load() == 0 {
		t.Fatal("retry budget consumed without OnRetry firing")
	}
}

// TestShardedNoWorkers rejects a dispatcher without workers.
func TestShardedNoWorkers(t *testing.T) {
	_, err := (&runner.Sharded{}).RunContext(context.Background(), runner.Grid{}, runner.Options{})
	if !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Fatalf("expected ErrInvalidInput, got %v", err)
	}
}
