package runner

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestShardOfStableAndBounded pins the assignment contract: pure function
// of the cell key, in range, and indifferent to everything but identity.
func TestShardOfStableAndBounded(t *testing.T) {
	grid := Grid{
		Benchmarks: []string{"D26_media", "mesh:4", "torus:4x4:transpose"},
		Routings:   []string{"west-first", "odd-even"},
		Seeds:      []int64{0, 1, 2},
	}
	jobs := grid.Jobs()
	for _, n := range []int{1, 2, 3, 7, DefaultShardCount} {
		for _, j := range jobs {
			s := ShardOf(j, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", j.Key(), n, s)
			}
			if again := ShardOf(j, n); again != s {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", j.Key(), n, s, again)
			}
		}
	}
	// Distinct cells must get distinct keys.
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.Key()] {
			t.Fatalf("duplicate key %q for distinct cells", j.Key())
		}
		seen[j.Key()] = true
	}
}

// TestRunContextShardFilterPartitions runs every shard of a grid
// separately and checks the shard reports partition the job list: each
// owned subset is in global job order, the subsets are disjoint, and
// merging them reproduces the unsharded report byte for byte.
func TestRunContextShardFilterPartitions(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"D26_media", "mesh:4"},
		SwitchCounts: []int{8, 14},
		Routings:     []string{"west-first", "odd-even"},
		Seeds:        []int64{0, 1},
	}
	full, err := Run(grid, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	var parts []*Report
	total := 0
	for i := 0; i < shards; i++ {
		part, err := Run(grid, Options{Parallel: 2, ShardIndex: i, ShardCount: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range part.Results {
			if ShardOf(r.Job, shards) != i {
				t.Fatalf("shard %d report carries foreign cell %q", i, r.Job.Key())
			}
		}
		total += len(part.Results)
		parts = append(parts, part)
	}
	if total != len(full.Results) {
		t.Fatalf("shards hold %d cells, grid has %d", total, len(full.Results))
	}
	merged, err := MergeShards(grid, parts...)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := full.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged shard reports differ from the unsharded run:\nfull:\n%s\nmerged:\n%s", a.String(), b.String())
	}
}

// TestMergeShardsShuffled pins order independence: shard reports fed in
// any order, with cells shuffled inside each report, merge to the same
// bytes.
func TestMergeShardsShuffled(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"D26_media", "mesh:4"},
		SwitchCounts: []int{8, 11, 14},
		Seeds:        []int64{0, 1},
	}
	full, err := Run(grid, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := full.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		const shards = 4
		parts := make([]*Report, shards)
		for i := range parts {
			parts[i] = &Report{Grid: full.Grid}
		}
		for _, r := range full.Results {
			i := rng.Intn(shards) // any partition, not just the hash's
			parts[i].Results = append(parts[i].Results, r)
		}
		for _, p := range parts {
			rng.Shuffle(len(p.Results), func(a, b int) {
				p.Results[a], p.Results[b] = p.Results[b], p.Results[a]
			})
		}
		rng.Shuffle(len(parts), func(a, b int) { parts[a], parts[b] = parts[b], parts[a] })
		merged, err := MergeShards(grid, parts...)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := merged.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("round %d: shuffled merge differs from the direct report", round)
		}
	}
}

// TestMergeShardsMissingAndForeign pins the failure semantics: missing
// cells come back canceled (and mark the report canceled), foreign or
// duplicated cells are an error.
func TestMergeShardsMissingAndForeign(t *testing.T) {
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8, 14}}
	full, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	partial := &Report{Grid: full.Grid, Results: full.Results[:1]}
	merged, err := MergeShards(grid, partial)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Canceled {
		t.Error("merge with a missing cell not marked canceled")
	}
	if !merged.Results[1].Canceled || merged.Results[1].Benchmark != "D26_media" {
		t.Errorf("missing cell slot malformed: %+v", merged.Results[1])
	}
	if merged.Results[0].Canceled {
		t.Error("present cell marked canceled")
	}

	if _, err := MergeShards(grid, partial, partial); err == nil {
		t.Error("duplicated cell accepted")
	}
	foreign := &Report{Results: []Result{{Job: Job{Benchmark: "no_such", SwitchCount: 1}}}}
	if _, err := MergeShards(grid, foreign); err == nil {
		t.Error("foreign cell accepted")
	}
}

// TestRunContextShardValidation rejects out-of-range shard filters.
func TestRunContextShardValidation(t *testing.T) {
	grid := Grid{Benchmarks: []string{"D26_media"}, SwitchCounts: []int{8}}
	for _, bad := range []Options{
		{ShardCount: -1},
		{ShardIndex: -1, ShardCount: 2},
		{ShardIndex: 2, ShardCount: 2},
	} {
		if _, err := Run(grid, bad); err == nil {
			t.Errorf("shard filter %d/%d accepted", bad.ShardIndex, bad.ShardCount)
		}
	}
}
