package runner_test

// Fabric conformance suite: the sharded dispatcher driven by live worker
// membership (WorkerSource) and the content-addressed result cache. The
// invariant is unchanged from sharded_test.go — whatever the membership
// churn or cache state, the merged report is byte-identical to the
// serial in-process run.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/serve"
)

// fakeSource is a hand-driven WorkerSource: tests mutate the membership
// and signal the dispatcher exactly when they mean to.
type fakeSource struct {
	mu      sync.Mutex
	urls    []string
	updates chan struct{}
}

func newFakeSource(urls ...string) *fakeSource {
	return &fakeSource{urls: urls, updates: make(chan struct{}, 1)}
}

func (s *fakeSource) WorkerURLs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.urls...)
}

func (s *fakeSource) Updates() <-chan struct{} { return s.updates }

func (s *fakeSource) set(urls ...string) {
	s.mu.Lock()
	s.urls = urls
	s.mu.Unlock()
	select {
	case s.updates <- struct{}{}:
	default:
	}
}

// mapCache is a transparent CellCache for tests that need to inspect or
// surgically evict entries.
type mapCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string][]byte)} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *mapCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

func (c *mapCache) delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, key)
}

func (c *mapCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// countSubmits wraps worker handlers to count /v1/sweep submissions, so
// tests can assert which workers took shards and how many dispatches a
// cache pre-pass avoided.
func countSubmits(counts []int64) func(int, http.Handler) http.Handler {
	var mu sync.Mutex
	return func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sweep") {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			}
			h.ServeHTTP(w, r)
		})
	}
}

func totalSubmits(counts []int64) int64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	return n
}

// TestShardedLateJoinPicksUpUnownedShards starts a sweep against an
// empty fleet: every shard is unowned. Two workers join mid-run through
// the WorkerSource, take all of them, and the merged report must be
// byte-identical to the serial run — a worker's join time cannot leak
// into the results.
func TestShardedLateJoinPicksUpUnownedShards(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	counts := make([]int64, 2)
	urls := startWorkers(t, 2, countSubmits(counts))
	src := newFakeSource() // empty at start: the run must wait, not fail
	go func() {
		time.Sleep(50 * time.Millisecond)
		src.set(urls...)
	}()
	sh := &runner.Sharded{
		Source:       src,
		JoinGrace:    30 * time.Second,
		PollInterval: 5 * time.Millisecond,
	}
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("late-join report differs from serial:\nserial:\n%s\njoined:\n%s", want, got)
	}
	if totalSubmits(counts) == 0 {
		t.Fatal("no shard was ever dispatched to the joined workers")
	}
}

// TestShardedJoinGraceExpires pins the bounded wait: an empty source
// that never produces a worker must fail with the join-grace error, not
// hang forever.
func TestShardedJoinGraceExpires(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"mesh:3"}, Seeds: []int64{0}}
	sh := &runner.Sharded{
		Source:    newFakeSource(),
		JoinGrace: 30 * time.Millisecond,
	}
	_, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err == nil || !strings.Contains(err.Error(), "no worker joined within") {
		t.Fatalf("expected join-grace failure, got %v", err)
	}
}

// TestShardedEmptySourceFailsFast pins the zero-grace path: an empty
// fleet with JoinGrace unset (0 through the struct literal is
// interpreted as "fail fast", the CLI's behavior for a coordinator with
// no registered workers is bounded by the default grace instead).
func TestShardedEmptySourceFailsFast(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"mesh:3"}, Seeds: []int64{0}}
	sh := &runner.Sharded{Source: newFakeSource()}
	_, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err == nil || !strings.Contains(err.Error(), "no live workers registered") {
		t.Fatalf("expected fail-fast on empty fleet, got %v", err)
	}
}

// TestShardedCacheSecondRunDispatchesNothing is the coordinator-cache
// conformance centerpiece: run a sweep twice against the same cache;
// the second run must answer every shard from the cache — zero HTTP
// dispatches — and still serialize byte-identically.
func TestShardedCacheSecondRunDispatchesNothing(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	counts := make([]int64, 2)
	urls := startWorkers(t, 2, countSubmits(counts))
	cache := fabric.NewCache(fabric.CacheOptions{})
	opts := runner.Options{CellCache: cache}

	sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
	rep1, err := sh.RunContext(context.Background(), grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep1); !bytes.Equal(want, got) {
		t.Fatalf("cold cached run differs from serial:\nserial:\n%s\ncold:\n%s", want, got)
	}
	cold := totalSubmits(counts)
	if cold == 0 {
		t.Fatal("cold run dispatched nothing")
	}

	rep2, err := sh.RunContext(context.Background(), grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep2); !bytes.Equal(want, got) {
		t.Fatalf("cache-served run differs from serial:\nserial:\n%s\ncached:\n%s", want, got)
	}
	if warm := totalSubmits(counts) - cold; warm != 0 {
		t.Fatalf("cache-served run dispatched %d shard(s), want 0", warm)
	}
	if st := cache.Stats(); st.Hits < uint64(len(grid.Jobs())) {
		t.Fatalf("cache stats after warm run: %+v, want >= %d hits", st, len(grid.Jobs()))
	}
}

// TestShardedCachePartialEviction evicts a single cell and reruns: the
// shard holding it must dispatch whole (the merge rejects duplicate
// cells, so a partially cached shard cannot be split), the others must
// stay local, and the report must remain byte-identical.
func TestShardedCachePartialEviction(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	counts := make([]int64, 1)
	urls := startWorkers(t, 1, countSubmits(counts))
	cache := newMapCache()
	opts := runner.Options{CellCache: cache}
	sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
	if _, err := sh.RunContext(context.Background(), grid, opts); err != nil {
		t.Fatal(err)
	}
	cold := totalSubmits(counts)
	jobs := grid.Jobs()
	if cache.len() != len(jobs) {
		t.Fatalf("cache holds %d entries after cold run, want %d", cache.len(), len(jobs))
	}
	cache.delete(runner.CellKey(jobs[0], opts, grid.Loads))

	rep, err := sh.RunContext(context.Background(), grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("partially cached run differs from serial:\nserial:\n%s\npartial:\n%s", want, got)
	}
	warm := totalSubmits(counts) - cold
	if warm == 0 {
		t.Fatal("evicted cell's shard was never dispatched")
	}
	if warm >= cold {
		t.Fatalf("partial rerun dispatched %d shard(s), cold run %d — cache served nothing", warm, cold)
	}
	if cache.len() != len(jobs) {
		t.Fatalf("rerun did not repopulate the evicted cell: %d entries, want %d", cache.len(), len(jobs))
	}
}

// TestShardedNoCacheBypassesButRefreshes pins -no-cache semantics for
// the sharded path: a poisoned cache entry must not reach the report,
// and the bypassing run must overwrite it with the honest bytes.
func TestShardedNoCacheBypassesButRefreshes(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"mesh:4"}, Seeds: []int64{0, 1}}
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	urls := startWorkers(t, 1, nil)
	cache := newMapCache()
	opts := runner.Options{CellCache: cache}
	sh := &runner.Sharded{Workers: urls, PollInterval: 5 * time.Millisecond}
	if _, err := sh.RunContext(context.Background(), grid, opts); err != nil {
		t.Fatal(err)
	}

	// Poison every entry; a cache-consulting run would now produce
	// garbage (the pre-pass rejects undecodable entries, so poison with
	// a decodable-but-wrong result: the other job's bytes).
	jobs := grid.Jobs()
	k0 := runner.CellKey(jobs[0], opts, grid.Loads)
	honest, _ := cache.Get(k0)
	poisoned := bytes.Replace(honest, []byte(`"added_vcs"`), []byte(`"added_vcs_x"`), 1)
	cache.Put(k0, poisoned)

	bypass := opts
	bypass.NoCache = true
	rep, err := sh.RunContext(context.Background(), grid, bypass)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("no-cache run differs from serial:\nserial:\n%s\nbypass:\n%s", want, got)
	}
	if refreshed, _ := cache.Get(k0); !bytes.Equal(refreshed, honest) {
		t.Fatalf("no-cache run did not refresh the poisoned entry:\n%s", refreshed)
	}
}

// TestShardedHeartbeatRetirementRequeues is the end-to-end fleet chaos
// test: a real coordinator registry with a fast heartbeat contract, one
// live worker and one that registered and then died silently. The sweep
// starts while the corpse is still listed, its shards requeue onto the
// survivor, the registry retires it once its heartbeat budget lapses,
// and the merged report is byte-identical to serial.
func TestShardedHeartbeatRetirementRequeues(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	coord := serve.New(serve.Options{
		Workers:           1,
		HeartbeatInterval: 20 * time.Millisecond,
		MissedBudget:      2,
	})
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { cts.Close(); coord.Close() })

	survivor := startWorkers(t, 1, nil)[0]
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // registered URL, nobody home

	register := func(url string) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"url": url})
		resp, err := http.Post(cts.URL+"/v1/workers/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: status %d", url, resp.StatusCode)
		}
	}
	register(deadURL)
	register(survivor)
	// Keep the survivor's heartbeat alive for the whole test; the dead
	// worker never beats and must age out.
	hbCtx, hbStop := context.WithCancel(context.Background())
	defer hbStop()
	if err := fabric.Join(hbCtx, cts.URL, survivor, fabric.JoinOptions{}); err != nil {
		t.Fatal(err)
	}

	src, err := fabric.WatchWorkers(context.Background(), cts.URL, "", 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	sh := &runner.Sharded{
		Source:       src,
		PollInterval: 5 * time.Millisecond,
		JoinGrace:    30 * time.Second,
	}
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("report with a dead fleet member differs from serial:\nserial:\n%s\ngot:\n%s", want, got)
	}

	// The registry must have retired the silent worker by now (the sweep
	// took far longer than the 40ms liveness budget); the survivor, still
	// heartbeating, must remain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := src.WorkerURLs()
		if len(live) == 1 && live[0] == survivor {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never retired the dead worker: live set %v", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCellKeyDiscriminates pins the cache-key derivation: every semantic
// input must change the key, and scheduling knobs must not.
func TestCellKeyDiscriminates(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"mesh:4"}, Seeds: []int64{0}}
	job := grid.Jobs()[0]
	base := runner.CellKey(job, runner.Options{}, nil)

	if k := runner.CellKey(job, runner.Options{}, nil); k != base {
		t.Fatal("CellKey is not deterministic")
	}
	other := job
	other.Seed++
	if k := runner.CellKey(other, runner.Options{}, nil); k == base {
		t.Fatal("seed change did not change the cell key")
	}
	if k := runner.CellKey(job, runner.Options{FullRebuild: true}, nil); k == base {
		t.Fatal("FullRebuild did not change the cell key")
	}
	if k := runner.CellKey(job, runner.Options{Simulate: true}, nil); k == base {
		t.Fatal("Simulate did not change the cell key")
	}
	if k := runner.CellKey(job, runner.Options{VCLimit: 3}, nil); k == base {
		t.Fatal("VCLimit did not change the cell key")
	}
	// Scheduling and caching knobs are not semantic inputs.
	if k := runner.CellKey(job, runner.Options{Parallel: 7, NoCache: true}, nil); k != base {
		t.Fatal("scheduling knobs leaked into the cell key")
	}
	// Loads only matter when the simulation stage consumes them.
	if k := runner.CellKey(job, runner.Options{}, []float64{0.5}); k != base {
		t.Fatal("loads changed the key of a non-simulating cell")
	}
	simBase := runner.CellKey(job, runner.Options{Simulate: true}, nil)
	if k := runner.CellKey(job, runner.Options{Simulate: true}, []float64{0.5}); k == simBase {
		t.Fatal("loads did not change the key of a simulating cell")
	}
	// Defaulted and explicit-default simulation parameters are the same
	// computation, so they must share a key.
	explicit := runner.Options{Simulate: true, Sim: runner.SimParams{Cycles: 20000, Load: 1.0, BufferDepth: 2}}
	if k := runner.CellKey(job, explicit, nil); k != simBase {
		t.Fatal("explicit default SimParams changed the cell key")
	}
}
