package runner_test

// Fabric phase 2 conformance: streamed dispatch (SSE-first, polling as
// the degrade path), coordinator→worker cache seeding, 429 backpressure
// handling, and a TLS fleet end to end. The invariant stays the same
// throughout: byte-identity with the serial run.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/serve"
)

// countJobReads wraps worker handlers to split GET /v1/jobs/{id} status
// polls from GET /v1/jobs/{id}/events stream subscriptions.
func countJobReads(polls, streams *atomic.Int64) func(int, http.Handler) http.Handler {
	return func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
				if strings.HasSuffix(r.URL.Path, "/events") {
					streams.Add(1)
				} else {
					polls.Add(1)
				}
			}
			h.ServeHTTP(w, r)
		})
	}
}

// TestShardedStreamZeroStatusPolls is the streamed-dispatch conformance
// check: on the happy path every shard is followed over its SSE event
// stream and the worker sees zero status polls; forcing the degrade path
// polls as before. Both produce the serial report byte for byte.
func TestShardedStreamZeroStatusPolls(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	var polls, streams atomic.Int64
	urls := startWorkers(t, 2, countJobReads(&polls, &streams))

	sh := &runner.Sharded{Workers: urls}
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("streamed report differs from serial:\nserial:\n%s\nstreamed:\n%s", want, got)
	}
	if n := polls.Load(); n != 0 {
		t.Fatalf("happy path issued %d status poll(s), want 0 — SSE must carry the terminal state", n)
	}
	if streams.Load() == 0 {
		t.Fatal("no SSE subscription was ever opened")
	}

	// Forced degrade path: no streams, polls only, same bytes.
	streams.Store(0)
	sh = &runner.Sharded{Workers: urls, DisableStream: true, PollInterval: 2 * time.Millisecond}
	rep, err = sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("degrade-path report differs from serial:\nserial:\n%s\npolled:\n%s", want, got)
	}
	if polls.Load() == 0 {
		t.Fatal("degrade path never polled")
	}
	if streams.Load() != 0 {
		t.Fatalf("DisableStream still opened %d stream(s)", streams.Load())
	}
}

// TestShardedWarmSeedHandoff pins cache propagation end to end: a warm
// coordinator dispatching a partially-cold shard ships its warm cells to
// the worker first, so a fresh worker computes only the cold cell — and
// the report stays byte-identical.
func TestShardedWarmSeedHandoff(t *testing.T) {
	grid := conformanceGrid()
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)
	jobs := grid.Jobs()

	coord := newMapCache()
	opts := runner.Options{CellCache: coord}

	// Cold run against a throwaway worker to fill the coordinator cache.
	coldURLs := startWorkers(t, 1, nil)
	sh := &runner.Sharded{Workers: coldURLs, Shards: 1, PollInterval: 5 * time.Millisecond}
	if _, err := sh.RunContext(context.Background(), grid, opts); err != nil {
		t.Fatal(err)
	}
	if coord.len() != len(jobs) {
		t.Fatalf("coordinator cache holds %d entries after the cold run, want %d", coord.len(), len(jobs))
	}
	evicted := runner.CellKey(jobs[0], opts, grid.Loads)
	coord.delete(evicted)

	// A fresh worker with its own empty result cache: the single shard
	// dispatches whole (one cell is cold), but the seed hand-off must
	// answer every other cell from the worker's cache.
	wcache := fabric.NewCache(fabric.CacheOptions{})
	wsrv := serve.New(serve.Options{Workers: 2, SweepParallel: 2, Cache: wcache})
	wts := httptest.NewServer(wsrv.Handler())
	t.Cleanup(func() {
		wsrv.Cancel()
		wts.Close()
		wsrv.Close()
		wcache.Close()
	})

	sh = &runner.Sharded{Workers: []string{wts.URL}, Shards: 1, PollInterval: 5 * time.Millisecond}
	rep, err := sh.RunContext(context.Background(), grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("seeded run differs from serial:\nserial:\n%s\nseeded:\n%s", want, got)
	}
	st := wcache.Stats()
	if st.Misses != 1 {
		t.Fatalf("fresh worker computed %d cell(s) cold, want exactly 1 (the evicted one): %+v", st.Misses, st)
	}
	if st.Hits < uint64(len(jobs)-1) {
		t.Fatalf("seeded worker hit only %d of %d warm cells: %+v", st.Hits, len(jobs)-1, st)
	}
	if coord.len() != len(jobs) {
		t.Fatalf("coordinator cache not repopulated: %d entries, want %d", coord.len(), len(jobs))
	}
	if _, ok := coord.Get(evicted); !ok {
		t.Fatal("the evicted cell never returned to the coordinator cache")
	}
}

// TestShardedBackpressureResubmit pins the 429 contract: a worker
// deflecting submissions with Retry-After is waited out and resubmitted
// to — never retired, never charged against the shard retry budget.
func TestShardedBackpressureResubmit(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"mesh:3"}, Seeds: []int64{0}}
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	var deflected atomic.Int32
	wrap := func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sweep") && deflected.Add(1) <= 2 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"error":"job queue full"}`, http.StatusTooManyRequests)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	urls := startWorkers(t, 1, wrap)
	var retries atomic.Int32
	sh := &runner.Sharded{
		Workers:      urls,
		PollInterval: 2 * time.Millisecond,
		OnRetry:      func(int, string, error) { retries.Add(1) },
	}
	start := time.Now()
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatalf("backpressured run failed: %v", err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(want, got) {
		t.Fatalf("backpressured report differs from serial:\nserial:\n%s\ngot:\n%s", want, got)
	}
	if n := deflected.Load(); n < 3 {
		t.Fatalf("worker saw %d submit(s), want the 2 deflections plus the accepted one", n)
	}
	if retries.Load() != 0 {
		t.Fatal("backpressure was charged as a shard retry; a full queue must not consume the budget")
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("run finished in %v; two Retry-After: 1 rounds must wait at least 2s", elapsed)
	}
}

// TestShardedOverTLS runs a sharded sweep — submit, SSE stream, merge —
// against a worker listening on TLS with fleet-generated certificates. A
// dispatcher without the CA must fail instead of silently degrading.
func TestShardedOverTLS(t *testing.T) {
	ca, err := fabric.NewCertAuthority("runner-test-ca")
	if err != nil {
		t.Fatal(err)
	}
	cert, key, err := ca.Issue("worker", []string{"127.0.0.1", "localhost"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}
	caFile := write("ca.pem", ca.CertPEM)
	certFile := write("server.pem", cert)
	keyFile := write("server-key.pem", key)

	scfg, err := fabric.ServerTLS(certFile, keyFile, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{Workers: 2, SweepParallel: 2})
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.TLS = scfg
	ts.StartTLS()
	t.Cleanup(func() {
		srv.Cancel()
		ts.Close()
		srv.Close()
	})
	if !strings.HasPrefix(ts.URL, "https://") {
		t.Fatalf("worker URL %q is not TLS", ts.URL)
	}

	grid := runner.Grid{Benchmarks: []string{"mesh:4"}, Seeds: []int64{0, 1}}
	serial, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ccfg, err := fabric.ClientTLS(caFile, "", "")
	if err != nil {
		t.Fatal(err)
	}
	sh := &runner.Sharded{
		Workers:      []string{ts.URL},
		Client:       fabric.HTTPClient(ccfg, 0),
		PollInterval: 5 * time.Millisecond,
	}
	rep, err := sh.RunContext(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatalf("TLS sweep failed: %v", err)
	}
	if !bytes.Equal(reportBytes(t, serial), reportBytes(t, rep)) {
		t.Fatal("TLS sharded report differs from serial")
	}

	// No CA pin, no fleet: the default client must refuse the listener.
	bare := &runner.Sharded{Workers: []string{ts.URL}, Retries: 1, PollInterval: 5 * time.Millisecond}
	if _, err := bare.RunContext(context.Background(), grid, runner.Options{}); err == nil {
		t.Fatal("dispatcher without the CA reached a TLS worker")
	} else if !strings.Contains(err.Error(), nocerr.ErrWorker.Error()) {
		t.Fatalf("TLS rejection surfaced as %v, want a worker error", err)
	}
}

// TestShardedPollingGoroutineStable drives the forced polling path hard
// and requires the goroutine count to return to baseline: the reused
// per-loop timer must not leak tickers, and no stream or poll goroutine
// may outlive its run.
func TestShardedPollingGoroutineStable(t *testing.T) {
	grid := runner.Grid{Benchmarks: []string{"mesh:4"}, Seeds: []int64{0, 1}}
	urls := startWorkers(t, 1, nil)
	sh := &runner.Sharded{Workers: urls, DisableStream: true, PollInterval: time.Millisecond}
	if _, err := sh.RunContext(context.Background(), grid, runner.Options{}); err != nil {
		t.Fatal(err) // warm-up: lazy pools and http transports settle
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if _, err := sh.RunContext(context.Background(), grid, runner.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across polled runs and never settled",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
