package runner_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/serve"
)

// BenchmarkShardedSweep measures the distributed backend on a
// deep-sweep-shaped grid (8x8 mesh + torus presets × three routings ×
// seeded faults × two seeds, with the flit-level verification stage —
// 18 cells, ~50ms each), sharded across 1, 2 and 4 single-threaded local
// workers. Every worker is pinned to one job slot and a one-wide runner
// pool, so the speedup across sub-benchmarks is pure fan-out:
// near-linear scaling with available cores is the acceptance bar of the
// sharded backend (≥2.5x at 4 workers on a ≥4-core machine). The
// workers=1 run doubles as the overhead gauge — it must track the
// in-process serial run within a few percent, pinning the HTTP+poll tax
// the distributed path pays per shard.
func BenchmarkShardedSweep(b *testing.B) {
	grid := runner.Grid{
		Benchmarks: []string{"mesh:8x8:bitrev", "mesh:8x8:transpose", "torus:6"},
		Routings:   []string{"west-first", "odd-even", "min-adaptive"},
		Faults:     1,
		Seeds:      []int64{0, 1},
	}
	opts := runner.Options{Simulate: true, Sim: runner.SimParams{Cycles: 8000}}
	b.Run("serial-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(grid, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			urls, shutdown, err := serve.LocalCluster(workers, serve.Options{Workers: 1, SweepParallel: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer shutdown()
			sh := &runner.Sharded{Workers: urls, PollInterval: 2 * time.Millisecond}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := sh.RunContext(context.Background(), grid, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rep.Results {
					if r.Error != "" {
						b.Fatalf("cell %q failed: %s", r.Job.Key(), r.Error)
					}
				}
			}
		})
	}
}
