package runner

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// FuzzShardMerge fuzzes the shard assignment + report merge round trip:
// ANY partition of a grid's cells into any number of shard reports — not
// just the hash partition — delivered in any order and serialized over
// the wire, must merge back to bytes identical to the direct report.
// This is the invariant the distributed backend's correctness rests on;
// the nightly deep-verify fuzz matrix runs it for minutes at a stretch.
func FuzzShardMerge(f *testing.F) {
	f.Add(uint8(3), int64(42), []byte{0, 1, 2, 250})
	f.Add(uint8(1), int64(0), []byte{})
	f.Add(uint8(16), int64(-9), []byte{7})
	f.Fuzz(func(t *testing.T, nshards uint8, seed int64, partition []byte) {
		grid := Grid{
			Benchmarks:   []string{"mesh:3", "rand:12x2", "D26_media"},
			SwitchCounts: []int{6, 9},
			Routings:     []string{"west-first", "odd-even"},
			Policies:     []string{"smallest", "first"},
			Seeds:        []int64{0, 1},
			Faults:       1,
		}
		n := int(nshards%8) + 1
		norm := grid.normalized()
		jobs := norm.Jobs()

		// Fabricated deterministic results: merging is pure bookkeeping,
		// so the fuzz budget goes into partitions, not removal runs.
		results := make([]Result, len(jobs))
		for i, j := range jobs {
			r := Result{Job: j, Cores: 3 + i, RemovalVCs: i % 5, OrderingVCs: i % 7, Breaks: i % 3}
			switch i % 4 {
			case 1:
				r.Skipped = true
			case 2:
				r.Error = "synthetic failure"
			case 3:
				r.Sim = &SimResult{
					PreRan:         true,
					PreDeadlock:    i%2 == 1,
					PostDelivered:  int64(i) * 11,
					PostAvgLatency: float64(i) * 1.37,
					PostP95:        int64(i) % 97,
					PostThroughput: float64(i) / 3.0,
				}
			}
			results[i] = r
		}
		want := &Report{Grid: norm, Results: results}
		var wantBuf bytes.Buffer
		if err := want.WriteJSON(&wantBuf); err != nil {
			t.Fatal(err)
		}

		// Partition by the fuzz bytes, shuffle orders by the fuzz seed.
		parts := make([]*Report, n)
		for i := range parts {
			parts[i] = &Report{Grid: norm}
		}
		for i, r := range results {
			p := 0
			if len(partition) > 0 {
				p = int(partition[i%len(partition)]) % n
			}
			parts[p].Results = append(parts[p].Results, r)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, p := range parts {
			rng.Shuffle(len(p.Results), func(a, b int) {
				p.Results[a], p.Results[b] = p.Results[b], p.Results[a]
			})
		}
		rng.Shuffle(len(parts), func(a, b int) { parts[a], parts[b] = parts[b], parts[a] })

		// Round-trip every shard report through JSON — the coordinator
		// merges decoded wire documents, so floats and omitempty fields
		// must survive serialization exactly.
		decoded := make([]*Report, n)
		for i, p := range parts {
			data, err := json.Marshal(p)
			if err != nil {
				t.Fatal(err)
			}
			decoded[i] = new(Report)
			if err := json.Unmarshal(data, decoded[i]); err != nil {
				t.Fatal(err)
			}
		}

		merged, err := MergeShards(grid, decoded...)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := merged.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBuf.Bytes(), got.Bytes()) {
			t.Fatalf("merge round trip diverged (n=%d):\nwant:\n%s\ngot:\n%s", n, wantBuf.String(), got.String())
		}

		// The assignment itself: bounded and stable for this shard count.
		for _, j := range jobs {
			s := ShardOf(j, n)
			if s < 0 || s >= n || s != ShardOf(j, n) {
				t.Fatalf("ShardOf(%q, %d) unstable or out of range: %d", j.Key(), n, s)
			}
		}
	})
}
