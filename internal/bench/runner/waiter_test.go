package runner

// White-box tests for the dispatcher's reused wait timer — the fix for
// the per-iteration time.After allocation in the poll and drain loops.

import (
	"context"
	"testing"
	"time"
)

// TestWaiterReusesTimer pins the allocation contract: after the first
// sleep creates the timer, further sleeps reuse it instead of allocating
// one per iteration the way time.After did.
func TestWaiterReusesTimer(t *testing.T) {
	w := &waiter{}
	defer w.stop()
	ctx := context.Background()
	if err := w.sleep(ctx, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.sleep(ctx, 10*time.Microsecond); err != nil {
			t.Error(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("waiter.sleep allocates %.1f object(s) per iteration; the timer is not reused", allocs)
	}
}

// TestWaiterCancelRace pins the drain-on-cancel path: a sleep cut short
// by its context reports the context error, and the same waiter then
// serves clean sleeps again — the fired-while-leaving race must not
// leave a stale tick in the channel.
func TestWaiterCancelRace(t *testing.T) {
	w := &waiter{}
	defer w.stop()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.sleep(canceled, time.Hour); err == nil {
		t.Fatal("sleep on a canceled context returned nil")
	}
	for i := 0; i < 3; i++ {
		if err := w.sleep(context.Background(), time.Microsecond); err != nil {
			t.Fatalf("sleep %d after a canceled one: %v", i, err)
		}
	}

	// Race the expiry against the cancellation repeatedly: whichever side
	// wins, the next sleep must complete normally.
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_ = w.sleep(ctx, time.Microsecond)
		if err := w.sleep(context.Background(), time.Microsecond); err != nil {
			t.Fatalf("sleep after racing cancel %d: %v", i, err)
		}
	}
}
