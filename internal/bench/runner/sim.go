package runner

import (
	"context"
	"fmt"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// SimParams configures the flit-level verification stage of a sweep.
// Zero-valued fields pick defaults chosen to provoke deadlocks: saturation
// load and shallow buffers over a 20k-cycle horizon.
type SimParams struct {
	// Cycles is the simulation horizon per run. Default 20000.
	Cycles int64
	// Load is the injection load factor in (0, 1]. Default 1.0
	// (saturation — the regime where cyclic designs actually deadlock).
	Load float64
	// BufferDepth is the per-VC buffer depth in flits. Default 2.
	BufferDepth int
	// Seed drives the injection process.
	Seed int64
	// Adaptive is the per-hop output-selection policy for adaptive
	// cells (first-free or least-congested); single-path cells ignore it.
	Adaptive wormhole.AdaptiveSelection
}

func (p SimParams) withDefaults() SimParams {
	if p.Cycles == 0 {
		p.Cycles = 20000
	}
	if p.Load == 0 {
		p.Load = 1.0
	}
	if p.BufferDepth == 0 {
		p.BufferDepth = 2
	}
	return p
}

// SimResult is the flit-level verification outcome of one grid cell: the
// negative control (the pre-removal design must deadlock under the
// constructed witness workload if its CDG was cyclic), the post-removal
// verdict (must never deadlock, neither under the witness nor under plain
// load), and the post-removal service metrics. All fields are pure
// functions of the cell spec and seed, so they serialize
// deterministically.
type SimResult struct {
	// PreRan reports whether the negative control ran; it is skipped when
	// the initial CDG is already acyclic (no deadlock to provoke).
	PreRan bool `json:"pre_ran"`
	// WitnessFlows is how many flows the constructed witness workload
	// saturates (the flows inducing the CDG's smallest cycle).
	WitnessFlows int `json:"witness_flows,omitempty"`
	// PreDeadlock is the negative control: true means the unmodified
	// design deadlocked under the witness workload, demonstrating the
	// hazard the removal algorithm exists to eliminate.
	PreDeadlock      bool  `json:"pre_deadlock"`
	PreDeadlockCycle int64 `json:"pre_deadlock_cycle,omitempty"`

	// PostDeadlock must be false: the post-removal design simulated under
	// the identical witness workload and under the plain measurement
	// load.
	PostDeadlock bool `json:"post_deadlock"`

	// Post-removal service metrics at the configured load.
	PostDelivered  int64   `json:"post_delivered"`
	PostAvgLatency float64 `json:"post_avg_latency"`
	PostP50        int64   `json:"post_p50_latency"`
	PostP95        int64   `json:"post_p95_latency"`
	PostP99        int64   `json:"post_p99_latency"`
	// PostThroughput is delivered flits per cycle — the saturation
	// throughput when Load is 1.
	PostThroughput float64 `json:"post_throughput_flits_per_cycle"`

	// LoadSweep holds the post-removal design's measurement points over
	// the grid's Loads axis, ascending by load (only when Grid.Loads was
	// set — legacy reports never carry the field).
	LoadSweep []LoadPoint `json:"load_sweep,omitempty"`
}

// witnessFlits is the packet length of the witness workload's saturated
// flows: long worms span several channels, so the constructed cycle's
// holdings actually interlock.
const witnessFlits = 16

// witnessWorkload constructs the adversarial counterexample for a cyclic
// design: it finds the CDG's smallest cycle, identifies the flows whose
// routes induce its dependency edges, and returns a copy of the traffic
// graph in which exactly those flows inject saturated long-packet traffic
// while every other flow is throttled to near silence. A blind saturation
// run almost never trips an application-specific design's cycle (the
// involved flows are usually low-bandwidth); driving the inducing flows
// directly makes the latent hazard manifest within a short horizon. The
// second return value is the number of saturated flows; a nil graph means
// the CDG is acyclic.
func witnessWorkload(g *traffic.Graph, top *topology.Topology, tab *route.Table) (*traffic.Graph, int, error) {
	c, err := cdg.Build(top, tab)
	if err != nil {
		return nil, 0, err
	}
	return witnessFromCDG(g, c, nil)
}

// witnessWorkloadSet is witnessWorkload over a route set: the smallest
// cycle is found in the union CDG, and the pseudo-flows inducing its
// edges are mapped back to the real flows that own the candidate paths.
func witnessWorkloadSet(g *traffic.Graph, top *topology.Topology, set *route.RouteSet) (*traffic.Graph, int, error) {
	c, refs, err := cdg.BuildSet(top, set)
	if err != nil {
		return nil, 0, err
	}
	return witnessFromCDG(g, c, refs)
}

// witnessFromCDG builds the witness graph given the (possibly flattened)
// CDG; refs maps pseudo-flow attributions back to real flows (nil for an
// unflattened CDG).
func witnessFromCDG(g *traffic.Graph, c *cdg.CDG, refs []route.PathRef) (*traffic.Graph, int, error) {
	cyc := c.SmallestCycle()
	if len(cyc) == 0 {
		return nil, 0, nil
	}
	hot := map[int]bool{}
	for i := range cyc {
		for _, f := range c.FlowsOn(cyc[i], cyc[(i+1)%len(cyc)]) {
			if refs != nil {
				f = refs[f].FlowID
			}
			hot[f] = true
		}
	}
	// Rebuild the graph flow by flow in ID order so flow IDs (and with
	// them the route table mapping) are preserved.
	w := traffic.NewGraph(g.Name + "_witness")
	for range g.Cores() {
		w.AddCore("")
	}
	for _, f := range g.Flows() {
		bw, flits := 0.001, f.PacketFlits
		if hot[f.ID] {
			bw, flits = 100, witnessFlits
		}
		id, err := w.AddFlow(f.Src, f.Dst, bw)
		if err != nil {
			return nil, 0, err
		}
		if err := w.SetPacketFlits(id, flits); err != nil {
			return nil, 0, err
		}
	}
	return w, len(hot), nil
}

// SimEval runs the flit-level verification stage for one evaluated cell.
// For a cyclic design it constructs the witness workload and simulates it
// on both the pre-removal design (negative control: must deadlock to
// demonstrate the hazard) and the post-removal design (must survive the
// identical adversarial workload). The post-removal design additionally
// runs the plain workload at the configured load for latency percentiles
// and throughput.
func SimEval(g *traffic.Graph,
	preTop *topology.Topology, preTab *route.Table, initialAcyclic bool,
	postTop *topology.Topology, postTab *route.Table,
	params SimParams) (*SimResult, error) {
	return SimEvalContext(context.Background(), g, preTop, preTab, initialAcyclic, postTop, postTab, params)
}

// SimEvalContext is SimEval with cooperative cancellation threaded into
// every simulation run's flit-stepping loop.
func SimEvalContext(ctx context.Context, g *traffic.Graph,
	preTop *topology.Topology, preTab *route.Table, initialAcyclic bool,
	postTop *topology.Topology, postTab *route.Table,
	params SimParams) (*SimResult, error) {

	return simEval(ctx, g, initialAcyclic, params,
		func(w *traffic.Graph) (*traffic.Graph, int, error) { return witnessWorkload(w, preTop, preTab) },
		func(w *traffic.Graph, cfg wormhole.Config) (*wormhole.Simulator, error) {
			return wormhole.New(preTop, w, preTab, cfg)
		},
		func(w *traffic.Graph, cfg wormhole.Config) (*wormhole.Simulator, error) {
			return wormhole.New(postTop, w, postTab, cfg)
		})
}

// SimEvalSet is SimEval for adaptive route sets: the witness workload is
// derived from the union CDG, and both designs simulate under the
// adaptive engine with params.Adaptive output selection.
func SimEvalSet(g *traffic.Graph,
	preTop *topology.Topology, preSet *route.RouteSet, initialAcyclic bool,
	postTop *topology.Topology, postSet *route.RouteSet,
	params SimParams) (*SimResult, error) {
	return SimEvalSetContext(context.Background(), g, preTop, preSet, initialAcyclic, postTop, postSet, params)
}

// SimEvalSetContext is SimEvalSet with cooperative cancellation.
func SimEvalSetContext(ctx context.Context, g *traffic.Graph,
	preTop *topology.Topology, preSet *route.RouteSet, initialAcyclic bool,
	postTop *topology.Topology, postSet *route.RouteSet,
	params SimParams) (*SimResult, error) {

	return simEval(ctx, g, initialAcyclic, params,
		func(w *traffic.Graph) (*traffic.Graph, int, error) { return witnessWorkloadSet(w, preTop, preSet) },
		func(w *traffic.Graph, cfg wormhole.Config) (*wormhole.Simulator, error) {
			return wormhole.NewAdaptive(preTop, w, preSet, cfg)
		},
		func(w *traffic.Graph, cfg wormhole.Config) (*wormhole.Simulator, error) {
			return wormhole.NewAdaptive(postTop, w, postSet, cfg)
		})
}

// simEval is the verification-stage harness shared by the single-path
// and adaptive evaluations: negative control on the pre-removal design
// under the constructed witness (when the CDG was cyclic), the identical
// witness on the post-removal design, then the plain measurement run.
func simEval(ctx context.Context, g *traffic.Graph, initialAcyclic bool, params SimParams,
	witness func(*traffic.Graph) (*traffic.Graph, int, error),
	preSim, postSim func(*traffic.Graph, wormhole.Config) (*wormhole.Simulator, error)) (*SimResult, error) {

	params = params.withDefaults()
	res := &SimResult{}
	cfg := wormhole.Config{
		MaxCycles:   params.Cycles,
		LoadFactor:  params.Load,
		BufferDepth: params.BufferDepth,
		Seed:        params.Seed,
		Adaptive:    params.Adaptive,
	}

	if !initialAcyclic {
		w, nflows, err := witness(g)
		if err != nil {
			return nil, fmt.Errorf("runner: witness workload: %w", err)
		}
		if w != nil {
			res.PreRan = true
			res.WitnessFlows = nflows
			// The witness's point is to saturate the cycle-inducing
			// flows; a sub-saturation -sim-load must not de-fang the
			// negative control, so the witness runs always pin load 1.
			witnessCfg := cfg
			witnessCfg.LoadFactor = 1.0
			pre, err := preSim(w, witnessCfg)
			if err != nil {
				return nil, fmt.Errorf("runner: pre-removal sim: %w", err)
			}
			st, err := pre.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("runner: pre-removal sim: %w", err)
			}
			res.PreDeadlock = st.Deadlocked
			res.PreDeadlockCycle = st.DeadlockCycle

			// The removed design must survive the same adversarial
			// workload that just deadlocked (or at least stressed) the
			// original.
			postW, err := postSim(w, witnessCfg)
			if err != nil {
				return nil, fmt.Errorf("runner: post-removal witness sim: %w", err)
			}
			wst, err := postW.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("runner: post-removal witness sim: %w", err)
			}
			if wst.Deadlocked {
				res.PostDeadlock = true
			}
		}
	}

	postCfg := cfg
	postCfg.CollectLatencies = true
	post, err := postSim(g, postCfg)
	if err != nil {
		return nil, fmt.Errorf("runner: post-removal sim: %w", err)
	}
	st, err := post.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("runner: post-removal sim: %w", err)
	}
	res.PostDeadlock = res.PostDeadlock || st.Deadlocked
	res.PostDelivered = st.DeliveredPackets
	res.PostAvgLatency = st.AvgLatency()
	res.PostP50 = st.LatencyPercentile(50)
	res.PostP95 = st.LatencyPercentile(95)
	res.PostP99 = st.LatencyPercentile(99)
	res.PostThroughput = st.ThroughputFlitsPerCycle()
	return res, nil
}

// newBatch builds a lockstep batch over one of the design's two halves.
func (de *designEval) newBatch(pre bool, w *traffic.Graph, cfg wormhole.Config, vs []wormhole.Variant) (*wormhole.Batch, error) {
	top, tab, set := de.postTop, de.postTab, de.postSet
	if pre {
		top, tab, set = de.preTop, de.preTab, de.preSet
	}
	if de.adaptive {
		return wormhole.NewAdaptiveBatch(top, w, set, cfg, vs)
	}
	return wormhole.NewBatch(top, w, tab, cfg, vs)
}

// simEvalBatch is the batched verification stage: simEval's exact
// pre-witness → post-witness → measurement sequence, with each stage run
// as one lockstep batch across the group's per-cell seeds instead of a
// simulator per cell. Per-cell outcomes are byte-identical to simEval
// with the same seed (the grouped-sweep differential pins this). When
// loads is non-empty, the measurement batch additionally carries one
// lane per (seed, load) pair and the extra points land in each cell's
// LoadSweep, leaving the canonical params.Load measurement untouched.
func (de *designEval) simEvalBatch(ctx context.Context, params SimParams, seeds []int64, loads []float64, parallel int) ([]*SimResult, error) {
	params = params.withDefaults()
	results := make([]*SimResult, len(seeds))
	for i := range results {
		results[i] = &SimResult{}
	}
	cfg := wormhole.Config{
		MaxCycles:   params.Cycles,
		LoadFactor:  params.Load,
		BufferDepth: params.BufferDepth,
		Adaptive:    params.Adaptive,
	}
	// One witness lane per seed. A seed of 0 normalizes to the base
	// config's defaulted seed inside the batch — the same fallback a
	// zero Config.Seed gets on the per-cell path.
	witnessVs := make([]wormhole.Variant, len(seeds))
	for i, s := range seeds {
		witnessVs[i] = wormhole.Variant{Seed: s}
	}

	if !de.initialAcyclic {
		var w *traffic.Graph
		var nflows int
		var err error
		if de.adaptive {
			w, nflows, err = witnessWorkloadSet(de.g, de.preTop, de.preSet)
		} else {
			w, nflows, err = witnessWorkload(de.g, de.preTop, de.preTab)
		}
		if err != nil {
			return nil, fmt.Errorf("runner: witness workload: %w", err)
		}
		if w != nil {
			// See simEval: the witness runs always pin load 1.
			witnessCfg := cfg
			witnessCfg.LoadFactor = 1.0
			pre, err := de.newBatch(true, w, witnessCfg, witnessVs)
			if err != nil {
				return nil, fmt.Errorf("runner: pre-removal sim: %w", err)
			}
			preStats, err := pre.RunContext(ctx, parallel)
			if err != nil {
				return nil, fmt.Errorf("runner: pre-removal sim: %w", err)
			}
			postW, err := de.newBatch(false, w, witnessCfg, witnessVs)
			if err != nil {
				return nil, fmt.Errorf("runner: post-removal witness sim: %w", err)
			}
			wStats, err := postW.RunContext(ctx, parallel)
			if err != nil {
				return nil, fmt.Errorf("runner: post-removal witness sim: %w", err)
			}
			for i, res := range results {
				res.PreRan = true
				res.WitnessFlows = nflows
				res.PreDeadlock = preStats[i].Deadlocked
				res.PreDeadlockCycle = preStats[i].DeadlockCycle
				if wStats[i].Deadlocked {
					res.PostDeadlock = true
				}
			}
		}
	}

	// Measurement lanes, seed-major: each seed's canonical params.Load
	// run followed by its load-sweep points.
	stride := 1 + len(loads)
	measureVs := make([]wormhole.Variant, 0, len(seeds)*stride)
	for _, s := range seeds {
		measureVs = append(measureVs, wormhole.Variant{Seed: s, Load: params.Load})
		for _, l := range loads {
			measureVs = append(measureVs, wormhole.Variant{Seed: s, Load: l})
		}
	}
	postCfg := cfg
	postCfg.CollectLatencies = true
	post, err := de.newBatch(false, de.g, postCfg, measureVs)
	if err != nil {
		return nil, fmt.Errorf("runner: post-removal sim: %w", err)
	}
	stats, err := post.RunContext(ctx, parallel)
	if err != nil {
		return nil, fmt.Errorf("runner: post-removal sim: %w", err)
	}
	for i, res := range results {
		st := stats[i*stride]
		res.PostDeadlock = res.PostDeadlock || st.Deadlocked
		res.PostDelivered = st.DeliveredPackets
		res.PostAvgLatency = st.AvgLatency()
		res.PostP50 = st.LatencyPercentile(50)
		res.PostP95 = st.LatencyPercentile(95)
		res.PostP99 = st.LatencyPercentile(99)
		res.PostThroughput = st.ThroughputFlitsPerCycle()
		for j, l := range loads {
			lst := stats[i*stride+1+j]
			res.LoadSweep = append(res.LoadSweep, LoadPoint{
				Load:       l,
				Deadlock:   lst.Deadlocked,
				Delivered:  lst.DeliveredPackets,
				AvgLatency: lst.AvgLatency(),
				P50:        lst.LatencyPercentile(50),
				P95:        lst.LatencyPercentile(95),
				P99:        lst.LatencyPercentile(99),
				Throughput: lst.ThroughputFlitsPerCycle(),
			})
		}
	}
	return results, nil
}
